"""Tests for the single-mesh unitary compute path and thermal drift."""

import numpy as np
import pytest

from repro.photonics.clements import random_unitary
from repro.photonics.noise import drift_tolerance, perturb_mesh_phases
from repro.photonics.svd import (
    is_unitary_matrix,
    program_matrix,
    program_svd,
    program_unitary,
    UnitaryProgram,
)
from repro.workloads import dct_matrix, rotation_matrix


class TestUnitaryProgram:
    def test_dct_fits_single_mesh(self):
        # Section 5.4.1: DCT maps to the full 8-input unitary MZIM.
        prog = program_unitary(dct_matrix(8))
        assert isinstance(prog, UnitaryProgram)
        assert prog.num_mzis == 28          # N(N-1)/2
        assert prog.mesh_columns <= 8       # single mesh depth

    def test_half_the_mzis_of_svd(self):
        d = dct_matrix(8)
        assert program_unitary(d).num_mzis < program_svd(d).num_mzis / 2

    def test_exact_product(self):
        d = dct_matrix(8)
        x = np.random.default_rng(0).standard_normal((8, 6))
        prog = program_unitary(d)
        assert np.allclose(prog.apply(x.astype(complex)).real, d @ x,
                           atol=1e-12)

    def test_rotation_matrix_is_unitary_kernel(self):
        r = rotation_matrix(0.3, 0.4, 0.5)
        prog = program_unitary(r)
        v = np.random.default_rng(1).standard_normal(4)
        assert np.allclose(prog.apply(v.astype(complex)).real, r @ v,
                           atol=1e-12)

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            program_unitary(np.ones((4, 4)))

    def test_no_rescaling_needed(self):
        assert program_unitary(dct_matrix(8)).scale == 1.0


class TestProgramMatrixDispatch:
    def test_unitary_gets_single_mesh(self):
        assert isinstance(program_matrix(dct_matrix(8)), UnitaryProgram)

    def test_general_gets_svd(self):
        prog = program_matrix(np.random.default_rng(2)
                              .standard_normal((4, 4)))
        assert not isinstance(prog, UnitaryProgram)

    def test_is_unitary_matrix(self):
        assert is_unitary_matrix(dct_matrix(8))
        assert not is_unitary_matrix(2 * np.eye(3))


class TestThermalDrift:
    def test_perturbed_mesh_stays_unitary(self):
        mesh = program_unitary(random_unitary(
            6, np.random.default_rng(3))).mesh
        drifted = perturb_mesh_phases(mesh, 0.02,
                                      np.random.default_rng(4))
        m = drifted.matrix()
        assert np.allclose(m.conj().T @ m, np.eye(6), atol=1e-9)

    def test_zero_drift_is_identity_operation(self):
        u = random_unitary(5, np.random.default_rng(5))
        mesh = program_unitary(u).mesh
        same = perturb_mesh_phases(mesh, 0.0)
        assert np.allclose(same.matrix(), u, atol=1e-12)

    def test_error_grows_with_drift(self):
        m = np.random.default_rng(6).standard_normal((8, 8))
        tol = drift_tolerance(m, [0.001, 0.01, 0.1])
        errs = [tol[s] for s in (0.001, 0.01, 0.1)]
        assert errs == sorted(errs)

    def test_small_drift_small_error(self):
        # 1 mrad RMS drift keeps matrix error well under 1%.
        m = np.random.default_rng(7).standard_normal((8, 8))
        assert drift_tolerance(m, [0.001])[0.001] < 0.01

    def test_theta_clipped_to_physical_range(self):
        mesh = program_unitary(random_unitary(
            4, np.random.default_rng(8))).mesh
        drifted = perturb_mesh_phases(mesh, 2.0,
                                      np.random.default_rng(9))
        for mzi in drifted.mzis:
            assert 0.0 <= mzi.theta <= np.pi + 1e-12
