"""Tests for the serving daemon (`repro serve`).

Covers the determinism contract (same seed + simulated clock ==>
byte-identical event log, snapshots, and report, with or without a
live HTTP observer attached), the admission/arrival building blocks,
the ledger-conservation invariant at every snapshot (property-based),
and the degradation ladder under live traffic: mid-session faults
shed or reroute in-flight work without dropping admitted requests.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.obs import Obs, parse_exposition, validate_events
from repro.serve import (
    AdmissionController,
    ClientPopulation,
    DaemonState,
    LiveTelemetryStore,
    ServeConfig,
    ServeDaemon,
    TokenBucket,
    make_arrival,
    registered_arrivals,
    temporary_arrival,
)
from repro.serve.arrivals import ArrivalProcess, BurstyArrivals, DiurnalArrivals


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


def _artifacts(daemon: ServeDaemon, report: dict) -> str:
    """Canonical JSON of everything a session externalises."""
    return _canonical({
        "report": report,
        "events": list(daemon.obs.events.events),
        "snapshots": list(daemon.obs.sampler.series),
    })


# ---------------------------------------------------------------------------
# Arrival processes


class TestArrivals:
    def test_registry_lists_builtins(self):
        names = registered_arrivals()
        assert {"poisson", "bursty", "diurnal"} <= set(names)
        assert isinstance(make_arrival("poisson"), ArrivalProcess)

    def test_make_arrival_unknown_name(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrival("tsunami")

    def test_temporary_arrival_scoped(self):
        class Flat(ArrivalProcess):
            def intensity(self, cycle):
                return 2.0

        with temporary_arrival("flat", Flat):
            assert "flat" in registered_arrivals()
            assert make_arrival("flat").intensity(0) == 2.0
        assert "flat" not in registered_arrivals()

    def test_bursty_mean_preserving(self):
        proc = BurstyArrivals(period=512, duty=0.25, peak=4.0)
        mean = sum(proc.intensity(c) for c in range(512)) / 512
        assert mean == pytest.approx(1.0, abs=0.02)
        assert max(proc.intensity(c) for c in range(512)) == pytest.approx(4.0)

    def test_diurnal_nonnegative_and_periodic(self):
        proc = DiurnalArrivals(period=2048, amplitude=0.8)
        vals = [proc.intensity(c) for c in range(2048)]
        assert min(vals) >= 0.0
        assert proc.intensity(0) == pytest.approx(proc.intensity(2048))

    def test_population_deterministic(self):
        kwargs = dict(tenants=("a", "b"), process=make_arrival("poisson"),
                      rate=0.2, mvm_fraction=0.5, nodes=8, seed=11)
        pop1 = ClientPopulation(**kwargs)
        pop2 = ClientPopulation(**kwargs)
        for cycle in range(200):
            assert pop1.requests_for_cycle(cycle) == \
                pop2.requests_for_cycle(cycle)

    def test_population_tenant_streams_independent(self):
        """Adding a tenant must not perturb existing tenants' streams."""
        small = ClientPopulation(tenants=("a",),
                                 process=make_arrival("poisson"),
                                 rate=0.3, mvm_fraction=0.5, nodes=8, seed=3)
        big = ClientPopulation(tenants=("a", "b"),
                               process=make_arrival("poisson"),
                               rate=0.3, mvm_fraction=0.5, nodes=8, seed=3)
        for cycle in range(200):
            only_a = [r for r in big.requests_for_cycle(cycle)
                      if r.tenant == "a"]
            assert only_a == small.requests_for_cycle(cycle)


# ---------------------------------------------------------------------------
# Admission control


class TestAdmission:
    def test_bucket_starts_full_then_throttles(self):
        bucket = TokenBucket(rate_per_cycle=1e-9, burst=3.0)
        assert [bucket.try_take(0) for _ in range(4)] == \
            [True, True, True, False]

    def test_bucket_refills_with_cycles(self):
        bucket = TokenBucket(rate_per_cycle=0.5, burst=1.0)
        assert bucket.try_take(0)
        assert not bucket.try_take(0)
        assert not bucket.try_take(1)   # 0.5 tokens: not enough
        assert bucket.try_take(2)       # 1.0 token accrued
        assert bucket.level(2) == pytest.approx(0.0)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_per_cycle=1.0, burst=2.0)
        for _ in range(2):
            assert bucket.try_take(0)
        assert bucket.level(10_000) == pytest.approx(2.0)

    def test_controller_isolates_tenants(self):
        ctl = AdmissionController(rate_per_cycle=1e-9, burst=1.0)
        assert ctl.admit("a", 0)
        assert not ctl.admit("a", 0)
        assert ctl.admit("b", 0)  # b's bucket untouched by a's spend


# ---------------------------------------------------------------------------
# Daemon determinism


class TestServeDeterminism:
    CONFIG = ServeConfig(duration=1200, seed=7, arrival="bursty", rate=0.08)

    def _run(self, config=None, observed=False):
        daemon = ServeDaemon(config or self.CONFIG)
        if observed:
            store = LiveTelemetryStore(daemon.obs, daemon=daemon)
            daemon.start()
            for _ in range(daemon.config.duration):
                daemon.step()
                if daemon.cycle % 256 == 0:
                    # Interleave reads the way a scraper would.
                    store.exposition()
                    store.health()
            report = daemon.finish()
        else:
            report = daemon.run()
        return daemon, report

    def test_same_seed_byte_identical(self):
        d1, r1 = self._run()
        d2, r2 = self._run()
        assert _artifacts(d1, r1) == _artifacts(d2, r2)

    def test_observer_does_not_perturb_session(self):
        d1, r1 = self._run(observed=False)
        d2, r2 = self._run(observed=True)
        assert _artifacts(d1, r1) == _artifacts(d2, r2)

    def test_different_seeds_differ(self):
        _, r1 = self._run()
        _, r2 = self._run(ServeConfig(duration=1200, seed=8,
                                      arrival="bursty", rate=0.08))
        assert r1["ledger"] != r2["ledger"]

    def test_event_log_validates(self):
        daemon, report = self._run()
        assert validate_events(list(daemon.obs.events.events)) == []
        assert report["conserved"] and report["drained"]
        assert report["state"] == DaemonState.STOPPED.value

    def test_lifecycle_transitions_in_order(self):
        daemon, _ = self._run()
        states = [(e["src"], e["dst"])
                  for e in daemon.obs.events.events
                  if e["type"] == "serve_transition"]
        assert states[0] == ("boot", "serving")
        assert states[-2:] == [("serving", "draining"),
                               ("draining", "stopped")]

    def test_live_store_surface(self):
        daemon, _ = self._run()
        store = LiveTelemetryStore(daemon.obs, daemon=daemon)
        health = store.health()
        assert health["status"] == "ok"
        assert health["state"] == "stopped"
        assert health["in_flight"] == 0
        samples, problems = parse_exposition(store.exposition())
        assert not problems
        assert "repro_serve_offered_total" in samples
        assert store.events_tail(5) == store.events()[-5:]
        assert store.latest_snapshot() == store.snapshots()[-1]


# ---------------------------------------------------------------------------
# Ledger conservation (property-based)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       arrival=st.sampled_from(("poisson", "bursty", "diurnal")),
       rate=st.floats(min_value=0.01, max_value=0.25))
def test_ledger_conserved_at_every_snapshot(seed, arrival, rate):
    """admitted + rejected == offered and in_flight == admitted - completed
    must hold at every snapshot, not just at the end of the session."""
    config = ServeConfig(duration=768, seed=seed, arrival=arrival, rate=rate,
                         snapshot_interval=128)
    daemon = ServeDaemon(config)
    report = daemon.run()
    snaps = list(daemon.obs.sampler.series)
    assert snaps, "expected at least one snapshot"
    for snap in snaps:
        counters = snap["metrics"]["counters"]
        gauges = snap["metrics"]["gauges"]
        offered = counters.get("serve.offered", 0)
        admitted = counters.get("serve.admitted", 0)
        rejected = counters.get("serve.rejected", 0)
        completed = counters.get("serve.completed", 0)
        assert admitted + rejected == offered
        assert gauges.get("serve.in_flight", 0) == admitted - completed
    assert report["conserved"] and report["drained"]
    assert report["ledger"]["in_flight"] == 0


# ---------------------------------------------------------------------------
# Faults under live traffic


class TestServeUnderFaults:
    def test_drift_recovers_without_drops(self):
        config = ServeConfig(duration=3000, seed=5, rate=0.08,
                             fault="phase_drift", fault_magnitude=2.0)
        daemon = ServeDaemon(config)
        report = daemon.run()
        assert len(report["injected"]) == 1
        assert report["injected"][0]["kind"] == "phase_drift"
        assert report["detected_cycle"] is not None
        assert report["ladder"]["attempts"] > 0
        # Every admitted request still completes.
        assert report["ledger"]["completed"] == report["ledger"]["admitted"]
        assert report["conserved"] and report["drained"]
        assert report["final_rung"] == "HEALTHY"
        kinds = {e["type"] for e in daemon.obs.events.events}
        assert "ladder_transition" in kinds
        assert "fault_activation" in kinds

    def test_hard_fault_falls_back_to_electrical(self):
        config = ServeConfig(duration=3000, seed=5, rate=0.08,
                             fault="laser_degradation", fault_magnitude=2.0)
        report = ServeDaemon(config).run()
        assert report["final_rung"] == "ELECTRICAL"
        assert report["electrical_completions"] > 0
        # Electrical fallback serves the work instead of dropping it.
        assert report["ledger"]["completed"] == report["ledger"]["admitted"]
        assert report["conserved"] and report["drained"]

    def test_fault_session_deterministic(self):
        config = ServeConfig(duration=2000, seed=5, rate=0.08,
                             fault="stuck_mzi", fault_magnitude=1.0)
        runs = []
        for _ in range(2):
            daemon = ServeDaemon(config)
            runs.append(_artifacts(daemon, daemon.run()))
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# CLI


class TestServeCLI:
    ARGS = ["serve", "--duration", "800", "--seed", "7",
            "--arrival", "bursty", "--rate", "0.08"]

    def test_serve_check_ok(self, capsys):
        assert main([*self.ARGS, "--check"]) == 0
        assert "serve check: ok" in capsys.readouterr().out

    def test_serve_out_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([*self.ARGS, "--out", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_serve_telemetry_dir_byte_identical(self, tmp_path, capsys):
        dirs = [tmp_path / "t1", tmp_path / "t2"]
        for out in dirs:
            assert main([*self.ARGS, "--telemetry-dir", str(out)]) == 0
        capsys.readouterr()
        for name in ("events.jsonl", "snapshots.jsonl", "metrics.prom"):
            assert (dirs[0] / name).read_bytes() == \
                (dirs[1] / name).read_bytes()

    def test_serve_fault_check(self, capsys):
        code = main(["serve", "--duration", "1500", "--seed", "5",
                     "--rate", "0.08", "--fault", "phase_drift",
                     "--fault-magnitude", "2.0", "--check"])
        assert code == 0
        assert "serve check: ok" in capsys.readouterr().out

    def test_serve_rejects_unknown_arrival(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--arrival", "tsunami"])
        capsys.readouterr()
