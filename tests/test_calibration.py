"""Tests for in-situ mesh self-configuration."""

import numpy as np
import pytest

from repro.photonics.calibration import (
    PhaseOffsets,
    PhysicalMesh,
    calibrate_to,
    matrix_error,
    self_configure,
)
from repro.photonics.clements import decompose, random_unitary


def target(n=6, seed=1):
    return random_unitary(n, np.random.default_rng(seed))


class TestPhysicalMesh:
    def test_zero_offsets_realize_ideal(self):
        u = target()
        mesh = PhysicalMesh(decompose(u), PhaseOffsets.none(15))
        assert matrix_error(mesh.measure(), u) < 1e-12

    def test_offsets_corrupt_the_matrix(self):
        u = target()
        mesh = PhysicalMesh(decompose(u),
                            PhaseOffsets.random(15, 0.1))
        assert matrix_error(mesh.measure(), u) > 0.05

    def test_offset_count_checked(self):
        with pytest.raises(ValueError):
            PhysicalMesh(decompose(target()), PhaseOffsets.none(3))

    def test_measurements_counted(self):
        mesh = PhysicalMesh(decompose(target()), PhaseOffsets.none(15))
        mesh.measure()
        mesh.measure()
        assert mesh.measurements == 2

    def test_program_changes_realization(self):
        u = target()
        mesh = PhysicalMesh(decompose(u), PhaseOffsets.none(15))
        before = mesh.measure().copy()
        mesh.program(0, 0.5, 0.5)
        assert not np.allclose(mesh.measure(), before)


class TestDecompositionCalibration:
    @pytest.mark.parametrize("sigma", [0.02, 0.1, 0.3])
    def test_machine_precision_recovery(self, sigma):
        u = target(8, 3)
        offsets = PhaseOffsets.random(28, sigma,
                                      np.random.default_rng(4))
        result = calibrate_to(u, offsets, method="decomposition")
        assert result.final_error < 1e-9
        assert result.sweeps_used <= 2

    def test_history_monotone(self):
        u = target(6, 5)
        offsets = PhaseOffsets.random(15, 0.2, np.random.default_rng(6))
        result = calibrate_to(u, offsets)
        assert result.history == sorted(result.history, reverse=True)

    def test_improvement_reported(self):
        u = target(6, 7)
        offsets = PhaseOffsets.random(15, 0.1, np.random.default_rng(8))
        result = calibrate_to(u, offsets)
        assert result.improvement > 1e6


class TestCoordinateDescentCalibration:
    def test_descent_improves_error(self):
        u = target(5, 9)
        offsets = PhaseOffsets.random(10, 0.05,
                                      np.random.default_rng(10))
        result = calibrate_to(u, offsets, sweeps=3, method="descent")
        assert result.final_error < result.initial_error / 3

    def test_descent_converged_mesh_usable(self):
        u = target(4, 11)
        mesh = PhysicalMesh(decompose(u),
                            PhaseOffsets.random(6, 0.05,
                                                np.random.default_rng(12)))
        self_configure(mesh, u, sweeps=4)
        assert matrix_error(mesh.measure(), u) < 0.05


class TestAPI:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            calibrate_to(target(), PhaseOffsets.none(15), method="magic")
