"""Tests for the five benchmark workloads (Section 4.2)."""

import numpy as np
import pytest

from repro.workloads import (
    ImageBlur,
    JPEGWorkload,
    ResNet50Conv3,
    Rotation3D,
    VGG16FC,
    dct2,
    dct_matrix,
    gaussian_kernel_3x3,
    idct2,
    paper_workloads,
    rotation_matrix,
    small_workloads,
    synthetic_image,
    verify_photonic,
    wireframe_vertices,
)
from repro.workloads.dct import blocks_from_plane, plane_from_blocks
from repro.workloads.jpeg import (
    magnitude_category,
    rgb_to_ycbcr,
    run_length_decode,
    run_length_encode,
    zigzag_order,
)


class TestPaperShapes:
    """MAC counts and shapes the paper states explicitly."""

    def test_image_blur_macs_about_1_7m(self):
        assert ImageBlur().total_macs() == 256 * 256 * 3 * 9  # 1.77 M

    def test_vgg16_fc_macs_about_4_1m(self):
        assert VGG16FC().total_macs() == 1000 * 4096  # 4.096 M

    def test_resnet_macs(self):
        # ~8 M multiply+add operations = 3.6 M fused MACs.
        macs = ResNet50Conv3().total_macs()
        assert macs == 56 * 56 * 128 * 9
        assert 7e6 < 2 * macs < 9e6

    def test_jpeg_block_count_is_1536(self):
        assert JPEGWorkload().luma_blocks == 1536

    def test_jpeg_macs_about_1_6m(self):
        # 1536 blocks x 2 passes x 8 MVMs x 64 MACs = 1.57 M.
        assert JPEGWorkload().total_macs() == 1536 * 2 * 8 * 64

    def test_rotation_vertices_306(self):
        wl = Rotation3D()
        assert wl.vertices.shape == (4, 306)
        assert wl.total_macs() == 4 * 4 * 306


class TestNumericalEquivalence:
    @pytest.mark.parametrize("idx", range(5))
    def test_photonic_matches_reference(self, idx):
        wl = small_workloads()[idx]
        err = verify_photonic(wl)
        assert err < 1e-6


class TestImageBlur:
    def test_gaussian_kernel_normalized(self):
        k = gaussian_kernel_3x3()
        assert k.sum() == pytest.approx(1.0)
        assert k[1, 1] == k.max()

    def test_blur_smooths(self):
        wl = ImageBlur(height=32, width=32)
        out = wl.reference()
        orig = wl.image.transpose(2, 0, 1)
        assert np.var(np.diff(out[0][5:-5], axis=0)) < \
            np.var(np.diff(orig[0][5:-5], axis=0))

    def test_synthetic_image_deterministic(self):
        a = synthetic_image(16, 16, seed=3)
        b = synthetic_image(16, 16, seed=3)
        assert np.array_equal(a, b)

    def test_phase_vector_count(self):
        wl = ImageBlur(height=32, width=32)
        assert wl.phases()[0].vectors == 32 * 32


class TestVGG16FC:
    def test_low_reuse_flag(self):
        assert VGG16FC().phases()[0].weight_reuse == 1

    def test_bias_applied(self):
        wl = VGG16FC(outputs=8, inputs=16)
        no_bias = wl.weights @ wl.activations
        assert not np.allclose(wl.reference(), no_bias)


class TestResNet:
    def test_depthwise_structure(self):
        wl = ResNet50Conv3(height=8, width=8, channels=16)
        w = wl._weight_matrix()
        # Each row holds at most 9 taps (quantized taps can be zero).
        taps = np.count_nonzero(w, axis=1)
        assert (taps <= 9).all()
        assert taps.max() == 9

    def test_nonzero_block_fraction_sparse_at_scale(self):
        assert ResNet50Conv3().nonzero_block_fraction == pytest.approx(
            9.0 / 144.0)


class TestDCT:
    def test_dct_matrix_orthonormal(self):
        d = dct_matrix(8)
        assert np.allclose(d @ d.T, np.eye(8), atol=1e-12)

    def test_dct_idct_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.standard_normal((8, 8))
        assert np.allclose(idct2(dct2(block)), block, atol=1e-12)

    def test_dc_coefficient_is_mean(self):
        block = np.full((8, 8), 3.0)
        coeffs = dct2(block)
        assert coeffs[0, 0] == pytest.approx(24.0)  # 8 * mean
        assert np.allclose(coeffs.ravel()[1:], 0.0, atol=1e-12)

    def test_block_split_roundtrip(self):
        rng = np.random.default_rng(1)
        plane = rng.standard_normal((32, 24))
        blocks = blocks_from_plane(plane)
        assert blocks.shape == (12, 8, 8)
        assert np.allclose(plane_from_blocks(blocks, 32, 24), plane)

    def test_block_split_requires_divisible(self):
        with pytest.raises(ValueError):
            blocks_from_plane(np.ones((10, 16)))


class TestJPEGPipeline:
    def test_zigzag_is_a_permutation(self):
        zz = zigzag_order(8)
        assert sorted(zz) == list(range(64))
        assert zz[0] == 0 and zz[1] == 1  # starts right then down-left

    def test_rle_roundtrip(self):
        ac = np.zeros(63)
        ac[[3, 10, 40]] = [5, -2, 7]
        assert np.allclose(run_length_decode(run_length_encode(ac)), ac)

    def test_rle_long_zero_runs(self):
        ac = np.zeros(63)
        ac[40] = 9  # needs two ZRL markers
        pairs = run_length_encode(ac)
        assert (15, 0) in pairs
        assert np.allclose(run_length_decode(pairs), ac)

    def test_magnitude_category(self):
        assert magnitude_category(0) == 0
        assert magnitude_category(1) == 1
        assert magnitude_category(-3) == 2
        assert magnitude_category(255) == 8

    def test_ycbcr_white_maps_to_luma_255(self):
        white = np.full((1, 1, 3), 255.0)
        out = rgb_to_ycbcr(white)
        assert out[0, 0, 0] == pytest.approx(255.0)
        assert out[0, 0, 1] == pytest.approx(128.0)

    def test_compression_achieves_ratio(self):
        wl = JPEGWorkload(height=64, width=64)
        assert wl.compression_ratio() > 3.0

    def test_decode_bounded_error(self):
        wl = JPEGWorkload(height=64, width=64)
        planes = wl.compress()
        rec = wl.compressor.decode_plane(planes["y"])
        orig = rgb_to_ycbcr(wl.image)[..., 0]
        rmse = float(np.sqrt(np.mean((rec - orig) ** 2)))
        assert rmse < 20.0

    def test_quality_scale_trades_size_for_error(self):
        coarse = JPEGWorkload(height=64, width=64)
        coarse.compressor.quality_scale = 4.0
        fine = JPEGWorkload(height=64, width=64)
        fine.compressor.quality_scale = 0.5
        assert coarse.compression_ratio() > fine.compression_ratio()

    def test_rejects_unaligned_dimensions(self):
        with pytest.raises(ValueError):
            JPEGWorkload(height=30, width=48)

    def test_photonic_dct_matches_reference(self):
        wl = JPEGWorkload(height=32, width=32)
        assert np.allclose(wl.photonic(), wl.reference(), atol=1e-8)


class TestRotation3D:
    def test_rotation_matrix_orthogonal(self):
        r = rotation_matrix(0.3, 0.5, 0.7)
        assert np.allclose(r @ r.T, np.eye(4), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_rotation_preserves_vertex_norms(self):
        assert Rotation3D().rotations_preserve_length()

    def test_homogeneous_coordinate_untouched(self):
        wl = Rotation3D(vertices=34)
        assert np.allclose(wl.reference()[3], 1.0)

    def test_wireframe_on_unit_sphere(self):
        v = wireframe_vertices(306)
        norms = np.linalg.norm(v[:3], axis=0)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_no_partial_sums(self):
        plan_phase = Rotation3D().phases()[0]
        assert plan_phase.cols == 4  # fits a 4-input SVD MZIM


class TestWorkloadFactories:
    def test_paper_workloads_all_named(self):
        names = {wl.name for wl in paper_workloads()}
        assert names == {"image_blur", "vgg16_fc", "resnet50_conv3",
                         "jpeg", "rotation3d"}

    def test_address_streams_nonempty(self):
        for wl in small_workloads():
            streams = list(wl.address_streams())
            assert streams
            for _phase, stream in streams:
                assert any(True for _ in stream)
