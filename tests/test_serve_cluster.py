"""Tests for the replica-sharded serving tier and the serve fast path.

Covers the cluster's execution-invariance contract (sequential oracle
== process pool, byte for byte, per tenant and in aggregate; a shard
run standalone matches the same shard inside a cluster), the
vectorized serve hot loop against its per-cycle oracle, the bulk
skip machinery's legality guards, token-bucket admission properties
(hypothesis), and bounded-drain / zero-rate lifecycle edges.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.obs import (
    merge_event_logs,
    merge_snapshot_series,
    validate_events,
)
from repro.obs.events import MonotoneClock
from repro.serve import (
    DaemonState,
    ReplicaSet,
    ServeConfig,
    ServeDaemon,
    TokenBucket,
    shard_configs,
    shard_tenants,
)
from repro.serve.cluster import ClusterTelemetryStore, _run_shard


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True)


def _artifacts(daemon: ServeDaemon, report: dict) -> str:
    return _canonical({
        "report": report,
        "events": list(daemon.obs.events.events),
        "snapshots": list(daemon.obs.sampler.series),
    })


# ---------------------------------------------------------------------------
# vectorized serve hot loop vs the per-cycle oracle


class TestVectorizedLoop:
    def _pair(self, **kwargs):
        outs = []
        for vectorized in (False, True):
            daemon = ServeDaemon(ServeConfig(**kwargs),
                                 vectorized=vectorized)
            outs.append(_artifacts(daemon, daemon.run()))
        return outs

    def test_poisson_byte_identical(self):
        oracle, fast = self._pair(rate=0.08, duration=768, seed=0)
        assert oracle == fast

    def test_bursty_byte_identical(self):
        oracle, fast = self._pair(rate=0.08, arrival="bursty",
                                  duration=768, seed=7)
        assert oracle == fast

    @pytest.mark.parametrize("fault", ["phase_drift", "dead_link"])
    def test_fault_session_byte_identical(self, fault):
        oracle, fast = self._pair(rate=0.05, duration=640, seed=3,
                                  fault=fault)
        assert oracle == fast

    def test_zero_rate_byte_identical(self):
        oracle, fast = self._pair(rate=0.0, duration=512, seed=1)
        assert oracle == fast

    def test_default_slot_is_vectorized(self):
        assert ServeDaemon(ServeConfig(duration=16)).vectorized
        assert not ServeDaemon(ServeConfig(duration=16),
                               vectorized=False).vectorized


class TestSkipMachinery:
    def test_scheduler_skip_refuses_unstarted_computation(self):
        daemon = ServeDaemon(ServeConfig(rate=0.2, duration=256,
                                         seed=0), vectorized=False)
        daemon.start()
        sched = daemon.scheduler
        while not sched.active:
            daemon.step()
        comp = sched.active[0]
        comp.started = False
        with pytest.raises(RuntimeError):
            sched.skip_quiet_cycles(1)
        comp.started = True
        with pytest.raises(RuntimeError):
            sched.skip_quiet_cycles(comp.remaining_cycles)

    def test_scheduler_skip_refuses_partitioner_window(self):
        daemon = ServeDaemon(ServeConfig(rate=0.2, duration=256,
                                         seed=0), vectorized=False)
        daemon.start()
        sched = daemon.scheduler
        while not sched.control.compute_buffer:
            daemon.step()
        tau = sched.cfg.tau_cycles
        phase = sched.cycle % tau
        with pytest.raises(RuntimeError):
            sched.skip_quiet_cycles(tau - phase + 1)

    def test_net_skip_refuses_waiting_sources_and_completions(self):
        daemon = ServeDaemon(ServeConfig(rate=0.2, duration=256,
                                         seed=0, mvm_fraction=0.0),
                             vectorized=False)
        daemon.start()
        net = daemon.net
        while not net._circuits:
            daemon.step()
        countdown = net.quiet_countdown()
        if countdown:
            with pytest.raises(RuntimeError):
                net.skip_quiet_cycles(countdown)

    def test_utilization_record_cycles_equivalence(self):
        from repro.noc.stats import UtilizationTracker

        bulk = UtilizationTracker(num_links=4, interval_cycles=10)
        loop = UtilizationTracker(num_links=4, interval_cycles=10)
        for busy, n in [(0, 7), (2, 13), (4, 10), (1, 3)]:
            bulk.record_cycles(busy, n)
            for _ in range(n):
                loop.record_cycle(busy)
        bulk.finish()
        loop.finish()
        assert bulk.timeline == loop.timeline

    def test_monotone_clock_first_reaching(self):
        clock = MonotoneClock()
        clock.advance(100)
        clock.advance(10)   # local restart -> epoch 100
        assert clock.first_reaching(90) == 0
        assert clock.first_reaching(150) == 50
        assert clock.advance(50) == 150


# ---------------------------------------------------------------------------
# token-bucket admission properties (hypothesis)

#: Dyadic rates are exact in binary floating point, so chunked and
#: stepwise refills accumulate identically (no rounding drift).
_DYADIC_RATES = st.sampled_from(
    [0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0])


class TestTokenBucketProperties:
    @settings(max_examples=60, deadline=None)
    @given(rate=st.floats(0.001, 2.0, allow_nan=False),
           burst=st.floats(1.0, 64.0, allow_nan=False),
           gaps=st.lists(st.integers(0, 5000), min_size=1,
                         max_size=30))
    def test_level_never_exceeds_burst(self, rate, burst, gaps):
        bucket = TokenBucket(rate, burst)
        cycle = 0
        for gap in gaps:
            cycle += gap
            bucket.try_take(cycle)
            assert bucket.level(cycle) <= burst

    @settings(max_examples=60, deadline=None)
    @given(rate=st.floats(0.001, 2.0, allow_nan=False),
           burst=st.floats(1.0, 64.0, allow_nan=False),
           gaps=st.lists(st.integers(0, 100), min_size=2,
                         max_size=30))
    def test_level_monotone_between_takes(self, rate, burst, gaps):
        bucket = TokenBucket(rate, burst)
        cycle = 0
        previous = bucket.level(cycle)
        for gap in gaps:
            cycle += gap
            level = bucket.level(cycle)
            assert level >= previous - 1e-12
            previous = level

    @settings(max_examples=60, deadline=None)
    @given(rate=_DYADIC_RATES,
           burst=st.sampled_from([1.0, 2.0, 4.0, 8.0, 24.0]),
           offers=st.lists(st.integers(1, 40), min_size=1,
                           max_size=25))
    def test_decisions_invariant_to_refill_granularity(
            self, rate, burst, offers):
        # Same offer cycles, two observation patterns: one bucket is
        # only touched at offers (one big refill), the other is
        # level()-polled every cycle in between (many small refills).
        lazy = TokenBucket(rate, burst)
        eager = TokenBucket(rate, burst)
        cycle = 0
        for gap in offers:
            cycle += gap
            for poll in range(cycle - gap + 1, cycle):
                eager.level(poll)
            assert lazy.try_take(cycle) == eager.try_take(cycle)
            assert lazy.tokens == eager.tokens


# ---------------------------------------------------------------------------
# bounded drain and zero-rate lifecycle


class TestDrainEdges:
    def test_drain_limit_reports_undrained_but_conserved(self):
        config = ServeConfig(rate=0.3, duration=128, seed=0,
                             drain_limit=2)
        daemon = ServeDaemon(config, vectorized=False)
        report = daemon.run()
        assert not report["drained"]
        assert report["conserved"]
        ledger = report["ledger"]
        assert ledger["in_flight"] == \
            ledger["admitted"] - ledger["completed"]
        assert ledger["in_flight"] > 0
        assert daemon.state is DaemonState.STOPPED

    def test_drain_limit_vectorized_matches_oracle(self):
        config = ServeConfig(rate=0.3, duration=128, seed=0,
                             drain_limit=2)
        outs = []
        for vectorized in (False, True):
            daemon = ServeDaemon(config, vectorized=vectorized)
            outs.append(_artifacts(daemon, daemon.run()))
        assert outs[0] == outs[1]

    def test_zero_rate_walks_full_lifecycle_with_empty_ledger(self):
        daemon = ServeDaemon(ServeConfig(rate=0.0, duration=256,
                                         seed=0))
        report = daemon.run()
        assert report["ledger"] == {
            "offered": 0, "admitted": 0, "rejected": 0,
            "completed": 0, "in_flight": 0}
        assert report["drained"] and report["conserved"]
        states = [e["dst"] for e in daemon.obs.events.events
                  if e["type"] == "serve_transition"]
        assert states == ["serving", "draining", "stopped"]
        assert daemon.state is DaemonState.STOPPED


# ---------------------------------------------------------------------------
# tenant sharding


class TestSharding:
    def test_round_robin_partition(self):
        names = tuple(f"tenant{i}" for i in range(10))
        shards = shard_tenants(names, 4)
        assert len(shards) == 4
        assert sorted(n for shard in shards for n in shard) \
            == sorted(names)
        assert shards[0] == ("tenant0", "tenant4", "tenant8")
        assert shards[3] == ("tenant3", "tenant7")

    def test_shard_bounds(self):
        names = ("a", "b")
        with pytest.raises(ValueError):
            shard_tenants(names, 0)
        with pytest.raises(ValueError):
            shard_tenants(names, 3)
        assert shard_tenants(names, 1) == [names]

    def test_shard_configs_carry_roster(self):
        config = ServeConfig(tenants=5, duration=64)
        shards = shard_configs(config, 2)
        assert shards[0].tenant_names() == \
            ("tenant0", "tenant2", "tenant4")
        assert shards[0].tenants == 3
        assert shards[1].tenants == 2

    def test_tenant_list_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(duration=64, tenant_list=())
        with pytest.raises(ValueError):
            ServeConfig(duration=64, tenant_list=("a", "a"))
        config = ServeConfig(duration=64, tenant_list=("x", "y"))
        assert config.tenants == 2
        assert config.tenant_names() == ("x", "y")


# ---------------------------------------------------------------------------
# the replica set: execution invariance, merged telemetry, scaling


_CLUSTER_CFG = dict(rate=0.08, duration=768, seed=0, tenants=6)


class TestReplicaSet:
    def test_pool_matches_sequential_oracle(self):
        config = ServeConfig(**_CLUSTER_CFG)
        seq = ReplicaSet(config, 3)
        seq_report = seq.run(jobs=1)
        pool = ReplicaSet(config, 3)
        pool_report = pool.run(jobs=2)
        assert _canonical(seq_report) == _canonical(pool_report)
        assert seq.merged_events == pool.merged_events
        assert seq.merged_snapshots == pool.merged_snapshots
        assert seq.per_tenant_streams() == pool.per_tenant_streams()

    def test_shard_matches_standalone_daemon(self):
        config = ServeConfig(**_CLUSTER_CFG)
        replica_set = ReplicaSet(config, 3)
        replica_set.run(jobs=1)
        shard = replica_set.shards[1]
        assert replica_set.results[1] == _run_shard(shard, True)

    def test_per_tenant_streams_match_unsharded_session(self):
        # The Design-B contract: sharding changes *which daemon* serves
        # a tenant, never the tenant's offered arrival stream.
        config = ServeConfig(**_CLUSTER_CFG)
        replica_set = ReplicaSet(config, 3)
        replica_set.run(jobs=1)
        single = ServeDaemon(config)
        single.run()
        sharded = {
            t: [e["type"] for e in events if e["type"] == "admit"]
            for t, events in replica_set.per_tenant_streams().items()}
        alone = {t: [] for t in config.tenant_names()}
        for event in single.obs.events.events:
            if event["type"] == "admit":
                alone[event["tenant"]].append(event["type"])
        assert sharded == alone

    def test_merged_streams_validate(self):
        replica_set = ReplicaSet(ServeConfig(**_CLUSTER_CFG), 3)
        replica_set.run(jobs=1)
        assert validate_events(replica_set.merged_events) == []
        cycles = [s["cycle"] for s in replica_set.merged_snapshots]
        assert cycles == sorted(cycles)
        assert [s["seq"] for s in replica_set.merged_snapshots] \
            == list(range(len(cycles)))

    def test_report_has_no_execution_detail(self):
        replica_set = ReplicaSet(ServeConfig(**_CLUSTER_CFG), 2)
        report = replica_set.run(jobs=1)
        assert "jobs" not in report
        assert report["replicas"] == 2
        assert report["cycles"] == max(
            r["cycles"] for r in report["per_replica"])

    def test_goodput_scales_with_replicas(self):
        config = ServeConfig(rate=0.2, duration=1024, seed=0,
                             tenants=8)
        goodput = {}
        for replicas in (1, 4):
            report = ReplicaSet(config, replicas).run(jobs=1)
            assert report["conserved"] and report["drained"]
            goodput[replicas] = report["goodput_per_kcycle"]
        assert goodput[4] >= 2.0 * goodput[1]

    def test_cluster_store_surface(self):
        replica_set = ReplicaSet(ServeConfig(**_CLUSTER_CFG), 2)
        replica_set.run(jobs=1)
        store = ClusterTelemetryStore(replica_set)
        assert store.events() == replica_set.merged_events
        assert store.events_tail(3) == replica_set.merged_events[-3:]
        assert store.latest_snapshot() \
            == replica_set.merged_snapshots[-1]
        assert "repro_telemetry_replicas 2" in store.exposition()
        health = store.health()
        assert health["status"] == "ok"
        assert health["replicas"] == 2
        assert health["in_flight"] == 0

    def test_store_requires_completed_run(self):
        replica_set = ReplicaSet(ServeConfig(**_CLUSTER_CFG), 2)
        with pytest.raises(RuntimeError):
            ClusterTelemetryStore(replica_set)
        with pytest.raises(RuntimeError):
            replica_set.report()


class TestClusterCLI:
    _ARGS = ["serve", "--duration", "512", "--rate", "0.08",
             "--tenants", "4", "--replicas", "2"]

    def test_cluster_check_sequential(self, capsys):
        assert main(self._ARGS + ["--check"]) == 0
        out = capsys.readouterr().out
        assert "serve cluster check: ok" in out

    def test_cluster_check_pool_vs_oracle(self, capsys):
        assert main(self._ARGS + ["--jobs", "2", "--check"]) == 0
        out = capsys.readouterr().out
        assert "pool == sequential oracle" in out

    def test_cluster_report_invariant_to_jobs(self, tmp_path, capsys):
        seq = tmp_path / "seq.json"
        pool = tmp_path / "pool.json"
        assert main(self._ARGS + ["--out", str(seq)]) == 0
        assert main(self._ARGS + ["--jobs", "2", "--out",
                                  str(pool)]) == 0
        assert seq.read_bytes() == pool.read_bytes()

    def test_cluster_telemetry_dir(self, tmp_path, capsys):
        root = tmp_path / "telemetry"
        assert main(self._ARGS + ["--telemetry-dir", str(root)]) == 0
        events = [json.loads(line) for line in
                  (root / "events.jsonl").read_text().splitlines()]
        assert validate_events(events) == []
        assert (root / "snapshots.jsonl").exists()
        assert (root / "metrics.prom").exists()

    def test_oracle_loop_flag(self, capsys):
        assert main(["serve", "--duration", "256", "--loop", "oracle",
                     "--check"]) == 0
        assert "serve check: ok" in capsys.readouterr().out
