"""Tests for the docs-consistency checker (tools/check_doc_commands.py).

The checker is what CI runs to keep README/DESIGN/EXPERIMENTS command
examples in lockstep with the actual CLI; these tests pin its extraction
rules and prove it both passes the repo's real docs and catches a stale
command.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_doc_commands as checker  # noqa: E402


class TestExtraction:
    def test_simple_fenced_command(self):
        text = "prose\n```bash\npython -m repro info\n```\n"
        assert checker.extract_commands(text) == [["info"]]

    def test_backslash_continuation_joined(self):
        text = ("```bash\n"
                "python -m repro sweep --workloads image_blur \\\n"
                "    --configs mesh flumen_a --small\n"
                "```\n")
        assert checker.extract_commands(text) == [
            ["sweep", "--workloads", "image_blur",
             "--configs", "mesh", "flumen_a", "--small"]]

    def test_comments_and_prompts_stripped(self):
        text = ("```bash\n"
                "# what CI runs:\n"
                "$ python -m repro trace --small --check  # fast\n"
                "```\n")
        assert checker.extract_commands(text) == [
            ["trace", "--small", "--check"]]

    def test_non_repro_lines_ignored(self):
        text = ("```bash\npip install -e .\npytest tests/\n```\n"
                "```python\nimport numpy as np\n```\n")
        assert checker.extract_commands(text) == []

    def test_commands_outside_fences_ignored(self):
        assert checker.extract_commands(
            "run `python -m repro info` to start") == []


class TestChecker:
    def test_valid_command_passes(self):
        assert checker.check_command(["info"]) is None

    def test_unknown_subcommand_fails(self):
        assert checker.check_command(["definitely_not_a_command"]) \
            is not None

    def test_repo_docs_all_pass(self, capsys):
        # The CI gate itself: every documented command must parse today.
        assert checker.main([]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_stale_doc_detected(self, tmp_path, capsys):
        doc = tmp_path / "STALE.md"
        doc.write_text("```bash\npython -m repro frobnicate --fast\n```\n")
        assert checker.main([str(doc)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_duplicates_checked_once(self, tmp_path, capsys):
        doc = tmp_path / "DUP.md"
        doc.write_text("```bash\npython -m repro info\n"
                       "python -m repro info\n```\n")
        assert checker.main([str(doc)]) == 0
        assert "1 documented commands checked" in capsys.readouterr().out
