"""Tests for quantization and detector-noise models (8-bit equivalence)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.noise import (
    AnalogMVM,
    DetectorNoiseModel,
    effective_bits,
    power_for_bits,
    quantization_snr_db,
    quantize,
    snr_to_enob,
)
from repro.photonics.svd import program_svd


class TestQuantize:
    def test_preserves_zero(self):
        assert quantize(np.zeros(4), 8).tolist() == [0, 0, 0, 0]

    def test_exact_at_full_scale(self):
        x = np.array([-1.0, 1.0])
        assert np.allclose(quantize(x, 8, full_scale=1.0), x)

    def test_error_bounded_by_half_lsb(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, 1000)
        q = quantize(x, 8, full_scale=1.0)
        lsb = 1.0 / (2 ** 7 - 1)
        assert np.max(np.abs(q - x)) <= lsb / 2 + 1e-12

    def test_clips_beyond_full_scale(self):
        q = quantize(np.array([5.0]), 8, full_scale=1.0)
        assert q[0] == pytest.approx(1.0)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), 0)

    def test_more_bits_reduce_error(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, 500)
        e4 = np.abs(quantize(x, 4, 1.0) - x).mean()
        e8 = np.abs(quantize(x, 8, 1.0) - x).mean()
        assert e8 < e4

    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(min_value=2, max_value=12),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_property_idempotent(self, bits, seed):
        x = np.random.default_rng(seed).uniform(-1, 1, 32)
        q = quantize(x, bits, 1.0)
        assert np.allclose(quantize(q, bits, 1.0), q)


class TestSNRConversions:
    def test_8bit_quantizer_snr(self):
        assert quantization_snr_db(8) == pytest.approx(49.92)

    def test_enob_roundtrip(self):
        assert snr_to_enob(quantization_snr_db(8)) == pytest.approx(8.0)


class TestDetectorNoise:
    def test_snr_increases_with_power_until_rin_limit(self):
        m = DetectorNoiseModel()
        snrs = [m.snr_db(p) for p in (1e-6, 1e-5, 1e-4, 1e-3)]
        assert snrs == sorted(snrs)

    def test_rin_limits_snr_ceiling(self):
        m = DetectorNoiseModel()
        # SNR ceiling = -(RIN + 10log10(B)) = 140 - 97 = 43 dB at 5 GHz.
        assert m.snr_db(1.0) < 44.0

    def test_noise_positive_even_in_the_dark(self):
        m = DetectorNoiseModel()
        assert m.noise_current_std_a(0.0) > 0.0

    def test_lower_bandwidth_means_less_noise(self):
        wide = DetectorNoiseModel(bandwidth_hz=5e9)
        narrow = DetectorNoiseModel(bandwidth_hz=1e9)
        assert narrow.noise_current_std_a(1e-4) < \
            wide.noise_current_std_a(1e-4)


class TestEffectiveBits:
    def test_enob_monotone_in_power(self):
        bits = [effective_bits(p) for p in (1e-6, 1e-5, 1e-4)]
        assert bits == sorted(bits)

    def test_8bit_reachable_at_1ghz(self):
        # The paper's 8-bit equivalent precision needs reduced analog
        # bandwidth (or averaging); at 1 GHz it closes.
        p = power_for_bits(8.0, bandwidth_hz=1e9)
        assert math.isfinite(p)
        assert effective_bits(p, bandwidth_hz=1e9) >= 8.0

    def test_8bit_unreachable_at_5ghz_default_rin(self):
        assert power_for_bits(8.0, bandwidth_hz=5e9) == math.inf

    def test_power_for_bits_is_minimal(self):
        p = power_for_bits(6.0)
        assert effective_bits(p) >= 6.0
        assert effective_bits(p * 0.5) < 6.0


class TestAnalogMVM:
    def make(self, n=8, seed=0, **kwargs):
        m = np.random.default_rng(seed).standard_normal((n, n))
        prog = program_svd(m)
        return m, AnalogMVM(prog, **kwargs)

    def test_tracks_float_reference(self):
        m, mvm = self.make()
        x = np.random.default_rng(1).standard_normal((8, 4))
        ref = m @ x
        err = np.abs(mvm(x) - ref).max() / np.abs(ref).max()
        assert err < 0.10

    def test_reference_matches_numpy(self):
        m, mvm = self.make(seed=2)
        x = np.random.default_rng(3).standard_normal(8)
        assert np.allclose(mvm.reference(x), m @ x, atol=1e-8)

    def test_fewer_bits_more_error(self):
        m, mvm8 = self.make(seed=4, bits=8)
        _, mvm3 = self.make(seed=4, bits=3)
        x = np.random.default_rng(5).standard_normal((8, 16))
        ref = m @ x
        e8 = np.abs(mvm8(x) - ref).mean()
        e3 = np.abs(mvm3(x) - ref).mean()
        assert e3 > e8

    def test_deterministic_with_seeded_rng(self):
        m, _ = self.make(seed=6)
        prog = program_svd(m)
        x = np.random.default_rng(7).standard_normal(8)
        a = AnalogMVM(prog, rng=np.random.default_rng(11))(x)
        b = AnalogMVM(prog, rng=np.random.default_rng(11))(x)
        assert np.allclose(a, b)
