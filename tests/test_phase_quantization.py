"""Tests for DAC phase-quantization modeling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.clements import decompose, random_unitary
from repro.photonics.noise import (
    matrix_fidelity_vs_bits,
    quantize_mesh_phases,
    quantize_phase,
    quantize_svd_phases,
)
from repro.photonics.svd import program_svd


class TestQuantizePhase:
    def test_endpoints_exact(self):
        assert quantize_phase(0.0, 8, math.pi) == 0.0
        assert quantize_phase(math.pi, 8, math.pi) == pytest.approx(math.pi)

    def test_error_bounded_by_half_step(self):
        step = math.pi / (2 ** 6 - 1)
        for v in np.linspace(0, math.pi, 50):
            q = quantize_phase(v, 6, math.pi)
            assert abs(q - v) <= step / 2 + 1e-12

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            quantize_phase(1.0, 0, math.pi)


class TestMeshQuantization:
    def test_quantized_mesh_still_unitary(self):
        mesh = decompose(random_unitary(6, np.random.default_rng(0)))
        q = quantize_mesh_phases(mesh, 6)
        m = q.matrix()
        assert np.allclose(m.conj().T @ m, np.eye(6), atol=1e-9)

    def test_high_resolution_is_nearly_exact(self):
        u = random_unitary(5, np.random.default_rng(1))
        mesh = decompose(u)
        q = quantize_mesh_phases(mesh, 14)
        assert np.max(np.abs(q.matrix() - u)) < 1e-2

    def test_structure_preserved(self):
        mesh = decompose(random_unitary(6, np.random.default_rng(2)))
        q = quantize_mesh_phases(mesh, 8)
        assert q.num_mzis == mesh.num_mzis
        assert [m.top_mode for m in q.mzis] == \
            [m.top_mode for m in mesh.mzis]


class TestSVDQuantization:
    def test_sigma_stays_in_range(self):
        prog = program_svd(np.random.default_rng(3).standard_normal((6, 6)))
        q = quantize_svd_phases(prog, 6)
        assert (q.sigma >= 0.0).all()
        assert (q.sigma <= 1.0).all()

    def test_scale_preserved(self):
        prog = program_svd(np.random.default_rng(4).standard_normal((4, 4)))
        assert quantize_svd_phases(prog, 8).scale == prog.scale


class TestFidelity:
    def test_error_decreases_with_bits(self):
        m = np.random.default_rng(5).standard_normal((8, 8))
        fid = matrix_fidelity_vs_bits(m, [4, 8, 12])
        assert fid[4] > fid[8] > fid[12]

    def test_8_bits_gives_sub_percent_error(self):
        # Consistent with Table 1's "8-bit equivalent precision".
        m = np.random.default_rng(6).standard_normal((8, 8))
        assert matrix_fidelity_vs_bits(m, [8])[8] < 0.02

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_property_quantized_product_tracks_exact(self, seed):
        m = np.random.default_rng(seed).standard_normal((4, 4))
        prog = quantize_svd_phases(program_svd(m), 10)
        a = np.random.default_rng(seed + 1).standard_normal(4)
        approx = prog.scale * prog.propagate(a.astype(complex)).real
        scale = np.max(np.abs(m @ a)) or 1.0
        assert np.max(np.abs(approx - m @ a)) / scale < 0.05
