"""Tests for communication mapping (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.routing import (
    RoutingError,
    complete_partial_permutation,
    is_crossbar_program,
    multicast_unitary,
    permutation_matrix,
    program_broadcast,
    program_gather,
    program_multicast,
    program_point_to_point,
    received_power,
)


class TestPermutationMatrix:
    def test_identity(self):
        assert np.allclose(permutation_matrix(range(4)), np.eye(4))

    def test_swap(self):
        p = permutation_matrix([1, 0])
        assert p[1, 0] == 1.0 and p[0, 1] == 1.0

    def test_rejects_non_permutation(self):
        with pytest.raises(RoutingError):
            permutation_matrix([0, 0, 1])

    def test_column_encodes_source(self):
        p = permutation_matrix([2, 0, 1])
        # input 0 -> output 2
        assert p[2, 0] == 1.0


class TestCompletePartialPermutation:
    def test_empty_becomes_identity(self):
        assert complete_partial_permutation({}, 4) == [0, 1, 2, 3]

    def test_requested_pairs_kept(self):
        t = complete_partial_permutation({0: 3, 2: 1}, 4)
        assert t[0] == 3 and t[2] == 1

    def test_result_is_permutation(self):
        t = complete_partial_permutation({1: 5, 4: 0, 7: 3}, 8)
        assert sorted(t) == list(range(8))

    def test_idle_endpoints_prefer_loopback(self):
        t = complete_partial_permutation({0: 1, 1: 0}, 6)
        assert t[2:] == [2, 3, 4, 5]

    def test_conflicting_destination_rejected(self):
        with pytest.raises(RoutingError):
            complete_partial_permutation({0: 1, 2: 1}, 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(RoutingError):
            complete_partial_permutation({0: 9}, 4)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_property_always_a_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, n + 1))
        srcs = list(rng.permutation(n)[:k])
        dsts = list(rng.permutation(n)[:k])
        pairs = dict(zip(srcs, dsts))
        t = complete_partial_permutation(pairs, n)
        assert sorted(t) == list(range(n))
        for s, d in pairs.items():
            assert t[s] == d


class TestPointToPoint:
    def test_program_is_pure_crossbar(self):
        mesh = program_point_to_point({0: 7, 7: 0, 3: 4, 4: 3}, 8)
        assert is_crossbar_program(mesh)

    def test_power_delivered_to_requested_destination(self):
        mesh = program_point_to_point({2: 5}, 8)
        p = received_power(mesh, 2)
        assert p[5] == pytest.approx(1.0)
        assert p.sum() == pytest.approx(1.0)

    def test_non_blocking_all_pairs_simultaneously(self):
        # Crossbar behaviour: a full permutation is conflict-free.
        targets = [3, 0, 1, 2, 7, 6, 5, 4]
        mesh = program_point_to_point(dict(enumerate(targets)), 8)
        for src, dst in enumerate(targets):
            p = received_power(mesh, src)
            assert p[dst] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_random_permutations_route_exactly(self, seed):
        n = 8
        targets = list(np.random.default_rng(seed).permutation(n))
        mesh = program_point_to_point(dict(enumerate(targets)), n)
        assert is_crossbar_program(mesh)
        for src, dst in enumerate(targets):
            assert received_power(mesh, src)[dst] == pytest.approx(1.0)


class TestMulticast:
    def test_broadcast_equal_power(self):
        # Figure 6(b): E-field amplitudes 1/sqrt(N) -> power 1/N each.
        mesh = program_broadcast(0, 4)
        p = received_power(mesh, 0)
        assert np.allclose(p, 0.25)

    def test_multicast_subset(self):
        mesh = program_multicast(1, [0, 2, 5], 8)
        p = received_power(mesh, 1)
        for d in (0, 2, 5):
            assert p[d] == pytest.approx(1 / 3)
        assert p.sum() == pytest.approx(1.0)

    def test_non_participants_leak_no_power_to_destinations(self):
        mesh = program_multicast(0, [1, 2], 6)
        for other in range(3, 6):
            p = received_power(mesh, other)
            assert p[1] == pytest.approx(0.0, abs=1e-12)
            assert p[2] == pytest.approx(0.0, abs=1e-12)

    def test_unitary_completion_is_unitary(self):
        u = multicast_unitary(3, [0, 1, 6, 7], 8)
        assert np.allclose(u.conj().T @ u, np.eye(8), atol=1e-10)

    def test_rejects_empty_destinations(self):
        with pytest.raises(RoutingError):
            program_multicast(0, [], 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(RoutingError):
            multicast_unitary(0, [4], 4)
        with pytest.raises(RoutingError):
            multicast_unitary(9, [0], 4)

    def test_single_destination_degenerates_to_point_to_point(self):
        mesh = program_multicast(0, [3], 4)
        assert received_power(mesh, 0)[3] == pytest.approx(1.0)

    def test_paper_figure_6b_amplitudes(self):
        # Input [1 0 0 0]^T -> output powers [0.25 0.25 0.25 0.25].
        u = multicast_unitary(0, range(4), 4)
        out = u @ np.array([1.0, 0, 0, 0])
        assert np.allclose(np.abs(out) ** 2, 0.25)


class TestGather:
    def test_gather_combines_coherently(self):
        n = 4
        mesh = program_gather(2, range(n), n)
        fields = np.full(n, 1.0 / np.sqrt(n), dtype=complex)
        out = np.abs(mesh.propagate(fields)) ** 2
        assert out[2] == pytest.approx(1.0)

    def test_gather_is_adjoint_of_multicast(self):
        u = multicast_unitary(1, range(4), 4)
        mesh = program_gather(1, range(4), 4)
        assert np.allclose(mesh.matrix(), u.conj().T, atol=1e-10)
