"""Full-stack integration: Algorithm 1 drives a *numerical* offload.

Ties every layer together: a node submits a matmul job; the scheduler
grants a fabric partition while background traffic keeps flowing in the
other half; the partition's SVD circuits are physically programmed from
matrix memory; the optical result matches NumPy; the partition is torn
down and communication resumes over the freed ports.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.accelerator import BlockMatmul
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.scheduler import FlumenScheduler
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.packet import Packet
from repro.photonics.fabric import FlumenFabric, PartitionKind


@pytest.fixture
def stack():
    system = SystemConfig()
    net = FlumenNetwork(16)
    control = MZIMControlUnit(net, system)
    scheduler = FlumenScheduler(control, system)
    fabric = FlumenFabric(system.mzim_ports)
    return system, net, control, scheduler, fabric


def test_end_to_end_offload(stack):
    system, net, control, scheduler, fabric = stack
    rng = np.random.default_rng(0)

    # 1. The node precomputes phases into matrix memory (Section 3.3.3).
    matrix = rng.standard_normal((4, 4))
    vectors = rng.standard_normal((4, 6))
    matmul = BlockMatmul(matrix, mzim_size=4)
    control.matrix_memory.store("job", matmul)

    # 2. Submit the compute request over the arbitration waveguide.
    request = ComputeRequest(node=0, plan=matmul.plan(6),
                             matrix_key="job", submit_cycle=0,
                             ports_needed=4)
    assert control.advise_offload()
    control.submit(request, 0)

    for cycle in range(5):
        scheduler.tick()
        net.step()
    assert scheduler.stats.granted == 1
    comp = scheduler.active[0]

    # 4. Physically program the granted fabric partition and compute.
    partition = fabric.split(comp.lo_port, comp.hi_port)
    program = fabric.program_compute(partition, matrix)
    optical = program.apply(vectors.astype(complex)).real
    assert np.allclose(optical, matrix @ vectors, atol=1e-9)
    assert fabric.compute_configs == 1
    assert fabric.reconfiguration_time_s == pytest.approx(
        system.compute.mzim_switch_delay_s)

    # 5. Communication still flows in the other half while computing.
    blocked = control.port_range_endpoints(comp.lo_port, comp.hi_port)
    free = sorted(set(range(16)) - blocked)
    net.offer_packet(Packet(src=free[0], dst=free[-1], size_flits=4,
                            create_cycle=net.cycle))
    for _ in range(30):
        scheduler.tick()
        net.step()
    assert net.latency.received >= 1

    # 6. Result return + teardown: the gather configuration and release.
    fabric.configure_gather(partition, comp.lo_port)
    fabric.release(partition)
    assert all(p.kind is PartitionKind.COMMUNICATION
               for p in fabric.partitions)
    scheduler.drain()
    assert scheduler.stats.completed == 1
    assert not net.blocked_ports

    # 7. The freed ports carry traffic again.
    src, dst = sorted(blocked)[0], sorted(blocked)[-1]
    net.offer_packet(Packet(src=src, dst=dst, size_flits=2,
                            create_cycle=net.cycle))
    for _ in range(50):
        net.step()
        if net.quiescent():
            break
    assert net.quiescent()


def test_offload_declined_under_load_then_granted(stack):
    system, net, control, scheduler, fabric = stack
    rng = np.random.default_rng(2)
    matmul = BlockMatmul(rng.standard_normal((4, 4)), mzim_size=4)
    control.matrix_memory.store("job", matmul)

    # Saturate the request buffers -> Partitioner defers (beta > eta).
    net.block_ports(set(range(16)))
    for src in range(16):
        for _ in range(12):
            net.offer_packet(Packet(src=src, dst=(src + 1) % 16,
                                    size_flits=4, create_cycle=0))
    control.submit(ComputeRequest(node=0, plan=matmul.plan(4),
                                  matrix_key="job", submit_cycle=0,
                                  ports_needed=4), 0)
    for _ in range(system.scheduler.tau_cycles + 5):
        scheduler.tick()
        net.step()
    assert scheduler.stats.granted == 0

    # Unblock; the backlog drains; the next tau evaluation grants.
    net.unblock_ports(set(range(16)))
    for _ in range(4000):
        scheduler.tick()
        net.step()
        if scheduler.stats.granted:
            break
    assert scheduler.stats.granted == 1
    scheduler.drain()
    assert scheduler.stats.completed == 1
    assert net.latency.received == net.injected_packets
