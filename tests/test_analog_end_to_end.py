"""End-to-end analog-precision checks: the '8-bit equivalent' claim.

Runs whole workload kernels through the quantized + noisy analog chain
and verifies task-level outputs survive — the operational meaning of
Table 1's "equivalent precision: 8 bits".
"""

import numpy as np
import pytest

from repro.core.accelerator import BlockMatmul
from repro.photonics.noise import AnalogMVM
from repro.workloads import VGG16FC, Rotation3D, dct_matrix
from repro.workloads.dct import blocks_from_plane
from repro.workloads.image_blur import synthetic_image
from repro.workloads.jpeg import rgb_to_ycbcr


def analog_hook(seed=0, bits=8):
    rng = np.random.default_rng(seed)

    def hook(program, window):
        return AnalogMVM(program, bits=bits, rng=rng)(window)

    return hook


class TestVGGAnalog:
    def test_top_k_ranking_survives_analog_chain(self):
        wl = VGG16FC(outputs=64, inputs=128)
        matmul = BlockMatmul(wl.weights, 8)
        exact = wl.weights @ wl.activations
        noisy = matmul(wl.activations, mvm=analog_hook(1))
        top_exact = set(np.argsort(exact)[-10:])
        top_noisy = set(np.argsort(noisy)[-10:])
        # An FC layer's large activations dominate quantization noise:
        # most of the top-10 ranking survives.
        assert len(top_exact & top_noisy) >= 6

    def test_relative_error_consistent_with_8_bits(self):
        wl = VGG16FC(outputs=64, inputs=128)
        matmul = BlockMatmul(wl.weights, 8)
        exact = wl.weights @ wl.activations
        noisy = matmul(wl.activations, mvm=analog_hook(2))
        rel = np.abs(noisy - exact).max() / np.abs(exact).max()
        assert rel < 0.25


class TestRotationAnalog:
    def test_rotated_object_keeps_shape(self):
        wl = Rotation3D(vertices=34)
        matmul = BlockMatmul(wl.matrix, 4)
        noisy = matmul(wl.vertices, mvm=analog_hook(3))
        exact = wl.reference()
        # Vertex positions within a few percent of the unit sphere.
        err = np.abs(noisy[:3] - exact[:3]).max()
        assert err < 0.1


class TestDCTAnalog:
    def test_dc_coefficients_track_exact(self):
        plane = rgb_to_ycbcr(synthetic_image(32, 32))[..., 0] - 128.0
        blocks = blocks_from_plane(plane)
        d = dct_matrix(8)
        matmul = BlockMatmul(d, 8)
        num = len(blocks)
        flat = blocks.transpose(0, 2, 1).reshape(num * 8, 8).T
        exact = (d @ flat)
        noisy = matmul(flat, mvm=analog_hook(4))
        # DC rows (row 0 of D) carry the block means — the perceptually
        # dominant coefficients; they must track within a few LSB.
        scale = np.abs(exact[0]).max()
        assert np.abs(noisy[0] - exact[0]).max() / scale < 0.1


class TestBitDepthSweep:
    @pytest.mark.parametrize("bits,bound", [(4, 1.0), (6, 0.4), (8, 0.25)])
    def test_error_shrinks_with_adc_resolution(self, bits, bound):
        wl = VGG16FC(outputs=32, inputs=64)
        matmul = BlockMatmul(wl.weights, 8)
        exact = wl.weights @ wl.activations
        noisy = matmul(wl.activations, mvm=analog_hook(5, bits=bits))
        rel = np.abs(noisy - exact).max() / np.abs(exact).max()
        assert rel < bound
