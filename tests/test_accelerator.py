"""Tests for the compute-offload mapping (Section 3.3, Figure 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import (
    BlockMatmul,
    conv2d_as_matmul,
    conv2d_reference,
    im2col,
    kernels_to_matrix,
    pad_to_blocks,
    pad_vectors,
    plan_offload,
)


def rand(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


class TestPadding:
    def test_pad_to_blocks_shape(self):
        p = pad_to_blocks(np.ones((5, 9)), 4)
        assert p.shape == (8, 12)

    def test_pad_preserves_content(self):
        m = rand((5, 9), 1)
        p = pad_to_blocks(m, 4)
        assert np.allclose(p[:5, :9], m)
        assert np.allclose(p[5:, :], 0.0)
        assert np.allclose(p[:, 9:], 0.0)

    def test_exact_multiple_unchanged(self):
        m = rand((8, 8), 2)
        assert pad_to_blocks(m, 4).shape == (8, 8)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.ones(4), 2)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.ones((2, 2)), 0)

    def test_pad_vectors_1d_becomes_column(self):
        v = pad_vectors(np.ones(5), 4)
        assert v.shape == (8, 1)


class TestPlanOffload:
    def test_paper_equation_2_block_grid(self):
        # (20 x 30) on an 8-input MZIM: i=3, j=4 sub-blocks.
        plan = plan_offload(20, 30, 5, 8, 8)
        assert (plan.block_rows, plan.block_cols) == (3, 4)
        assert plan.matrix_switches == 12

    def test_partial_sums_need_j_minus_1_adds(self):
        # b_0 = sum_k M_0k a_k: (j-1) adds per output element per vector.
        plan = plan_offload(8, 32, 2, 8, 8)
        assert plan.block_cols == 4
        assert plan.partial_sum_adds == 3 * 8 * 2

    def test_single_block_needs_no_accumulation(self):
        plan = plan_offload(4, 4, 306, 4, 8)
        assert not plan.needs_accumulation
        assert plan.partial_sum_adds == 0

    def test_windows_batch_by_wavelength(self):
        plan = plan_offload(8, 8, 20, 8, 8)
        assert plan.optical_windows == 3  # ceil(20/8)

    def test_macs_offloaded(self):
        plan = plan_offload(10, 12, 7, 8, 8)
        assert plan.macs_offloaded == 10 * 12 * 7

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_offload(0, 4, 1, 8, 8)
        with pytest.raises(ValueError):
            plan_offload(4, 4, 1, 1, 8)
        with pytest.raises(ValueError):
            plan_offload(4, 4, 1, 8, 0)


class TestBlockMatmul:
    @pytest.mark.parametrize("shape,block", [
        ((8, 8), 8), ((20, 30), 8), ((5, 17), 4), ((16, 16), 8),
    ])
    def test_matches_numpy(self, shape, block):
        m = rand(shape, shape[0])
        a = rand((shape[1], 3), shape[1])
        bm = BlockMatmul(m, block)
        assert np.allclose(bm(a), m @ a, atol=1e-9)

    def test_single_vector(self):
        m = rand((8, 8), 5)
        v = rand(8, 6)
        bm = BlockMatmul(m, 8)
        out = bm(v)
        assert out.shape == (8,)
        assert np.allclose(out, m @ v, atol=1e-10)

    def test_zero_blocks_skipped(self):
        m = np.zeros((16, 16))
        m[:8, :8] = rand((8, 8), 7)
        bm = BlockMatmul(m, 8)
        assert bm.nonzero_blocks == 1
        a = rand((16, 2), 8)
        assert np.allclose(bm(a), m @ a, atol=1e-10)

    def test_custom_mvm_hook_called_per_window(self):
        m = rand((8, 8), 9)
        calls = []

        def spy(program, window):
            calls.append(window.shape[1])
            return program.apply(window.astype(complex)).real

        bm = BlockMatmul(m, 8, wavelengths=4)
        a = rand((8, 10), 10)
        out = bm(a, mvm=spy)
        assert np.allclose(out, m @ a, atol=1e-9)
        assert calls == [4, 4, 2]  # 10 vectors in windows of 4

    def test_plan_matches_structure(self):
        bm = BlockMatmul(rand((20, 30), 11), 8)
        plan = bm.plan(5)
        assert plan.matrix_switches == bm.block_rows * bm.block_cols

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BlockMatmul(np.ones(5), 4)

    @settings(max_examples=15, deadline=None)
    @given(rows=st.integers(2, 20), cols=st.integers(2, 20),
           q=st.integers(1, 6), seed=st.integers(0, 10**6))
    def test_property_block_matmul_exact(self, rows, cols, q, seed):
        m = rand((rows, cols), seed)
        a = rand((cols, q), seed + 1)
        bm = BlockMatmul(m, 4)
        assert np.allclose(bm(a), m @ a, atol=1e-8)


class TestIm2col:
    def test_output_shape(self):
        cols = im2col(np.ones((6, 7, 2)), (3, 3))
        assert cols.shape == (18, 4 * 5)

    def test_known_patch_content(self):
        plane = np.arange(16.0).reshape(4, 4)
        cols = im2col(plane, (2, 2))
        # First receptive field: rows 0-1, cols 0-1.
        assert cols[:, 0].tolist() == [0.0, 1.0, 4.0, 5.0]

    def test_stride(self):
        cols = im2col(np.ones((6, 6)), (2, 2), stride=2)
        assert cols.shape == (4, 9)

    def test_padding_grows_output(self):
        no_pad = im2col(np.ones((4, 4)), (3, 3))
        padded = im2col(np.ones((4, 4)), (3, 3), padding=1)
        assert no_pad.shape[1] == 4
        assert padded.shape[1] == 16

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            im2col(np.ones((2, 2)), (3, 3))


class TestConvAsMatmul:
    def test_matches_direct_convolution(self):
        vol = rand((7, 9, 3), 20)
        kern = rand((5, 3, 3, 3), 21)
        w, cols, (oh, ow) = conv2d_as_matmul(vol, kern, padding=1)
        out = (w @ cols).reshape(5, oh, ow)
        # Verify one output element by hand.
        padded = np.pad(vol, ((1, 1), (1, 1), (0, 0)))
        expected = float(np.sum(padded[2:5, 3:6, :] * kern[1]))
        assert out[1, 2, 3] == pytest.approx(expected)

    def test_weight_matrix_shape_matches_figure_7(self):
        kern = rand((6, 3, 3, 4), 22)
        w = kernels_to_matrix(kern)
        assert w.shape == (6, 3 * 3 * 4)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv2d_as_matmul(np.ones((5, 5, 2)), np.ones((1, 3, 3, 3)))

    def test_reference_shape(self):
        out = conv2d_reference(np.ones((6, 6, 2)), rand((4, 3, 3, 2), 23),
                               padding=1)
        assert out.shape == (4, 6, 6)

    def test_identity_kernel_is_identity(self):
        vol = rand((5, 5), 24)
        kern = np.zeros((1, 3, 3))
        kern[0, 1, 1] = 1.0
        out = conv2d_reference(vol, kern, padding=1)
        assert np.allclose(out[0], vol)
