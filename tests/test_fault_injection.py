"""Fault injection: stuck MZIs and what self-configuration can recover.

A fabricated mesh can have phase shifters stuck at a fixed value (driver
or heater failure).  These tests quantify the blast radius of a single
stuck device on communication and computation, and check that
coordinate-descent self-configuration partially compensates by re-tuning
the healthy MZIs around the fault.
"""

import math

import numpy as np
import pytest

from repro.photonics.calibration import (
    PhaseOffsets,
    PhysicalMesh,
    matrix_error,
    self_configure,
)
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.devices import BAR_THETA, MZIState
from repro.photonics.routing import (
    program_point_to_point,
    received_power,
)
from repro.photonics.svd import program_svd


def stick_mzi(mesh, index: int, theta: float = BAR_THETA):
    """Return a mesh copy with one MZI stuck at a fixed theta."""
    from repro.photonics.clements import MZIMesh

    mzis = [m if i != index else MZIState(m.top_mode, theta, m.phi, m.column)
            for i, m in enumerate(mesh.mzis)]
    out = MZIMesh(n=mesh.n, mzis=mzis)
    out.output_phases = mesh.output_phases.copy()
    return out


class TestCommunicationFaults:
    def test_stuck_bar_reroutes_power_somewhere(self):
        mesh = program_point_to_point({0: 7, 7: 0}, 8)
        # Find an MZI actually in the cross state on the 0->7 path.
        for idx, mzi in enumerate(mesh.mzis):
            if abs(mzi.theta) < 1e-9:
                broken = stick_mzi(mesh, idx)
                break
        else:
            pytest.skip("no cross-state MZI to break")
        power = received_power(broken, 0)
        assert power.sum() == pytest.approx(1.0)  # energy conserved
        assert power[7] < 1.0 - 1e-6               # but misdelivered

    def test_unaffected_paths_survive(self):
        # A fault on one path leaves disjoint paths intact when the stuck
        # MZI carries no power for them.
        mesh = program_point_to_point({0: 1, 6: 7}, 8)
        hops = mesh.mzis_per_path()
        assert hops[1, 0] >= 0 and hops[7, 6] >= 0
        # Stick an MZI whose modes are outside both paths' mode range.
        for idx, mzi in enumerate(mesh.mzis):
            if mzi.top_mode in (3,):
                broken = stick_mzi(mesh, idx)
                break
        else:
            pytest.skip("no mid-mesh MZI found")
        p0 = received_power(broken, 0)
        assert p0[1] > 0.99 or p0.argmax() == 1


class TestComputationFaults:
    def test_single_stuck_mzi_bounded_error(self):
        m = np.random.default_rng(0).standard_normal((6, 6))
        prog = program_svd(m)
        broken_u = stick_mzi(prog.u_mesh, 0, theta=1.0)
        from repro.photonics.svd import SVDProgram
        broken = SVDProgram(n=6, v_dagger_mesh=prog.v_dagger_mesh,
                            u_mesh=broken_u, sigma=prog.sigma,
                            scale=prog.scale)
        approx = (broken.scale * broken.matrix()).real
        rel = np.abs(approx - m).max() / np.abs(m).max()
        assert 0.0 < rel < 1.0  # corrupted but not catastrophic

    def test_fault_severity_grows_with_displacement(self):
        m = np.random.default_rng(1).standard_normal((6, 6))
        prog = program_svd(m)
        target = prog.u_mesh.mzis[3].theta
        errors = []
        for delta in (0.05, 0.3, 1.0):
            stuck = float(np.clip(target + delta, 0, math.pi))
            broken_u = stick_mzi(prog.u_mesh, 3, theta=stuck)
            err = np.abs(broken_u.matrix()
                         - prog.u_mesh.matrix()).max()
            errors.append(err)
        assert errors == sorted(errors)


class TestSelfHealing:
    def test_descent_compensates_around_a_stuck_phase(self):
        u = random_unitary(5, np.random.default_rng(3))
        ideal = decompose(u)
        # Fault model: MZI 2's theta driver has a large fixed offset the
        # calibration cannot remove, only work around.
        offsets = PhaseOffsets.none(ideal.num_mzis)
        offsets.theta[2] = 0.4
        mesh = PhysicalMesh(ideal, offsets)
        before = matrix_error(mesh.measure(), u)
        result = self_configure(mesh, u, sweeps=3)
        # theta is programmable, so the fault is correctable; descent
        # recovers most of the error in a few sweeps (the one-shot
        # decomposition calibration would remove it exactly).
        assert result.final_error < before / 5
        from repro.photonics.calibration import calibrate_by_decomposition
        mesh2 = PhysicalMesh(ideal, offsets)
        exact = calibrate_by_decomposition(mesh2, u)
        assert exact.final_error < 1e-9

    def test_descent_helps_even_when_theta_clips(self):
        u = random_unitary(5, np.random.default_rng(4))
        ideal = decompose(u)
        offsets = PhaseOffsets.none(ideal.num_mzis)
        # Push a near-bar MZI past the physical range so compensation
        # must come from the rest of the mesh.
        worst = int(np.argmax([m.theta for m in ideal.mzis]))
        offsets.theta[worst] = 1.0
        mesh = PhysicalMesh(ideal, offsets)
        before = matrix_error(mesh.measure(), u)
        result = self_configure(mesh, u, sweeps=3)
        assert result.final_error < before
