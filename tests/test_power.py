"""Tests for laser power and link energy models (Figure 12a, Section 5.2)."""

import pytest

from repro.config import DeviceParams
from repro.photonics.power import (
    flumen_worst_loss_db,
    laser_power_sweep,
    laser_power_w,
    optbus_worst_loss_db,
    photonic_link_energy,
)


class TestLossScaling:
    def test_optbus_loss_scales_with_k_times_p(self):
        # Section 5.2: OptBus worst-case loss proportional to k*p (in dB).
        base = optbus_worst_loss_db(16, 16, mrr_thru_db=0.05)
        double_k = optbus_worst_loss_db(32, 16, mrr_thru_db=0.05)
        double_p = optbus_worst_loss_db(16, 32, mrr_thru_db=0.05)
        fixed = optbus_worst_loss_db(16, 16, mrr_thru_db=0.0)
        assert double_k - fixed == pytest.approx(2 * (base - fixed), rel=1e-6)
        assert double_p - fixed == pytest.approx(2 * (base - fixed), rel=1e-6)

    def test_flumen_loss_scales_with_half_k_plus_2p(self):
        d = DeviceParams()
        thru_term = (flumen_worst_loss_db(16, 32)
                     - flumen_worst_loss_db(16, 16))
        # Doubling p adds 2*16 extra ring passes (spectral fraction applied).
        assert thru_term > 0
        k_term = (flumen_worst_loss_db(32, 16)
                  - flumen_worst_loss_db(16, 16))
        assert k_term == pytest.approx(8 * d.mzi.insertion_loss_db, rel=1e-6)

    def test_flumen_much_lower_loss_than_optbus(self):
        assert flumen_worst_loss_db(16, 32) < optbus_worst_loss_db(16, 32)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            laser_power_sweep("torus", 16, 32, [0.1])


class TestLaserPower:
    def test_laser_power_exponential_in_loss(self):
        p10 = laser_power_w(10.0, 1)
        p20 = laser_power_w(20.0, 1)
        assert p20 / p10 == pytest.approx(10.0)

    def test_laser_power_linear_in_wavelengths(self):
        assert laser_power_w(10.0, 32) == pytest.approx(
            32 * laser_power_w(10.0, 1))

    def test_paper_anchor_32lambda_01db(self):
        # Paper: 32.3 mW OptBus vs 429.6 uW Flumen at 32 lambda, 0.1 dB thru.
        # Our analytic model lands within ~2x of both absolutes and keeps a
        # large (>30x) gap.
        optbus = laser_power_sweep("optbus", 16, 32, [0.1])[0]
        flumen = laser_power_sweep("flumen", 16, 32, [0.1])[0]
        assert 10e-3 < optbus < 100e-3
        assert 0.1e-3 < flumen < 2e-3
        assert optbus / flumen > 30.0

    def test_gap_grows_with_thru_loss(self):
        thrus = [0.01, 0.02, 0.05]
        optbus = laser_power_sweep("optbus", 16, 32, thrus)
        flumen = laser_power_sweep("flumen", 16, 32, thrus)
        ratios = [o / f for o, f in zip(optbus, flumen)]
        assert ratios == sorted(ratios)

    def test_sweep_monotone_in_thru_loss(self):
        series = laser_power_sweep("optbus", 16, 16,
                                   [0.0, 0.01, 0.02, 0.03, 0.05])
        assert series == sorted(series)


class TestLinkEnergy:
    def test_64_lambda_near_paper_value(self):
        # Table 1: 0.703 pJ/bit at 64 wavelengths.
        e = photonic_link_energy(64)
        assert e.total == pytest.approx(0.703e-12, rel=0.25)

    def test_breakdown_sums_to_total(self):
        e = photonic_link_energy(32)
        parts = (e.modulator + e.driver + e.thermal_tuning + e.tia
                 + e.serdes + e.laser)
        assert parts == pytest.approx(e.total)

    def test_energy_below_electrical_link(self):
        # The photonic link undercuts the 1.17 pJ/bit electrical NoP link.
        assert photonic_link_energy(64).total < 1.17e-12

    def test_laser_share_grows_with_loss(self):
        low = photonic_link_energy(64, worst_loss_db=5.0)
        high = photonic_link_energy(64, worst_loss_db=15.0)
        assert high.laser > low.laser
        assert high.modulator == low.modulator

    def test_all_components_positive(self):
        e = photonic_link_energy(16)
        for name in ("modulator", "driver", "thermal_tuning", "tia",
                     "serdes", "laser"):
            assert getattr(e, name) > 0.0
