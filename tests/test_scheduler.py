"""Tests for the MZIM control unit and Algorithm 1 scheduler."""

import numpy as np
import pytest

from repro.config import SchedulerConfig, SystemConfig
from repro.core.accelerator import BlockMatmul, plan_offload
from repro.core.control_unit import (
    ComputeRequest,
    MatrixMemory,
    MZIMControlUnit,
)
from repro.core.scheduler import FlumenScheduler, compute_duration_cycles
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.packet import Packet


def small_plan(vectors=8):
    return plan_offload(8, 8, vectors, 8, 8)


def make_stack(scheduler_cfg: SchedulerConfig | None = None):
    system = SystemConfig() if scheduler_cfg is None else \
        SystemConfig().replace(scheduler=scheduler_cfg)
    net = FlumenNetwork(16)
    control = MZIMControlUnit(net, system)
    scheduler = FlumenScheduler(control, system)
    return net, control, scheduler


def submit(control, cycle=0, ports=4, vectors=8, node=0):
    bm = BlockMatmul(np.eye(8), 8)
    key = f"m{control.requests_received}"
    control.matrix_memory.store(key, bm)
    req = ComputeRequest(node=node, plan=small_plan(vectors),
                         matrix_key=key, submit_cycle=cycle,
                         ports_needed=ports)
    control.submit(req, cycle)
    return req


class TestMatrixMemory:
    def test_store_and_get(self):
        mem = MatrixMemory(16)
        bm = BlockMatmul(np.eye(4), 4)
        mem.store("id", bm)
        assert "id" in mem
        assert mem.get("id") is bm

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            MatrixMemory().get("nope")

    def test_lru_eviction(self):
        mem = MatrixMemory(capacity_blocks=2)
        mem.store("a", BlockMatmul(np.eye(4), 4))   # 1 block
        mem.store("b", BlockMatmul(np.eye(4), 4))   # 1 block
        mem.get("a")  # touch a so b is LRU
        mem.store("c", BlockMatmul(np.eye(4), 4))
        assert "a" in mem and "c" in mem
        assert "b" not in mem

    def test_oversized_matrix_rejected(self):
        mem = MatrixMemory(capacity_blocks=1)
        with pytest.raises(ValueError):
            mem.store("big", BlockMatmul(np.ones((16, 16)), 4))


class TestControlUnit:
    def test_submit_requires_preloaded_matrix(self):
        _, control, _ = make_stack()
        req = ComputeRequest(node=0, plan=small_plan(), matrix_key="nope",
                             submit_cycle=0)
        with pytest.raises(KeyError):
            control.submit(req, 0)

    def test_submit_enqueues(self):
        _, control, _ = make_stack()
        submit(control)
        assert len(control.compute_buffer) == 1
        assert control.requests_received == 1

    def test_port_range_endpoints(self):
        _, control, _ = make_stack()
        # 16 endpoints over 8 fabric ports: 2 per port.
        assert control.port_range_endpoints(0, 4) == set(range(8))
        assert control.port_range_endpoints(4, 8) == set(range(8, 16))

    def test_request_too_many_ports_rejected(self):
        _, control, _ = make_stack()
        bm = BlockMatmul(np.eye(8), 8)
        control.matrix_memory.store("m", bm)
        req = ComputeRequest(node=0, plan=small_plan(), matrix_key="m",
                             submit_cycle=0, ports_needed=16)
        with pytest.raises(ValueError):
            control.submit(req, 0)

    def test_request_odd_ports_rejected(self):
        with pytest.raises(ValueError):
            ComputeRequest(node=0, plan=small_plan(), matrix_key="m",
                           submit_cycle=0, ports_needed=3)

    def test_advise_offload_on_idle_network(self):
        _, control, _ = make_stack()
        assert control.advise_offload()

    def test_advise_against_offload_when_hot(self):
        net, control, _ = make_stack()
        net.block_ports(set(range(16)))
        for src in range(8):
            for _ in range(32):
                net.offer_packet(Packet(src=src, dst=15, size_flits=1,
                                        create_cycle=0))
        # Top-zeta scan sees the 8 saturated buffers: utilization 1.0.
        assert not control.advise_offload(utilization_ceiling=0.8)


class TestDuration:
    def test_duration_includes_programming_and_windows(self):
        plan = small_plan(vectors=8)
        cycles = compute_duration_cycles(plan, SystemConfig())
        # 1 matrix switch x 15 cycles + 1 window at 5 GHz (>=1 cycle)
        # + return configuration + return flits.
        assert cycles >= 15 + 1 + 3

    def test_duration_grows_with_blocks(self):
        small = compute_duration_cycles(plan_offload(8, 8, 8, 8, 8),
                                        SystemConfig())
        large = compute_duration_cycles(plan_offload(64, 64, 8, 8, 8),
                                        SystemConfig())
        assert large > small * 10


class TestScheduler:
    def test_grant_on_idle_network(self):
        net, control, sched = make_stack()
        submit(control)
        sched.run(5)
        assert sched.stats.granted == 1
        assert net.blocked_ports == set(range(8))

    def test_completion_releases_ports(self):
        net, control, sched = make_stack()
        submit(control)
        sched.run(2000)
        sched.drain()
        assert sched.stats.completed == 1
        assert not net.blocked_ports

    def test_eta_threshold_blocks_grant(self):
        # Saturate the request buffers of the would-be partition nodes.
        cfg = SchedulerConfig(tau_cycles=10, eta=0.05, zeta=1.0)
        net, control, sched = make_stack(cfg)
        net.block_ports(set(range(16)))  # hold traffic in buffers
        for src in range(8):
            for _ in range(8):
                net.offer_packet(Packet(src=src, dst=15, size_flits=4,
                                        create_cycle=0))
        submit(control)
        for _ in range(30):
            sched.tick()
        assert sched.stats.granted == 0
        assert sched.stats.deferred_evaluations > 0

    def test_permissive_eta_grants(self):
        cfg = SchedulerConfig(tau_cycles=10, eta=0.9, zeta=0.5)
        net, control, sched = make_stack(cfg)
        for src in range(4):
            net.offer_packet(Packet(src=src, dst=15, size_flits=4,
                                    create_cycle=0))
        submit(control)
        sched.run(50)
        assert sched.stats.granted == 1

    def test_partition_waits_for_draining_circuits(self):
        net, control, sched = make_stack()
        # Long transfer occupying endpoint 0 (inside the partition).
        net.offer_packet(Packet(src=0, dst=3, size_flits=40, create_cycle=0))
        net.step()
        net.step()
        submit(control)
        sched.tick()  # grants and blocks, but cannot start yet
        assert sched.stats.granted == 1
        assert not sched.active[0].started
        sched.run(200)
        assert sched.active == [] or sched.active[0].started

    def test_two_partitions_coexist(self):
        net, control, sched = make_stack()
        submit(control, ports=4, vectors=4096)
        submit(control, ports=4, vectors=4096)
        sched.run(5)
        assert sched.stats.granted == 2
        ranges = sorted((c.lo_port, c.hi_port) for c in sched.active)
        assert ranges == [(0, 4), (4, 8)]

    def test_no_room_defers(self):
        net, control, sched = make_stack()
        submit(control, ports=8, vectors=4096)
        submit(control, ports=4)
        sched.run(5)
        assert sched.stats.granted == 1
        assert len(control.compute_buffer) == 1

    def test_duration_override_respected(self):
        net, control, sched = make_stack()
        bm = BlockMatmul(np.eye(8), 8)
        control.matrix_memory.store("m", bm)
        req = ComputeRequest(node=0, plan=small_plan(), matrix_key="m",
                             submit_cycle=0, ports_needed=4,
                             duration_override=7)
        control.submit(req, 0)
        sched.run(30)
        assert sched.stats.completed == 1
        assert sched.completions[req.request_id] <= 15

    def test_tau_spacing_of_partitioner(self):
        cfg = SchedulerConfig(tau_cycles=50, eta=0.4, zeta=0.5)
        net, control, sched = make_stack(cfg)
        sched.run(5)  # partitioner ran at cycle 0 only
        submit(control, cycle=5)
        sched.run(30)  # cycles 5..35: no tau boundary yet
        assert sched.stats.granted == 0
        sched.run(20)  # crosses cycle 50
        assert sched.stats.granted == 1

    def test_communication_flows_beside_partition(self):
        net, control, sched = make_stack()
        submit(control, ports=4, vectors=100000)
        sched.run(3)
        assert sched.stats.granted == 1
        # Endpoints 8..15 are free: traffic among them completes.
        net.offer_packet(Packet(src=9, dst=14, size_flits=4, create_cycle=0))
        sched.run(60)
        assert net.latency.received == 1
