"""Tests for the vectorized photonic hot path, the config-aware caches,
the active-set NoC stepping, and the ``repro perf`` harness (DESIGN.md
§13).

The vectorized kernels keep their pre-vectorization loops as oracles
(``_reference_propagate``, ``_reference_trace_hops``); the tests here
assert *exact* equality against them — the batched 2x2 matmul forms are
bit-identical, not merely close, which is what lets the golden-numbers
artifacts stay byte-stable across the optimization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.clements import (
    MZIMesh,
    _reference_trace_hops,
    _trace_hops,
    decompose,
    random_unitary,
)
from repro.photonics.devices import MZIState
from repro.photonics.fabric import FlumenFabric
from repro.photonics.svd import (
    clear_svd_cache,
    program_svd,
    svd_cache_stats,
)


def random_mesh(n: int, seed: int) -> MZIMesh:
    return decompose(random_unitary(n, np.random.default_rng(seed)))


def random_fields(n: int, seed: int, width: int | None = None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    shape = (n,) if width is None else (n, width)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


def fabric_meshes(seed: int) -> list[MZIMesh]:
    """Comm meshes from every routing mode (the paths the system uses)."""
    rng = np.random.default_rng(seed)
    meshes = []
    fab = FlumenFabric(8)
    targets = rng.permutation(8)
    fab.configure_communication(
        {s: int(d) for s, d in enumerate(targets) if s != int(d)})
    meshes.append(fab.partitions[0].comm_mesh)
    fab = FlumenFabric(8)
    fab.configure_multicast(0, [3, 5, 7])
    meshes.append(fab.partitions[0].comm_mesh)
    fab = FlumenFabric(8)
    fab.configure_gather(fab.partitions[0], int(rng.integers(8)))
    meshes.append(fab.partitions[0].comm_mesh)
    return [m for m in meshes if m is not None]


class TestVectorizedBitIdentity:
    """Columnized propagation is *exactly* the per-MZI loop."""

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
    @pytest.mark.parametrize("width", [None, 4])
    def test_propagate_bit_identical_to_reference(self, n, width):
        mesh = random_mesh(n, seed=n)
        fields = random_fields(n, seed=100 + n, width=width)
        assert np.array_equal(mesh.propagate(fields),
                              mesh._reference_propagate(fields))

    def test_matrix_bit_identical_through_columns(self):
        # matrix() uses the same columnized plan; its product with any
        # input must equal propagation to machine precision.
        mesh = random_mesh(9, seed=3)
        fields = random_fields(9, seed=4)
        np.testing.assert_allclose(mesh.matrix() @ fields,
                                   mesh.propagate(fields), atol=1e-12)

    def test_fabric_routed_meshes_bit_identical(self):
        for mesh in fabric_meshes(seed=11):
            fields = random_fields(mesh.n, seed=12)
            assert np.array_equal(mesh.propagate(fields),
                                  mesh._reference_propagate(fields))

    def test_trace_hops_bit_identical_to_reference(self):
        for mesh in [random_mesh(6, 21), random_mesh(11, 22),
                     *fabric_meshes(seed=23)]:
            assert np.array_equal(_trace_hops(mesh),
                                  _reference_trace_hops(mesh))

    def test_handbuilt_mesh_without_columns_falls_back(self):
        # No column assignment (-1): the plan must fall back to greedy
        # mode-disjoint segmentation and still match the reference.
        mzis = [MZIState(0, 1.1, 0.3), MZIState(2, 0.7, -0.2),
                MZIState(1, 2.0, 0.5), MZIState(0, 0.4, 1.0),
                MZIState(2, 1.9, -1.4)]
        mesh = MZIMesh(n=4, mzis=mzis)
        fields = random_fields(4, seed=31)
        assert np.array_equal(mesh.propagate(fields),
                              mesh._reference_propagate(fields))

    def test_empty_and_single_mode_meshes(self):
        empty = MZIMesh(n=3, mzis=[])
        fields = random_fields(3, seed=41)
        assert np.array_equal(empty.propagate(fields), fields)
        one = MZIMesh(n=1)
        assert np.array_equal(one.propagate(np.array([1 + 2j])),
                              np.array([1 + 2j]))

    def test_propagate_rejects_wrong_leading_dim(self):
        mesh = random_mesh(4, seed=51)
        with pytest.raises(ValueError, match="leading dimension"):
            mesh.propagate(np.ones(5, dtype=complex))
        with pytest.raises(ValueError, match="leading dimension"):
            mesh._reference_propagate(np.ones(5, dtype=complex))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 10**6),
       width=st.sampled_from([None, 3]))
def test_property_vectorized_propagate_equals_oracle_and_matrix(
        n, seed, width):
    """The satellite property: propagate == reference == matrix() @ a."""
    mesh = random_mesh(n, seed)
    fields = random_fields(n, seed + 1, width)
    vec = mesh.propagate(fields)
    assert np.array_equal(vec, mesh._reference_propagate(fields))
    np.testing.assert_allclose(vec, mesh.matrix() @ fields, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_svd_meshes_vectorize_exactly(seed):
    rng = np.random.default_rng(seed)
    clear_svd_cache()
    program = program_svd(rng.standard_normal((6, 6)))
    fields = random_fields(6, seed + 7)
    for mesh in (program.v_dagger_mesh, program.u_mesh):
        assert np.array_equal(mesh.propagate(fields),
                              mesh._reference_propagate(fields))
    np.testing.assert_allclose(program.matrix() @ fields,
                               program.propagate(fields), atol=1e-12)


class TestMeshCaches:
    """The propagation plan and hop matrix invalidate on phase writes."""

    def test_plan_is_reused_between_calls(self):
        mesh = random_mesh(6, seed=61)
        mesh.propagate(random_fields(6, 62))
        plan = mesh._plan
        mesh.propagate(random_fields(6, 63))
        assert mesh._plan is plan

    def test_hops_memoized_and_read_only(self):
        mesh = random_mesh(6, seed=64)
        hops = mesh.mzis_per_path()
        assert mesh.mzis_per_path() is hops
        assert not hops.flags.writeable
        with pytest.raises(ValueError):
            hops[0, 0] = 99

    def test_item_write_invalidates(self):
        # The fault injector's write pattern: mesh.mzis[i] = new state.
        mesh = random_mesh(6, seed=65)
        fields = random_fields(6, 66)
        mesh.propagate(fields)
        mesh.mzis_per_path()
        mesh.mzis[0] = mesh.mzis[0].with_phases(0.123, -0.456)
        assert mesh._plan is None and mesh._hops is None
        assert np.array_equal(mesh.propagate(fields),
                              mesh._reference_propagate(fields))
        assert np.array_equal(mesh.mzis_per_path(),
                              _reference_trace_hops(mesh))

    def test_reassignment_invalidates_and_rewraps(self):
        mesh = random_mesh(5, seed=67)
        fields = random_fields(5, 68)
        mesh.propagate(fields)
        other = random_mesh(5, seed=69)
        mesh.mzis = list(other.mzis)  # reck.py's write pattern
        assert np.array_equal(mesh.propagate(fields),
                              mesh._reference_propagate(fields))
        # The new list is tracked too: further item writes invalidate.
        mesh.mzis[1] = mesh.mzis[1].with_phases(1.0, 0.0)
        assert mesh._plan is None

    @pytest.mark.parametrize("mutate", [
        lambda m: m.mzis.append(MZIState(0, 1.0)),
        lambda m: m.mzis.pop(),
        lambda m: m.mzis.extend([MZIState(0, 1.0)]),
        lambda m: m.mzis.clear(),
    ])
    def test_list_mutations_invalidate(self, mutate):
        mesh = random_mesh(4, seed=70)
        mesh.propagate(random_fields(4, 71))
        mesh.mzis_per_path()
        mutate(mesh)
        assert mesh._plan is None and mesh._hops is None

    def test_fault_injection_sees_fresh_hops(self):
        # End to end: a realized fault must change the memoized hop
        # matrix, not serve the stale pre-fault one.
        fab = FlumenFabric(8)
        fab.configure_multicast(0, [3, 5])
        mesh = fab.partitions[0].comm_mesh
        before = mesh.mzis_per_path().copy()
        for i, mzi in enumerate(mesh.mzis):
            # Flip MZIs to 50:50 until connectivity actually changes.
            mesh.mzis[i] = mzi.with_phases(np.pi / 2, mzi.phi)
            if not np.array_equal(_reference_trace_hops(mesh), before):
                break
        else:
            pytest.fail("no mutation changed the path structure")
        after = mesh.mzis_per_path()
        assert not np.array_equal(before, after)
        assert np.array_equal(after, _reference_trace_hops(mesh))


class TestHopTracingDeduplication:
    """One reconfiguration triggers at most one hop trace (satellite b)."""

    def test_configure_communication_traces_once(self, monkeypatch):
        import repro.photonics.clements as clements
        calls = {"n": 0}
        real = clements._trace_hops

        def counting(mesh):
            calls["n"] += 1
            return real(mesh)

        monkeypatch.setattr(clements, "_trace_hops", counting)
        fab = FlumenFabric(8)
        fab.configure_communication({0: 5, 3: 1, 6: 2})
        assert calls["n"] == 1
        # Loss accounting and propagation reuse the memo — still one.
        fab.path_loss_db(0, 5)
        fields = np.zeros(8, dtype=complex)
        fields[0] = 1.0
        fab.propagate_comm(fields)
        assert calls["n"] == 1
        # A new configuration re-traces exactly once.
        fab.configure_multicast(0, [3, 5])
        fab.equalize_attenuators()
        assert calls["n"] == 2


class TestSVDProgramMemo:
    """program_svd memoizes by content hash and never shares meshes."""

    def setup_method(self):
        clear_svd_cache()

    def teardown_method(self):
        clear_svd_cache()

    def test_repeat_programming_hits(self):
        rng = np.random.default_rng(81)
        matrix = rng.standard_normal((5, 5))
        program_svd(matrix)
        program_svd(matrix)
        program_svd(matrix.copy())  # same content, different object
        stats = svd_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1

    def test_different_content_misses(self):
        rng = np.random.default_rng(82)
        program_svd(rng.standard_normal((5, 5)))
        program_svd(rng.standard_normal((5, 5)))
        assert svd_cache_stats()["misses"] == 2

    def test_cached_programs_are_independent_copies(self):
        rng = np.random.default_rng(83)
        matrix = rng.standard_normal((4, 4))
        first = program_svd(matrix)
        reconstructed = first.matrix().copy()
        # Mutate the handed-out program the way callers do.
        first.u_mesh.mzis[0] = first.u_mesh.mzis[0].with_phases(0.0, 0.0)
        first.sigma[:] = 0.0
        second = program_svd(matrix)
        np.testing.assert_allclose(second.matrix(), reconstructed,
                                   atol=1e-12)

    def test_equivalence_with_uncached_computation(self):
        rng = np.random.default_rng(84)
        matrix = rng.standard_normal((5, 5)) \
            + 1j * rng.standard_normal((5, 5))
        warm = program_svd(matrix)
        clear_svd_cache()
        cold = program_svd(matrix)
        np.testing.assert_allclose(warm.matrix(), cold.matrix(), atol=0)
        assert warm.scale == cold.scale


class TestActiveSetStepping:
    """Idle-skip bookkeeping drains clean and stays cycle-exact."""

    def test_wavefront_rotate_matches_empty_allocate(self):
        from repro.noc.arbiter import WavefrontArbiter
        a, b = WavefrontArbiter(6), WavefrontArbiter(6)
        empty = np.zeros((6, 6), dtype=bool)
        requests = np.zeros((6, 6), dtype=bool)
        requests[0, 3] = requests[2, 3] = requests[4, 1] = True
        for _ in range(5):
            a.allocate(empty)   # the full-scan idle behavior
            b.rotate()          # the fast-path idle behavior
        assert a.allocate(requests) == b.allocate(requests)

    def test_network_active_sets_drain(self):
        from repro.noc.network import Network
        from repro.noc.topology import make_topology
        from repro.noc.traffic import TrafficGenerator
        net = Network(make_topology("mesh", 16))
        net.run(TrafficGenerator(16, "uniform", 0.2, seed=3),
                cycles=400, drain=True)
        assert net.quiescent()
        assert not net._active_routers
        assert not net._waiting_sources

    def test_flumen_waiting_sources_drain(self):
        from repro.noc.flumen_net import FlumenNetwork
        from repro.noc.traffic import TrafficGenerator
        net = FlumenNetwork(16)
        net.run(TrafficGenerator(16, "uniform", 0.3, seed=3),
                cycles=400, drain=True)
        assert net.quiescent()
        assert not net._waiting_sources

    def test_optbus_sets_drain(self):
        from repro.noc.optbus import OptBusNetwork
        from repro.noc.traffic import TrafficGenerator
        net = OptBusNetwork(16)
        net.run(TrafficGenerator(16, "uniform", 0.2, seed=3),
                cycles=400, drain=True)
        assert net.quiescent()
        assert not net._active_buses
        assert not net._waiting_sources

    def test_idle_stepping_preserves_later_deliveries(self):
        # A long idle stretch before traffic must not change how that
        # traffic is then served (same per-packet service latencies).
        from repro.noc.packet import Packet
        from repro.noc.flumen_net import FlumenNetwork

        def serve(idle_cycles):
            net = FlumenNetwork(8)
            for _ in range(idle_cycles):
                net.step()
            base = net.cycle
            for src, dst in [(0, 3), (1, 3), (5, 2)]:
                net.offer_packet(Packet(src=src, dst=dst, size_flits=4,
                                        create_cycle=base))
            while not net.quiescent() and net.cycle < base + 500:
                net.step()
            return sorted(lat for lat in net.latency.latencies)

        # Idle gaps that are multiples of the arbiter period leave the
        # priority diagonal in the same phase — identical service.
        assert serve(0) == serve(8 * 3)


class TestPerfHarness:
    """The pinned suite: stable digests, strict comparison semantics."""

    def test_micro_benchmark_payload_shape(self):
        from repro.analysis import perf
        payload = perf.run_suite(small=True, only="mesh_propagate/n16")
        assert payload["schema"] == perf.SCHEMA_VERSION
        assert payload["suite"] == "small"
        record = payload["benchmarks"]["mesh_propagate/n16"]
        assert record["wall_s"] > 0
        assert record["speedup_vs_reference"] > 0
        assert record["meta"] == {"n": 16, "width": None}
        assert len(record["digest"]) == 64

    def test_digests_are_run_independent(self):
        from repro.analysis import perf
        one = perf.run_suite(small=True, only="mesh_propagate/n16")
        two = perf.run_suite(small=True, only="mesh_propagate/n16")
        assert (one["benchmarks"]["mesh_propagate/n16"]["digest"]
                == two["benchmarks"]["mesh_propagate/n16"]["digest"])

    def test_small_suite_is_subset_of_full(self):
        from repro.analysis import perf
        assert set(perf.benchmark_names(small=True)) \
            <= set(perf.benchmark_names(small=False))

    def test_compare_flags_digest_mismatch(self):
        from repro.analysis.perf import compare_to_baseline
        current = {"benchmarks": {"b": {
            "wall_s": 1.0, "meta": {"n": 4}, "digest": "aaa"}}}
        baseline = {"benchmarks": {"b": {
            "wall_s": 1.0, "meta": {"n": 4}, "digest": "bbb"}}}
        rows, failures = compare_to_baseline(current, baseline)
        assert len(failures) == 1
        assert "digest" in failures[0]

    def test_compare_flags_slowdown_beyond_tolerance(self):
        from repro.analysis.perf import compare_to_baseline
        current = {"benchmarks": {"b": {
            "wall_s": 5.0, "meta": {}, "digest": "x"}}}
        baseline = {"benchmarks": {"b": {
            "wall_s": 1.0, "meta": {}, "digest": "x"}}}
        rows, failures = compare_to_baseline(current, baseline,
                                             tolerance=2.0)
        assert len(failures) == 1
        assert "2.0" in failures[0] or "tolerance 2" in failures[0]
        _rows, ok = compare_to_baseline(current, baseline, tolerance=10.0)
        assert not ok

    def test_compare_prefers_per_call_over_wall(self):
        from repro.analysis.perf import compare_to_baseline
        # Small-suite runs use fewer reps: wall differs, per-call does
        # not — comparison must use per-call and pass.
        current = {"benchmarks": {"b": {
            "wall_s": 0.1, "per_call_s": 0.01, "meta": {}, "digest": "x"}}}
        baseline = {"benchmarks": {"b": {
            "wall_s": 1.0, "per_call_s": 0.01, "meta": {}, "digest": "x"}}}
        _rows, failures = compare_to_baseline(current, baseline,
                                              tolerance=1.5)
        assert not failures

    def test_compare_skips_meta_and_membership_mismatches(self):
        from repro.analysis.perf import compare_to_baseline
        current = {"benchmarks": {
            "changed": {"wall_s": 1.0, "meta": {"n": 8}, "digest": "x"},
            "new": {"wall_s": 1.0, "meta": {}, "digest": "y"}}}
        baseline = {"benchmarks": {
            "changed": {"wall_s": 9.0, "meta": {"n": 4}, "digest": "z"},
            "gone": {"wall_s": 1.0, "meta": {}, "digest": "w"}}}
        rows, failures = compare_to_baseline(current, baseline)
        assert not failures
        statuses = {row[0]: row[4] for row in rows}
        assert "meta" in statuses["changed"]
        assert "new" in statuses["new"]
        assert statuses["gone"] == "not run"

    def test_committed_baseline_covers_small_suite(self):
        import json
        from pathlib import Path
        from repro.analysis import perf
        baseline_path = Path(__file__).resolve().parent.parent \
            / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema"] == perf.SCHEMA_VERSION
        assert set(perf.benchmark_names(small=True)) \
            <= set(baseline["benchmarks"])


class TestPerfCLI:
    def test_perf_only_micro(self, capsys, tmp_path, monkeypatch):
        import json
        from repro.__main__ import main
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "bench.json"
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "mesh_propagate/n16" in text
        assert "no baseline" in text
        payload = json.loads(out.read_text())
        assert list(payload["benchmarks"]) == ["mesh_propagate/n16"]

    def test_perf_check_against_matching_baseline(self, capsys, tmp_path):
        from repro.__main__ import main
        base = tmp_path / "base.json"
        out1 = tmp_path / "one.json"
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(base), "--baseline", str(base)]) == 0
        capsys.readouterr()
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(out1), "--baseline", str(base),
                     "--check", "--tolerance", "50"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_perf_check_requires_baseline(self, capsys, tmp_path):
        from repro.__main__ import main
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(tmp_path / "b.json"),
                     "--baseline", str(tmp_path / "missing.json"),
                     "--check"]) == 2

    def test_perf_unknown_only_prefix(self, tmp_path):
        from repro.__main__ import main
        assert main(["perf", "--only", "nope/",
                     "--out", str(tmp_path / "b.json")]) == 2

    def test_perf_timing_breach_fails_without_check(self, capsys,
                                                    tmp_path):
        # A supplied baseline is a contract: a blown timing budget must
        # exit nonzero even when --check was not passed.
        import json
        from repro.__main__ import main
        base = tmp_path / "base.json"
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(base), "--baseline", str(base)]) == 0
        doctored = json.loads(base.read_text())
        for record in doctored["benchmarks"].values():
            record["per_call_s"] /= 1e6  # current run can't be this fast
        base.write_text(json.dumps(doctored))
        capsys.readouterr()
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(tmp_path / "two.json"),
                     "--baseline", str(base)]) == 1
        assert "SLOWER" in capsys.readouterr().out

    def test_perf_summary_md_without_baseline(self, capsys, tmp_path):
        from repro.__main__ import main
        summary = tmp_path / "summary.md"
        summary.write_text("# earlier step\n")
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(tmp_path / "b.json"),
                     "--baseline", str(tmp_path / "missing.json"),
                     "--summary-md", str(summary)]) == 0
        text = summary.read_text()
        # Appended after existing content, not overwritten.
        assert text.startswith("# earlier step")
        assert "## Perf suite" in text
        assert "mesh_propagate/n16" in text
        assert "No baseline available" in text

    def test_perf_summary_md_with_baseline_trend(self, capsys, tmp_path):
        from repro.__main__ import main
        base = tmp_path / "base.json"
        summary = tmp_path / "summary.md"
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(base), "--baseline", str(base)]) == 0
        assert main(["perf", "--small", "--only", "mesh_propagate/n16",
                     "--out", str(tmp_path / "two.json"),
                     "--baseline", str(base),
                     "--summary-md", str(summary)]) == 0
        text = summary.read_text()
        assert "### vs baseline @" in text
        assert "| ok |" in text

    def test_markdown_summary_flags_failures(self):
        from repro.analysis.perf import compare_to_baseline, \
            markdown_summary
        payload = {
            "suite": "small", "rev": "abc123",
            "benchmarks": {
                "x/one": {"wall_s": 1.0, "per_call_s": 0.5,
                          "speedup_vs_reference": 2.0,
                          "digest": "d1", "meta": {}}}}
        baseline = {
            "benchmarks": {
                "x/one": {"wall_s": 1.0, "per_call_s": 0.5,
                          "digest": "d2", "meta": {}}}}
        rows, failures = compare_to_baseline(payload, baseline)
        assert failures
        text = markdown_summary(payload, rows, baseline_rev="base999",
                                tolerance=2.0)
        assert "`small` @ `abc123`" in text
        assert "base999" in text
        assert "DIGEST MISMATCH" in text and "⚠️" in text
