"""Tests for the MZIM compute energy model (Section 5.3, Figure 12b/c)."""


import pytest

from repro.photonics.compute_energy import (
    ELECTRICAL_MAC_ENERGY_J,
    ComputeCalibration,
    MZIMComputeModel,
)


@pytest.fixture
def model():
    return MZIMComputeModel()


class TestElectricalBaseline:
    def test_mac_energy_anchor(self):
        # 69.2 pJ for an 8x8 matmul with 4 vectors = 256 MACs.
        assert ELECTRICAL_MAC_ENERGY_J == pytest.approx(0.2703e-12, rel=1e-3)

    def test_electrical_matmul_scales_with_macs(self, model):
        assert model.electrical_matmul_energy(8, 4) == pytest.approx(69.2e-12)
        assert model.electrical_matmul_energy(16, 8) == pytest.approx(
            554e-12, rel=1e-2)


class TestStructure:
    def test_svd_mzi_count(self, model):
        assert model.svd_mzi_count(8) == 64
        assert model.svd_mzi_count(64) == 4096

    def test_mesh_depth(self, model):
        assert model.mesh_columns(8) == 17

    def test_window_includes_programming(self, model):
        with_prog = model.window_s(1)
        without = model.window_s(1, include_programming=False)
        assert with_prog - without == pytest.approx(6e-9)

    def test_window_serializes_beyond_wavelengths(self, model):
        # 8 compute wavelengths: 9 vectors need a second input cycle.
        t8 = model.window_s(8, include_programming=False)
        t9 = model.window_s(9, include_programming=False)
        assert t9 == pytest.approx(2 * t8)

    def test_invalid_args_rejected(self, model):
        with pytest.raises(ValueError):
            model.matmul_energy(1, 4)
        with pytest.raises(ValueError):
            model.matmul_energy(8, 0)


class TestPaperAnchors:
    """Figure 12(b) / Section 5.3 absolute anchors."""

    def test_8x8_4vec_near_33_8pj(self, model):
        e = model.matmul_energy(8, 4)
        assert e.total == pytest.approx(33.8e-12, rel=0.15)

    def test_64x64_anchors(self, model):
        for vectors, paper in [(1, 0.62e-9), (4, 1.32e-9), (8, 2.24e-9)]:
            e = model.matmul_energy(64, vectors)
            assert e.total == pytest.approx(paper, rel=0.15), vectors

    def test_8x8_4vec_beats_electrical_by_about_2x(self, model):
        ratio = (model.electrical_matmul_energy(8, 4)
                 / model.matmul_energy(8, 4).total)
        assert 1.5 < ratio < 3.0

    def test_advantage_grows_with_mzim_size(self, model):
        # Section 5.3: 2x at 8x8/4vec -> ~7x at 16x16/8vec.  Note the paper
        # itself is non-monotone past 16x16 (7x at 16x16 but 4.0x at 64x64
        # with 8 MVMs), so the claim under test is growth from 8 to 16 and
        # a still-substantial advantage at 64.
        r8 = (model.electrical_matmul_energy(8, 8)
              / model.matmul_energy(8, 8).total)
        r16 = (model.electrical_matmul_energy(16, 8)
               / model.matmul_energy(16, 8).total)
        r64 = (model.electrical_matmul_energy(64, 8)
               / model.matmul_energy(64, 8).total)
        assert r16 > r8
        assert r64 > 3.0

    def test_advantage_grows_with_vector_count(self, model):
        # 64x64: 1.8x -> 3.4x -> 4.0x for 1/4/8 MVMs.
        ratios = [model.electrical_matmul_energy(64, v)
                  / model.matmul_energy(64, v).total for v in (1, 4, 8)]
        assert ratios == sorted(ratios)
        assert ratios[0] == pytest.approx(1.8, rel=0.25)
        assert ratios[2] == pytest.approx(4.0, rel=0.25)


class TestBreakdown:
    def test_components_sum_to_total(self, model):
        e = model.matmul_energy(16, 4)
        assert e.static + e.laser + e.io == pytest.approx(e.total)

    def test_static_dominated_by_mzi_count(self, model):
        # Section 5.3: phase-shifter DACs dominate static power.
        small = model.matmul_energy(8, 1).static
        large = model.matmul_energy(64, 1).static
        assert large / small == pytest.approx(64.0, rel=1e-6)

    def test_per_mac_energy_positive(self, model):
        assert model.matmul_energy(8, 4).per_mac > 0


class TestMacEnergySweep:
    def test_energy_per_mac_improves_with_dimension(self, model):
        # Figure 12(c): bigger MZIMs amortize static power over more MACs.
        grid = model.mac_energy_sweep([8, 16, 32, 64], [8])
        series = [grid[(n, 8)] for n in (8, 16, 32, 64)]
        assert series[0] > series[-1]

    def test_energy_per_mac_improves_with_wavelengths(self, model):
        # More wavelengths amortize the per-window static energy over more
        # concurrent MVMs (saturated windows: p vectors on p wavelengths).
        grid = model.mac_energy_sweep([16], [1, 2, 4, 8])
        series = [grid[(16, p)] for p in (1, 2, 4, 8)]
        assert series == sorted(series, reverse=True)
        assert series[0] > series[-1]

    def test_grid_covers_all_points(self, model):
        grid = model.mac_energy_sweep([8, 16], [2, 4])
        assert set(grid) == {(8, 2), (8, 4), (16, 2), (16, 4)}


class TestCalibrationOverride:
    def test_custom_calibration_changes_result(self):
        base = MZIMComputeModel()
        hot = MZIMComputeModel(
            calibration=ComputeCalibration(hold_power_per_mzi_w=1e-3))
        assert hot.matmul_energy(8, 1).static > \
            base.matmul_energy(8, 1).static

    def test_speedup_window(self):
        model = MZIMComputeModel()
        photonic, electrical = model.speedup_window_s(
            64, 8, core_macs_per_s=5e9)
        assert photonic < electrical  # 32768 MACs at 5 GMAC/s >> 6.2 ns
