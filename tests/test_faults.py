"""Tests for the fault-injection + graceful-degradation subsystem.

Covers the DESIGN.md §12 contract layer by layer: the backoff/retry
bookkeeping and the ladder state machine in isolation; the fault
registry's plug-in semantics (mirroring the NoC backend registry); the
faulty-mesh physics; the health monitor; the scheduler's electrical
fallback (with the same drain/conservation property the NoC registry
tests use); and end-to-end campaigns proving each fault class exercises
its designated rung with transitions visible through ``repro.obs``.
"""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.accelerator import plan_offload
from repro.core.control_unit import (
    ComputeRequest,
    HealthMonitor,
    MZIMControlUnit,
)
from repro.core.scheduler import FlumenScheduler
from repro.faults import (
    BackoffPolicy,
    DegradationLadder,
    FaultDomain,
    FaultInjector,
    FaultSchedule,
    FaultyMesh,
    Rung,
    StuckMZI,
    fault_class,
    make_fault,
    register_fault,
    registered_faults,
    temporary_fault,
)
from repro.faults.campaign import (
    CampaignSpec,
    campaign_fault_kinds,
    csv_records,
    run_fault_campaign,
    run_single,
)
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.traffic import TrafficGenerator
from repro.obs import Obs
from repro.photonics.calibration import matrix_error
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.devices import BAR_THETA
from repro.photonics.registry import registered_meshes


class TestBackoffPolicy:
    def test_exponential_growth(self):
        policy = BackoffPolicy(base_cycles=10, factor=2.0, max_retries=3,
                               max_backoff_cycles=1000)
        assert [policy.delay_cycles(a) for a in range(4)] == \
            [10, 20, 40, 80]

    def test_cap_applies(self):
        policy = BackoffPolicy(base_cycles=10, factor=10.0, max_retries=4,
                               max_backoff_cycles=250)
        assert policy.delay_cycles(3) == 250
        assert policy.schedule() == (10, 100, 250, 250, 250)

    def test_schedule_length_is_retries_plus_one(self):
        policy = BackoffPolicy(max_retries=2)
        assert len(policy.schedule()) == 3

    @pytest.mark.parametrize("kwargs", [
        dict(base_cycles=0),
        dict(factor=0.5),
        dict(max_retries=-1),
        dict(base_cycles=100, max_backoff_cycles=50),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy().delay_cycles(-1)


class TestFaultRegistry:
    def test_builtins_registered(self):
        assert set(registered_faults()) >= {
            "stuck_mzi", "phase_drift", "laser_degradation", "dead_link"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("stuck_mzi", StuckMZI)

    def test_unknown_error_lists_registered_kinds(self):
        with pytest.raises(ValueError) as err:
            fault_class("cosmic_ray")
        for kind in registered_faults():
            assert kind in str(err.value)

    def test_temporary_fault_registers_and_restores(self):
        class Toy(StuckMZI):
            pass

        with temporary_fault("toy_fault", Toy):
            assert fault_class("toy_fault") is Toy
            assert "toy_fault" in campaign_fault_kinds()
        with pytest.raises(ValueError):
            fault_class("toy_fault")

    def test_make_fault_passes_parameters(self):
        fault = make_fault("stuck_mzi", mzi_index=5, count=2)
        assert fault.mzi_index == 5 and fault.count == 2

    def test_magnitude_scaling(self):
        assert make_fault("stuck_mzi").with_magnitude(3.0).count == 3
        drift = make_fault("phase_drift", sigma_rad=0.01)
        assert drift.with_magnitude(2.0).sigma_rad == pytest.approx(0.02)
        laser = make_fault("laser_degradation").with_magnitude(2.0)
        assert laser.power_fraction == pytest.approx(1e-2)


class TestFaultSchedule:
    def test_seeded_is_deterministic(self):
        kinds = registered_faults()
        a = FaultSchedule.seeded(kinds, 7, window_cycles=1000)
        b = FaultSchedule.seeded(kinds, 7, window_cycles=1000)
        assert a == b
        assert len(a) == len(kinds)

    def test_injections_land_in_first_half(self):
        schedule = FaultSchedule.seeded(
            registered_faults(), 3, window_cycles=800)
        for event in schedule:
            assert 100 <= event.cycle < 400

    def test_tiny_window_rejected(self):
        with pytest.raises(ValueError, match="window_cycles"):
            FaultSchedule.seeded(["stuck_mzi"], 0, window_cycles=4)

    def test_empty_schedule_injects_nothing(self):
        domain = FaultDomain()
        injector = FaultInjector(FaultSchedule(), domain)
        for cycle in range(100):
            injector.tick(cycle)
        assert injector.injected == [] and injector.pending == 0


class TestFaultyMesh:
    def test_stuck_theta_survives_programming(self):
        target = random_unitary(8, np.random.default_rng(0))
        mesh = FaultyMesh(decompose(target))
        baseline = matrix_error(mesh.measure(), target)
        mesh.stick(3, BAR_THETA)
        stuck_error = matrix_error(mesh.measure(), target)
        assert baseline < 1e-9
        assert stuck_error > baseline

    def test_stick_out_of_range_rejected(self):
        mesh = FaultyMesh(decompose(random_unitary(4,
                                                   np.random.default_rng(0))))
        with pytest.raises(ValueError, match="out of range"):
            mesh.stick(mesh.num_mzis, 0.0)

    def test_drift_is_deterministic_per_seed(self):
        target = random_unitary(6, np.random.default_rng(1))

        def run(seed):
            mesh = FaultyMesh(decompose(target))
            rng = np.random.default_rng(seed)
            for _ in range(5):
                mesh.drift(0.03, rng)
            return matrix_error(mesh.measure(), target)

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_continuous_drift_grows_error(self):
        target = random_unitary(8, np.random.default_rng(2))
        domain = FaultDomain(mesh=FaultyMesh(decompose(target)))
        schedule = FaultSchedule.seeded(["phase_drift"], 5,
                                        window_cycles=512)
        injector = FaultInjector(schedule, domain, seed=5)
        errors = []
        for cycle in range(512):
            injector.tick(cycle)
            if cycle % 128 == 0:
                errors.append(matrix_error(domain.mesh.measure(), target))
        assert domain.mesh.drift_steps > 3
        assert errors[-1] > errors[0]


class TestHealthMonitor:
    def test_healthy_until_first_probe(self):
        monitor = HealthMonitor(mesh_probe=lambda: 1.0)
        assert monitor.healthy
        monitor.probe(0)
        assert not monitor.healthy

    def test_error_threshold(self):
        error = {"value": 0.0}
        monitor = HealthMonitor(mesh_probe=lambda: error["value"],
                                error_threshold=0.05)
        assert monitor.probe(0)["healthy"]
        error["value"] = 0.1
        assert not monitor.probe(64)["healthy"]

    def test_low_power_flags_enob(self):
        monitor = HealthMonitor(power_probe=lambda: 50e-6,
                                min_effective_bits=4.0)
        assert monitor.probe(0)["healthy"]
        starved = HealthMonitor(power_probe=lambda: 50e-9,
                                min_effective_bits=4.0)
        assert not starved.probe(0)["healthy"]

    def test_sample_respects_interval(self):
        monitor = HealthMonitor(mesh_probe=lambda: 0.0, interval_cycles=10)
        assert monitor.sample(0) is not None
        assert monitor.sample(5) is None
        assert monitor.sample(20) is not None
        assert monitor.probes == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="interval_cycles"):
            HealthMonitor(interval_cycles=0)
        with pytest.raises(ValueError, match="error_threshold"):
            HealthMonitor(error_threshold=0.0)


def walk_ladder(ladder: DegradationLadder, target: Rung,
                start_cycle: int = 0) -> int:
    """Drive the ladder protocol with failing probes until ``target``."""
    cycle = start_cycle
    ladder.detect(cycle, error=1.0)
    while ladder.rung is not target:
        cycle = ladder.next_action_cycle
        assert ladder.due(cycle)
        ladder.attempt_started(cycle)
        ladder.attempt_result(cycle, healthy=False, error=1.0)
    return cycle


class TestDegradationLadder:
    def test_detect_arms_recalibrate(self):
        ladder = DegradationLadder()
        assert ladder.healthy
        assert ladder.detect(100, error=0.2)
        assert ladder.rung is Rung.RECALIBRATE
        assert ladder.next_action_cycle == 100 + \
            ladder.policy.delay_cycles(0)
        # A second detection while armed is a no-op.
        assert not ladder.detect(101, error=0.3)

    def test_full_walk_to_electrical(self):
        policy = BackoffPolicy(base_cycles=8, factor=2.0, max_retries=2,
                               max_backoff_cycles=64)
        ladder = DegradationLadder(fabric_ports=8, policy=policy)
        walk_ladder(ladder, Rung.ELECTRICAL)
        assert ladder.electrical_fallback
        assert ladder.next_action_cycle is None
        assert not ladder.due(10**9)
        # 3 working rungs x (1 + max_retries) attempts each.
        assert ladder.stats.attempts == 3 * (policy.max_retries + 1)
        assert ladder.stats.escalations == 3
        # Backoff bookkeeping: each non-terminal rung pays the full
        # schedule (entry delay + one per failed retry).
        assert ladder.stats.backoff_cycles == 3 * sum(policy.schedule())

    def test_shrink_halves_cap_to_even_floor(self):
        ladder = DegradationLadder(fabric_ports=8,
                                   policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.SHRINK)
        assert ladder.partition_ports_cap == 4
        # Recovery keeps the shrunken cap: the physical fault persists.
        ladder.attempt_started(ladder.next_action_cycle)
        ladder.attempt_result(ladder.next_action_cycle, healthy=True)
        assert ladder.healthy
        assert ladder.partition_ports_cap == 4
        assert ladder.stats.recovered_rungs == ["SHRINK"]

    def test_shrink_respects_minimum(self):
        ladder = DegradationLadder(fabric_ports=4, min_partition_ports=4,
                                   policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.SHRINK)
        assert ladder.partition_ports_cap == 4

    def test_transitions_recorded_with_reasons(self):
        ladder = DegradationLadder(policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.ELECTRICAL)
        reasons = [t.reason for t in ladder.transitions]
        assert reasons == ["health_probe"] + ["retries_exhausted"] * 3
        names = [t.dst for t in ladder.transitions]
        assert names == ["RECALIBRATE", "SHRINK", "REROUTE", "ELECTRICAL"]

    def test_obs_counters_and_trace_instants(self):
        obs = Obs.active()
        ladder = DegradationLadder(policy=BackoffPolicy(max_retries=0),
                                   obs=obs)
        walk_ladder(ladder, Rung.ELECTRICAL)
        counters = obs.metrics.to_dict()["counters"]
        assert counters["core.ladder_detections"] == 1
        assert counters["core.ladder_escalations"] == 3
        assert counters["core.ladder_transitions{dst=ELECTRICAL}"] == 1
        events = [e for e in obs.tracer.events
                  if e["name"] == "ladder_transition"]
        assert len(events) == 4
        assert all(e["args"]["reason"] for e in events)

    def test_to_dict_round_trips_to_json(self):
        ladder = DegradationLadder(policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.REROUTE)
        ladder.mark_dead_port(3)
        snapshot = json.loads(json.dumps(ladder.to_dict()))
        assert snapshot["rung"] == "REROUTE"
        assert snapshot["unusable_ports"] == [3]
        assert snapshot["rung_entries"] == {
            "RECALIBRATE": 1, "SHRINK": 1, "REROUTE": 1}


class TestElectricalFallback:
    def _make(self, ladder=None):
        system = SystemConfig()
        net = FlumenNetwork(16)
        control = MZIMControlUnit(net, system)
        scheduler = FlumenScheduler(control, system, ladder=ladder)
        return net, control, scheduler

    def _submit(self, control, cycle, ports=4):
        plan = plan_offload(8, 8, 64, 8, 8)
        control.compute_buffer.append(ComputeRequest(
            node=cycle % 16, plan=plan, matrix_key="t",
            submit_cycle=cycle, ports_needed=ports,
            duration_override=40))
        control.requests_received += 1

    def test_electrical_jobs_complete(self):
        ladder = DegradationLadder(policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.ELECTRICAL)
        net, control, scheduler = self._make(ladder)
        for cycle in range(3):
            self._submit(control, cycle)
        scheduler.drain(max_cycles=60_000)
        assert scheduler.stats.completed == 3
        assert scheduler.stats.electrical_completions == 3
        assert not scheduler.active  # nothing placed on the fabric

    def test_partition_cap_limits_grants(self):
        obs = Obs.active()
        ladder = DegradationLadder(
            fabric_ports=8, policy=BackoffPolicy(max_retries=0), obs=obs)
        walk_ladder(ladder, Rung.SHRINK)
        system = SystemConfig()
        net = FlumenNetwork(16, obs=obs)
        control = MZIMControlUnit(net, system, obs=obs)
        scheduler = FlumenScheduler(control, system, obs=obs,
                                    ladder=ladder)
        self._submit(control, 0, ports=8)
        scheduler.drain(max_cycles=10_000)
        assert scheduler.stats.completed == 1
        assert scheduler.stats.electrical_completions == 0
        blocks = [e for e in obs.tracer.events
                  if e["name"] == "mzim_block"]
        assert blocks, "the request should still be granted photonically"
        for event in blocks:
            width = event["args"]["hi_port"] - event["args"]["lo_port"]
            assert width <= ladder.partition_ports_cap

    @settings(max_examples=10, deadline=None)
    @given(load=st.floats(0.05, 0.3), seed=st.integers(0, 2**16))
    def test_fallback_conserves_packets(self, load, seed):
        # Same conservation property the NoC registry tests assert: a
        # finite offered trace fully drains even while every compute
        # request detours to the electrical path.
        ladder = DegradationLadder(policy=BackoffPolicy(max_retries=0))
        walk_ladder(ladder, Rung.ELECTRICAL)
        net, control, scheduler = self._make(ladder)
        traffic = TrafficGenerator(16, "uniform", load, seed=seed)
        for cycle in range(300):
            for packet in traffic.packets_for_cycle(net.cycle):
                net.offer_packet(packet)
            if cycle % 60 == 0:
                self._submit(control, cycle)
            scheduler.tick()
            net.step()
        scheduler.drain(max_cycles=60_000)
        assert net.quiescent()
        assert net.injected_packets == net.latency.received
        assert scheduler.stats.electrical_completions == \
            scheduler.stats.completed == 5


class TestReroute:
    def test_reroute_pair_penalizes_setup(self):
        net = FlumenNetwork(16)
        net.reroute_pair(2, 9, 6)
        assert net.reroute_penalties[(2, 9)] == 6
        with pytest.raises(ValueError):
            net.reroute_pair(2, 9, -1)

    def test_rerouted_traffic_still_delivers(self):
        net = FlumenNetwork(16)
        net.reroute_pair(0, 5, 8)
        traffic = TrafficGenerator(16, "uniform", 0.2, seed=3)
        net.run(traffic, cycles=400, warmup=0)
        for _ in range(10_000):
            if net.quiescent():
                break
            net.step()
        assert net.injected_packets == net.latency.received


#: Each built-in fault class must demonstrably exercise its designated
#: ladder rung end to end (the acceptance criterion for DESIGN.md §12).
RUNG_CASES = [
    ("stuck_mzi", 1.0, "SHRINK"),
    ("phase_drift", 1.0, "RECALIBRATE"),
    ("dead_link", 1.0, "REROUTE"),
    ("laser_degradation", 3.0, "ELECTRICAL"),
]


@pytest.fixture(scope="module", params=registered_meshes())
def rung_records(request):
    records = {}
    for kind, magnitude, _ in RUNG_CASES:
        spec = CampaignSpec(fault=kind, magnitude=magnitude, cycles=1200,
                            golden_reference=False,
                            mesh_architecture=request.param)
        records[kind] = run_single(spec, 0)
    return records


class TestCampaignEndToEnd:
    @pytest.mark.parametrize("kind,magnitude,rung", RUNG_CASES)
    def test_each_fault_class_reaches_its_rung(self, rung_records, kind,
                                               magnitude, rung):
        record = rung_records[kind]
        assert record["detected_cycle"] is not None
        assert record["detection_latency"] >= 0
        if rung == "ELECTRICAL":
            assert record["final_rung"] == "ELECTRICAL"
            assert not record["recovered"]
            assert record["electrical_completions"] > 0
            # Digital fallback restores full precision...
            assert record["enob_final"] == 8.0
            # ...at a visible runtime/energy cost.
            assert record["runtime_overhead_cycles"] > 0
            assert record["energy_overhead_j"] > 0
        else:
            assert record["recovered"]
            assert rung in record["ladder"]["recovered_rungs"]
        assert record["packets_conserved"]
        assert record["network_quiescent"]

    def test_stuck_mzi_degradation_is_bounded(self, rung_records):
        record = rung_records["stuck_mzi"]
        # Recovery re-places the circuit on fault-free columns, so the
        # post-recovery ENOB is within a bit of the nominal fabric.
        assert record["enob_nominal"] > 6.0
        assert record["enob_final"] >= record["enob_nominal"] - 1.0
        assert record["enob_loss_bits"] <= 1.0

    def test_run_is_deterministic(self):
        spec = CampaignSpec(fault="stuck_mzi", cycles=600,
                            golden_reference=False)
        a = run_single(spec, 0)
        b = run_single(spec, 0)
        assert a == b
        assert run_single(spec, 1) != a

    def test_transitions_visible_through_obs(self):
        obs = Obs.active()
        spec = CampaignSpec(fault="stuck_mzi", cycles=1200,
                            golden_reference=False)
        run_single(spec, 0, obs=obs)
        counters = obs.metrics.to_dict()["counters"]
        assert counters["photonics.faults_injected{kind=stuck_mzi}"] == 1
        assert counters["core.health_unhealthy"] >= 1
        assert counters["core.ladder_transitions{dst=RECALIBRATE}"] >= 1
        injects = [e for e in obs.tracer.events
                   if e["name"] == "inject_stuck_mzi"]
        transitions = [e for e in obs.tracer.events
                       if e["name"] == "ladder_transition"]
        assert injects and transitions
        # Trace rows live on the existing layers (trace --check safe):
        # the pid of every fault event maps to a registered layer name.
        layer_by_pid = {e["pid"]: e["args"]["name"] for e in
                        obs.tracer.metadata_events()
                        if e["name"] == "process_name"}
        assert {layer_by_pid[e["pid"]] for e in injects} == {"photonics"}
        assert {layer_by_pid[e["pid"]] for e in transitions} == {"core"}

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="cosmic_ray"):
            CampaignSpec(fault="cosmic_ray")

    def test_csv_rows_are_scalar(self):
        spec = CampaignSpec(fault="dead_link", runs=2, cycles=600,
                            golden_reference=False)
        campaign = run_fault_campaign(spec)
        rows = csv_records([campaign])
        assert len(rows) == 2
        for row in rows:
            assert all(not isinstance(v, (list, dict))
                       for v in row.values())


class TestZeroFaultCampaign:
    def test_golden_reference_matches_pinned_numbers(self):
        from tests.test_golden_numbers import GOLDEN

        spec = CampaignSpec(fault="none", runs=1, cycles=600)
        campaign = run_fault_campaign(spec)
        record = campaign["runs"][0]
        assert record["detected_cycle"] is None
        assert record["recalibrations"] == 0
        assert record["final_rung"] == "HEALTHY"
        reference = campaign["golden_reference"]
        for config, want in GOLDEN.items():
            got = reference[config]
            assert got["runtime_s"] == want["runtime_s"]
            assert got["energy_total_j"] == want["energy_total_j"]
            assert got["energy"]["nop"] == want["nop_j"]
            assert got["energy"]["mzim"] == want["mzim_j"]
            assert got["avg_packet_latency"] == want["avg_packet_latency"]


class TestFaultsCLI:
    def test_two_runs_byte_identical(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = ["faults", "--fault", "stuck_mzi", "--runs", "1",
                "--cycles", "600", "--seed", "0", "--no-cache",
                "--no-golden", "--jobs", "1"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--out", str(a)]) == 0
        assert main(argv + ["--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_fault_rejected(self, caplog):
        from repro.__main__ import main

        assert main(["faults", "--fault", "gamma_ray"]) == 2
        assert "gamma_ray" in caplog.text
        assert "stuck_mzi" in caplog.text  # the registered list is shown


def test_spec_round_trips_through_task_params():
    # The sweep task rebuilds CampaignSpec (incl. BackoffPolicy) from the
    # JSON-safe params dict the engine hashes for its cache key.
    from repro.analysis.tasks import fault_point

    spec = CampaignSpec(fault="stuck_mzi", runs=1, cycles=600,
                        golden_reference=False)
    params = json.loads(json.dumps(dataclasses.asdict(spec)))
    result = fault_point(params, seed=123)
    assert result["spec"]["fault"] == "stuck_mzi"
    assert result["spec"]["seed"] == spec.seed  # explicit seed wins
    assert result["runs"][0] == run_single(spec, 0)
