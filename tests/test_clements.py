"""Tests for the Clements rectangular-mesh decomposition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.clements import (
    DecompositionError,
    MZIMesh,
    decompose,
    is_unitary,
    random_unitary,
)


def haar(n: int, seed: int) -> np.ndarray:
    return random_unitary(n, np.random.default_rng(seed))


class TestIsUnitary:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(5))

    def test_permutation_is_unitary(self):
        assert is_unitary(np.eye(4)[[2, 0, 3, 1]])

    def test_scaled_identity_is_not(self):
        assert not is_unitary(0.5 * np.eye(3))

    def test_rectangular_is_not(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_haar_random_is_unitary(self):
        assert is_unitary(haar(7, 0))


class TestDecompose:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8, 12, 16])
    def test_reconstruction_machine_precision(self, n):
        u = haar(n, n)
        mesh = decompose(u)
        assert np.allclose(mesh.matrix(), u, atol=1e-12)

    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    def test_mzi_count_is_n_choose_2(self, n):
        mesh = decompose(haar(n, n + 100))
        assert mesh.num_mzis == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_rectangular_depth_is_n_columns(self, n):
        # The Clements arrangement is optimally shallow: N columns.
        mesh = decompose(haar(n, n + 200))
        assert mesh.num_columns <= n

    def test_identity_gives_trivial_phases(self):
        mesh = decompose(np.eye(6))
        assert np.allclose(mesh.matrix(), np.eye(6), atol=1e-12)

    def test_single_mode(self):
        mesh = decompose(np.array([[1j]]))
        assert mesh.num_mzis == 0
        assert np.allclose(mesh.matrix(), [[1j]])

    def test_rejects_non_unitary(self):
        with pytest.raises(DecompositionError):
            decompose(np.ones((4, 4)))

    def test_rejects_rectangular(self):
        with pytest.raises(DecompositionError):
            decompose(np.ones((3, 4)))

    def test_propagate_matches_matrix_product(self):
        u = haar(8, 7)
        mesh = decompose(u)
        rng = np.random.default_rng(9)
        a = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        assert np.allclose(mesh.propagate(a), u @ a, atol=1e-12)

    def test_propagate_wdm_batch(self):
        u = haar(6, 8)
        mesh = decompose(u)
        rng = np.random.default_rng(10)
        a = rng.standard_normal((6, 5)) + 1j * rng.standard_normal((6, 5))
        assert np.allclose(mesh.propagate(a), u @ a, atol=1e-12)

    def test_propagate_rejects_wrong_dimension(self):
        mesh = decompose(haar(4, 11))
        with pytest.raises(ValueError):
            mesh.propagate(np.ones(5, dtype=complex))

    def test_output_phases_are_unit_magnitude(self):
        mesh = decompose(haar(9, 12))
        assert np.allclose(np.abs(mesh.output_phases), 1.0, atol=1e-9)

    def test_theta_within_physical_range(self):
        mesh = decompose(haar(10, 13))
        for mzi in mesh.mzis:
            assert -1e-9 <= mzi.theta <= math.pi + 1e-9

    def test_permutation_yields_pure_cross_bar(self):
        rng = np.random.default_rng(14)
        perm = np.eye(8)[list(rng.permutation(8))]
        mesh = decompose(perm)
        for mzi in mesh.mzis:
            assert min(abs(mzi.theta), abs(mzi.theta - math.pi)) < 1e-9

    def test_real_rotation_matrix(self):
        t = 0.7
        rot = np.array([[math.cos(t), -math.sin(t)],
                        [math.sin(t), math.cos(t)]])
        mesh = decompose(rot)
        assert np.allclose(mesh.matrix(), rot, atol=1e-12)


class TestColumnAssignment:
    def test_columns_respect_mode_conflicts(self):
        mesh = decompose(haar(8, 20))
        # No two MZIs sharing a mode may share a column.
        seen: dict[tuple[int, int], int] = {}
        for mzi in mesh.mzis:
            for mode in (mzi.top_mode, mzi.top_mode + 1):
                key = (mode, mzi.column)
                assert key not in seen, "mode/column conflict"
                seen[key] = 1

    def test_columns_nondecreasing_dependencies(self):
        mesh = decompose(haar(8, 21))
        last_col_for_mode = [-1] * 8
        for mzi in mesh.mzis:
            m = mzi.top_mode
            assert mzi.column > last_col_for_mode[m] or \
                mzi.column > last_col_for_mode[m + 1] or \
                (last_col_for_mode[m] == -1 and last_col_for_mode[m + 1] == -1)
            last_col_for_mode[m] = mzi.column
            last_col_for_mode[m + 1] = mzi.column

    def test_column_of_matches_state(self):
        mesh = decompose(haar(6, 22))
        for idx, mzi in enumerate(mesh.mzis):
            assert mesh.column_of(idx) == mzi.column


class TestPathTracing:
    def test_identity_mesh_has_no_hops(self):
        mesh = MZIMesh(n=4)
        hops = mesh.mzis_per_path()
        assert (np.diag(hops) == 0).all()
        off_diag = hops[~np.eye(4, dtype=bool)]
        assert (off_diag == -1).all()

    def test_permutation_paths_connected_only_to_targets(self):
        rng = np.random.default_rng(30)
        targets = list(rng.permutation(8))
        perm = np.zeros((8, 8))
        for src, dst in enumerate(targets):
            perm[dst, src] = 1.0
        mesh = decompose(perm)
        hops = mesh.mzis_per_path()
        for src, dst in enumerate(targets):
            assert hops[dst, src] >= 0
            for other in range(8):
                if other != dst:
                    assert hops[other, src] == -1

    def test_path_lengths_vary_in_permutation_mesh(self):
        # The paper (Section 3.1.2): path lengths differ, motivating the
        # attenuator column.
        lengths = set()
        for seed in range(6):
            targets = list(np.random.default_rng(seed).permutation(8))
            perm = np.zeros((8, 8))
            for src, dst in enumerate(targets):
                perm[dst, src] = 1.0
            hops = decompose(perm).mzis_per_path()
            lengths.update(int(hops[dst, src])
                           for src, dst in enumerate(targets))
        assert len(lengths) > 1

    def test_hops_bounded_by_mesh_depth(self):
        u = haar(8, 33)
        mesh = decompose(u)
        hops = mesh.mzis_per_path()
        assert hops.max() <= mesh.num_columns


class TestRandomUnitary:
    def test_output_is_unitary(self):
        assert is_unitary(random_unitary(12, np.random.default_rng(1)))

    def test_deterministic_with_seeded_rng(self):
        a = random_unitary(5, np.random.default_rng(42))
        b = random_unitary(5, np.random.default_rng(42))
        assert np.allclose(a, b)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=10),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_decompose_reconstructs_any_unitary(n, seed):
    u = haar(n, seed)
    mesh = decompose(u)
    assert np.allclose(mesh.matrix(), u, atol=1e-10)
    assert mesh.num_mzis == n * (n - 1) // 2


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_propagation_preserves_energy(n, seed):
    # Unitary meshes conserve total optical power.
    u = haar(n, seed)
    mesh = decompose(u)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    b = mesh.propagate(a)
    assert np.linalg.norm(b) == pytest.approx(np.linalg.norm(a), rel=1e-9)
