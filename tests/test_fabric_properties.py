"""Hypothesis property tests on Flumen fabric partition invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.fabric import FlumenFabric, PartitionKind


def partitions_tile(fabric: FlumenFabric) -> bool:
    """Partitions must tile [0, n) contiguously without overlap."""
    cursor = 0
    for part in fabric.partitions:
        if part.lo != cursor or part.hi <= part.lo:
            return False
        cursor = part.hi
    return cursor == fabric.n


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6), ops=st.integers(1, 12))
def test_property_random_split_release_keeps_tiling(seed, ops):
    rng = np.random.default_rng(seed)
    fabric = FlumenFabric(8)
    created = []
    for _ in range(ops):
        if created and rng.random() < 0.4:
            fabric.release(created.pop(int(rng.integers(len(created)))))
        else:
            # Try a random even-sized range; invalid choices must raise
            # without corrupting state.
            lo = int(rng.integers(0, 7))
            hi = lo + 2 * int(rng.integers(1, 4))
            try:
                created.append(fabric.split(lo, min(hi, 8)))
            except Exception:
                pass
        assert partitions_tile(fabric)
    # Releasing everything restores one communication partition.
    for part in list(created):
        fabric.release(part)
    assert partitions_tile(fabric)
    assert len(fabric.partitions) == 1
    assert fabric.partitions[0].kind is PartitionKind.COMMUNICATION


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_comm_programming_conserves_power(seed):
    rng = np.random.default_rng(seed)
    fabric = FlumenFabric(8)
    targets = list(rng.permutation(8))
    pairs = {s: int(d) for s, d in enumerate(targets) if s != int(d)}
    fabric.configure_communication(pairs)
    fields = np.zeros(8, dtype=complex)
    src = next(iter(pairs)) if pairs else 0
    fields[src] = 1.0
    out = np.abs(fabric.propagate_comm(fields)) ** 2
    # Loss-only propagation: total power never grows.
    assert out.sum() <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_property_equalized_attenuation_never_amplifies(seed):
    rng = np.random.default_rng(seed)
    fabric = FlumenFabric(8)
    targets = list(rng.permutation(8))
    pairs = {s: int(d) for s, d in enumerate(targets) if s != int(d)}
    fabric.configure_communication(pairs)
    assert (fabric.attenuator_transmission <= 1.0 + 1e-12).all()
    assert (fabric.attenuator_transmission > 0.0).all()
