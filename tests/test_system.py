"""Integration tests for the end-to-end system model (Figures 13-15).

These run the full pipeline on *reduced* workload shapes so the suite
stays fast; the benchmarks run the paper shapes.
"""

import pytest

from repro.core.system import CONFIGURATIONS, SystemModel
from repro.workloads import ImageBlur, JPEGWorkload, Rotation3D, VGG16FC


@pytest.fixture(scope="module")
def model():
    return SystemModel()


@pytest.fixture(scope="module")
def blur_runs(model):
    return model.run_all(ImageBlur(height=64, width=64))


class TestBasics:
    def test_unknown_configuration_rejected(self, model):
        with pytest.raises(ValueError):
            model.run(Rotation3D(vertices=34), "torus")

    def test_all_configurations_produce_results(self, blur_runs):
        assert set(blur_runs) == set(CONFIGURATIONS)
        for run in blur_runs.values():
            assert run.runtime_s > 0
            assert run.energy.total > 0

    def test_edp_is_energy_times_delay(self, blur_runs):
        run = blur_runs["mesh"]
        assert run.edp == pytest.approx(run.energy.total * run.runtime_s)


class TestFlumenAcceleration:
    def test_flumen_a_faster_than_baselines(self, blur_runs):
        fa = blur_runs["flumen_a"]
        for cfg in ("ring", "mesh", "optbus", "flumen_i"):
            assert fa.runtime_s < blur_runs[cfg].runtime_s, cfg

    def test_flumen_a_lower_energy(self, blur_runs):
        fa = blur_runs["flumen_a"]
        for cfg in ("ring", "mesh", "optbus", "flumen_i"):
            assert fa.energy.total < blur_runs[cfg].energy.total, cfg

    def test_flumen_a_offloads_macs(self, blur_runs):
        assert blur_runs["flumen_a"].offloaded_macs > 0
        assert blur_runs["mesh"].offloaded_macs == 0

    def test_core_energy_drops_under_acceleration(self, blur_runs):
        # Section 5.4.1: compute moves off the cores.
        assert blur_runs["flumen_a"].energy.core < \
            blur_runs["mesh"].energy.core

    def test_dram_energy_unchanged(self, blur_runs):
        # Section 5.4.1: the same data still comes from DRAM.
        mesh = blur_runs["mesh"].energy.dram
        fa = blur_runs["flumen_a"].energy.dram
        assert fa == pytest.approx(mesh, rel=0.2)

    def test_l1_l2_energy_reduced(self, blur_runs):
        mesh = blur_runs["mesh"]
        fa = blur_runs["flumen_a"]
        assert fa.energy.l1 < mesh.energy.l1
        assert fa.energy.l2 <= mesh.energy.l2

    def test_mzim_energy_only_under_acceleration(self, blur_runs):
        assert blur_runs["flumen_a"].energy.mzim > 0
        for cfg in ("ring", "mesh", "optbus", "flumen_i"):
            assert blur_runs[cfg].energy.mzim == 0.0


class TestBaselineOrdering:
    def test_electrical_nop_energy_exceeds_photonic(self, blur_runs):
        assert blur_runs["mesh"].energy.nop > \
            blur_runs["flumen_i"].energy.nop

    def test_ring_nop_energy_worst(self, blur_runs):
        assert blur_runs["ring"].energy.nop == max(
            blur_runs[c].energy.nop
            for c in ("ring", "mesh", "optbus", "flumen_i"))

    def test_flumen_i_close_to_optbus(self, blur_runs):
        # Section 5.4.1: Flumen-I consumes similar energy to OptBus.
        fi = blur_runs["flumen_i"].energy.total
        ob = blur_runs["optbus"].energy.total
        assert fi == pytest.approx(ob, rel=0.15)


class TestWorkloadTrends:
    def test_vgg_speedup_lowest(self, model):
        # Section 5.4.2: the big low-reuse kernel benefits least.
        vgg = model.run_all(VGG16FC(outputs=250, inputs=1024))
        rot = model.run_all(Rotation3D())
        vgg_speedup = vgg["mesh"].runtime_s / vgg["flumen_a"].runtime_s
        rot_speedup = rot["mesh"].runtime_s / rot["flumen_a"].runtime_s
        assert vgg_speedup < rot_speedup

    def test_rotation_needs_no_accumulation(self, model):
        run = model.run(Rotation3D(), "flumen_a")
        assert run.offloaded_macs == 16 * 306

    def test_jpeg_speedup_positive(self, model):
        runs = model.run_all(JPEGWorkload(height=64, width=64))
        assert runs["mesh"].runtime_s / runs["flumen_a"].runtime_s > 1.0
