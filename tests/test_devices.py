"""Tests for photonic device models."""

import math

import numpy as np
import pytest

from repro.photonics.devices import (
    BAR_THETA,
    CROSS_THETA,
    SPLIT_THETA,
    MicroringResonator,
    MZIState,
    Photodiode,
    Waveguide,
    attenuator_theta,
    attenuator_transmission,
    is_bar,
    is_cross,
    mzi_insertion_loss_db,
    mzi_transfer,
    splitter_tree_loss_db,
)


class TestMZITransfer:
    def test_is_unitary_for_arbitrary_phases(self):
        for theta in (0.0, 0.3, math.pi / 2, 2.0, math.pi):
            for phi in (0.0, 1.0, math.pi, 5.0):
                t = mzi_transfer(theta, phi)
                assert np.allclose(t.conj().T @ t, np.eye(2), atol=1e-12)

    def test_cross_state_swaps_ports(self):
        t = mzi_transfer(CROSS_THETA)
        power = np.abs(t) ** 2
        assert power[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert power[1, 0] == pytest.approx(1.0)
        assert power[0, 1] == pytest.approx(1.0)

    def test_bar_state_keeps_ports(self):
        t = mzi_transfer(BAR_THETA)
        power = np.abs(t) ** 2
        assert power[0, 0] == pytest.approx(1.0)
        assert power[1, 0] == pytest.approx(0.0, abs=1e-12)

    def test_split_state_is_50_50(self):
        t = mzi_transfer(SPLIT_THETA)
        power = np.abs(t) ** 2
        assert power[0, 0] == pytest.approx(0.5)
        assert power[1, 0] == pytest.approx(0.5)

    def test_phi_only_adds_phase_not_power(self):
        p0 = np.abs(mzi_transfer(1.0, 0.0)) ** 2
        p1 = np.abs(mzi_transfer(1.0, 2.2)) ** 2
        assert np.allclose(p0, p1)

    def test_matches_paper_equation_1(self):
        theta, phi = 1.1, 0.7
        half = theta / 2
        expected = 1j * np.exp(-1j * half) * np.array(
            [[np.exp(1j * phi) * np.sin(half), np.cos(half)],
             [np.exp(1j * phi) * np.cos(half), -np.sin(half)]])
        assert np.allclose(mzi_transfer(theta, phi), expected)


class TestMZIState:
    def test_splitting_ratio_endpoints(self):
        assert MZIState(0, CROSS_THETA).splitting_ratio == pytest.approx(0.0)
        assert MZIState(0, BAR_THETA).splitting_ratio == pytest.approx(1.0)
        assert MZIState(0, SPLIT_THETA).splitting_ratio == pytest.approx(0.5)

    def test_with_phases_preserves_position(self):
        s = MZIState(3, 0.1, 0.2, column=5)
        s2 = s.with_phases(1.0, 2.0)
        assert (s2.top_mode, s2.column) == (3, 5)
        assert (s2.theta, s2.phi) == (1.0, 2.0)

    def test_state_predicates(self):
        assert is_cross(CROSS_THETA)
        assert is_bar(BAR_THETA)
        assert not is_cross(BAR_THETA)
        assert not is_bar(SPLIT_THETA)

    def test_transfer_property_matches_function(self):
        s = MZIState(0, 0.8, 0.4)
        assert np.allclose(s.transfer, mzi_transfer(0.8, 0.4))


class TestAttenuator:
    def test_full_transmission_at_pi(self):
        assert attenuator_transmission(math.pi) == pytest.approx(1.0)

    def test_blocked_at_zero(self):
        assert attenuator_transmission(0.0) == pytest.approx(0.0)

    def test_half_transmission_at_split(self):
        assert attenuator_transmission(SPLIT_THETA) == pytest.approx(0.5)

    @pytest.mark.parametrize("t", [0.0, 0.1, 0.25, 0.5, 0.9, 1.0])
    def test_theta_roundtrip(self, t):
        assert attenuator_transmission(attenuator_theta(t)) == pytest.approx(t)

    def test_theta_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            attenuator_theta(1.5)
        with pytest.raises(ValueError):
            attenuator_theta(-0.1)


class TestWaveguide:
    def test_loss_combines_straight_and_bent(self):
        wg = Waveguide(straight_cm=2.0, bent_cm=0.5)
        assert wg.loss_db == pytest.approx(2.0 * 1.5 + 0.5 * 3.8)

    def test_zero_length_is_lossless(self):
        wg = Waveguide()
        assert wg.loss_db == 0.0
        assert wg.transmission == 1.0

    def test_transmission_matches_db(self):
        wg = Waveguide(straight_cm=1.0)
        assert wg.transmission == pytest.approx(10 ** (-1.5 / 10))


class TestMicroring:
    def test_thru_transmission_compounds(self):
        mrr = MicroringResonator()
        one = mrr.thru_transmission(1)
        ten = mrr.thru_transmission(10)
        assert ten == pytest.approx(one ** 10)

    def test_drop_loss_is_1db(self):
        mrr = MicroringResonator()
        assert mrr.drop_transmission() == pytest.approx(10 ** -0.1)

    def test_power_accounting(self):
        mrr = MicroringResonator()
        assert mrr.active_power_w() == pytest.approx(1.5e-3)
        assert mrr.static_power_w() == pytest.approx(1e-3)


class TestPhotodiode:
    def test_sensitivity_conversion(self):
        pd = Photodiode()
        assert pd.sensitivity_w == pytest.approx(1e-6)  # -30 dBm

    def test_photocurrent_includes_dark_current(self):
        pd = Photodiode()
        assert pd.photocurrent_a(0.0) == pytest.approx(25e-12)
        assert pd.photocurrent_a(1e-3) == pytest.approx(1e-3, rel=1e-6)

    def test_photocurrent_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Photodiode().photocurrent_a(-1.0)

    def test_detects_at_sensitivity(self):
        pd = Photodiode()
        assert pd.detects(pd.sensitivity_w)
        assert not pd.detects(pd.sensitivity_w / 10)


class TestLossHelpers:
    def test_mzi_insertion_loss_default(self):
        assert mzi_insertion_loss_db() == pytest.approx(0.27)

    def test_splitter_tree_fanout_one_is_free(self):
        assert splitter_tree_loss_db(1) == 0.0

    def test_splitter_tree_doubles_per_stage(self):
        two = splitter_tree_loss_db(2)
        four = splitter_tree_loss_db(4)
        assert four == pytest.approx(2 * two)

    def test_splitter_tree_rejects_zero_fanout(self):
        with pytest.raises(ValueError):
            splitter_tree_loss_db(0)
