"""Tests for the extension features: rendering, 4:2:0 JPEG, adaptive
routing."""

import numpy as np
import pytest

from repro.noc.network import Network
from repro.noc.topology import (
    LOCAL_PORT,
    MeshTopology,
    WestFirstMeshTopology,
    make_topology,
)
from repro.noc.traffic import TrafficGenerator
from repro.photonics.clements import decompose
from repro.photonics.fabric import FlumenFabric
from repro.photonics.render import render_fabric, render_mesh
from repro.photonics.routing import permutation_matrix
from repro.workloads import JPEGWorkload
from repro.workloads.jpeg import downsample_2x2, upsample_2x2


class TestRenderMesh:
    def test_crossbar_states_rendered(self):
        mesh = decompose(permutation_matrix([1, 0, 3, 2]))
        art = render_mesh(mesh)
        assert "X" in art or "=" in art
        assert art.count("\n") == 3  # 4 ports -> 4 lines

    def test_splitting_state_rendered(self):
        from repro.photonics.routing import program_broadcast
        art = render_mesh(program_broadcast(0, 4))
        assert "/" in art

    def test_port_labels_optional(self):
        mesh = decompose(np.eye(4))
        with_labels = render_mesh(mesh, port_labels=True)
        without = render_mesh(mesh, port_labels=False)
        assert with_labels != without


class TestRenderFabric:
    def test_partitioned_fabric_shows_barrier(self):
        fab = FlumenFabric(8)
        fab.split(4, 8, matrix=np.eye(4))
        fab.configure_communication({0: 3, 3: 0})
        art = render_fabric(fab)
        assert "barrier" in art
        assert "(compute)" in art
        assert "(comm)" in art
        assert "legend" in art

    def test_idle_fabric_renders(self):
        art = render_fabric(FlumenFabric(8))
        assert "(idle)" in art

    def test_attenuation_digits_reflect_equalization(self):
        fab = FlumenFabric(8)
        fab.configure_communication({0: 1, 2: 7})
        art = render_fabric(fab)
        digits = [line.split("| ")[1][0] for line in art.splitlines()
                  if "| " in line]
        assert any(d != "9" for d in digits) or \
            fab.attenuator_transmission.min() > 0.9


class TestChromaSubsampling:
    def test_downsample_shape(self):
        plane = np.arange(32 * 48, dtype=float).reshape(32, 48)
        small = downsample_2x2(plane)
        assert small.shape == (16, 24)

    def test_downsample_is_box_average(self):
        plane = np.zeros((16, 16))
        plane[0, 0] = 4.0
        assert downsample_2x2(plane)[0, 0] == pytest.approx(1.0)

    def test_upsample_inverts_shape(self):
        plane = np.random.default_rng(0).random((16, 16))
        assert upsample_2x2(downsample_2x2(plane)).shape == plane.shape

    def test_requires_divisible_dimensions(self):
        with pytest.raises(ValueError):
            downsample_2x2(np.ones((8, 8)))

    def test_420_improves_compression_ratio(self):
        wl = JPEGWorkload(height=64, width=64)
        assert wl.compression_ratio(subsample=True) > \
            wl.compression_ratio(subsample=False)

    def test_420_chroma_planes_quarter_size(self):
        wl = JPEGWorkload(height=64, width=64)
        planes = wl.compress(subsample=True)
        assert planes["cb"].height == 32
        assert planes["y"].height == 64


class TestWestFirstRouting:
    def test_factory_builds_it(self):
        topo = make_topology("mesh_wf", 16)
        assert isinstance(topo, WestFirstMeshTopology)

    def test_west_always_first(self):
        topo = WestFirstMeshTopology(16)
        # From (3,0) to (0,3): must head west regardless of randomness.
        for _ in range(10):
            assert topo.route(3, 12) == MeshTopology.WEST

    def test_adaptive_choice_among_productive_dims(self):
        topo = WestFirstMeshTopology(16, seed=1)
        # From (0,0) to (2,2): east or south, never west/north.
        seen = {topo.route(0, 10) for _ in range(50)}
        assert seen <= {MeshTopology.EAST, MeshTopology.SOUTH}
        assert len(seen) == 2  # genuinely adaptive

    def test_route_to_self_is_local(self):
        assert WestFirstMeshTopology(16).route(5, 5) == LOCAL_PORT

    def test_all_packets_delivered_no_deadlock(self):
        net = Network(make_topology("mesh_wf", 16))
        tg = TrafficGenerator(16, "transpose", 0.4, seed=5)
        net.run(tg, cycles=1500, drain=True)
        assert net.latency.received == net.injected_packets

    def test_beats_xy_on_adversarial_traffic(self):
        def latency(name):
            net = Network(make_topology(name, 16))
            tg = TrafficGenerator(16, "transpose", 0.35, seed=3)
            net.run(tg, cycles=1500, warmup=500, drain=True)
            return net.latency.average

        assert latency("mesh_wf") < latency("mesh")
