"""Tests for the sweep harness and the network energy model."""

import pytest

from repro.noc.energy import NetworkEnergyModel
from repro.noc.simulation import (
    SweepConfig,
    load_sweep,
    make_network,
    run_point,
    saturation_load,
    zero_load_latency,
)

FAST = SweepConfig(cycles=800, warmup=200)


class TestFactory:
    def test_all_topologies_constructible(self):
        for name in ("ring", "mesh", "optbus", "flumen"):
            net = make_network(name, 16)
            assert hasattr(net, "run")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_network("hypercube", 16)


class TestRunPoint:
    def test_returns_populated_result(self):
        r = run_point("mesh", "uniform", 0.1, FAST)
        assert r.topology == "mesh"
        assert r.pattern == "uniform"
        assert r.avg_latency > 0
        assert r.injected_packets > 0

    def test_flumen_lowest_zero_load_latency(self):
        # Figure 11: Flumen has the lowest latency at low load.
        latencies = {t: zero_load_latency(t, FAST)
                     for t in ("ring", "mesh", "optbus", "flumen")}
        assert latencies["flumen"] == min(latencies.values())

    def test_ring_worst_zero_load_latency(self):
        latencies = {t: zero_load_latency(t, FAST)
                     for t in ("ring", "mesh", "flumen")}
        assert latencies["ring"] == max(latencies.values())


class TestLoadSweep:
    def test_latency_monotone_until_saturation(self):
        results = load_sweep("ring", "uniform", [0.05, 0.15, 0.3, 0.5], FAST)
        lat = [r.avg_latency for r in results]
        assert lat == sorted(lat)

    def test_sweep_stops_after_saturation(self):
        results = load_sweep("ring", "uniform",
                             [0.1, 0.5, 0.9, 0.95], FAST)
        assert len(results) < 4 or results[-1].saturated

    def test_flumen_flat_on_permutation_traffic(self):
        results = load_sweep("flumen", "shuffle",
                             [0.1, 0.4, 0.7], FAST)
        lat = [r.avg_latency for r in results]
        assert len(lat) == 3
        assert lat[-1] < lat[0] * 2

    def test_saturation_load_ordering(self):
        # The mesh outlasts the ring under uniform traffic.
        ring = saturation_load("ring", "uniform", config=FAST)
        mesh = saturation_load("mesh", "uniform", config=FAST)
        assert mesh > ring


class TestNetworkEnergy:
    def setup_method(self):
        self.model = NetworkEnergyModel()

    def test_dispatch_by_topology(self):
        for topo in ("ring", "mesh", "optbus", "flumen"):
            r = run_point(topo, "uniform", 0.2, FAST)
            e = self.model.of(r)
            assert e.total > 0

    def test_unknown_topology_rejected(self):
        r = run_point("mesh", "uniform", 0.1, FAST)
        object.__setattr__(r, "topology", "weird")
        with pytest.raises(ValueError):
            self.model.of(r)

    def test_mesh_cheaper_than_ring(self):
        # Section 5.2: Mesh reduces network energy versus Ring.
        ring = self.model.of(run_point("ring", "uniform", 0.25, FAST)).total
        mesh = self.model.of(run_point("mesh", "uniform", 0.25, FAST)).total
        assert mesh < ring

    def test_photonic_cheaper_than_electrical(self):
        mesh = self.model.of(run_point("mesh", "uniform", 0.25, FAST)).total
        flum = self.model.of(run_point("flumen", "uniform", 0.25, FAST)).total
        assert flum < mesh

    def test_flumen_carries_converter_overhead_over_optbus(self):
        # Section 5.2: Flumen > OptBus because of compute DAC/ADC statics.
        r = run_point("flumen", "uniform", 0.25, FAST)
        with_conv = self.model.flumen(r, include_converters=True)
        without = self.model.flumen(r, include_converters=False)
        assert with_conv.total > without.total
        assert without.converter_static == 0.0

    def test_electrical_energy_proportional_to_traffic(self):
        low = self.model.of(run_point("mesh", "uniform", 0.1, FAST))
        high = self.model.of(run_point("mesh", "uniform", 0.4, FAST))
        assert high.dynamic > low.dynamic * 2
