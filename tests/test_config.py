"""Tests for the Table 1 / Table 2 configuration spine."""


import pytest

from repro.config import (
    DEFAULT_DEVICES,
    DEFAULT_SYSTEM,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)


class TestUnitConversions:
    def test_db_to_linear_3db_is_half(self):
        assert db_to_linear(3.0103) == pytest.approx(0.5, rel=1e-4)

    def test_db_to_linear_zero_is_unity(self):
        assert db_to_linear(0.0) == 1.0

    def test_linear_to_db_roundtrip(self):
        for loss in (0.1, 1.0, 3.0, 10.0, 25.5):
            assert linear_to_db(db_to_linear(loss)) == pytest.approx(loss)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-0.5)

    def test_dbm_to_watts_zero_dbm_is_1mw(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_dbm_watts_roundtrip(self):
        for dbm in (-30.0, -20.0, 0.0, 10.0):
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)


class TestSystemConfig:
    def test_table1_core_parameters(self):
        cfg = DEFAULT_SYSTEM
        assert cfg.core.count == 64
        assert cfg.core.frequency_hz == pytest.approx(2.5e9)
        assert cfg.core.l1i_size_b == 32 * 1024
        assert cfg.core.l1d_size_b == 32 * 1024

    def test_table1_cache_parameters(self):
        cfg = DEFAULT_SYSTEM
        assert cfg.cache.l2_size_b == 512 * 1024
        assert cfg.cache.l3_size_b == 16 * 1024 * 1024
        assert cfg.cache.l3_concentration == 4

    def test_table1_link_parameters(self):
        cfg = DEFAULT_SYSTEM
        assert cfg.elec_link.energy_j_per_bit == pytest.approx(1.17e-12)
        assert cfg.elec_link.bandwidth_bps == pytest.approx(800e9)
        assert cfg.phot_link.energy_j_per_bit_64lambda == pytest.approx(0.703e-12)
        assert cfg.phot_link.bandwidth_bps == pytest.approx(640e9)

    def test_table1_flumen_compute_parameters(self):
        cfg = DEFAULT_SYSTEM
        assert cfg.compute.computation_wavelengths == 8
        assert cfg.compute.input_modulation_hz == pytest.approx(5e9)
        assert cfg.compute.mzim_switch_delay_s == pytest.approx(6e-9)
        assert cfg.compute.equivalent_precision_bits == 8

    def test_derived_chiplet_count(self):
        assert DEFAULT_SYSTEM.chiplets == 16

    def test_derived_mzim_ports_is_8x8(self):
        # Section 5.1: the 16-chiplet system uses an 8x8 MZIM.
        assert DEFAULT_SYSTEM.mzim_ports == 8

    def test_scheduler_defaults_match_section_34(self):
        s = DEFAULT_SYSTEM.scheduler
        assert s.tau_cycles == 100
        assert s.eta == pytest.approx(0.40)
        assert s.zeta == pytest.approx(0.50)

    def test_replace_returns_new_config(self):
        from repro.config import CoreConfig
        small = DEFAULT_SYSTEM.replace(core=CoreConfig(count=16))
        assert small.core.count == 16
        assert DEFAULT_SYSTEM.core.count == 64
        assert small.chiplets == 4

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SYSTEM.core.count = 128  # type: ignore[misc]


class TestDeviceParams:
    def test_table2_losses(self):
        d = DEFAULT_DEVICES
        assert d.waveguide.straight_loss_db_per_cm == pytest.approx(1.5)
        assert d.waveguide.bent_loss_db_per_cm == pytest.approx(3.8)
        assert d.y_branch.loss_db == pytest.approx(0.3)
        assert d.mrr.thru_loss_db == pytest.approx(0.1)
        assert d.mrr.drop_loss_db == pytest.approx(1.0)
        assert d.mzi.phase_shifter_loss_db == pytest.approx(0.23)
        assert d.mzi.coupler_loss_db == pytest.approx(0.02)

    def test_table2_powers(self):
        d = DEFAULT_DEVICES
        assert d.mrr.modulation_power_w == pytest.approx(0.5e-3)
        assert d.mrr.thermal_tuning_power_w == pytest.approx(1e-3)
        assert d.mzi.phase_shifter_power_w == pytest.approx(1e-9)
        assert d.converter.adc_power_w == pytest.approx(29e-3)
        assert d.converter.dac_power_w == pytest.approx(50e-3)
        assert d.converter.tia_power_w == pytest.approx(295e-6)
        assert d.converter.serdes_power_w == pytest.approx(1.3e-3)
        assert d.laser.owpe == pytest.approx(0.2)
        assert d.laser.rin_db_per_hz == pytest.approx(-140.0)

    def test_mzi_insertion_loss_combines_couplers_and_shifter(self):
        d = DEFAULT_DEVICES
        assert d.mzi.insertion_loss_db == pytest.approx(0.23 + 2 * 0.02)

    def test_programming_times_match_section_41(self):
        d = DEFAULT_DEVICES
        assert d.mzi.comm_program_time_s == pytest.approx(1e-9)
        assert d.mzi.compute_program_time_s == pytest.approx(6e-9)
