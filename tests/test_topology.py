"""Tests for ring and mesh topology structure and routing."""

import pytest

from repro.noc.topology import (
    LOCAL_PORT,
    MeshTopology,
    RingTopology,
    make_topology,
)


class TestRing:
    def setup_method(self):
        self.ring = RingTopology(16)

    def test_links_are_bidirectional_pairs(self):
        assert self.ring.link(0, RingTopology.CW) == (1, RingTopology.CCW)
        assert self.ring.link(0, RingTopology.CCW) == (15, RingTopology.CW)

    def test_local_port_has_no_link(self):
        assert self.ring.link(5, LOCAL_PORT) is None

    def test_route_prefers_short_direction(self):
        assert self.ring.route(0, 3) == RingTopology.CW
        assert self.ring.route(0, 13) == RingTopology.CCW

    def test_route_to_self_is_local(self):
        assert self.ring.route(7, 7) == LOCAL_PORT

    def test_hop_count_symmetric_distance(self):
        assert self.ring.hop_count(0, 4) == 4
        assert self.ring.hop_count(0, 12) == 4
        assert self.ring.hop_count(0, 8) == 8

    def test_average_hops(self):
        # Bidirectional 16-ring: mean shortest distance = 64/15.
        assert self.ring.average_hops() == pytest.approx(64 / 15, rel=1e-6)

    def test_num_links(self):
        assert self.ring.num_links() == 32  # 16 nodes x 2 directions

    def test_vc_class_marks_wrapping_paths(self):
        # CW from 14 to 1 wraps through 0 -> class 1.
        assert self.ring.vc_class(14, 1) == 1
        # CW from 1 to 4 does not wrap -> class 0.
        assert self.ring.vc_class(1, 4) == 0
        # CCW from 1 to 14 wraps below 0 -> class 1.
        assert self.ring.vc_class(1, 14) == 1

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            self.ring.link(0, 9)


class TestMesh:
    def setup_method(self):
        self.mesh = MeshTopology(16)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            MeshTopology(12)

    def test_coordinates_roundtrip(self):
        for r in range(16):
            x, y = self.mesh.coords(r)
            assert self.mesh.router_at(x, y) == r

    def test_edge_ports_unconnected(self):
        assert self.mesh.link(0, MeshTopology.WEST) is None
        assert self.mesh.link(0, MeshTopology.NORTH) is None
        assert self.mesh.link(15, MeshTopology.EAST) is None

    def test_interior_links(self):
        # Router 5 = (1, 1).
        assert self.mesh.link(5, MeshTopology.EAST) == (6, MeshTopology.WEST)
        assert self.mesh.link(5, MeshTopology.SOUTH) == (9, MeshTopology.NORTH)

    def test_xy_routing_goes_x_first(self):
        # From (0,0) to (2,2): east first.
        assert self.mesh.route(0, 10) == MeshTopology.EAST
        # Same column: vertical.
        assert self.mesh.route(0, 8) == MeshTopology.SOUTH

    def test_hop_count_is_manhattan(self):
        assert self.mesh.hop_count(0, 15) == 6
        assert self.mesh.hop_count(0, 5) == 2

    def test_average_hops(self):
        # 4x4 mesh mean Manhattan distance between distinct nodes = 8/3.
        assert self.mesh.average_hops() == pytest.approx(8 / 3, rel=1e-6)

    def test_num_links(self):
        # 2 * 2 * side * (side-1) = 48 unidirectional links.
        assert self.mesh.num_links() == 48

    def test_bisection_links(self):
        # Splitting rows 0-1 from 2-3 cuts 4 columns x 2 directions.
        assert self.mesh.bisection_links() == 8


class TestFactory:
    def test_known_names(self):
        assert make_topology("ring", 16).name == "ring"
        assert make_topology("mesh", 16).name == "mesh"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_topology("torus", 16)
