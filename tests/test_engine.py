"""Tests for the parallel sweep engine and its on-disk result cache."""

import json

import pytest

from repro.analysis.engine import (
    PointSpec,
    ResultCache,
    SweepEngine,
    cache_key,
    get_task,
    point_seed,
)
from repro.analysis.sweep import sweep, sweep_task


def selftest_points(n: int) -> list[PointSpec]:
    return [PointSpec(key=f"pt{i}", params={"x": float(i)})
            for i in range(n)]


class TestSeedsAndKeys:
    def test_point_seed_is_deterministic(self):
        assert point_seed(17, "a/b") == point_seed(17, "a/b")
        assert point_seed(17, "a/b") != point_seed(18, "a/b")
        assert point_seed(17, "a/b") != point_seed(17, "a/c")

    def test_cache_key_tracks_inputs(self):
        task = get_task("selftest")
        base = cache_key(task, {"x": 1.0}, 5)
        assert cache_key(task, {"x": 1.0}, 5) == base
        assert cache_key(task, {"x": 2.0}, 5) != base
        assert cache_key(task, {"x": 1.0}, 6) != base

    def test_duplicate_point_keys_rejected(self):
        engine = SweepEngine(jobs=1)
        points = [PointSpec(key="same", params={"x": 1.0}),
                  PointSpec(key="same", params={"x": 2.0})]
        with pytest.raises(ValueError, match="duplicate"):
            engine.run("selftest", points)

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError, match="unknown task"):
            SweepEngine(jobs=1).run("no_such_task", selftest_points(1))


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = selftest_points(3)

        cold = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert cold.telemetry.evaluated == 3
        assert cold.telemetry.cache_hits == 0
        assert cache.entries() == 3

        warm = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert warm.telemetry.evaluated == 0
        assert warm.telemetry.cache_hits == 3
        assert [r.metrics for r in warm.results] == \
               [r.metrics for r in cold.results]
        assert all(r.from_cache for r in warm.results)

    def test_warm_artifact_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = selftest_points(4)
        cold = SweepEngine(jobs=2, cache=cache).run("selftest", points)
        warm = SweepEngine(jobs=1, cache=cache).run("selftest", points)

        def dump(run):
            return json.dumps(run.records(), sort_keys=True)

        assert dump(cold) == dump(warm)

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = selftest_points(2)
        cold = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        victim = next(iter(sorted(cache.root.glob("*/*.json"))))
        victim.write_text("{definitely not json")

        warm = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert warm.telemetry.cache_hits == 1
        assert warm.telemetry.evaluated == 1
        assert warm.telemetry.failures == 0
        assert [r.metrics for r in warm.results] == \
               [r.metrics for r in cold.results]
        # The corrupted entry was rewritten; a third run is all hits.
        again = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert again.telemetry.cache_hits == 2

    def test_wrong_schema_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = selftest_points(1)
        SweepEngine(jobs=1, cache=cache).run("selftest", points)
        victim = next(iter(cache.root.glob("*/*.json")))
        victim.write_text(json.dumps({"schema": 999, "metrics": {}}))
        warm = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert warm.telemetry.evaluated == 1

    def test_seed_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = selftest_points(2)
        SweepEngine(jobs=1, cache=cache).run("selftest", points,
                                             base_seed=1)
        rerun = SweepEngine(jobs=1, cache=cache).run("selftest", points,
                                                     base_seed=2)
        assert rerun.telemetry.evaluated == 2


class TestParallelism:
    def test_jobs_1_vs_4_identical_selftest(self):
        points = selftest_points(6)
        serial = SweepEngine(jobs=1).run("selftest", points)
        parallel = SweepEngine(jobs=4).run("selftest", points)
        assert serial.records() == parallel.records()
        assert json.dumps(serial.records(), sort_keys=True) == \
               json.dumps(parallel.records(), sort_keys=True)

    def test_jobs_1_vs_4_identical_simulation(self):
        points = [PointSpec(key=f"load{load}",
                            params={"load": load, "cycles": 300,
                                    "request_period": 60})
                  for load in (0.05, 0.15, 0.25, 0.35)]
        serial = SweepEngine(jobs=1).run("alg1_mix", points)
        parallel = SweepEngine(jobs=4).run("alg1_mix", points)
        assert serial.records() == parallel.records()

    def test_worker_failure_recorded_not_raised(self):
        points = [PointSpec(key="ok0", params={"x": 1.0}),
                  PointSpec(key="boom",
                            params={"fail": True, "message": "kaput"}),
                  PointSpec(key="ok1", params={"x": 2.0})]
        run = SweepEngine(jobs=2).run("selftest", points)
        assert run.telemetry.failures == 1
        assert [r.key for r in run.ok_results()] == ["ok0", "ok1"]
        failed = run.failed_results()[0]
        assert failed.key == "boom"
        assert "RuntimeError" in failed.error
        assert "kaput" in failed.error
        with pytest.raises(RuntimeError, match="1/3 sweep points failed"):
            run.raise_failures()

    def test_failed_points_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [PointSpec(key="boom", params={"fail": True})]
        SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert cache.entries() == 0
        rerun = SweepEngine(jobs=1, cache=cache).run("selftest", points)
        assert rerun.telemetry.evaluated == 1

    def test_results_keep_input_order(self):
        points = list(reversed(selftest_points(8)))
        run = SweepEngine(jobs=4).run("selftest", points)
        assert [r.key for r in run.results] == [p.key for p in points]

    def test_progress_callback_sees_every_point(self):
        seen = []
        engine = SweepEngine(
            jobs=2, progress=lambda done, total, r: seen.append(
                (done, total, r.key)))
        engine.run("selftest", selftest_points(5))
        assert len(seen) == 5
        assert [done for done, _total, _key in seen] == [1, 2, 3, 4, 5]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepEngine(jobs=0)


class TestSweepHelpers:
    def test_legacy_sweep_callable(self):
        points = sweep("x", [1, 2, 3], lambda v: {"m": v * 2.0})
        assert [p.metrics["m"] for p in points] == [2.0, 4.0, 6.0]
        assert points[0].parameter == "x"

    def test_legacy_sweep_propagates_errors(self):
        def evaluate(v):
            raise ValueError("bad point")
        with pytest.raises(RuntimeError, match="sweep points failed"):
            sweep("x", [1], evaluate)

    def test_sweep_task_binds_value_param(self):
        points = sweep_task("x", [3.0, 4.0], task="selftest", jobs=2)
        assert [p.metrics["square"] for p in points] == [9.0, 16.0]

    def test_sweep_task_base_params(self):
        points = sweep_task("x", [1.0], task="selftest",
                            base_params={"x": 99.0})
        # the swept value overrides the base param of the same name
        assert points[0].metrics["x"] == 1.0
