"""Tests for the Flumen fabric: partitioning, programming, loss accounting."""


import numpy as np
import pytest

from repro.photonics.fabric import (
    COLUMN_PITCH_CM,
    FabricError,
    FlumenFabric,
    PartitionKind,
)
from repro.photonics.routing import RoutingError


def make_fabric(n=8):
    return FlumenFabric(n)


class TestConstruction:
    def test_mzi_inventory(self):
        # Unitary mesh N(N-1)/2 + attenuator column N (Section 3.1.2).
        fab = make_fabric(8)
        assert fab.num_mesh_mzis == 28
        assert fab.num_attenuator_mzis == 8
        assert fab.num_mzis == 36

    def test_mesh_depth_includes_attenuator_column(self):
        assert make_fabric(8).mesh_columns == 9

    def test_rejects_odd_or_small_port_counts(self):
        for bad in (0, 2, 3, 5, 7):
            with pytest.raises(ValueError):
                FlumenFabric(bad)

    def test_starts_as_single_comm_partition(self):
        fab = make_fabric()
        assert len(fab.partitions) == 1
        assert fab.partitions[0].kind is PartitionKind.COMMUNICATION
        assert fab.communication_ports() == list(range(8))


class TestPartitioning:
    def test_split_even_yields_two_halves(self):
        fab = make_fabric(8)
        top, bottom = fab.split_even()
        assert (top.lo, top.hi) == (0, 4)
        assert (bottom.lo, bottom.hi) == (4, 8)
        assert all(p.kind is PartitionKind.COMPUTE
                   for p in fab.compute_partitions())

    def test_split_even_requires_divisible_by_4(self):
        with pytest.raises(FabricError):
            FlumenFabric(6).split_even()

    def test_split_even_requires_unpartitioned_fabric(self):
        fab = make_fabric(8)
        fab.split(0, 2)
        with pytest.raises(FabricError):
            fab.split_even()

    def test_split_carves_three_way(self):
        fab = make_fabric(8)
        fab.split(2, 6)
        kinds = [(p.lo, p.hi, p.kind) for p in fab.partitions]
        assert kinds == [
            (0, 2, PartitionKind.COMMUNICATION),
            (2, 6, PartitionKind.COMPUTE),
            (6, 8, PartitionKind.COMMUNICATION),
        ]

    def test_split_rejects_odd_size(self):
        with pytest.raises(FabricError):
            make_fabric().split(0, 3)

    def test_split_rejects_crossing_boundary(self):
        fab = make_fabric(8)
        fab.split(0, 4)
        with pytest.raises(FabricError):
            fab.split(2, 6)

    def test_split_tears_down_pair_with_endpoint_exactly_at_lo(self):
        # Regression: the teardown guard used a strict ``lo <`` bound,
        # so a comm pair whose src or dst sat exactly on the new
        # partition's lower boundary survived on the host partition —
        # stale routing state for anyone (the control unit) holding the
        # partition reference across the split.
        fab = make_fabric(8)
        fab.configure_communication({2: 6, 0: 1})
        host = fab.partitions[0]
        fab.split(2, 4)  # src 2 sits exactly at lo
        assert 2 not in host.comm_pairs
        assert host.comm_mesh is None
        # Same for a destination landing exactly on lo, on an offset
        # host partition (exercises the local->global conversion).
        fab = make_fabric(8)
        fab.split(0, 2)
        fab.configure_communication({7: 4})
        host = fab.partitions[-1]
        assert host.comm_pairs  # pair registered, local numbering
        fab.split(4, 6)  # dst 4 sits exactly at lo
        assert not host.comm_pairs
        assert host.comm_mesh is None

    def test_barrier_rows_track_partitions(self):
        fab = make_fabric(8)
        fab.split(4, 8)
        assert fab.barrier_rows() == [4]

    def test_release_merges_neighbours(self):
        fab = make_fabric(8)
        part = fab.split(2, 6)
        fab.release(part)
        assert len(fab.partitions) == 1
        assert fab.partitions[0].kind is PartitionKind.COMMUNICATION

    def test_release_unknown_partition_rejected(self):
        fab = make_fabric(8)
        other = FlumenFabric(8).split(0, 4)
        with pytest.raises(FabricError):
            fab.release(other)

    def test_partition_of_out_of_range(self):
        with pytest.raises(FabricError):
            make_fabric().partition_of(99)


class TestComputeProgramming:
    def test_svd_computes_inside_partition(self):
        fab = make_fabric(8)
        part = fab.split(4, 8)
        m = np.random.default_rng(0).standard_normal((4, 4))
        prog = fab.program_compute(part, m)
        a = np.random.default_rng(1).standard_normal(4)
        assert np.allclose(prog.apply(a.astype(complex)).real, m @ a,
                           atol=1e-9)

    def test_program_compute_wrong_shape_rejected(self):
        fab = make_fabric(8)
        part = fab.split(4, 8)
        with pytest.raises(FabricError):
            fab.program_compute(part, np.eye(3))

    def test_program_compute_on_comm_partition_rejected(self):
        fab = make_fabric(8)
        fab.split(4, 8)
        with pytest.raises(FabricError):
            fab.program_compute(fab.partitions[0], np.eye(4))

    def test_split_with_matrix_programs_immediately(self):
        fab = make_fabric(8)
        part = fab.split(0, 4, matrix=np.eye(4))
        assert part.svd is not None

    def test_compute_programming_charges_6ns(self):
        fab = make_fabric(8)
        fab.split(0, 4, matrix=np.eye(4))
        assert fab.reconfiguration_time_s == pytest.approx(6e-9)
        assert fab.compute_configs == 1


class TestCommunicationProgramming:
    def test_pairs_route_power(self):
        fab = make_fabric(8)
        fab.configure_communication({0: 5, 5: 0, 2: 7, 7: 2})
        for src, dst in [(0, 5), (5, 0), (2, 7), (7, 2)]:
            assert fab.path_mzi_count(src, dst) >= 1

    def test_comm_programming_charges_1ns_per_partition(self):
        fab = make_fabric(8)
        fab.configure_communication({0: 1, 1: 0})
        assert fab.reconfiguration_time_s == pytest.approx(1e-9)
        assert fab.comm_configs == 1

    def test_pairs_crossing_compute_partition_rejected(self):
        fab = make_fabric(8)
        fab.split(4, 8)
        with pytest.raises(RoutingError):
            fab.configure_communication({0: 6})

    def test_pairs_from_compute_partition_rejected(self):
        fab = make_fabric(8)
        fab.split(4, 8)
        with pytest.raises(RoutingError):
            fab.configure_communication({5: 6})

    def test_comm_works_beside_compute_partition(self):
        fab = make_fabric(8)
        fab.split(4, 8, matrix=np.eye(4))
        fab.configure_communication({0: 3, 3: 0})
        assert fab.path_mzi_count(0, 3) >= 1

    def test_multicast_within_partition(self):
        fab = make_fabric(8)
        fab.configure_multicast(0, [1, 2, 3])
        part = fab.partition_of(0)
        assert part.comm_mesh is not None

    def test_multicast_crossing_barrier_rejected(self):
        fab = make_fabric(8)
        fab.split(4, 8)
        with pytest.raises(RoutingError):
            fab.configure_multicast(0, [1, 6])

    def test_gather_configures_result_return(self):
        fab = make_fabric(8)
        part = fab.split(4, 8, matrix=np.eye(4))
        fab.configure_gather(part, 5)
        assert part.comm_mesh is not None

    def test_gather_destination_outside_partition_rejected(self):
        fab = make_fabric(8)
        part = fab.split(4, 8)
        with pytest.raises(FabricError):
            fab.configure_gather(part, 1)


class TestLossAccounting:
    def test_path_loss_positive_and_bounded(self):
        fab = make_fabric(8)
        fab.configure_communication({0: 7, 7: 0})
        loss = fab.path_loss_db(0, 7)
        ceiling = (fab.mesh_columns * fab.devices.mzi.insertion_loss_db
                   + fab.mesh_columns * COLUMN_PITCH_CM * 1.5 + 30.0)
        assert 0.0 < loss < ceiling

    def test_unconfigured_path_rejected(self):
        fab = make_fabric(8)
        with pytest.raises(FabricError):
            fab.path_mzi_count(0, 5)

    def test_equalization_levels_received_power(self):
        # The attenuator column's whole purpose (Section 3.1.2).
        fab = make_fabric(8)
        fab.configure_communication({0: 1, 2: 7, 5: 3, 6: 4})
        pairs = [(0, 1), (2, 7), (5, 3), (6, 4)]
        losses = [fab.path_loss_db(s, d) for s, d in pairs]
        assert max(losses) - min(losses) < 0.3  # within one MZI loss

    def test_equalization_attenuates_short_paths_only(self):
        fab = make_fabric(8)
        fab.configure_communication({0: 1, 2: 7})
        t = fab.attenuator_transmission
        assert (t <= 1.0 + 1e-12).all()
        assert (t > 0.0).all()

    def test_worst_case_loss_grows_with_wavelengths(self):
        fab = make_fabric(8)
        assert fab.worst_case_loss_db(32) > fab.worst_case_loss_db(8)


class TestEndToEndPropagation:
    def test_propagate_comm_delivers_to_destination(self):
        fab = make_fabric(8)
        fab.configure_communication({0: 6, 6: 0})
        fields = np.zeros(8, dtype=complex)
        fields[0] = 1.0
        out = np.abs(fab.propagate_comm(fields)) ** 2
        assert out.argmax() == 6
        assert out[6] < 1.0  # loss applied

    def test_propagate_comm_skips_compute_partitions(self):
        fab = make_fabric(8)
        fab.split(4, 8, matrix=np.eye(4))
        fab.configure_communication({0: 2, 2: 0})
        fields = np.ones(8, dtype=complex)
        out = fab.propagate_comm(fields)
        assert np.allclose(out[4:], 0.0)

    def test_propagate_comm_rejects_wrong_size(self):
        fab = make_fabric(8)
        with pytest.raises(ValueError):
            fab.propagate_comm(np.ones(4, dtype=complex))
