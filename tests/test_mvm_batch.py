"""Stacked MVM dispatch: bit-identity against the per-program oracle.

The fleet-wide ``(B, k, 2, 2)`` kernel (:mod:`repro.photonics.batch`)
claims *exact* equality with sequential :meth:`MZIMesh.propagate` /
:meth:`SVDProgram.apply` / :class:`BlockMatmul` evaluation — every
assertion here is ``array_equal``, never ``allclose``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import BlockMatmul, block_matmul_many
from repro.core.control_unit import MZIMControlUnit
from repro.noc.flumen_net import FlumenNetwork
from repro.photonics.batch import (
    apply_jobs,
    apply_svd_stacked,
    batch_stats,
    plan_signature,
    propagate_stacked,
    reset_batch_stats,
    stack_meshes,
)
from repro.photonics.clements import decompose
from repro.photonics.svd import program_svd


def _random_unitary(rng, n):
    m = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    u, _, _ = np.linalg.svd(m)
    return u


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=10),
       b=st.integers(min_value=2, max_value=6),
       q=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_stacked_mesh_propagate_bit_identical(n, b, q, seed):
    rng = np.random.default_rng(seed)
    meshes = [decompose(_random_unitary(rng, n)) for _ in range(b)]
    fields = rng.normal(size=(b, n, q)) + 1j * rng.normal(size=(b, n, q))
    out = propagate_stacked(meshes, fields)
    for i, mesh in enumerate(meshes):
        assert np.array_equal(out[i], mesh.propagate(fields[i]))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=9),
       b=st.integers(min_value=2, max_value=5),
       q=st.integers(min_value=1, max_value=10),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_stacked_svd_apply_bit_identical(n, b, q, seed):
    rng = np.random.default_rng(seed)
    programs = [program_svd(rng.normal(size=(n, n))) for _ in range(b)]
    fields = rng.normal(size=(b, n, q)).astype(complex)
    out = apply_svd_stacked(programs, fields)
    for i, program in enumerate(programs):
        assert np.array_equal(out[i], program.apply(fields[i]))


def test_same_size_clements_meshes_share_a_layout():
    rng = np.random.default_rng(0)
    sigs = {plan_signature(decompose(_random_unitary(rng, 8)))
            for _ in range(4)}
    assert len(sigs) == 1


def test_stack_meshes_rejects_mixed_layouts():
    rng = np.random.default_rng(1)
    meshes = [decompose(_random_unitary(rng, 4)),
              decompose(_random_unitary(rng, 6))]
    assert stack_meshes(meshes) is None
    with pytest.raises(ValueError):
        propagate_stacked(meshes, np.zeros((2, 4, 1), dtype=complex))


def test_propagate_stacked_validates_field_shape():
    rng = np.random.default_rng(2)
    meshes = [decompose(_random_unitary(rng, 4)) for _ in range(2)]
    with pytest.raises(ValueError):
        propagate_stacked(meshes, np.zeros((2, 4), dtype=complex))
    with pytest.raises(ValueError):
        propagate_stacked(meshes, np.zeros((2, 5, 3), dtype=complex))


def test_apply_jobs_groups_and_falls_back():
    rng = np.random.default_rng(3)
    p8 = [program_svd(rng.normal(size=(8, 8))) for _ in range(3)]
    p4 = program_svd(rng.normal(size=(4, 4)))
    jobs = [(p8[0], rng.normal(size=(8, 5))),
            (p4, rng.normal(size=(4, 5))),  # different layout: fallback
            (p8[1], rng.normal(size=(8, 5))),
            (p8[2], rng.normal(size=(8, 2))),  # different q: fallback
            ]
    reset_batch_stats()
    results = apply_jobs(jobs)
    stats = batch_stats()
    assert stats == {"jobs": 4, "stacked": 2, "fallback": 2, "groups": 1}
    for (program, fields), result in zip(jobs, results):
        assert np.array_equal(result,
                              program.apply(np.asarray(fields, complex)))


def test_apply_jobs_rejects_non_2d_fields():
    program = program_svd(np.eye(4))
    with pytest.raises(ValueError):
        apply_jobs([(program, np.zeros(4))])


@settings(max_examples=10, deadline=None)
@given(rows=st.integers(min_value=2, max_value=30),
       cols=st.integers(min_value=2, max_value=30),
       q=st.integers(min_value=1, max_value=10),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_block_matmul_batched_equals_sequential(rows, cols, q,
                                                         seed):
    rng = np.random.default_rng(seed)
    matmul = BlockMatmul(rng.normal(size=(rows, cols)), mzim_size=8)
    vectors = rng.normal(size=(cols, q))
    assert np.array_equal(matmul(vectors),
                          matmul(vectors, batched=False))


def test_block_matmul_batched_squeezes_single_vector():
    rng = np.random.default_rng(5)
    matmul = BlockMatmul(rng.normal(size=(11, 13)), mzim_size=8)
    vector = rng.normal(size=13)
    batched = matmul(vector)
    assert batched.shape == (11,)
    assert np.array_equal(batched, matmul(vector, batched=False))


def test_block_matmul_all_zero_matrix_stays_zero():
    matmul = BlockMatmul(np.zeros((10, 10)), mzim_size=8)
    out = matmul(np.ones((10, 3)))
    assert np.array_equal(out, np.zeros((10, 3)))


def test_block_matmul_many_matches_each_job():
    rng = np.random.default_rng(6)
    jobs = []
    for _ in range(5):
        rows, cols = int(rng.integers(4, 25)), int(rng.integers(4, 25))
        matmul = BlockMatmul(rng.normal(size=(rows, cols)), mzim_size=8)
        jobs.append((matmul, rng.normal(size=(cols, 7))))
    reset_batch_stats()
    results = block_matmul_many(jobs)
    assert batch_stats()["groups"] == 1  # whole fleet in one kernel pass
    for (matmul, vectors), result in zip(jobs, results):
        assert np.array_equal(result, matmul(vectors, batched=False))


def test_block_matmul_result_numerically_close_to_digital():
    rng = np.random.default_rng(7)
    matmul = BlockMatmul(rng.normal(size=(16, 24)), mzim_size=8)
    vectors = rng.normal(size=(24, 9))
    np.testing.assert_allclose(matmul(vectors), matmul.matrix @ vectors,
                               rtol=1e-9, atol=1e-9)


def test_control_unit_queue_and_flush_fleet():
    rng = np.random.default_rng(8)
    control = MZIMControlUnit(FlumenNetwork(16))
    matrices = {}
    for i in range(3):
        key = f"m{i}"
        matrices[key] = BlockMatmul(rng.normal(size=(16, 16)), 8)
        control.matrix_memory.store(key, matrices[key])
    jobs = []
    for i in range(8):
        key = f"m{i % 3}"
        vectors = rng.normal(size=(16, 6))
        job_id = control.queue_mvm(key, vectors, node=i)
        jobs.append((job_id, i, key, vectors))
    assert control.pending_mvms() == 8
    results = control.flush_mvms()
    assert control.pending_mvms() == 0
    assert control.flush_mvms() == []
    for (job_id, node, key, vectors), res in zip(jobs, results):
        assert (res.job_id, res.node, res.matrix_key) == (job_id, node, key)
        assert np.array_equal(res.result,
                              matrices[key](vectors, batched=False))


def test_control_unit_queue_requires_preloaded_matrix():
    control = MZIMControlUnit(FlumenNetwork(16))
    with pytest.raises(KeyError):
        control.queue_mvm("missing", np.zeros((8, 1)))
