"""Tests for the multicore substrate: caches, cores, energy, area."""

import pytest

from repro.config import CoreConfig
from repro.multicore.area import AreaModel, flumen_mzim_mzis
from repro.multicore.cache import (
    Cache,
    CacheHierarchy,
    blocked_stream,
    strided_stream,
)
from repro.multicore.cpu import CoreModel
from repro.multicore.energy import CoreEnergyModel, EnergyBreakdown


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, 2, 64)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)       # same line
        assert not c.access(64)   # next line

    def test_lru_eviction_within_set(self):
        c = Cache(2 * 64, 2, 64)  # 1 set, 2 ways
        c.access(0)
        c.access(64)
        c.access(128)             # evicts line 0
        assert not c.access(0)

    def test_lru_respects_recency(self):
        c = Cache(2 * 64, 2, 64)
        c.access(0)
        c.access(64)
        c.access(0)               # line 0 most recent
        c.access(128)             # evicts line 64
        assert c.access(0)
        assert not c.access(64)

    def test_capacity_fits_working_set(self):
        c = Cache(32 * 1024, 8, 64)
        addrs = list(range(0, 16 * 1024, 64))
        for a in addrs:
            c.access(a)
        assert all(c.access(a) for a in addrs)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(1000, 3, 64)

    def test_stats_track_hit_rate(self):
        c = Cache(1024, 2, 64)
        c.access(0)
        c.access(0)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.hit_rate == 0.5


class TestHierarchy:
    def test_miss_walks_all_levels(self):
        h = CacheHierarchy()
        assert h.access(0) == "dram"
        assert h.access(0) == "l1"

    def test_l2_serves_l1_evictions(self):
        h = CacheHierarchy()
        l1_lines = CoreConfig().l1d_size_b // 64
        # Touch 2x the L1 capacity, then re-touch the start: L1 misses, L2 hits.
        for i in range(2 * l1_lines):
            h.access(i * 64 * 8)  # stride past set conflicts
        level = h.access(0)
        assert level in ("l2", "l3")

    def test_stream_counts(self):
        h = CacheHierarchy()
        counts = h.access_stream(strided_stream(0, 100, 64))
        assert counts.l1.accesses == 100
        assert counts.dram_accesses == 100
        counts2 = h.access_stream(strided_stream(0, 100, 64))
        assert counts2.l1.hits == 100
        assert counts2.dram_accesses == 0

    def test_reuse_hits_after_first_pass(self):
        h = CacheHierarchy()
        counts = h.access_stream(strided_stream(0, 50, 64, repeats=3))
        assert counts.l1.hits == 100  # passes 2 and 3

    def test_stall_cycles_scale_with_misses(self):
        h = CacheHierarchy()
        light = h.access_stream(strided_stream(0, 10, 64))
        heavy = h.access_stream(strided_stream(10**6, 1000, 64))
        assert h.stall_cycles(heavy) > h.stall_cycles(light)

    def test_mlp_hides_latency(self):
        h = CacheHierarchy()
        counts = h.access_stream(strided_stream(0, 100, 64))
        assert h.stall_cycles(counts, mlp=8.0) < \
            h.stall_cycles(counts, mlp=1.0)


class TestStreams:
    def test_strided_stream_addresses(self):
        assert list(strided_stream(100, 3, 10)) == [100, 110, 120]

    def test_strided_repeats(self):
        assert list(strided_stream(0, 2, 4, repeats=2)) == [0, 4, 0, 4]

    def test_blocked_stream_covers_matrix(self):
        addrs = list(blocked_stream(0, 4, 4, 1, 2, 2))
        assert len(addrs) == 16
        assert sorted(addrs) == list(range(16))


class TestCoreModel:
    def test_more_cores_faster(self):
        core = CoreModel()
        one = core.phase_cost(10000, 0, None, None, 1)
        four = core.phase_cost(10000, 0, None, None, 4)
        assert four.total_cycles == pytest.approx(one.total_cycles / 4)

    def test_implicit_ops_counted(self):
        core = CoreModel(ops_per_mac=2.0)
        cost = core.phase_cost(100, 0, None, None, 1)
        assert cost.other_ops == 200

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            CoreModel().phase_cost(10, 0, None, None, 0)

    def test_seconds_conversion(self):
        core = CoreModel(CoreConfig(frequency_hz=2.5e9))
        assert core.seconds(2.5e9) == pytest.approx(1.0)

    def test_macs_per_second_sane(self):
        # 2 MACs/cycle ideal minus overhead: below 5 GMAC/s per core.
        rate = CoreModel().macs_per_second(1)
        assert 1e9 < rate < 5e9


class TestEnergyModel:
    def test_breakdown_addition(self):
        a = EnergyBreakdown(core=1.0, nop=2.0)
        b = EnergyBreakdown(core=0.5, dram=1.5)
        c = a + b
        assert c.core == 1.5
        assert c.dram == 1.5
        assert c.total == pytest.approx(5.0)

    def test_scaled(self):
        e = EnergyBreakdown(core=2.0, l1=1.0).scaled(0.5)
        assert e.core == 1.0 and e.l1 == 0.5

    def test_compute_energy_components(self):
        em = CoreEnergyModel()
        static_only = em.compute_energy(0, 0, 4, 1.0)
        assert static_only == pytest.approx(4 * em.core_static_w)
        dynamic = em.compute_energy(1000, 0, 4, 0.0)
        assert dynamic == pytest.approx(1000 * em.mac_energy_j)

    def test_as_dict_keys(self):
        keys = set(EnergyBreakdown().as_dict())
        assert keys == {"core", "l1", "l2", "l3", "dram", "nop", "mzim"}


class TestAreaModel:
    def setup_method(self):
        self.area = AreaModel()

    def test_flumen_endpoint_matches_paper(self):
        # Section 5.1: 9.46 mm^2 per endpoint, 4.2% transceiver.
        ep = self.area.flumen_endpoint()
        assert ep.total == pytest.approx(9.46, rel=0.01)
        assert ep["transceiver"] / ep.total == pytest.approx(0.042, abs=0.005)

    def test_flumen_system_matches_paper(self):
        # Section 5.1: 162.6 mm^2 total, MZIM+controller 11.2 mm^2.
        total = self.area.flumen_system().total
        assert total == pytest.approx(162.6, rel=0.05)
        assert self.area.mzim_with_controller() == pytest.approx(11.2,
                                                                 rel=0.15)

    def test_mesh_system_matches_paper(self):
        # Section 5.1: 114.9 mm^2.
        assert self.area.mesh_system().total == pytest.approx(114.9,
                                                              rel=0.02)

    def test_mzim_scaling_64x64(self):
        # Section 5.1: 64x64 MZIM ~291.2 mm^2, 128 chiplets ~1210.88 mm^2.
        row = self.area.scaling_row(128)
        assert row["mzim_mm2"] == pytest.approx(291.2, rel=0.02)
        assert row["chiplet_mm2"] == pytest.approx(1210.88, rel=0.01)
        assert row["mzim_fraction"] < 0.3

    def test_mzi_count_formula(self):
        assert flumen_mzim_mzis(8) == 36
        assert flumen_mzim_mzis(64) == 2080

    def test_flumen_larger_than_mesh_by_about_12_percent(self):
        # Section 5.1: +17.7 mm^2, a 12.2% relative increase... of the
        # Flumen total (162.6 = 114.9 * 1.415); the paper's 12.2% refers
        # to chiplet-normalized growth.  We assert the absolute delta.
        flumen = self.area.flumen_system().total
        mesh = self.area.mesh_system().total
        assert flumen - mesh == pytest.approx(47.7, abs=3.0)
