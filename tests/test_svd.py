"""Tests for the SVD MZIM programming (Section 3.1.1 / 3.3.1)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.svd import (
    mvm_digital_op_count,
    program_svd,
    spectral_scale,
)


def rng_matrix(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, n))


class TestSpectralScale:
    def test_identity_scale_is_one(self):
        assert spectral_scale(np.eye(4)) == pytest.approx(1.0)

    def test_scaled_identity(self):
        assert spectral_scale(3.0 * np.eye(4)) == pytest.approx(3.0)

    def test_zero_matrix_safe(self):
        assert spectral_scale(np.zeros((3, 3))) == 1.0

    def test_equals_largest_singular_value(self):
        m = rng_matrix(6, 0)
        assert spectral_scale(m) == pytest.approx(np.linalg.svd(m)[1][0])


class TestProgramSVD:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    def test_reconstruction(self, n):
        m = rng_matrix(n, n)
        prog = program_svd(m)
        assert np.allclose(prog.scale * prog.matrix(), m, atol=1e-10)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            program_svd(np.ones((3, 4)))

    def test_singular_values_bounded(self):
        # Section 3.3.1: 0 <= sigma_i <= 1 after spectral-norm scaling.
        prog = program_svd(rng_matrix(8, 1))
        assert (prog.sigma >= 0.0).all()
        assert (prog.sigma <= 1.0).all()
        assert prog.sigma.max() == pytest.approx(1.0)

    def test_mzi_count_is_n_squared(self):
        # Section 3.1.1: N-input SVD MZIM uses N^2 MZIs.
        for n in (2, 4, 8):
            assert program_svd(rng_matrix(n, n + 50)).num_mzis == n * n

    def test_apply_computes_matrix_vector_product(self):
        m = rng_matrix(8, 2)
        prog = program_svd(m)
        a = np.random.default_rng(3).standard_normal(8)
        assert np.allclose(prog.apply(a.astype(complex)).real, m @ a,
                           atol=1e-10)

    def test_apply_wdm_parallel_mvms(self):
        # Section 3.3.1: p wavelengths compute p MVMs in one pass.
        m = rng_matrix(4, 4)
        prog = program_svd(m)
        a = np.random.default_rng(5).standard_normal((4, 7))
        assert np.allclose(prog.apply(a.astype(complex)).real, m @ a,
                           atol=1e-10)

    def test_complex_matrix_supported(self):
        rng = np.random.default_rng(6)
        m = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        prog = program_svd(m)
        assert np.allclose(prog.scale * prog.matrix(), m, atol=1e-10)

    def test_attenuator_thetas_encode_sigma(self):
        prog = program_svd(rng_matrix(4, 7))
        thetas = prog.attenuator_thetas
        recovered = np.sin(thetas / 2.0)
        assert np.allclose(recovered, prog.sigma, atol=1e-12)

    def test_diagonal_matrix(self):
        m = np.diag([0.5, 2.0, 1.0, 0.25])
        prog = program_svd(m)
        assert prog.scale == pytest.approx(2.0)
        a = np.ones(4, dtype=complex)
        assert np.allclose(prog.apply(a).real, np.diag(m), atol=1e-10)

    def test_rank_deficient_matrix(self):
        m = np.outer([1.0, 2.0, 3.0, 4.0], [1.0, 0.0, -1.0, 0.5])
        prog = program_svd(m)
        a = np.random.default_rng(8).standard_normal(4)
        assert np.allclose(prog.apply(a.astype(complex)).real, m @ a,
                           atol=1e-9)


class TestEnergyConservation:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=2, max_value=8))
    def test_property_output_power_never_exceeds_input(self, seed, n):
        # Section 3.3.1: b = M_s a with sigma <= 1 implies |b| <= |a|.
        prog = program_svd(rng_matrix(n, seed))
        a = np.random.default_rng(seed + 1).standard_normal(n).astype(complex)
        b = prog.propagate(a)
        assert np.linalg.norm(b) <= np.linalg.norm(a) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           n=st.integers(min_value=2, max_value=8))
    def test_property_scaled_product_matches_numpy(self, seed, n):
        m = rng_matrix(n, seed)
        prog = program_svd(m)
        a = np.random.default_rng(seed + 2).standard_normal(n)
        assert np.allclose(prog.apply(a.astype(complex)).real, m @ a,
                           atol=1e-8)


class TestOpCounts:
    def test_mvm_digital_ops(self):
        # Section 3.3.1: N^2 multiplies and N(N-1) additions per MVM.
        mults, adds = mvm_digital_op_count(8)
        assert mults == 64
        assert adds == 56
