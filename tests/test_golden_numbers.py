"""Golden-numbers regression guard for the end-to-end system model.

Pins :class:`~repro.core.system.SystemModel` runtime/energy outputs for
one small workload across all five configurations at a fixed traffic
seed.  The values were generated on the pre-kernel-refactor code and
must remain bit-identical afterwards: the NoP simulation kernel /
pipeline-registry refactor is required to be a pure restructuring with
no numeric drift.

If a deliberate modelling change moves these numbers, regenerate them
with the snippet in this module's docstring history (run each
configuration through a fresh ``SystemModel(traffic_seed=17)`` on
``ImageBlur(height=64, width=64)``) and say so in the commit message.
"""

import pytest

from repro.core.system import SystemModel
from repro.workloads import ImageBlur

#: Exact outputs of SystemModel(traffic_seed=17) on ImageBlur(64x64),
#: captured at commit 00a9445 (pre-refactor seed state).
GOLDEN = {
    "ring": dict(
        runtime_s=1.8732475e-05, energy_total_j=4.5759382400000005e-05,
        core_cycles=46831.1875, comm_cycles=46831.1875,
        mzim_cycles=0.0, avg_packet_latency=14.370119729307651,
        offloaded_macs=0, nop_j=2.06282304e-05, mzim_j=0.0),
    "mesh": dict(
        runtime_s=1.8732475e-05, energy_total_j=3.21208832e-05,
        core_cycles=46831.1875, comm_cycles=46831.1875,
        mzim_cycles=0.0, avg_packet_latency=9.122852680895367,
        offloaded_macs=0, nop_j=6.9897312e-06, mzim_j=0.0),
    "optbus": dict(
        runtime_s=1.8732475e-05, energy_total_j=2.6121370142599574e-05,
        core_cycles=46831.1875, comm_cycles=46831.1875,
        mzim_cycles=0.0, avg_packet_latency=9.0,
        offloaded_macs=0, nop_j=9.90218142599571e-07, mzim_j=0.0),
    "flumen_i": dict(
        runtime_s=1.8732475e-05, energy_total_j=2.6348108327929427e-05,
        core_cycles=46831.1875, comm_cycles=46831.1875,
        mzim_cycles=0.0, avg_packet_latency=7.0,
        offloaded_macs=0, nop_j=1.2169563279294245e-06, mzim_j=0.0),
    "flumen_a": dict(
        runtime_s=6.4565625e-06, energy_total_j=1.4812613845476524e-05,
        core_cycles=16141.40625, comm_cycles=16141.40625,
        mzim_cycles=3456.0, avg_packet_latency=452.0890161374284,
        offloaded_macs=331776, nop_j=1.037732605021222e-06,
        mzim_j=6.761624045530124e-08),
}


@pytest.fixture(scope="module")
def golden_runs():
    model = SystemModel(traffic_seed=17)
    workload = ImageBlur(height=64, width=64)
    return {cfg: model.run(workload, cfg) for cfg in GOLDEN}


@pytest.mark.parametrize("configuration", sorted(GOLDEN))
def test_golden_numbers_unchanged(golden_runs, configuration):
    run = golden_runs[configuration]
    want = GOLDEN[configuration]
    assert run.runtime_s == want["runtime_s"]
    assert run.energy.total == want["energy_total_j"]
    assert run.core_cycles == want["core_cycles"]
    assert run.comm_cycles == want["comm_cycles"]
    assert run.mzim_cycles == want["mzim_cycles"]
    assert run.avg_packet_latency == want["avg_packet_latency"]
    assert run.offloaded_macs == want["offloaded_macs"]
    assert run.energy.nop == want["nop_j"]
    assert run.energy.mzim == want["mzim_j"]
