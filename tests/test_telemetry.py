"""Tests for the live telemetry pipeline (DESIGN.md §15).

Covers the structured event log (schema validation, monotone clock,
export failure modes), the cycle-driven snapshot sampler, histogram
quantiles and cumulative buckets, Prometheus exposition round-trips,
per-tenant accounting, event determinism under a seeded fault campaign,
the HTTP metrics server, the ``repro top`` renderer, and the CLI
subcommands that tie them together.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.__main__ import main
from repro.analysis.engine import PointSpec, ResultCache, SweepEngine
from repro.config import SystemConfig
from repro.core.accelerator import BlockMatmul, plan_offload
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.scheduler import FlumenScheduler
from repro.faults.campaign import CampaignSpec, run_fault_campaign
from repro.noc.flumen_net import FlumenNetwork
from repro.obs import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    NULL_EVENTS,
    EventLog,
    MetricsRegistry,
    MonotoneClock,
    Obs,
    SnapshotSampler,
    TelemetryServer,
    TelemetryStore,
    load_and_validate_events,
    parse_exposition,
    prometheus_exposition,
    registry_exposition,
    render_top,
    validate_events,
    write_event_log,
    write_telemetry_dir,
)


# ----------------------------------------------------------------------
# monotone clock
# ----------------------------------------------------------------------


class TestMonotoneClock:
    def test_advances_with_local_cycles(self):
        clock = MonotoneClock()
        assert clock.advance(0) == 0
        assert clock.advance(10) == 10
        assert clock.advance(25) == 25
        assert clock.now == 25

    def test_rebases_on_counter_restart(self):
        clock = MonotoneClock()
        clock.advance(100)
        # A second component run restarts its local counter at zero;
        # global time must keep increasing.
        assert clock.advance(0) == 100
        assert clock.advance(30) == 130

    def test_never_decreases(self):
        clock = MonotoneClock()
        seen = [clock.advance(c) for c in (5, 80, 2, 2, 40, 1, 90)]
        assert seen == sorted(seen)


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------


class TestEventLog:
    def test_envelope_and_sequence(self):
        log = EventLog()
        first = log.emit("cache_miss", 0, task="t", key="a")
        second = log.emit("cache_hit", 1, tenant="acme", request_id=7,
                          task="t", key="b")
        assert first["v"] == EVENT_SCHEMA_VERSION
        assert first["seq"] == 0 and second["seq"] == 1
        assert second["tenant"] == "acme"
        assert second["request_id"] == 7
        assert "tenant" not in first

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            EventLog().emit("not_a_type", 0)

    def test_missing_payload_field_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            EventLog().emit("ladder_transition", 0, src="HEALTHY")

    def test_reserved_key_clash_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            EventLog().emit("cache_hit", 0, task="t", key="k", seq=9)

    def test_tail_and_by_type(self):
        log = EventLog()
        for i in range(5):
            log.emit("cache_miss" if i % 2 else "cache_hit", i,
                     task="t", key=f"k{i}")
        assert [e["seq"] for e in log.tail(2)] == [3, 4]
        assert len(log.by_type("cache_hit")) == 3
        assert log.tail(0) == []

    def test_bounded_ring_drops_oldest(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit("cache_hit", i, task="t", key=f"k{i}")
        assert len(log) == 3
        assert log.dropped == 2
        assert [e["seq"] for e in log.events] == [2, 3, 4]

    def test_every_event_type_has_schema_fields(self):
        for event_type, fields in EVENT_TYPES.items():
            assert isinstance(fields, tuple), event_type

    def test_null_log_is_inert(self):
        assert not NULL_EVENTS.enabled
        assert NULL_EVENTS.emit("cache_hit", 0, task="t", key="k") == {}
        assert len(NULL_EVENTS) == 0
        assert NULL_EVENTS.events == []


# ----------------------------------------------------------------------
# export round-trip + failure modes
# ----------------------------------------------------------------------


def sample_log() -> EventLog:
    log = EventLog()
    log.emit("ladder_transition", 10, src="HEALTHY", dst="RECALIBRATE",
             reason="health_probe")
    log.emit("fault_activation", 12, kind="stuck_mzi")
    log.emit("cache_miss", 20, tenant="default", task="t", key="a/b")
    return log


class TestEventExport:
    def test_round_trip_validates_clean(self, tmp_path):
        path = write_event_log(tmp_path / "events.jsonl", sample_log())
        assert load_and_validate_events(path) == []

    def test_unreadable_file_is_one_problem(self, tmp_path):
        problems = load_and_validate_events(tmp_path / "absent.jsonl")
        assert len(problems) == 1
        assert "unreadable" in problems[0]

    def test_truncated_jsonl_reported(self, tmp_path):
        path = write_event_log(tmp_path / "events.jsonl", sample_log())
        raw = path.read_bytes()
        # Chop mid-record: the torn final line must be called out.
        path.write_bytes(raw[:-10])
        problems = load_and_validate_events(path)
        assert any("unparseable JSON" in p for p in problems)

    def test_unknown_schema_version_reported(self, tmp_path):
        log = sample_log()
        log.events[1]["v"] = 99
        path = write_event_log(tmp_path / "events.jsonl", log)
        problems = load_and_validate_events(path)
        assert any("schema version" in p for p in problems)

    def test_non_monotonic_cycles_reported(self):
        records = [e.copy() for e in sample_log().events]
        records[2]["cycle"] = 5  # earlier than record 1's cycle 12
        problems = validate_events(records)
        assert any("non-monotonic" in p for p in problems)

    def test_sequence_gap_reported(self):
        records = [e.copy() for e in sample_log().events]
        records[1]["seq"] = 5
        problems = validate_events(records)
        assert any("sequence" in p for p in problems)

    def test_unknown_type_and_missing_fields_reported(self):
        records = [e.copy() for e in sample_log().events]
        records[0]["type"] = "mystery"
        del records[1]["kind"]
        problems = validate_events(records)
        assert any("mystery" in p for p in problems)
        assert any("kind" in p for p in problems)


# ----------------------------------------------------------------------
# histogram quantiles, gauge dec, registry iteration
# ----------------------------------------------------------------------


class TestHistogramQuantiles:
    def test_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10.0, 100.0))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.cumulative_buckets() == {"10": 1, "100": 2, "+Inf": 3}

    def test_quantiles_interpolate(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(10.0, 20.0, 50.0))
        for v in range(1, 21):  # 1..20, uniform
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(10.0, abs=1.0)
        assert h.quantile(0.95) == pytest.approx(19.0, abs=1.5)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_quantile_edge_cases(self):
        h = MetricsRegistry().histogram("lat", bounds=(10.0,))
        assert h.quantile(0.5) == 0.0  # empty
        h.observe(4)
        # Single observation: estimate tightened by min/max to the value.
        assert h.quantile(0.5) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_in_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1, 2, 3):
            h.observe(v)
        snap = reg.to_dict()["histograms"]["lat"]
        assert {"p50", "p95", "p99"} <= set(snap)
        assert snap["buckets"]["+Inf"] == 3

    def test_gauge_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.inc(5)
        g.dec()
        g.dec(2.5)
        assert g.value == pytest.approx(1.5)

    def test_iter_series_enumerates_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c", topology="mesh").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1)
        reg.timer("t").observe(0.1)
        series = list(reg.iter_series())
        kinds = [s[0] for s in series]
        assert kinds == ["counter", "gauge", "histogram", "timer"]
        counter = series[0]
        assert counter[1] == "c{topology=mesh}"
        assert counter[2] == "c"
        assert counter[3] == {"topology": "mesh"}

    def test_iter_series_matches_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a", z=1).inc(3)
        snap = reg.to_dict()
        from_iter = {key: inst.value
                     for kind, key, _n, _l, inst in reg.iter_series()
                     if kind == "counter"}
        assert from_iter == snap["counters"]


# ----------------------------------------------------------------------
# prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheusExposition:
    def build_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("noc.packets_injected", topology="mesh").inc(7)
        reg.counter("engine.points_total", task="sweep").inc(4)
        reg.gauge("core.ladder_rung").set(2.0)
        h = reg.histogram("noc.packet_latency_cycles", topology="mesh",
                          bounds=(10.0, 100.0))
        for v in (5, 50, 500):
            h.observe(v)
        reg.timer("noc.run_seconds", topology="mesh").observe(0.25)
        return reg

    def test_exposition_parses_clean(self):
        text = registry_exposition(self.build_registry())
        samples, problems = parse_exposition(text)
        assert problems == []
        assert samples['repro_noc_packets_injected_total'
                       '{topology="mesh"}'] == 7

    def test_counter_total_suffix_not_doubled(self):
        text = registry_exposition(self.build_registry())
        assert 'repro_engine_points_total{task="sweep"} 4' in text
        assert "_total_total" not in text

    def test_histogram_buckets_cumulative_in_le_order(self):
        text = registry_exposition(self.build_registry())
        lines = [ln for ln in text.splitlines() if "_bucket" in ln]
        values = [float(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert values == [1.0, 2.0, 3.0]
        assert 'le="+Inf"' in lines[-1]
        assert "repro_noc_packet_latency_cycles_count" in text
        assert "repro_noc_packet_latency_cycles_sum" in text

    def test_label_escaping(self):
        snapshot = {"counters": {'evil{path=a"b\\c}': 1},
                    "gauges": {}, "histograms": {}, "timers": {}}
        text = prometheus_exposition(snapshot)
        samples, problems = parse_exposition(text)
        assert problems == []
        assert len(samples) == 1

    def test_snapshot_round_trip_after_json(self):
        # to_dict -> canonical JSON -> exposition is the server's path;
        # alphabetically re-sorted bucket keys must not break le order.
        reg = self.build_registry()
        snapshot = json.loads(json.dumps(reg.to_dict(), sort_keys=True))
        _, problems = parse_exposition(prometheus_exposition(snapshot))
        assert problems == []

    def test_parse_flags_broken_input(self):
        _, problems = parse_exposition("what is this\n")
        assert problems
        _, dup = parse_exposition("a_total 1\na_total 2\n")
        assert any("duplicate" in p for p in dup)


# ----------------------------------------------------------------------
# snapshot sampler
# ----------------------------------------------------------------------


class TestSnapshotSampler:
    def test_samples_on_interval(self):
        reg = MetricsRegistry()
        sampler = SnapshotSampler(reg, interval_cycles=10)
        counter = reg.counter("x")
        took = []
        for cycle in range(35):
            counter.inc()
            took.append(sampler.tick(cycle))
        cycles = [s["cycle"] for s in sampler.series]
        assert cycles == [0, 10, 20, 30]
        assert sum(took) == 4
        assert [s["seq"] for s in sampler.series] == [0, 1, 2, 3]
        # Snapshots freeze the registry state at sampling time.
        assert sampler.series[1]["metrics"]["counters"]["x"] == 11

    def test_forced_sample_and_latest(self):
        sampler = SnapshotSampler(MetricsRegistry(), interval_cycles=100)
        snap = sampler.sample(3)
        assert sampler.latest() is snap
        assert len(sampler) == 1

    def test_shares_event_log_clock(self):
        log = EventLog()
        sampler = SnapshotSampler(MetricsRegistry(), interval_cycles=50,
                                  event_log=log)
        log.emit("cache_hit", 100, task="t", key="k")
        # The sampler's local cycle 0 lands after the event's cycle 100
        # on the shared timeline.
        snap = sampler.sample(0)
        assert snap["cycle"] >= 100

    def test_bounded_series_evicts_oldest(self):
        sampler = SnapshotSampler(MetricsRegistry(), interval_cycles=1,
                                  max_snapshots=2)
        for cycle in range(4):
            sampler.tick(cycle)
        assert len(sampler) == 2
        assert sampler.dropped == 2

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotSampler(MetricsRegistry(), interval_cycles=0)


# ----------------------------------------------------------------------
# component event streams: fault campaign
# ----------------------------------------------------------------------


def telemetry_campaign(seed: int = 3) -> Obs:
    obs = Obs.telemetry(snapshot_interval=128)
    spec = CampaignSpec(fault="stuck_mzi", seed=seed, runs=1, cycles=400,
                        golden_reference=False)
    run_fault_campaign(spec, obs=obs)
    return obs


class TestFaultCampaignEvents:
    def test_event_order_and_schema(self):
        obs = telemetry_campaign()
        activations = obs.events.by_type("fault_activation")
        transitions = obs.events.by_type("ladder_transition")
        assert activations, "campaign must record the injected fault"
        assert transitions, "the ladder must react to the fault"
        # The fault fires before the health monitor walks the ladder.
        assert (activations[0]["seq"] < transitions[0]["seq"])
        assert activations[0]["kind"] == "stuck_mzi"
        for t in transitions:
            assert {"src", "dst", "reason", "error",
                    "partition_ports_cap"} <= set(t)
        first = transitions[0]
        assert first["src"] == "HEALTHY"
        assert first["dst"] == "RECALIBRATE"
        assert first["reason"] == "health_probe"

    def test_event_log_validates(self, tmp_path):
        obs = telemetry_campaign()
        path = write_event_log(tmp_path / "events.jsonl", obs.events)
        assert load_and_validate_events(path) == []

    def test_same_seed_campaign_byte_identical(self, tmp_path):
        first = write_telemetry_dir(tmp_path / "a", telemetry_campaign())
        second = write_telemetry_dir(tmp_path / "b", telemetry_campaign())
        for name in first:
            assert first[name].read_bytes() == second[name].read_bytes(), \
                f"{name} differs between identical same-seed runs"

    def test_snapshots_taken_during_campaign(self):
        obs = telemetry_campaign()
        assert len(obs.sampler) >= 2
        cycles = [s["cycle"] for s in obs.sampler.series]
        assert cycles == sorted(cycles)


# ----------------------------------------------------------------------
# component event streams: sweep engine
# ----------------------------------------------------------------------


class TestEngineEvents:
    def test_cold_then_warm_cache_events(self, tmp_path):
        points = [PointSpec(key=f"p{i}", params={"x": float(i)})
                  for i in range(3)]
        cache = ResultCache(tmp_path)

        cold_obs = Obs.telemetry()
        SweepEngine(jobs=1, cache=cache, obs=cold_obs).run(
            "selftest", points)
        cold = [e["type"] for e in cold_obs.events.events
                if e["type"].startswith("cache_")]
        assert cold == ["cache_miss"] * 3

        warm_obs = Obs.telemetry()
        SweepEngine(jobs=1, cache=cache, obs=warm_obs).run(
            "selftest", points)
        hits = warm_obs.events.by_type("cache_hit")
        assert [e["key"] for e in hits] == ["p0", "p1", "p2"]
        # The engine's clock is the point index.
        assert [e["cycle"] for e in hits] == [0, 1, 2]

    def test_point_failed_events_in_input_order(self):
        def sometimes_fails(params, seed):
            if params["x"] % 2:
                raise RuntimeError(f"boom {params['x']}")
            return {"x": params["x"]}

        points = [PointSpec(key=f"p{i}", params={"x": i})
                  for i in range(4)]
        obs = Obs.telemetry()
        run = SweepEngine(jobs=1, obs=obs).run(sometimes_fails, points)
        assert len(run.failed_results()) == 2
        failed = obs.events.by_type("point_failed")
        assert [e["key"] for e in failed] == ["p1", "p3"]
        assert all("boom" in e["error"] for e in failed)

    def test_end_of_run_snapshot(self):
        obs = Obs.telemetry()
        points = [PointSpec(key="p0", params={"x": 1.0})]
        SweepEngine(jobs=1, obs=obs).run("selftest", points)
        assert len(obs.sampler) >= 1
        counters = obs.sampler.latest()["metrics"]["counters"]
        assert counters["engine.points_total{task=selftest}"] == 1


# ----------------------------------------------------------------------
# per-tenant accounting
# ----------------------------------------------------------------------


def tenant_request(control, tenant: str, cycle: int,
                   request_id: int) -> ComputeRequest:
    key = f"{tenant}/m{request_id}"
    control.matrix_memory.store(key, BlockMatmul(np.eye(8), 8))
    request = ComputeRequest(node=0, plan=plan_offload(8, 8, 8, 8, 8),
                             matrix_key=key, submit_cycle=cycle,
                             ports_needed=4, tenant=tenant,
                             request_id=request_id)
    control.submit(request, cycle)
    return request


class TestTenantAccounting:
    def test_scheduler_splits_tenant_counters(self):
        obs = Obs.telemetry()
        system = SystemConfig()
        net = FlumenNetwork(16, obs=obs)
        control = MZIMControlUnit(net, system, obs=obs)
        scheduler = FlumenScheduler(control, system, obs=obs)
        tenant_request(control, "acme", 0, request_id=0)
        tenant_request(control, "zeta", 0, request_id=1)
        scheduler.drain(max_cycles=20_000)
        counters = obs.metrics.to_dict()["counters"]
        for tenant in ("acme", "zeta"):
            grants = f"core.tenant_partition_grants{{tenant={tenant}}}"
            done = f"core.tenant_partitions_completed{{tenant={tenant}}}"
            assert counters[grants] == 1, counters
            assert counters[done] == 1
        grants = obs.events.by_type("partition_grant")
        assert sorted(e["tenant"] for e in grants) == ["acme", "zeta"]
        assert all("request_id" in e for e in grants)

    def test_mvm_flush_reports_tenant_breakdown(self):
        obs = Obs.telemetry()
        net = FlumenNetwork(16, obs=obs)
        control = MZIMControlUnit(net, SystemConfig(), obs=obs)
        control.matrix_memory.store("w", BlockMatmul(np.eye(8), 8))
        vectors = np.eye(8)[:, :2]
        control.queue_mvm("w", vectors, node=0, tenant="acme")
        control.queue_mvm("w", vectors, node=1, tenant="acme")
        control.queue_mvm("w", vectors, node=2, tenant="zeta")
        results = control.flush_mvms()
        assert sorted(r.tenant for r in results) == \
            ["acme", "acme", "zeta"]
        flushes = obs.events.by_type("mvm_flush")
        assert len(flushes) == 1
        assert flushes[0]["jobs"] == 3
        assert flushes[0]["tenants"] == {"acme": 2, "zeta": 1}
        counters = obs.metrics.to_dict()["counters"]
        assert counters["core.tenant_mvm_jobs{tenant=acme}"] == 2
        assert counters["core.tenant_mvm_jobs{tenant=zeta}"] == 1

    def test_kernel_set_tenant_labels_series(self):
        from repro.noc.simulation import make_network
        from repro.noc.traffic import TrafficGenerator

        obs = Obs.telemetry()
        net = make_network("mesh", 16, obs=obs)
        net.set_tenant("acme")
        net.run(TrafficGenerator(16, "uniform", 0.1, seed=3),
                cycles=300, drain=True)
        counters = obs.metrics.to_dict()["counters"]
        key = "noc.packets_delivered{tenant=acme,topology=mesh}"
        assert counters[key] > 0
        hists = obs.metrics.to_dict()["histograms"]
        lat = hists["noc.packet_latency_cycles{tenant=acme,topology=mesh}"]
        assert lat["count"] == counters[key]


# ----------------------------------------------------------------------
# store, server, top
# ----------------------------------------------------------------------


def telemetry_dir(tmp_path):
    obs = telemetry_campaign()
    root = tmp_path / "telemetry"
    write_telemetry_dir(root, obs)
    return root


class TestTelemetryStoreAndServer:
    def test_store_round_trip(self, tmp_path):
        root = telemetry_dir(tmp_path)
        store = TelemetryStore(root)
        assert store.events()
        assert store.snapshots()
        assert store.latest_snapshot()["cycle"] >= 0
        health = store.health()
        assert health["status"] == "ok"
        assert health["events"] == len(store.events())

    def test_store_exposition_parses(self, tmp_path):
        store = TelemetryStore(telemetry_dir(tmp_path))
        samples, problems = parse_exposition(store.exposition())
        assert problems == []
        assert "repro_telemetry_snapshots" in samples

    def test_store_tolerates_torn_tail(self, tmp_path):
        root = telemetry_dir(tmp_path)
        events = root / "events.jsonl"
        events.write_bytes(events.read_bytes() + b'{"v": 1, "tr')
        store = TelemetryStore(root)
        assert store.events()  # parsed prefix is served

    def test_empty_store(self, tmp_path):
        store = TelemetryStore(tmp_path / "nothing")
        assert store.events() == []
        assert store.latest_snapshot() is None
        assert store.exposition() == ""

    def test_http_endpoints(self, tmp_path):
        store = TelemetryStore(telemetry_dir(tmp_path))

        def get(server, path):
            url = f"http://127.0.0.1:{server.port}{path}"
            with urllib.request.urlopen(url) as response:
                return (response.status,
                        response.headers.get("Content-Type", ""),
                        response.read().decode())

        with TelemetryServer(store, port=0) as server:
            status, ctype, body = get(server, "/metrics")
            assert status == 200 and "text/plain" in ctype
            _, problems = parse_exposition(body)
            assert problems == []

            status, ctype, body = get(server, "/healthz")
            assert json.loads(body)["status"] == "ok"

            _, _, body = get(server, "/events?tail=2")
            lines = [json.loads(ln) for ln in body.splitlines()]
            assert len(lines) == 2
            assert all(e["v"] == EVENT_SCHEMA_VERSION for e in lines)

            _, _, body = get(server, "/snapshots?tail=1")
            assert len(body.splitlines()) == 1

            with pytest.raises(urllib.error.HTTPError) as err:
                get(server, "/nope")
            assert err.value.code == 404

    def test_render_top_sections(self, tmp_path):
        store = TelemetryStore(telemetry_dir(tmp_path))
        frame = render_top(store)
        assert "repro top" in frame
        assert "counters" in frame
        assert "recent events" in frame
        assert "ladder_transition" in frame

    def test_render_top_empty_dir(self, tmp_path):
        frame = render_top(TelemetryStore(tmp_path / "nothing"))
        assert "no snapshots" in frame


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestTelemetryCLI:
    def test_sweep_telemetry_dir(self, capsys, tmp_path):
        tdir = tmp_path / "telemetry"
        assert main(["sweep", "--small", "--workloads", "rotation3d",
                     "--configs", "mesh", "--no-cache",
                     "--telemetry-dir", str(tdir)]) == 0
        out = capsys.readouterr().out
        assert "wrote telemetry" in out
        for name in ("events.jsonl", "snapshots.jsonl", "metrics.prom"):
            assert (tdir / name).exists()
        assert load_and_validate_events(tdir / "events.jsonl") == []

    def test_metrics_server_check_and_once(self, capsys, tmp_path):
        root = telemetry_dir(tmp_path)
        assert main(["metrics-server", "--dir", str(root),
                     "--check"]) == 0
        assert "telemetry check: ok" in capsys.readouterr().out
        assert main(["metrics-server", "--dir", str(root),
                     "--once"]) == 0
        _, problems = parse_exposition(capsys.readouterr().out)
        assert problems == []

    def test_metrics_server_check_flags_corruption(self, capsys,
                                                   tmp_path):
        root = telemetry_dir(tmp_path)
        events = root / "events.jsonl"
        events.write_bytes(events.read_bytes()[:-8])
        assert main(["metrics-server", "--dir", str(root),
                     "--check"]) == 1

    def test_top_single_frame(self, capsys, tmp_path):
        root = telemetry_dir(tmp_path)
        assert main(["top", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "counters" in out

    def test_top_follow_frames(self, capsys, tmp_path):
        root = telemetry_dir(tmp_path)
        assert main(["top", "--dir", str(root), "--follow",
                     "--frames", "2", "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top") == 2
