"""Hypothesis property tests on network invariants.

Every network must deliver every injected packet exactly once, never
violate credit flow, and leave no state behind after drain — regardless of
topology, pattern, load, or seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.registry import registered_topologies
from repro.noc.simulation import make_network
from repro.noc.traffic import TrafficGenerator


@settings(max_examples=20, deadline=None)
@given(topology=st.sampled_from(registered_topologies()),
       pattern=st.sampled_from(["uniform", "bit_reversal", "shuffle",
                                "tornado", "neighbor"]),
       load=st.floats(min_value=0.02, max_value=0.35),
       packet_size=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_conservation(topology, pattern, load, packet_size, seed):
    net = make_network(topology, 16)
    traffic = TrafficGenerator(16, pattern, load,
                               packet_size=packet_size, seed=seed)
    net.run(traffic, cycles=400, drain=True, max_drain_cycles=30_000)
    assert net.latency.received == net.injected_packets
    assert net.quiescent()
    assert net.total_queued_flits() == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       blocked_half=st.booleans())
def test_property_flumen_blocking_never_loses_packets(seed, blocked_half):
    net = make_network("flumen", 16)
    if blocked_half:
        net.block_ports(set(range(8)))
    traffic = TrafficGenerator(16, "uniform", 0.2, seed=seed)
    net.run(traffic, cycles=300)
    net.unblock_ports(set(range(8)))
    budget = 30_000
    while not net.quiescent() and budget:
        net.step()
        budget -= 1
    assert net.latency.received == net.injected_packets


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6),
       load=st.floats(min_value=0.05, max_value=0.6))
def test_property_latency_at_least_serialization(seed, load):
    # No packet can complete faster than its own flit count.
    net = make_network("flumen", 16)
    traffic = TrafficGenerator(16, "shuffle", load, packet_size=4,
                               seed=seed)
    net.run(traffic, cycles=300, drain=True)
    if net.latency.latencies:
        assert min(net.latency.latencies) >= 4
