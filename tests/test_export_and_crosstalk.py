"""Tests for result export utilities and WDM crosstalk modeling."""

import json

import numpy as np
import pytest

from repro.analysis.export import (
    runs_to_records,
    sweep_to_records,
    to_csv,
    to_json,
    write_records,
)
from repro.core.system import WorkloadRun
from repro.multicore.energy import EnergyBreakdown
from repro.noc.simulation import SweepConfig, load_sweep
from repro.photonics.noise import AnalogMVM, wdm_crosstalk_matrix
from repro.photonics.svd import program_svd


def fake_runs():
    return {"wl": {
        "mesh": WorkloadRun("wl", "mesh", 1e-3,
                            EnergyBreakdown(core=1.0, nop=0.5)),
        "flumen_a": WorkloadRun("wl", "flumen_a", 5e-4,
                                EnergyBreakdown(core=0.4, mzim=0.1),
                                offloaded_macs=100),
    }}


class TestExport:
    def test_runs_to_records_structure(self):
        records = runs_to_records(fake_runs())
        assert len(records) == 2
        rec = next(r for r in records if r["configuration"] == "flumen_a")
        assert rec["offloaded_macs"] == 100
        assert rec["energy_mzim_j"] == pytest.approx(0.1)
        assert rec["energy_total_j"] == pytest.approx(0.5)

    def test_csv_roundtrip_columns(self):
        text = to_csv(runs_to_records(fake_runs()))
        header, *rows = text.strip().splitlines()
        assert "workload" in header
        assert len(rows) == 2

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_parses(self):
        parsed = json.loads(to_json(runs_to_records(fake_runs())))
        assert len(parsed) == 2

    def test_sweep_records(self):
        results = load_sweep("flumen", "uniform", [0.1],
                             SweepConfig(cycles=400, warmup=100))
        records = sweep_to_records(results)
        assert records[0]["topology"] == "flumen"
        assert records[0]["avg_latency"] > 0

    def test_write_records(self, tmp_path):
        path = tmp_path / "out.csv"
        write_records(runs_to_records(fake_runs()), str(path))
        assert path.read_text().startswith("workload")
        jpath = tmp_path / "out.json"
        write_records(runs_to_records(fake_runs()), str(jpath))
        assert json.loads(jpath.read_text())

    def test_write_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            write_records([], str(tmp_path / "out.xlsx"))


class TestWDMCrosstalk:
    def test_matrix_rows_conserve_power(self):
        m = wdm_crosstalk_matrix(8, 30.0)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_leak_magnitude(self):
        m = wdm_crosstalk_matrix(4, 20.0)
        assert m[0, 1] == pytest.approx(0.01)

    def test_single_channel_identity(self):
        assert np.allclose(wdm_crosstalk_matrix(1, 30.0), [[1.0]])

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            wdm_crosstalk_matrix(0, 30.0)

    def test_crosstalk_degrades_accuracy(self):
        mtx = np.random.default_rng(0).standard_normal((8, 8))
        prog = program_svd(mtx)
        x = np.random.default_rng(1).standard_normal((8, 8))
        ref = mtx @ x

        def error(xt_db):
            mvm = AnalogMVM(prog, crosstalk_db=xt_db,
                            rng=np.random.default_rng(2))
            return np.abs(mvm(x) - ref).max()

        clean = error(None)
        mild = error(30.0)
        harsh = error(10.0)
        assert harsh > mild
        assert harsh > clean

    def test_default_crosstalk_barely_hurts(self):
        mtx = np.random.default_rng(3).standard_normal((8, 8))
        prog = program_svd(mtx)
        x = np.random.default_rng(4).standard_normal((8, 8))
        ref = mtx @ x
        mvm = AnalogMVM(prog, rng=np.random.default_rng(5))
        rel = np.abs(mvm(x) - ref).max() / np.abs(ref).max()
        assert rel < 0.15  # 30 dB ring isolation is adequate

    def test_single_vector_skips_crosstalk(self):
        mtx = np.eye(4)
        prog = program_svd(mtx)
        v = np.array([1.0, 0.5, -0.5, 0.25])
        out = AnalogMVM(prog, crosstalk_db=10.0,
                        rng=np.random.default_rng(6))(v)
        assert out.shape == (4,)
