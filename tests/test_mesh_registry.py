"""Mesh-architecture registry: semantics, properties, and e2e plumbing.

Three layers of coverage (ISSUE 8 / DESIGN.md §16):

* registry mechanics — the two-slot register/lookup/temporary contract
  mirrored from ``noc/registry``;
* architecture properties — hypothesis-driven invariants every
  registrant must satisfy (unitarity, ``propagate == matrix @ a``,
  decompose∘matrix reconstruction, vectorized/oracle bit-identity),
  plus the bricks mesh's parity/depth/fault-domain structure;
* end-to-end plumbing — SVD programming, fabric compute partitions,
  calibration, the energy model, and the ``mesh_comparison`` sweep task
  all running under every registered architecture.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.bricks import bricks_depth, decompose_bricks
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.registry import (
    MeshArchitecture,
    has_vectorized_mesh,
    make_mesh,
    mesh_factory,
    register_mesh,
    registered_meshes,
    temporary_mesh,
    unregister_mesh,
)

ALL_MESHES = registered_meshes()


def haar(n, seed):
    return random_unitary(n, np.random.default_rng(seed))


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------


class TestRegistrySemantics:
    def test_builtins_registered(self):
        assert set(ALL_MESHES) >= {"clements", "reck", "bricks"}

    def test_unknown_name_lists_registrations(self):
        with pytest.raises(ValueError, match="unknown mesh architecture"):
            make_mesh("moebius")
        with pytest.raises(ValueError, match="clements"):
            mesh_factory("moebius")

    def test_every_builtin_has_both_slots(self):
        for name in ("clements", "reck", "bricks"):
            assert has_vectorized_mesh(name)
            oracle = make_mesh(name, vectorized=False)
            twin = make_mesh(name, vectorized=True)
            assert not oracle.vectorized
            assert twin.vectorized
            # Default dispatch prefers the vectorized twin.
            assert make_mesh(name).vectorized

    def test_instance_passes_through(self):
        arch = make_mesh("reck")
        assert make_mesh(arch) is arch

    def test_temporary_mesh_registers_and_cleans_up(self):
        def factory(**kwargs):
            return make_mesh("clements", vectorized=False)

        with temporary_mesh("probe", factory):
            assert "probe" in registered_meshes()
            assert make_mesh("probe").name == "clements"
            assert not has_vectorized_mesh("probe")
        assert "probe" not in registered_meshes()

    def test_duplicate_registration_rejected(self):
        def factory(**kwargs):
            return make_mesh("clements")

        with temporary_mesh("probe", factory):
            with pytest.raises(ValueError, match="already registered"):
                register_mesh("probe", factory)
            # The vectorized slot is independent — and removable alone.
            register_mesh("probe", factory, vectorized=True)
            assert has_vectorized_mesh("probe")
            unregister_mesh("probe", vectorized=True)
            assert not has_vectorized_mesh("probe")

    def test_missing_slot_error_names_the_kind(self):
        def factory(**kwargs):
            return make_mesh("clements", vectorized=True)

        with temporary_mesh("vec-only", factory, vectorized=True):
            assert make_mesh("vec-only") is not None
            with pytest.raises(ValueError, match="no reference"):
                mesh_factory("vec-only", vectorized=False)


# ----------------------------------------------------------------------
# architecture properties (hypothesis, over the whole registry)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_MESHES)
class TestArchitectureProperties:
    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(min_value=2, max_value=10),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_reconstruction_and_unitarity(self, name, n, seed):
        arch = make_mesh(name)
        u = haar(n, seed)
        mesh = arch.decompose(u)
        m = arch.matrix(mesh)
        assert np.allclose(m, u, atol=1e-10)
        assert np.allclose(m @ m.conj().T, np.eye(n), atol=1e-10)

    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(min_value=2, max_value=10),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_propagate_is_matrix_action(self, name, n, seed):
        arch = make_mesh(name)
        u = haar(n, seed)
        mesh = arch.decompose(u)
        rng = np.random.default_rng(seed ^ 0xABCD)
        fields = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        out = arch.propagate(mesh, fields)
        assert np.allclose(out, arch.matrix(mesh) @ fields, atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=10),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_vectorized_matches_oracle_bitwise(self, name, n, seed):
        oracle = make_mesh(name, vectorized=False)
        twin = make_mesh(name, vectorized=True)
        u = haar(n, seed)
        mesh = oracle.decompose(u)
        rng = np.random.default_rng(seed ^ 0x1234)
        fields = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.array_equal(twin.propagate(mesh, fields),
                              oracle.propagate(mesh, fields))
        assert np.array_equal(np.asarray(twin.trace_hops(mesh)),
                              np.asarray(oracle.trace_hops(mesh)))

    def test_accounting_contract(self, name):
        arch = make_mesh(name)
        for n in (2, 4, 8, 13):
            mesh = arch.decompose(haar(n, n + 7))
            assert mesh.num_mzis == arch.program_mzi_count(n)
            assert mesh.num_columns <= arch.depth(n)
            assert 0 < arch.device_count(n) <= arch.program_mzi_count(n)
            assert arch.passes(n) >= 1
            assert list(arch.devices(mesh)) == list(range(mesh.num_mzis))
            for index in (0, mesh.num_mzis // 2, mesh.num_mzis - 1):
                domain = arch.fault_domain(mesh, index)
                assert index in domain

    def test_column_metadata_is_phase_independent(self, name):
        arch = make_mesh(name)
        a = arch.decompose(haar(6, 1))
        b = arch.decompose(haar(6, 2))
        assert arch.column_metadata(a) == arch.column_metadata(b)


# ----------------------------------------------------------------------
# the bricks mesh specifically
# ----------------------------------------------------------------------


class TestBricksMesh:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12])
    def test_bit_identical_to_clements(self, n):
        u = haar(n, 3 * n + 1)
        clem, brick = decompose(u), decompose_bricks(u)
        assert np.array_equal(clem.matrix(), brick.matrix())
        fields = haar(n, n)[:, 0]
        assert np.array_equal(clem.propagate(fields),
                              brick.propagate(fields))

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12])
    def test_parity_constraint_and_depth_bound(self, n):
        mesh = decompose_bricks(haar(n, n + 5))
        for mzi in mesh.mzis:
            assert mzi.column % 2 == mzi.top_mode % 2
        assert mesh.num_columns <= bricks_depth(n)

    def test_fault_domain_spans_all_passes(self):
        arch = make_mesh("bricks")
        mesh = arch.decompose(haar(8, 11))
        for index in range(mesh.num_mzis):
            domain = arch.fault_domain(mesh, index)
            top = mesh.mzis[index].top_mode
            assert domain == tuple(
                i for i, m in enumerate(mesh.mzis) if m.top_mode == top)
            assert len(domain) >= 1

    def test_stuck_device_pins_every_pass(self):
        from repro.faults.injector import FaultyMesh
        from repro.photonics.devices import BAR_THETA

        arch = make_mesh("bricks")
        target = haar(8, 21)
        plain = FaultyMesh(arch.decompose(target))
        plain.stick(3, BAR_THETA)
        widened = FaultyMesh(arch.decompose(target), architecture=arch)
        widened.stick(3, BAR_THETA)
        assert set(plain.stuck) == {3}
        assert set(widened.stuck) == set(arch.fault_domain(
            arch.decompose(target), 3))
        assert len(widened.stuck) > 1


# ----------------------------------------------------------------------
# end-to-end plumbing under every architecture
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_MESHES)
class TestEndToEnd:
    def test_svd_program_applies_the_matrix(self, name):
        from repro.photonics.svd import clear_svd_cache, program_svd

        clear_svd_cache()
        rng = np.random.default_rng(97)
        matrix = rng.standard_normal((8, 8))
        program = program_svd(matrix, architecture=name)
        vectors = rng.standard_normal((8, 4))
        assert np.allclose(program.apply(vectors), matrix @ vectors,
                           atol=1e-9)

    def test_fabric_compute_partition(self, name):
        from repro.photonics.fabric import FlumenFabric

        fabric = FlumenFabric(8, mesh_architecture=name)
        rng = np.random.default_rng(13)
        matrix = rng.standard_normal((4, 4))
        part = fabric.split(0, 4, matrix=matrix)
        assert part.svd is not None
        vec = rng.standard_normal(4)
        assert np.allclose(part.svd.apply(vec), matrix @ vec, atol=1e-9)

    def test_calibration_recovers_offsets(self, name):
        from repro.photonics.calibration import (
            PhaseOffsets,
            calibrate_to,
        )

        target = haar(8, 31)
        offsets = PhaseOffsets.random(28, 0.05,
                                      np.random.default_rng(32))
        result = calibrate_to(target, offsets, architecture=name)
        assert result.final_error < 1e-9

    def test_energy_model_accounting(self, name):
        from repro.photonics.compute_energy import MZIMComputeModel

        arch = make_mesh(name)
        model = MZIMComputeModel(architecture=name)
        n = 8
        assert model.svd_mzi_count(n) == 2 * arch.device_count(n) + n
        assert model.mesh_columns(n) == 2 * arch.depth(n) + 1
        assert model.matmul_energy(n, 4).total > 0

    def test_mesh_comparison_task(self, name):
        from repro.analysis.tasks import mesh_comparison

        record = mesh_comparison({"architecture": name, "ports": 8}, 17)
        assert record["architecture"] == name
        assert record["decomposition_error"] < 1e-10
        assert record["recalibrated_error"] < 1e-9
        assert record["drift_error"] > record["decomposition_error"]
        assert record["stuck_error"] > 0
        assert record["measured_columns"] <= record["depth_bound"]
        assert record["energy_per_mac_j"] > 0


class TestDefaultPathUnchanged:
    def test_clements_counts_match_paper_formulas(self):
        from repro.photonics.compute_energy import MZIMComputeModel

        model = MZIMComputeModel()
        assert model.architecture == "clements"
        for n in (2, 8, 64):
            assert model.svd_mzi_count(n) == n * n
            assert model.mesh_columns(n) == 2 * n + 1

    def test_svd_cache_shared_between_default_and_explicit(self):
        from repro.photonics.svd import (
            clear_svd_cache,
            program_svd,
            svd_cache_stats,
        )

        clear_svd_cache()
        matrix = np.random.default_rng(5).standard_normal((6, 6))
        program_svd(matrix)
        assert svd_cache_stats()["misses"] == 1
        program_svd(matrix, architecture="clements")
        stats = svd_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # A different architecture is a different cache entry.
        program_svd(matrix, architecture="reck")
        assert svd_cache_stats()["misses"] == 2
