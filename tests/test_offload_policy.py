"""Tests for the node-side offload decision policy (Section 3.4)."""

import pytest

from repro.core.offload import Decision, OffloadPolicy


@pytest.fixture
def policy():
    return OffloadPolicy()


class TestUtilizationGate:
    def test_hot_network_forces_local(self, policy):
        assert policy.decide(1000, 4096, 64, 0.95) is Decision.LOCAL

    def test_ceiling_is_inclusive(self, policy):
        assert policy.decide(1000, 4096, 64, 0.8) is Decision.LOCAL

    def test_invalid_utilization_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.decide(8, 8, 1, 1.5)


class TestLatencyComparison:
    def test_large_batched_job_offloads(self, policy):
        # Thousands of reused-matrix MVMs: the photonic path wins big.
        assert policy.decide(8, 8, 4096, 0.1) is Decision.OFFLOAD

    def test_tiny_job_stays_local(self, policy):
        # One 4x4 MVM cannot amortize grant wait + 6 ns programming.
        assert policy.decide(4, 4, 1, 0.0) is Decision.LOCAL

    def test_grant_wait_shifts_the_decision(self):
        eager = OffloadPolicy(expected_grant_wait_cycles=0.0)
        patient = OffloadPolicy(expected_grant_wait_cycles=50_000.0)
        job = (8, 8, 256)
        assert eager.decide(*job, 0.0) is Decision.OFFLOAD
        assert patient.decide(*job, 0.0) is Decision.LOCAL

    def test_local_core_count_matters(self):
        weak = OffloadPolicy(local_cores=1)
        strong = OffloadPolicy(local_cores=64)
        job = (8, 8, 128)
        # More local horsepower raises the offload bar.
        if strong.decide(*job, 0.0) is Decision.OFFLOAD:
            assert weak.decide(*job, 0.0) is Decision.OFFLOAD


class TestBreakEven:
    def test_break_even_exists_for_reused_kernels(self, policy):
        be = policy.break_even_vectors(8, 8)
        assert be is not None
        assert policy.decide(8, 8, be, 0.0) is Decision.OFFLOAD
        if be > 1:
            assert policy.decide(8, 8, be - 1, 0.0) is Decision.LOCAL

    def test_break_even_monotone_in_kernel_size(self, policy):
        # Bigger kernels offload more MACs per window: earlier break-even.
        small = policy.break_even_vectors(8, 8)
        large = policy.break_even_vectors(8, 64)
        assert small is not None and large is not None
        assert large <= small
