"""Tests for metrics, report rendering, and sweep helpers."""

import pytest

from repro.analysis.metrics import (
    edp_reduction,
    energy_reduction,
    geomean,
    percent_reduction,
    reductions_vs,
    speedup,
)
from repro.analysis.report import ascii_chart, format_ratio, format_table
from repro.analysis.sweep import best_of, knee_of, sweep
from repro.core.system import WorkloadRun
from repro.multicore.energy import EnergyBreakdown


def run(runtime, energy, name="wl", cfg="mesh"):
    return WorkloadRun(workload=name, configuration=cfg,
                       runtime_s=runtime,
                       energy=EnergyBreakdown(core=energy))


class TestMetrics:
    def test_geomean_of_constants(self):
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_mixed(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(run(2.0, 1.0), run(0.5, 1.0)) == pytest.approx(4.0)

    def test_energy_reduction(self):
        assert energy_reduction(run(1, 9.0), run(1, 3.0)) == pytest.approx(3.0)

    def test_edp_combines_both(self):
        base = run(2.0, 4.0)
        cand = run(1.0, 1.0)
        assert edp_reduction(base, cand) == pytest.approx(8.0)

    def test_reductions_vs(self):
        runs = {"mesh": run(2.0, 4.0), "flumen_a": run(1.0, 2.0)}
        r = reductions_vs(runs, "mesh")
        assert r == {"speedup": pytest.approx(2.0),
                     "energy": pytest.approx(2.0),
                     "edp": pytest.approx(4.0)}

    def test_percent_reduction(self):
        assert percent_reduction(100.0, 23.0) == pytest.approx(77.0)
        with pytest.raises(ValueError):
            percent_reduction(0.0, 1.0)


class TestReport:
    def test_table_contains_all_cells(self):
        t = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in t and "2.50" in t and "0.001" in t and "x" in t

    def test_table_alignment(self):
        t = format_table(["col"], [[123456]])
        lines = t.splitlines()
        assert len(lines[0]) == len(lines[-1])

    def test_ascii_chart_renders_markers(self):
        chart = ascii_chart({"s1": [(0, 1), (1, 2)], "s2": [(0, 2), (1, 4)]})
        assert "*" in chart and "o" in chart
        assert "s1" in chart and "s2" in chart

    def test_ascii_chart_log_scale(self):
        chart = ascii_chart({"s": [(0, 1), (1, 1000)]}, log_y=True)
        assert "log scale" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_format_ratio(self):
        assert format_ratio(2.49) == "2.5x"


class TestSweep:
    def test_sweep_evaluates_all_points(self):
        pts = sweep("tau", [1, 2, 3], lambda v: {"m": v * 2.0})
        assert [p.metrics["m"] for p in pts] == [2.0, 4.0, 6.0]

    def test_knee_detection(self):
        pts = sweep("tau", [100, 150, 200, 250],
                    lambda v: {"served": 10.0 if v <= 170 else 2.0})
        assert knee_of(pts, "served") == 200

    def test_knee_none_when_flat(self):
        pts = sweep("x", [1, 2], lambda v: {"m": 5.0})
        assert knee_of(pts, "m") is None

    def test_best_of(self):
        pts = sweep("eta", [0.2, 0.4, 0.6],
                    lambda v: {"score": -(v - 0.4) ** 2})
        assert best_of(pts, "score").value == pytest.approx(0.4)

    def test_best_of_minimize(self):
        pts = sweep("x", [1, 2, 3], lambda v: {"cost": v})
        assert best_of(pts, "cost", minimize=True).value == 1
