"""Tests for the NoC backend registry and the configuration pipelines.

Covers the refactor's contract: a new topology or system configuration
plugs in via registration alone — through ``make_network``, through
``SystemModel``, and through the ``python -m repro sweep`` CLI — with no
edits to ``core/system.py``; unknown names fail listing exactly what is
registered; and every registered backend satisfies the kernel's
quiescence/conservation semantics on a finite offered trace.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipelines import (
    ConfigPipeline,
    configuration_names,
    get_configuration,
    register_configuration,
    temporary_configuration,
)
from repro.core.system import SystemModel
from repro.noc.kernel import SimKernel
from repro.noc.registry import (
    register_backend,
    registered_topologies,
    temporary_backend,
)
from repro.noc.simulation import make_network
from repro.noc.traffic import TracePlayback
from repro.obs import NULL_OBS
from repro.workloads import Rotation3D


class IdealNetwork(SimKernel):
    """Toy backend: contention-free delivery after a fixed pipe delay.

    Exists to prove the plug-in path; only implements the four kernel
    hooks.
    """

    def __init__(self, nodes: int = 16, delay: int = 2,
                 obs=NULL_OBS, **kwargs) -> None:
        super().__init__(name="ideal", num_links=nodes, obs=obs, **kwargs)
        self.nodes = nodes
        self.delay = delay
        self._in_flight: list[list] = []  # [cycles left, packet]

    def _enqueue(self, packet) -> None:
        self._in_flight.append([self.delay + packet.size_flits, packet])

    def step(self) -> None:
        busy = 0
        finished = []
        for entry in self._in_flight:
            entry[0] -= 1
            busy += 1
            self.flit_hops += 1
            self.link_traversals += 1
            if entry[0] <= 0:
                finished.append(entry)
        for entry in finished:
            self._in_flight.remove(entry)
            packet = entry[1]
            self._deliver(packet, self.cycle, f"node{packet.src}")
        self.utilization.record_cycle(
            min(busy, self.utilization.num_links))
        self.cycle += 1

    def quiescent(self) -> bool:
        return not self._in_flight

    def total_queued_flits(self) -> int:
        return sum(entry[1].size_flits for entry in self._in_flight)


def _make_ideal(nodes: int = 16, **kwargs):
    return IdealNetwork(nodes, **kwargs)


IDEAL_PIPELINE = ConfigPipeline(name="ideal", topology="ideal",
                                link_energy="electrical")


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert set(registered_topologies()) >= {
            "ring", "mesh", "optbus", "flumen"}

    def test_unknown_error_lists_registered_names(self):
        # Satellite: the error interpolates the live registry, not a
        # static tuple — the message must match the registry contents.
        with pytest.raises(ValueError) as err:
            make_network("hypercube", 16)
        message = str(err.value)
        listed = re.search(r"known: \((.*)\)", message).group(1)
        names = tuple(item.strip().strip("'") for item in listed.split(","))
        assert names == registered_topologies()

    def test_error_reflects_temporary_registration(self):
        with temporary_backend("toy_listed", _make_ideal):
            with pytest.raises(ValueError, match="toy_listed"):
                make_network("nope", 16)
        with pytest.raises(ValueError) as err:
            make_network("nope", 16)
        assert "toy_listed" not in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("ring", _make_ideal)

    def test_replace_allows_override(self):
        with temporary_backend("toy_repl", _make_ideal):
            register_backend("toy_repl", _make_ideal, replace=True)

    def test_registered_backend_constructs_through_factory(self):
        with temporary_backend("toy_net", _make_ideal):
            net = make_network("toy_net", 8, delay=1)
            assert isinstance(net, IdealNetwork)
            assert net.nodes == 8


class TestPipelineRegistry:
    def test_builtin_configurations(self):
        assert configuration_names() == (
            "ring", "mesh", "optbus", "flumen_i", "flumen_a")

    def test_unknown_configuration_lists_registered(self):
        with pytest.raises(ValueError) as err:
            get_configuration("torus")
        for name in configuration_names():
            assert name in str(err.value)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_configuration(ConfigPipeline(
                name="mesh", topology="mesh"))

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError, match="link_energy"):
            ConfigPipeline(name="x", topology="mesh", link_energy="steam")
        with pytest.raises(ValueError, match="compute_path"):
            ConfigPipeline(name="x", topology="mesh", compute_path="gpu")

    def test_flumen_a_declares_mzim_compute(self):
        pipeline = get_configuration("flumen_a")
        assert pipeline.topology == "flumen"
        assert pipeline.compute_path == "mzim"
        assert pipeline.link_energy == "flumen"


class TestToyBackendEndToEnd:
    """A topology plugs in by registration alone — no core edits."""

    @pytest.fixture()
    def ideal_registered(self):
        with temporary_backend("ideal", _make_ideal), \
                temporary_configuration(IDEAL_PIPELINE):
            yield

    def test_system_model_runs_toy_configuration(self, ideal_registered):
        model = SystemModel(traffic_seed=17)
        run = model.run(Rotation3D(vertices=34), "ideal")
        assert run.configuration == "ideal"
        assert run.runtime_s > 0
        assert run.energy.total > 0
        assert run.energy.nop > 0

    def test_run_all_includes_toy_configuration(self, ideal_registered):
        runs = SystemModel(traffic_seed=17).run_all(Rotation3D(vertices=34))
        assert set(runs) == set(configuration_names())
        assert "ideal" in runs

    def test_sweep_cli_runs_toy_configuration(self, ideal_registered,
                                              capsys, tmp_path):
        from repro.__main__ import main
        out = tmp_path / "records.json"
        code = main(["sweep", "--small", "--workloads", "rotation3d",
                     "--configs", "ideal", "--jobs", "1", "--no-cache",
                     "--out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "ideal" in stdout
        import json
        records = json.loads(out.read_text())
        assert [r["key"] for r in records] == ["rotation3d/ideal"]
        assert records[0]["metrics"]["configuration"] == "ideal"


@pytest.mark.parametrize("topology", registered_topologies())
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       npackets=st.integers(min_value=1, max_value=60),
       packet_size=st.integers(min_value=1, max_value=6))
def test_property_finite_trace_drains_and_conserves(topology, seed,
                                                    npackets, packet_size):
    """Satellite: quiescence/drain semantics for every registered backend.

    A finite offered trace must fully drain — ``quiescent()`` with zero
    queued flits — and conserve packets: offered equals delivered plus
    dropped (no backend drops today, so delivered equals offered).
    """
    import random
    rng = random.Random(seed)
    events = []
    for _ in range(npackets):
        src = rng.randrange(16)
        dst = rng.randrange(16)
        if dst == src:
            dst = (dst + 1) % 16
        events.append((rng.randrange(40), src, dst, packet_size))
    net = make_network(topology, 16)
    net.run(TracePlayback(events), cycles=41, drain=True,
            max_drain_cycles=50_000)
    assert net.quiescent()
    assert net.total_queued_flits() == 0
    offered = net.injected_packets
    delivered = net.latency.received
    dropped = getattr(net, "dropped_packets", 0)
    assert offered == len(events)
    assert offered == delivered + dropped
