"""Tests for the observability subsystem (repro.obs) and its wiring.

Covers the metrics registry, the cycle tracer, the Chrome trace-event
exporter/validator, determinism of traced runs, null-backend inertness,
and the ``python -m repro trace`` subcommand.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.trace import trace_workload
from repro.obs import (
    LAYERS,
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    CycleTracer,
    MetricsRegistry,
    Obs,
    chrome_trace_payload,
    load_and_validate,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.metrics import NULL_INSTRUMENT


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("noc.packets", topology="mesh")
        c.inc()
        c.inc(4)
        assert reg.counter("noc.packets", topology="mesh").value == 5

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", level="l1").inc(2)
        reg.counter("hits", level="l2").inc(3)
        snap = reg.to_dict()
        assert snap["counters"]["hits{level=l1}"] == 2
        assert snap["counters"]["hits{level=l2}"] == 3

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", b=1, a=2)
        b = reg.counter("x", a=2, b=1)
        assert a is b

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7.0)
        h = reg.histogram("lat", bounds=(10.0, 100.0))
        h.observe(5)
        h.observe(50)
        h.observe(500)
        snap = reg.to_dict()
        assert snap["gauges"]["depth"] == 7.0
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["min"] == 5 and hist["max"] == 500
        # Buckets are cumulative (Prometheus le convention).
        assert hist["buckets"] == {"10": 1, "100": 2, "+Inf": 3}
        assert hist["p50"] == pytest.approx(55.0)

    def test_to_dict_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc()
            reg.counter("a", z=1).inc(2)
            reg.gauge("g").set(3.5)
            return json.dumps(reg.to_dict(), sort_keys=True)
        assert build() == build()

    def test_timer_statistics(self):
        reg = MetricsRegistry()
        t = reg.timer("engine.run_seconds", task="system_point")
        t.observe(0.5)
        t.observe(1.5)
        assert t.count == 2
        assert t.mean_s == pytest.approx(1.0)
        full = t.to_dict(wall_time=True)
        assert full == {"count": 2, "sum_s": pytest.approx(2.0),
                        "mean_s": pytest.approx(1.0),
                        "min_s": pytest.approx(0.5),
                        "max_s": pytest.approx(1.5)}
        assert reg.timer("engine.run_seconds",
                         task="system_point") is t

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("phase").time():
            pass
        t = reg.timer("phase")
        assert t.count == 1
        assert t.total_s >= 0.0

    def test_timer_default_snapshot_is_count_only(self):
        # Wall-clock values are machine-dependent; the default snapshot
        # (what metrics.jsonl serializes) must stay byte-deterministic.
        reg = MetricsRegistry()
        reg.timer("noc.run_seconds", topology="flumen").observe(0.123)
        snap = reg.to_dict()
        assert snap["timers"]["noc.run_seconds{topology=flumen}"] \
            == {"count": 1}
        wall = reg.to_dict(wall_time=True)
        assert wall["timers"]["noc.run_seconds{topology=flumen}"][
            "sum_s"] == pytest.approx(0.123)

    def test_kernel_run_records_timer(self):
        from repro.noc.network import Network
        from repro.noc.topology import make_topology
        from repro.noc.traffic import TrafficGenerator

        obs = Obs.active()
        net = Network(make_topology("mesh", 16), obs=obs)
        net.run(TrafficGenerator(16, "uniform", 0.1, seed=2),
                cycles=200, drain=True)
        t = obs.metrics.timer("noc.run_seconds", topology="mesh")
        assert t.count == 1
        assert t.total_s > 0.0
        # The run also lands on the trace timeline as a complete span.
        spans = [e for e in obs.tracer.events
                 if e.get("name") == "run:mesh"]
        assert len(spans) == 1

    def test_engine_run_records_timer(self):
        from repro.analysis.engine import PointSpec, SweepEngine

        obs = Obs.active()
        engine = SweepEngine(jobs=1, cache=None, obs=obs)
        engine.run("system_point",
                   [PointSpec(key="p", params={
                       "workload": "rotation3d", "configuration": "mesh",
                       "shapes": "small"})],
                   base_seed=17)
        t = obs.metrics.timer("engine.run_seconds", task="system_point")
        assert t.count == 1


class TestCycleTracer:
    def test_layers_map_to_pids(self):
        tracer = CycleTracer()
        for layer in LAYERS:
            tracer.instant(layer, "t", "e", 1)
        pids = [e["pid"] for e in tracer.events]
        assert pids == [1, 2, 3, 4, 5]
        assert all(n == 1 for n in tracer.events_by_layer().values())

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown layer"):
            CycleTracer().instant("kernel", "t", "e", 0)

    def test_tracks_get_stable_tids(self):
        tracer = CycleTracer()
        tracer.instant("noc", "port0", "a", 0)
        tracer.instant("noc", "port1", "b", 1)
        tracer.instant("noc", "port0", "c", 2)
        tids = [e["tid"] for e in tracer.events]
        assert tids == [1, 2, 1]

    def test_complete_span_clamps_negative_duration(self):
        tracer = CycleTracer()
        tracer.complete("core", "t", "span", 10, 8)
        assert tracer.events[0]["dur"] == 0

    def test_metadata_names_processes_and_threads(self):
        tracer = CycleTracer()
        tracer.instant("photonics", "fabric", "e", 3)
        meta = tracer.metadata_events()
        process_names = {m["args"]["name"] for m in meta
                         if m["name"] == "process_name"}
        assert process_names == set(LAYERS)
        thread_meta = [m for m in meta if m["name"] == "thread_name"]
        assert thread_meta[0]["args"]["name"] == "fabric"


class TestChromeTraceSchema:
    def _payload(self):
        tracer = CycleTracer()
        tracer.instant("noc", "t", "inject", 0, src=1)
        tracer.complete("noc", "t", "packet", 0, 7, flits=4)
        tracer.counter("noc", "links", "busy", 100, busy=0.5)
        return chrome_trace_payload(tracer)

    def test_valid_trace_passes(self):
        assert validate_chrome_trace(self._payload()) == []

    def test_events_have_required_keys(self):
        payload = self._payload()
        for event in payload["traceEvents"]:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event

    def test_missing_key_detected(self):
        payload = self._payload()
        del payload["traceEvents"][1]["ts"]
        problems = validate_chrome_trace(payload)
        assert any("missing keys" in p for p in problems)

    def test_bad_phase_detected(self):
        payload = self._payload()
        payload["traceEvents"][1]["ph"] = "Z"
        assert any("unknown phase" in p
                   for p in validate_chrome_trace(payload))

    def test_span_without_dur_detected(self):
        payload = self._payload()
        span = next(e for e in payload["traceEvents"] if e["ph"] == "X")
        del span["dur"]
        assert any("without dur" in p
                   for p in validate_chrome_trace(payload))

    def test_empty_trace_flagged(self):
        assert validate_chrome_trace({"traceEvents": []}) \
            == ["traceEvents is empty"]


class TestNullBackend:
    def test_null_obs_is_inert(self):
        assert NULL_OBS.enabled is False
        assert NULL_TRACER.enabled is False
        assert NULL_REGISTRY.enabled is False

    def test_null_registry_shares_one_instrument(self):
        # No per-call allocation: every instrument request returns the
        # same no-op singleton, so cached-instrument hot paths cost one
        # no-op method call at most.
        a = NULL_REGISTRY.counter("x", label="y")
        b = NULL_REGISTRY.histogram("z")
        assert a is NULL_INSTRUMENT and b is NULL_INSTRUMENT
        a.inc(10**9)
        assert a.value == 0

    def test_null_tracer_records_nothing(self):
        for i in range(1000):
            NULL_TRACER.instant("noc", "t", "e", i)
            NULL_TRACER.complete("core", "t", "s", i, i + 1)
        assert NULL_TRACER.events == []
        assert NULL_TRACER.metadata_events() == []

    def test_instrumentation_does_not_perturb_simulation(self):
        # The observability hooks must be read-only: a traced network
        # and a null-backend network produce identical numerics.
        from repro.noc.flumen_net import FlumenNetwork
        from repro.noc.traffic import TrafficGenerator

        def run(obs):
            net = FlumenNetwork(8, obs=obs)
            traffic = TrafficGenerator(8, "uniform", 0.3, seed=3)
            net.run(traffic, cycles=500, warmup=100)
            return (net.latency.average, net.latency.received,
                    net.reconfigurations, net.arbiter_conflicts)

        assert run(NULL_OBS) == run(Obs.active())


class TestTraceRun:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return trace_workload("rotation3d", shapes="small")

    def test_all_layers_emit(self, small_trace):
        assert small_trace.missing_layers() == []

    def test_payload_passes_schema(self, small_trace):
        assert validate_chrome_trace(small_trace.payload()) == []

    def test_photonics_phase_writes_recorded(self, small_trace):
        events = [e for e in small_trace.obs.tracer.events
                  if e["pid"] == LAYERS.index("photonics") + 1]
        named = {e["name"] for e in events}
        assert "program_compute" in named
        programs = [e for e in events if e["name"] == "program_compute"]
        assert all(e["args"]["phase_writes"] > 0 for e in programs)
        counters = small_trace.obs.metrics.to_dict()["counters"]
        assert counters["photonics.phase_writes"] > 0

    def test_alg1_decisions_recorded(self, small_trace):
        events = [e for e in small_trace.obs.tracer.events
                  if e["pid"] == LAYERS.index("core") + 1]
        named = {e["name"] for e in events}
        assert "beta_eval" in named
        beta = next(e for e in events if e["name"] == "beta_eval")
        assert {"beta", "eta", "granted"} <= set(beta["args"])

    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        paths = []
        for i in range(2):
            trace = trace_workload("rotation3d", shapes="small",
                                   traffic_seed=17)
            path = tmp_path / f"trace{i}.json"
            write_chrome_trace(path, trace.obs.tracer,
                               other_data=trace.other_data())
            write_metrics_jsonl(tmp_path / f"metrics{i}.jsonl",
                                [trace.metrics_snapshot()])
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert (tmp_path / "metrics0.jsonl").read_bytes() \
            == (tmp_path / "metrics1.jsonl").read_bytes()

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            trace_workload("rotation3d", configuration="hypercube")


class TestTraceCLI:
    def test_trace_small(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "rotation3d", "--small", "--check",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "schema check: ok" in stdout
        for layer in LAYERS:
            assert layer in stdout
        assert load_and_validate(out) == []
        metrics_path = tmp_path / "trace.metrics.jsonl"
        assert metrics_path.exists()
        snap = json.loads(metrics_path.read_text().splitlines()[0])
        assert snap["workload"] == "rotation3d"
        assert "counters" in snap["metrics"]

    def test_trace_deterministic_across_invocations(self, capsys,
                                                    tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "rotation3d", "--small",
                     "--out", str(a)]) == 0
        assert main(["trace", "rotation3d", "--small",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
