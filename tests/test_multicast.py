"""Tests for physical multicast in the Flumen network (Section 3.2)."""

import pytest

from repro.noc.flumen_net import FlumenNetwork
from repro.noc.packet import Packet


def mcast(src, dsts, size=4):
    return Packet(src=src, dst=dsts[0], size_flits=size, create_cycle=0,
                  multicast_dsts=tuple(dsts))


def run_until_quiescent(net, budget=500):
    for _ in range(budget):
        net.step()
        if net.quiescent():
            return True
    return False


class TestMulticastPacket:
    def test_destinations_property(self):
        p = mcast(0, [1, 2, 3])
        assert p.destinations == (1, 2, 3)
        u = Packet(src=0, dst=1, size_flits=1, create_cycle=0)
        assert u.destinations == (1,)

    def test_dst_must_lead_the_set(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=2, size_flits=1, create_cycle=0,
                   multicast_dsts=(1, 2))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            mcast(0, [1, 1, 2])

    def test_rejects_source_in_set(self):
        with pytest.raises(ValueError):
            mcast(0, [1, 0])


class TestFlumenMulticast:
    def test_single_multicast_delivers(self):
        net = FlumenNetwork(16)
        net.offer_packet(mcast(0, [3, 7, 11]))
        assert run_until_quiescent(net)
        assert net.latency.received == 1
        # One physical transmission regardless of fanout.
        assert net.link_traversals == 4

    def test_multicast_occupies_all_destinations(self):
        net = FlumenNetwork(16)
        net.offer_packet(mcast(0, [3, 7], size=20))
        net.offer_packet(Packet(src=1, dst=7, size_flits=2, create_cycle=0))
        for _ in range(10):
            net.step()
        # The unicast to 7 waits behind the multicast circuit.
        assert net.latency.received == 0 or net.latency.received == 1
        assert not net.ports_clear({7})
        assert run_until_quiescent(net)
        assert net.latency.received == 2

    def test_multicast_waits_for_busy_output(self):
        net = FlumenNetwork(16)
        net.offer_packet(Packet(src=5, dst=3, size_flits=30, create_cycle=0))
        net.step()
        net.offer_packet(mcast(0, [3, 7]))
        for _ in range(10):
            net.step()
        assert len(net._circuits) == 1  # multicast not yet granted
        assert run_until_quiescent(net)
        assert net.latency.received == 2

    def test_multicast_respects_blocked_ports(self):
        net = FlumenNetwork(16)
        net.block_ports({7})
        net.offer_packet(mcast(0, [3, 7]))
        for _ in range(50):
            net.step()
        assert net.latency.received == 0
        net.unblock_ports({7})
        assert run_until_quiescent(net)
        assert net.latency.received == 1

    def test_broadcast_to_all_others(self):
        net = FlumenNetwork(8)
        net.offer_packet(mcast(0, list(range(1, 8))))
        assert run_until_quiescent(net)
        assert net.latency.received == 1
        assert net.ports_clear(set(range(8)))

    def test_physical_multicast_beats_replication(self):
        # One photonic multicast vs k serial unicasts from the same source.
        fanout, size = 6, 8
        phys = FlumenNetwork(16)
        phys.offer_packet(mcast(0, list(range(1, fanout + 1)), size))
        run_until_quiescent(phys)

        repl = FlumenNetwork(16)
        for d in range(1, fanout + 1):
            repl.offer_packet(Packet(src=0, dst=d, size_flits=size,
                                     create_cycle=0))
        run_until_quiescent(repl)

        assert phys.latency.maximum < repl.latency.maximum
        assert phys.link_traversals * (fanout - 1) < repl.link_traversals * 2


class TestSequentialArbitrationAblation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FlumenNetwork(8, arbitration="magic")

    def test_wavefront_outperforms_sequential(self):
        # A full permutation: wavefront grants all 8 circuits in one
        # cycle; sequential dribbles them out one per cycle.
        def completion(arbitration):
            net = FlumenNetwork(8, arbitration=arbitration)
            for src in range(8):
                net.offer_packet(Packet(src=src, dst=(src + 1) % 8,
                                        size_flits=4, create_cycle=0))
            for cycle in range(200):
                net.step()
                if net.quiescent():
                    return cycle
            return 200

        assert completion("wavefront") < completion("sequential")

    def test_sequential_still_delivers_everything(self):
        net = FlumenNetwork(8, arbitration="sequential")
        for src in range(8):
            net.offer_packet(Packet(src=src, dst=(src + 3) % 8,
                                    size_flits=2, create_cycle=0))
        assert run_until_quiescent(net)
        assert net.latency.received == 8
