"""Integration tests for the wormhole network engine (ring/mesh)."""

import pytest

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import make_topology
from repro.noc.traffic import TrafficGenerator


def drained_network(topo_name, load, cycles=1500, seed=3, packet_size=4):
    net = Network(make_topology(topo_name, 16))
    tg = TrafficGenerator(16, "uniform", load,
                         packet_size=packet_size, seed=seed)
    net.run(tg, cycles=cycles, drain=True)
    return net


class TestDelivery:
    @pytest.mark.parametrize("topo", ["ring", "mesh"])
    def test_every_packet_delivered(self, topo):
        net = drained_network(topo, load=0.15)
        assert net.latency.received == net.injected_packets
        assert net.quiescent()

    @pytest.mark.parametrize("topo", ["ring", "mesh"])
    def test_no_flits_left_behind(self, topo):
        net = drained_network(topo, load=0.2)
        assert net.total_queued_flits() == 0

    def test_single_packet_end_to_end(self):
        net = Network(make_topology("mesh", 16))
        net.offer_packet(Packet(src=0, dst=15, size_flits=4, create_cycle=0))
        for _ in range(200):
            net.step()
            if net.quiescent():
                break
        assert net.latency.received == 1
        # 6 hops, 4 flits: latency must exceed the pure distance.
        assert net.latency.latencies[0] >= 6 + 4

    def test_adjacent_packet_is_fast(self):
        net = Network(make_topology("ring", 16))
        net.offer_packet(Packet(src=0, dst=1, size_flits=1, create_cycle=0))
        for _ in range(100):
            net.step()
            if net.quiescent():
                break
        assert net.latency.latencies[0] < 15


class TestFlowControl:
    def test_buffers_never_overflow(self):
        # accept_flit raises on overflow, so completing a loaded run is the
        # assertion that credits were honoured everywhere.
        net = drained_network("mesh", load=0.5, cycles=1000)
        assert net.latency.received == net.injected_packets

    def test_heavy_load_backs_up_into_source_queues(self):
        net = Network(make_topology("ring", 16))
        tg = TrafficGenerator(16, "uniform", 0.9, packet_size=4, seed=1)
        net.run(tg, cycles=1500)
        assert net.total_queued_flits() > 100

    def test_wormhole_keeps_packets_contiguous_per_vc(self):
        # Two long packets from different sources to the same destination
        # must both arrive complete (tail recorded once per packet).
        net = Network(make_topology("mesh", 16))
        net.offer_packet(Packet(src=0, dst=5, size_flits=8, create_cycle=0))
        net.offer_packet(Packet(src=10, dst=5, size_flits=8, create_cycle=0))
        for _ in range(300):
            net.step()
            if net.quiescent():
                break
        assert net.latency.received == 2
        assert net.ejected_flits == 16


class TestLatencyBehaviour:
    def test_latency_grows_with_load(self):
        lows = drained_network("ring", 0.05).latency.average
        highs = drained_network("ring", 0.35).latency.average
        assert highs > lows

    def test_mesh_beats_ring_under_uniform(self):
        # Fewer average hops -> lower latency (Figure 11 ordering).
        ring = drained_network("ring", 0.2).latency.average
        mesh = drained_network("mesh", 0.2).latency.average
        assert mesh < ring

    def test_utilization_tracked(self):
        net = drained_network("mesh", 0.3)
        assert 0.0 < net.utilization.average < 1.0

    def test_counters_consistent(self):
        net = drained_network("mesh", 0.2)
        # Each flit traverses >= 1 link; hops include ejection traversals.
        assert net.flit_hops >= net.link_traversals
        assert net.link_traversals > 0


class TestRingDeadlockFreedom:
    def test_wrapping_traffic_completes(self):
        # All nodes send across the dateline simultaneously.
        net = Network(make_topology("ring", 16))
        for src in range(16):
            dst = (src + 5) % 16
            net.offer_packet(Packet(src=src, dst=dst, size_flits=6,
                                    create_cycle=0))
        for _ in range(2000):
            net.step()
            if net.quiescent():
                break
        assert net.latency.received == 16

    def test_tornado_pattern_completes(self):
        net = Network(make_topology("ring", 16))
        tg = TrafficGenerator(16, "tornado", 0.3, packet_size=4, seed=2)
        net.run(tg, cycles=800, drain=True)
        assert net.latency.received == net.injected_packets
