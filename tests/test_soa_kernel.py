"""Struct-of-arrays NoC backends vs. their per-object oracles.

Every registered topology with a vectorized twin must reproduce the
oracle *bit for bit*: same delivered packets, same individual flit
latencies, same arbitration outcomes, same counters, same utilization
timeline — across random traffic, idle/active transitions, and the idle
fast-forward path.  All assertions are exact equality; any tolerance
would hide an ordering bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.arbiter import RoundRobinArbiter, WavefrontArbiter
from repro.noc.registry import (
    backend_factory,
    has_vectorized,
    registered_topologies,
)
from repro.noc.simulation import make_network
from repro.noc.stats import UtilizationTracker
from repro.noc.traffic import TracePlayback, TrafficGenerator

VECTORIZED = [t for t in registered_topologies() if has_vectorized(t)]


def _summary(net) -> dict:
    return {
        "cycle": net.cycle,
        "injected": net.injected_packets,
        "received": net.latency.received,
        "latencies": list(net.latency.latencies),
        "flit_hops": net.flit_hops,
        "link_traversals": net.link_traversals,
        "utilization": list(net.utilization.timeline),
        "queued": net.total_queued_flits(),
        "quiescent": net.quiescent(),
    }


def _run_pair(topology, traffic_fn, cycles, **kwargs):
    nets = [make_network(topology, 16, vectorized=v, **kwargs)
            for v in (False, True)]
    for net in nets:
        net.run(traffic_fn(), cycles=cycles, drain=True,
                max_drain_cycles=30_000)
    return nets


def test_every_vectorized_backend_is_registered():
    # The tentpole ships a struct-of-arrays twin for every topology; a
    # new topology without one should make this list explicit.
    assert set(VECTORIZED) == set(registered_topologies())


def test_backend_factory_prefers_vectorized():
    for topology in VECTORIZED:
        oracle = backend_factory(topology, vectorized=False)
        fast = backend_factory(topology, vectorized=True)
        assert oracle is not fast
        assert backend_factory(topology) is fast


@settings(max_examples=20, deadline=None)
@given(topology=st.sampled_from(VECTORIZED),
       pattern=st.sampled_from(["uniform", "bit_reversal", "shuffle",
                                "tornado", "neighbor"]),
       load=st.floats(min_value=0.02, max_value=0.5),
       packet_size=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_soa_matches_oracle(topology, pattern, load, packet_size,
                                     seed):
    def traffic():
        return TrafficGenerator(16, pattern, load,
                                packet_size=packet_size, seed=seed)

    oracle, soa = _run_pair(topology, traffic, cycles=300)
    assert _summary(soa) == _summary(oracle)


@settings(max_examples=12, deadline=None)
@given(topology=st.sampled_from(VECTORIZED),
       gap=st.integers(min_value=5, max_value=1200),
       bursts=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_idle_fast_forward_is_invisible(topology, gap, bursts,
                                                 seed):
    # Bursty traces exercise the quiescent fast-forward: the oracle steps
    # every cycle, the SoA twin skips dead stretches, and nothing —
    # including the interval-quantized utilization timeline and the
    # post-skip arbitration state — may differ.
    events = []
    for b in range(bursts):
        start = b * gap
        for i in range(10):
            src = (i * 5 + b + seed) % 16
            dst = (i * 11 + 3 * b + 7 + seed) % 16
            if src != dst:
                events.append((start + i // 4, src, dst, 3))
    cycles = bursts * gap + 50

    oracle, soa = _run_pair(topology, lambda: TracePlayback(list(events)),
                            cycles=cycles)
    assert _summary(soa) == _summary(oracle)


@settings(max_examples=8, deadline=None)
@given(reconfig=st.integers(min_value=1, max_value=6),
       arbitration=st.sampled_from(["wavefront", "sequential"]),
       pipelined=st.booleans(),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_flumen_variants_match(reconfig, arbitration, pipelined,
                                        seed):
    def traffic():
        return TrafficGenerator(16, "uniform", 0.3, seed=seed)

    oracle, soa = _run_pair(
        "flumen", traffic, cycles=300, reconfig_cycles=reconfig,
        arbitration=arbitration, pipelined_setup=pipelined)
    assert _summary(soa) == _summary(oracle)
    assert soa.arbiter_conflicts == oracle.arbiter_conflicts
    assert soa.reconfigurations == oracle.reconfigurations


def test_flumen_scheduler_hooks_match_after_blocking():
    observed = []
    for vectorized in (False, True):
        net = make_network("flumen", 16, vectorized=vectorized)
        traffic = TrafficGenerator(16, "uniform", 0.3, seed=9)
        net.block_ports(set(range(8)))
        net.run(traffic, cycles=200)
        blocked = [net.buffer_occupancy(p) for p in range(8)]
        util = net.buffer_utilization(scan_depth=0.5)
        net.unblock_ports(set(range(8)))
        budget = 30_000
        while not net.quiescent() and budget:
            net.step()
            budget -= 1
        observed.append((blocked, util, _summary(net)))
    assert observed[0] == observed[1]


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=12),
       last=st.integers(min_value=0, max_value=11),
       lines=st.sets(st.integers(min_value=0, max_value=11), min_size=1),
       seed=st.integers(min_value=0, max_value=100))
def test_property_sparse_rr_matches_dense(n, last, lines, seed):
    lines = sorted(x for x in lines if x < n)
    if not lines:
        return
    last = last % n
    arbiter = RoundRobinArbiter(n)
    arbiter._last = last
    dense = arbiter.grant([x in lines for x in range(n)])
    arbiter._last = last
    sparse = arbiter.grant_sparse(lines)
    assert dense == sparse


def test_wavefront_rotate_matches_repeated_empty_allocates():
    import numpy as np

    a, b = WavefrontArbiter(7), WavefrontArbiter(7)
    for _ in range(5):
        a.allocate(np.zeros((7, 7), dtype=bool))
    b.rotate(5)
    requests = [(i, (i * 3) % 7) for i in range(7)]
    assert a.allocate_sparse(list(requests)) == \
        b.allocate_sparse(list(requests))


def test_record_idle_cycles_equals_repeated_zero_cycles():
    flushes = []
    stepped = UtilizationTracker(num_links=10, interval_cycles=7)
    stepped.on_flush = lambda i, f: flushes.append(("s", i, f))
    skipped = UtilizationTracker(num_links=10, interval_cycles=7)
    skipped.on_flush = lambda i, f: flushes.append(("k", i, f))

    stepped.record_cycle(3)
    skipped.record_cycle(3)
    for _ in range(25):
        stepped.record_cycle(0)
    skipped.record_idle_cycles(25)
    stepped.record_cycle(5)
    skipped.record_cycle(5)
    assert stepped.timeline == skipped.timeline
    assert [f for f in flushes if f[0] == "s"] == \
        [("s",) + f[1:] for f in flushes if f[0] == "k"]


def test_trace_playback_next_event_cycle():
    trace = TracePlayback([(5, 0, 1, 2), (9, 2, 3, 1)])
    assert trace.next_event_cycle(0) == 5
    trace.packets_for_cycle(5)
    assert trace.next_event_cycle(5) == 9
    trace.packets_for_cycle(9)
    assert trace.next_event_cycle(9) is None
