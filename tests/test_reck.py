"""Tests for the Reck triangular decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.clements import (
    DecompositionError,
    decompose,
    random_unitary,
)
from repro.photonics.reck import decompose_reck, depth_comparison


def haar(n, seed):
    return random_unitary(n, np.random.default_rng(seed))


class TestReckDecomposition:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 8, 12])
    def test_reconstruction_machine_precision(self, n):
        u = haar(n, n)
        mesh = decompose_reck(u)
        assert np.allclose(mesh.matrix(), u, atol=1e-12)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_mzi_count_matches_clements(self, n):
        assert decompose_reck(haar(n, n)).num_mzis == n * (n - 1) // 2

    @pytest.mark.parametrize("n", [3, 4, 8, 12])
    def test_triangular_depth_is_2n_minus_3(self, n):
        assert decompose_reck(haar(n, n + 7)).num_columns == 2 * n - 3

    def test_single_mode(self):
        mesh = decompose_reck(np.array([[1j]]))
        assert mesh.num_mzis == 0

    def test_rejects_non_unitary(self):
        with pytest.raises(DecompositionError):
            decompose_reck(np.ones((4, 4)))

    def test_propagation_matches(self):
        u = haar(6, 9)
        mesh = decompose_reck(u)
        a = np.random.default_rng(10).standard_normal(6).astype(complex)
        assert np.allclose(mesh.propagate(a), u @ a, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 10**6))
    def test_property_reck_equals_clements_matrix(self, n, seed):
        u = haar(n, seed)
        assert np.allclose(decompose_reck(u).matrix(),
                           decompose(u).matrix(), atol=1e-10)


class TestDepthComparison:
    def test_clements_is_shallower(self):
        cmp8 = depth_comparison(8)
        assert cmp8["clements"] < cmp8["reck"]
        assert cmp8["clements"] == 8
        assert cmp8["reck"] == 13

    def test_gap_widens_with_size(self):
        small = depth_comparison(4)
        big = depth_comparison(16)
        assert (big["reck"] - big["clements"]) > \
            (small["reck"] - small["clements"])

    def test_covers_every_registered_mesh(self):
        from repro.photonics.registry import registered_meshes

        assert set(depth_comparison(8)) == set(registered_meshes())

    def test_seed_controls_the_sample(self):
        # An int seed and an equally-seeded Generator agree, and the
        # default is seed 0 — not (as before) the mesh size.
        assert depth_comparison(8, 5) == \
            depth_comparison(8, np.random.default_rng(5))
        assert depth_comparison(8) == depth_comparison(8, 0)
