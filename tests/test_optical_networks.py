"""Tests for the OptBus and Flumen network models."""

import pytest

from repro.noc.flumen_net import FlumenNetwork
from repro.noc.optbus import OptBusNetwork
from repro.noc.packet import Packet
from repro.noc.traffic import TrafficGenerator


def run_drained(net, pattern, load, cycles=1500, seed=4):
    tg = TrafficGenerator(net.nodes, pattern, load, packet_size=4, seed=seed)
    net.run(tg, cycles=cycles, drain=True)
    return net


class TestOptBus:
    def test_all_packets_delivered(self):
        net = run_drained(OptBusNetwork(16), "uniform", 0.2)
        assert net.latency.received == net.injected_packets
        assert net.quiescent()

    def test_single_packet_latency(self):
        net = OptBusNetwork(16)
        net.offer_packet(Packet(src=0, dst=4, size_flits=4, create_cycle=0))
        for _ in range(100):
            net.step()
            if net.quiescent():
                break
        # arbitration (4) + serialization (4) + propagation (2).
        assert net.latency.latencies[0] == pytest.approx(10, abs=2)

    def test_shared_bus_serializes_same_destination(self):
        # Hot-receiver traffic contends; disjoint destinations don't.
        hot = OptBusNetwork(16)
        for src in (1, 2, 3, 4):
            hot.offer_packet(Packet(src=src, dst=0, size_flits=8,
                                    create_cycle=0))
        cold = OptBusNetwork(16)
        for src, dst in [(1, 5), (2, 6), (3, 7), (4, 8)]:
            cold.offer_packet(Packet(src=src, dst=dst, size_flits=8,
                                     create_cycle=0))
        for net in (hot, cold):
            for _ in range(400):
                net.step()
                if net.quiescent():
                    break
        assert hot.latency.maximum > cold.latency.maximum * 2

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            OptBusNetwork(1)


class TestFlumen:
    def test_all_packets_delivered(self):
        net = run_drained(FlumenNetwork(16), "uniform", 0.3)
        assert net.latency.received == net.injected_packets
        assert net.quiescent()

    def test_reconfiguration_counted(self):
        net = run_drained(FlumenNetwork(16), "uniform", 0.2, cycles=500)
        assert net.reconfigurations == net.latency.received

    def test_single_packet_pays_setup(self):
        net = FlumenNetwork(16)
        net.offer_packet(Packet(src=0, dst=9, size_flits=4, create_cycle=0))
        for _ in range(100):
            net.step()
            if net.quiescent():
                break
        # grant (1) + reconfig (3) + 4 flits + propagation (1).
        assert net.latency.latencies[0] == pytest.approx(9, abs=2)

    def test_permutation_traffic_stays_flat(self):
        # Non-blocking crossbar: bit-reversal latency barely grows with load
        # (Figure 11, middle panel).
        low = run_drained(FlumenNetwork(16), "bit_reversal", 0.1).latency.average
        high = run_drained(FlumenNetwork(16), "bit_reversal", 0.6).latency.average
        assert high < low * 2

    def test_pipelined_setup_increases_throughput(self):
        # Back-to-back packets from one source: pipelined setup hides the
        # reconfiguration of the next circuit behind the current transfer.
        def total_time(pipelined):
            net = FlumenNetwork(16, pipelined_setup=pipelined)
            for i in range(10):
                net.offer_packet(Packet(src=0, dst=5 + (i % 2),
                                        size_flits=8, create_cycle=0))
            for _ in range(500):
                net.step()
                if net.quiescent():
                    break
            return net.cycle

        assert total_time(True) < total_time(False)

    def test_blocked_ports_hold_traffic(self):
        net = FlumenNetwork(16)
        net.block_ports({4, 5})
        net.offer_packet(Packet(src=4, dst=0, size_flits=2, create_cycle=0))
        net.offer_packet(Packet(src=0, dst=5, size_flits=2, create_cycle=0))
        net.offer_packet(Packet(src=1, dst=2, size_flits=2, create_cycle=0))
        for _ in range(50):
            net.step()
        assert net.latency.received == 1  # only 1->2 went through
        net.unblock_ports({4, 5})
        for _ in range(100):
            net.step()
            if net.quiescent():
                break
        assert net.latency.received == 3

    def test_ports_clear_reflects_circuits(self):
        net = FlumenNetwork(16)
        net.offer_packet(Packet(src=3, dst=8, size_flits=10, create_cycle=0))
        net.step()
        net.step()
        assert not net.ports_clear({3})
        assert not net.ports_clear({8})
        assert net.ports_clear({1, 2})
        for _ in range(100):
            net.step()
            if net.quiescent():
                break
        assert net.ports_clear({3, 8})

    def test_buffer_utilization_scan_depth(self):
        net = FlumenNetwork(16, request_buffer_capacity=4)
        net.block_ports(set(range(16)))  # freeze traffic
        for _ in range(4):
            net.offer_packet(Packet(src=0, dst=1, size_flits=1,
                                    create_cycle=0))
        # Global average dilutes the hot buffer; a shallow scan surfaces it.
        global_util = net.buffer_utilization(scan_depth=1.0)
        focused = net.buffer_utilization(scan_depth=0.0625)  # top-1 of 16
        assert focused == pytest.approx(1.0)
        assert global_util == pytest.approx(1 / 16)

    def test_buffer_utilization_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            FlumenNetwork(16).buffer_utilization(scan_depth=0.0)

    def test_overflow_preserves_packets(self):
        net = FlumenNetwork(16, request_buffer_capacity=2)
        net.block_ports(set(range(16)))
        for _ in range(10):
            net.offer_packet(Packet(src=0, dst=1, size_flits=1,
                                    create_cycle=0))
        assert net.buffer_occupancy(0) == 10
        net.unblock_ports(set(range(16)))
        for _ in range(300):
            net.step()
            if net.quiescent():
                break
        assert net.latency.received == 10
