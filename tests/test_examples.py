"""Smoke tests: the example scripts run end to end.

Heavier examples are exercised through their importable pieces at reduced
sizes; ``quickstart`` runs whole.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert "Flumen MZIM" in result.stdout
    assert "advantage" in result.stdout


def test_jpeg_pipeline_photonic_dct_plug_in():
    sys.path.insert(0, str(EXAMPLES))
    try:
        from jpeg_pipeline import photonic_dct_fn
    finally:
        sys.path.pop(0)
    from repro.workloads import JPEGWorkload

    wl = JPEGWorkload(height=32, width=32)
    cpu = wl.compress(dct_fn=None)
    mzim = wl.compress(dct_fn=photonic_dct_fn())
    assert sum(p.bits for p in cpu.values()) == \
        sum(p.bits for p in mzim.values())


def test_image_blur_demo_psnr_helper():
    sys.path.insert(0, str(EXAMPLES))
    try:
        from image_blur_demo import psnr
    finally:
        sys.path.pop(0)
    ref = np.zeros((4, 4))
    assert psnr(ref, ref) == float("inf")
    assert psnr(np.full((4, 4), 255.0), np.zeros((4, 4))) == 0.0


def test_mini_cnn_classifies_perfectly():
    sys.path.insert(0, str(EXAMPLES))
    try:
        from mini_cnn_inference import (
            forward,
            make_dataset,
            make_network,
        )
    finally:
        sys.path.pop(0)
    from repro.core.accelerator import BlockMatmul

    xs, ys = make_dataset(n=20)
    kernels, readout = make_network()
    preds = forward(xs, kernels, readout,
                    lambda w: BlockMatmul(w, mzim_size=8))
    assert (preds == ys).all()


def test_network_explorer_importable():
    sys.path.insert(0, str(EXAMPLES))
    try:
        import network_explorer
    finally:
        sys.path.pop(0)
    assert callable(network_explorer.latency_curves)
    assert callable(network_explorer.energy_comparison)
