"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "MZIM ports" in out
        assert "vgg16_fc" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "9.46" in out
        assert "162.6" in out

    def test_compute(self, capsys):
        assert main(["compute"]) == 0
        out = capsys.readouterr().out
        assert "64x64" in out
        assert "advantage" in out

    def test_latency_small(self, capsys):
        assert main(["latency", "--topology", "flumen",
                     "--pattern", "shuffle", "--cycles", "600"]) == 0
        out = capsys.readouterr().out
        assert "flumen / shuffle" in out

    def test_system_rotation(self, capsys):
        assert main(["system", "--workload", "rotation3d"]) == 0
        out = capsys.readouterr().out
        assert "flumen_a" in out
        assert "speedup" in out

    def test_system_unknown_workload(self, capsys):
        assert main(["system", "--workload", "nope"]) == 2

    def test_sweep_small(self, capsys, tmp_path):
        out_path = tmp_path / "records.json"
        assert main(["sweep", "--small", "--workloads", "rotation3d",
                     "--configs", "mesh", "flumen_a", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "evaluated=2" in out
        import json
        records = json.loads(out_path.read_text())
        assert [r["key"] for r in records] == ["rotation3d/mesh",
                                               "rotation3d/flumen_a"]

        # Warm rerun: every point served from cache, zero re-evaluations.
        assert main(["sweep", "--small", "--workloads", "rotation3d",
                     "--configs", "mesh", "flumen_a", "--jobs", "1",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "evaluated=0" in capsys.readouterr().out

    def test_sweep_unknown_workload(self, capsys):
        assert main(["sweep", "--workloads", "nope"]) == 2

    def test_sweep_unknown_config(self, capsys):
        assert main(["sweep", "--configs", "hypercube"]) == 2

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
