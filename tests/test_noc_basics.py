"""Tests for NoC building blocks: packets, traffic, arbiters, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.arbiter import (
    RoundRobinArbiter,
    SeparableAllocator,
    WavefrontArbiter,
)
from repro.noc.packet import Packet, reset_packet_ids
from repro.noc.stats import LatencyStats, UtilizationTracker
from repro.noc.traffic import (
    PATTERNS,
    TracePlayback,
    TrafficGenerator,
    make_pattern,
)


class TestPacket:
    def test_flit_train_structure(self):
        p = Packet(src=0, dst=1, size_flits=4, create_cycle=0)
        flits = p.flits()
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_packet_is_head_and_tail(self):
        f, = Packet(src=0, dst=1, size_flits=1, create_cycle=0).flits()
        assert f.is_head and f.is_tail

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, size_flits=0, create_cycle=0)

    def test_rejects_self_traffic(self):
        with pytest.raises(ValueError):
            Packet(src=3, dst=3, size_flits=1, create_cycle=0)

    def test_ids_unique_and_resettable(self):
        reset_packet_ids()
        a = Packet(src=0, dst=1, size_flits=1, create_cycle=0)
        b = Packet(src=0, dst=1, size_flits=1, create_cycle=0)
        assert a.packet_id != b.packet_id
        reset_packet_ids()
        c = Packet(src=0, dst=1, size_flits=1, create_cycle=0)
        assert c.packet_id == a.packet_id


class TestPatterns:
    def test_bit_reversal_16_nodes(self):
        pat = make_pattern("bit_reversal", 16)
        rng = np.random.default_rng(0)
        assert pat(0b0001, rng) == 0b1000
        assert pat(0b1010, rng) == 0b0101
        assert pat(0, rng) == 0

    def test_shuffle_rotates_left(self):
        pat = make_pattern("shuffle", 16)
        rng = np.random.default_rng(0)
        assert pat(0b0001, rng) == 0b0010
        assert pat(0b1000, rng) == 0b0001

    def test_transpose_swaps_halves(self):
        pat = make_pattern("transpose", 16)
        rng = np.random.default_rng(0)
        assert pat(0b0111, rng) == 0b1101

    def test_bit_complement(self):
        pat = make_pattern("bit_complement", 16)
        rng = np.random.default_rng(0)
        assert pat(0, rng) == 15
        assert pat(5, rng) == 10

    def test_neighbor_wraps(self):
        pat = make_pattern("neighbor", 16)
        rng = np.random.default_rng(0)
        assert pat(15, rng) == 0

    def test_tornado_never_self(self):
        pat = make_pattern("tornado", 16)
        rng = np.random.default_rng(0)
        for s in range(16):
            assert pat(s, rng) != s

    def test_uniform_covers_all_destinations(self):
        pat = make_pattern("uniform", 8)
        rng = np.random.default_rng(1)
        seen = {pat(0, rng) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_bit_patterns_need_power_of_two(self):
        with pytest.raises(ValueError):
            make_pattern("bit_reversal", 12)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("zigzag", 16)

    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(PATTERNS)),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_property_destinations_in_range(self, name, seed):
        pat = make_pattern(name, 16)
        rng = np.random.default_rng(seed)
        for src in range(16):
            assert 0 <= pat(src, rng) < 16


class TestTrafficGenerator:
    def test_zero_load_generates_nothing(self):
        tg = TrafficGenerator(8, "uniform", load=0.0)
        assert not any(tg.packets_for_cycle(c) for c in range(100))

    def test_load_controls_rate(self):
        tg = TrafficGenerator(16, "uniform", load=0.4, packet_size=4, seed=2)
        packets = sum(len(tg.packets_for_cycle(c)) for c in range(2000))
        expected = 16 * 2000 * 0.4 / 4
        assert packets == pytest.approx(expected, rel=0.1)

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            TrafficGenerator(8, "uniform", load=1.5)

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            TrafficGenerator(8, "uniform", load=0.5, packet_size=0)

    def test_deterministic_with_seed(self):
        a = TrafficGenerator(8, "uniform", 0.3, seed=9)
        b = TrafficGenerator(8, "uniform", 0.3, seed=9)
        pa = [(p.src, p.dst) for c in range(50) for p in a.packets_for_cycle(c)]
        pb = [(p.src, p.dst) for c in range(50) for p in b.packets_for_cycle(c)]
        assert pa == pb


class TestTracePlayback:
    def test_events_delivered_in_order(self):
        tp = TracePlayback([(5, 0, 1, 2), (2, 3, 4, 1)])
        assert tp.packets_for_cycle(0) == []
        p2 = tp.packets_for_cycle(2)
        assert len(p2) == 1 and p2[0].src == 3
        p5 = tp.packets_for_cycle(5)
        assert len(p5) == 1 and p5[0].dst == 1
        assert tp.exhausted

    def test_self_traffic_skipped(self):
        tp = TracePlayback([(0, 2, 2, 1)])
        assert tp.packets_for_cycle(0) == []
        assert tp.exhausted


class TestRoundRobinArbiter:
    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([False, True, False, False]) == 1

    def test_no_request_no_grant(self):
        assert RoundRobinArbiter(4).grant([False] * 4) is None

    def test_rotation_is_fair(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(3).grant([True])


class TestWavefrontArbiter:
    def test_diagonal_requests_all_granted(self):
        arb = WavefrontArbiter(4)
        req = np.eye(4, dtype=bool)
        grants = arb.allocate(req)
        assert sorted(grants) == [(i, i) for i in range(4)]

    def test_conflicting_requests_get_one_grant(self):
        arb = WavefrontArbiter(4)
        req = np.zeros((4, 4), dtype=bool)
        req[0, 2] = req[1, 2] = req[3, 2] = True
        grants = arb.allocate(req)
        assert len(grants) == 1
        assert grants[0][1] == 2

    def test_grants_are_a_matching(self):
        arb = WavefrontArbiter(8)
        rng = np.random.default_rng(3)
        req = rng.random((8, 8)) < 0.4
        grants = arb.allocate(req)
        rows = [i for i, _ in grants]
        cols = [j for _, j in grants]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)
        for i, j in grants:
            assert req[i, j]

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           density=st.floats(min_value=0.05, max_value=0.95))
    def test_property_matching_is_maximal(self, seed, density):
        arb = WavefrontArbiter(6)
        req = np.random.default_rng(seed).random((6, 6)) < density
        grants = arb.allocate(req)
        assert arb.is_maximal(req, grants)

    def test_priority_rotates(self):
        arb = WavefrontArbiter(2)
        req = np.ones((2, 2), dtype=bool)
        first = sorted(arb.allocate(req))
        second = sorted(arb.allocate(req))
        assert first != second  # rotated diagonal flips the pairing

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            WavefrontArbiter(4).allocate(np.ones((3, 3), dtype=bool))


class TestSeparableAllocator:
    def test_one_grant_per_input_and_output(self):
        alloc = SeparableAllocator(4, 4)
        req = np.ones((4, 4), dtype=bool)
        grants = alloc.allocate(req)
        rows = [i for i, _ in grants]
        cols = [j for _, j in grants]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)

    def test_empty_requests(self):
        alloc = SeparableAllocator(2, 3)
        assert alloc.allocate(np.zeros((2, 3), dtype=bool)) == []


class TestLatencyStats:
    def test_warmup_excluded(self):
        stats = LatencyStats(warmup_cycles=100)
        stats.record(50, 60, 1)    # warmup, counted but not timed
        stats.record(150, 170, 1)  # measured
        assert stats.received == 2
        assert stats.latencies == [20]

    def test_throughput(self):
        stats = LatencyStats()
        stats.record(0, 10, 4)
        stats.record(1, 12, 4)
        assert stats.throughput(nodes=4, measured_cycles=10) == \
            pytest.approx(8 / 40)

    def test_throughput_excludes_warmup_flits(self):
        # Regression: warmup packets are excluded from the latency sample
        # but their flits used to leak into throughput(), overstating the
        # rate for the measurement window.
        stats = LatencyStats(warmup_cycles=100)
        stats.record(10, 30, 4)    # warmup packet: 4 flits
        stats.record(150, 170, 4)  # measured packet: 4 flits
        assert stats.received_flits == 8
        assert stats.measured_flits == 4
        assert len(stats.latencies) == stats.measured == 1
        # Only the measured packet's flits count toward the rate.
        assert stats.throughput(nodes=4, measured_cycles=100) == \
            pytest.approx(4 / 400)

    def test_to_dict_roundtrips_counts(self):
        stats = LatencyStats(warmup_cycles=5)
        stats.record(0, 3, 2)   # warmup
        stats.record(10, 14, 2)
        snap = stats.to_dict()
        assert snap["received"] == 2
        assert snap["measured"] == 1
        assert snap["measured_flits"] == 2
        assert snap["avg_latency"] == pytest.approx(4.0)

    def test_empty_stats_safe(self):
        stats = LatencyStats()
        assert stats.average == 0.0
        assert stats.p99 == 0.0
        assert stats.maximum == 0


class TestUtilizationTracker:
    def test_interval_averaging(self):
        t = UtilizationTracker(num_links=4, interval_cycles=2)
        t.record_cycle(4)
        t.record_cycle(0)
        assert t.timeline == [0.5]

    def test_partial_interval_flushed_on_finish(self):
        t = UtilizationTracker(num_links=2, interval_cycles=10)
        t.record_cycle(1)
        t.finish()
        assert t.timeline == [0.5]

    def test_rejects_overcount(self):
        t = UtilizationTracker(num_links=2)
        with pytest.raises(ValueError):
            t.record_cycle(3)
