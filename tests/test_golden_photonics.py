"""Golden-numbers pins for the photonic stack (PR 3 pattern).

Exact digests of the Clements-path outputs, committed *before* the
mesh-architecture registry refactor so the default path can be proven
byte-identical across it:

* :func:`repro.photonics.svd.program_svd` — programmed matrix, singular
  values, attenuator thetas, and a forward propagation;
* fabric hop traces — the communication mesh's per-path MZI counts and
  the equalized attenuator column;
* a zero-fault campaign — the full ``run_single`` record (the per-run
  payload only: the campaign spec itself may legitimately grow fields).

Every constant was produced by the exact code in this tree; a mismatch
means the simulation output changed, which on the default architecture
is a regression, not noise.
"""

import hashlib

import numpy as np
import pytest

from repro.analysis.engine import canonical_json
from repro.faults.campaign import CampaignSpec, run_single
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.fabric import FlumenFabric
from repro.photonics.svd import clear_svd_cache, program_svd

SVD_MATRIX_DIGEST = \
    "bde97246e59db6e244f6fbf1341936d4de3180d47ec14d7fa97fe24e4a69e87a"
SVD_SIGMA_DIGEST = \
    "7d9fba9e828cfea461a3ca5f01696cdb1f4f5b95b593b3f43299213fdf1b74bf"
SVD_THETAS_DIGEST = \
    "29fc8ca163da963b29da2f43ad4d455e1ed25d58c0016b2080655d84a3297729"
SVD_PROPAGATE_DIGEST = \
    "1025c6d8a3ade0143b9e9f3f7cc9c14c920f8731910367a7464076adc1eec48e"
SVD_SCALE = 5.612104039204882
MESH_MATRIX_DIGEST = \
    "621df237f0cefc30c1bbb14432ac573ecf64004a35e0a602722b2b82119e107b"
MESH_HOPS_DIGEST = \
    "8231195dbbf6593fa29a36623699223e309b50ab3ebc450a5d2baefde07225c3"
FABRIC_COMM_HOPS_DIGEST = \
    "e47782c3d0f001c1acfd42dfa63be37e2071907ee50ad478a16e2784ae22867a"
FABRIC_ATTEN_DIGEST = \
    "2c5d535636ae6c9dcac2ec38ff492bd663a1cc0381a766d8f9fde1d1812ecbb8"
CAMPAIGN_RECORD_DIGEST = \
    "76e978106eabfd3ecaa8dce59dd8ad2419af6b673035292d80e519c0211e96e9"


def digest_array(arr: np.ndarray) -> str:
    arr = np.asarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def digest_json(obj: object) -> str:
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


class TestProgramSVDGolden:
    @pytest.fixture(scope="class")
    def program(self):
        clear_svd_cache()
        rng = np.random.default_rng(4242)
        matrix = rng.standard_normal((8, 8))
        program = program_svd(matrix)
        fields = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        return program, fields

    def test_matrix(self, program):
        assert digest_array(program[0].matrix()) == SVD_MATRIX_DIGEST

    def test_sigma(self, program):
        assert digest_array(program[0].sigma) == SVD_SIGMA_DIGEST

    def test_attenuator_thetas(self, program):
        assert digest_array(program[0].attenuator_thetas) \
            == SVD_THETAS_DIGEST

    def test_propagate(self, program):
        prog, fields = program
        assert digest_array(prog.propagate(fields)) == SVD_PROPAGATE_DIGEST

    def test_scale(self, program):
        assert program[0].scale == SVD_SCALE


class TestMeshGolden:
    @pytest.fixture(scope="class")
    def mesh(self):
        return decompose(random_unitary(8, np.random.default_rng(777)))

    def test_matrix(self, mesh):
        assert digest_array(mesh.matrix()) == MESH_MATRIX_DIGEST

    def test_hop_trace(self, mesh):
        assert digest_array(np.asarray(mesh.mzis_per_path())) \
            == MESH_HOPS_DIGEST


class TestFabricGolden:
    @pytest.fixture(scope="class")
    def fabric(self):
        fabric = FlumenFabric(8)
        fabric.configure_communication({0: 3, 1: 6, 4: 2, 7: 5})
        return fabric

    def test_comm_hop_trace(self, fabric):
        part = fabric.partitions[0]
        assert digest_array(np.asarray(part.comm_mesh.mzis_per_path())) \
            == FABRIC_COMM_HOPS_DIGEST

    def test_attenuator_equalization(self, fabric):
        assert digest_array(fabric.attenuator_transmission) \
            == FABRIC_ATTEN_DIGEST


class TestZeroFaultCampaignGolden:
    def test_run_record(self):
        record = run_single(
            CampaignSpec(fault="none", runs=1, cycles=600,
                         golden_reference=False), 0)
        assert digest_json(record) == CAMPAIGN_RECORD_DIGEST
