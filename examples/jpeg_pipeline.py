#!/usr/bin/env python3
"""Full JPEG compression with the DCT computed in the interconnect.

The 8x8 DCT matrix is orthogonal, so it maps onto the full 8-input unitary
MZIM (Section 5.4.1).  This example runs the complete baseline-JPEG
pipeline — color conversion, photonic block DCT, quantization, zig-zag,
run-length + entropy coding — then decodes and reports rate/distortion.

Run:  python examples/jpeg_pipeline.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.accelerator import BlockMatmul
from repro.workloads import JPEGWorkload, dct_matrix, rgb_to_ycbcr


def photonic_dct_fn(mzim_size: int = 8):
    """A dct_fn plug-in for the encoder that routes through the MZIM."""
    matmul = BlockMatmul(dct_matrix(8), mzim_size)

    def run(blocks: np.ndarray) -> np.ndarray:
        num = len(blocks)
        stage1 = matmul(blocks.transpose(0, 2, 1).reshape(num * 8, 8).T)
        stage1 = stage1.T.reshape(num, 8, 8).transpose(0, 2, 1)
        stage2 = matmul(stage1.reshape(num * 8, 8).T)
        return stage2.T.reshape(num, 8, 8)

    return run


def main() -> None:
    workload = JPEGWorkload(height=128, width=192)  # quarter-size demo
    luma_blocks = workload.luma_blocks
    print(f"image {workload.image.shape}, {luma_blocks} luma DCT blocks "
          f"({workload.total_macs():,} MACs)")

    rows = []
    for label, dct_fn in [("CPU DCT", None),
                          ("MZIM DCT", photonic_dct_fn())]:
        planes = workload.compress(dct_fn=dct_fn)
        bits = sum(p.bits for p in planes.values())
        raw = workload.height * workload.width * 24
        rec = workload.compressor.decode_plane(planes["y"])
        orig = rgb_to_ycbcr(workload.image)[..., 0]
        rmse = float(np.sqrt(np.mean((rec - orig) ** 2)))
        rows.append([label, f"{bits / 8 / 1024:.1f} KiB",
                     f"{raw / bits:.2f}:1", f"{rmse:.2f}"])
    print(format_table(
        ["DCT engine", "compressed size", "ratio", "luma RMSE"], rows))
    print("\nThe photonic DCT is numerically identical to the CPU DCT "
          "(the MZIM implements the orthogonal matrix exactly), so the "
          "bitstreams match; acceleration changes energy/latency, not "
          "output quality.")


if __name__ == "__main__":
    main()
