#!/usr/bin/env python3
"""Watch Algorithm 1 partition the fabric under mixed load.

Co-simulates the Flumen network with the scheduler while communication
traffic ramps up and down; compute requests arrive throughout.  The
timeline shows partitions forming during lulls and being refused while the
network is hot — the paper's "dynamic adaptability" contribution.

Run:  python examples/dynamic_partitioning.py
"""

import numpy as np

from repro.config import SchedulerConfig, SystemConfig
from repro.core.accelerator import BlockMatmul, plan_offload
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.scheduler import FlumenScheduler
from repro.noc import FlumenNetwork, TrafficGenerator

PHASES = [  # (cycles, offered load) — a bursty application profile
    (600, 0.05),
    (600, 0.55),
    (600, 0.08),
    (600, 0.60),
    (600, 0.03),
]


def main() -> None:
    system = SystemConfig().replace(
        scheduler=SchedulerConfig(tau_cycles=100, eta=0.40, zeta=0.50))
    net = FlumenNetwork(16)
    control = MZIMControlUnit(net, system)
    scheduler = FlumenScheduler(control, system)
    control.matrix_memory.store("kernel", BlockMatmul(np.eye(8), 8))
    plan = plan_offload(8, 8, 512, 8, 8)

    rng = np.random.default_rng(5)
    cycle = 0
    submitted = 0
    print(" cycle | load | buf util | partitions | granted/completed")
    print("-" * 62)
    for cycles, load in PHASES:
        traffic = TrafficGenerator(16, "uniform", load, seed=int(cycle) + 1)
        for _ in range(cycles):
            for packet in traffic.packets_for_cycle(net.cycle):
                net.offer_packet(packet)
            # A node asks for compute every ~150 cycles if advised to.
            if cycle % 150 == 0 and control.advise_offload():
                request = ComputeRequest(
                    node=int(rng.integers(16)), plan=plan,
                    matrix_key="kernel", submit_cycle=cycle, ports_needed=4)
                control.submit(request, cycle)
                submitted += 1
            scheduler.tick()
            net.step()
            cycle += 1
        util = net.buffer_utilization(scan_depth=0.5)
        print(f"{cycle:6d} | {load:.2f} | {util:8.2f} | "
              f"{len(scheduler.active):10d} | "
              f"{scheduler.stats.granted}/{scheduler.stats.completed}")

    scheduler.drain()
    stats = scheduler.stats
    print("-" * 62)
    print(f"requests submitted: {submitted}, granted: {stats.granted}, "
          f"completed: {stats.completed}")
    print(f"average grant wait: {stats.average_wait:.0f} cycles "
          f"(tau = {system.scheduler.tau_cycles})")
    print(f"packets delivered: {net.latency.received}, "
          f"average latency: {net.latency.average:.1f} cycles")
    print("\nDuring high-load phases the Partitioner defers compute "
          "(beta > eta); during lulls it grants partitions within one tau.")


if __name__ == "__main__":
    main()
