#!/usr/bin/env python3
"""Reproduce the paper's headline numbers in one run (~2 minutes).

Runs the five workloads at paper shapes through all five configurations
and prints the Figure 13/14/15 summaries next to the paper's values.
For the full per-figure detail use the benchmark suite:
``pytest benchmarks/ --benchmark-only -s``.

Run:  python examples/reproduce_paper.py
"""

import time

from repro.analysis.metrics import (
    edp_reduction,
    energy_reduction,
    geomean,
    speedup,
)
from repro.analysis.report import format_table
from repro.core.system import SystemModel
from repro.workloads import paper_workloads

PAPER = {  # speedup, energy, EDP vs Mesh
    "image_blur": (3.3, 1.5, 5.1),
    "vgg16_fc": (2.0, 1.9, 3.9),
    "resnet50_conv3": (4.5, 2.9, 13.0),
    "jpeg": (4.0, 2.6, 10.5),
    "rotation3d": (5.2, 4.8, 25.2),
}
PAPER_GEOMEAN = (3.6, 2.5, 9.3)


def main() -> None:
    model = SystemModel()
    rows = []
    speedups, energies, edps = [], [], []
    start = time.time()
    for workload in paper_workloads():
        t0 = time.time()
        runs = model.run_all(workload)
        mesh, fa = runs["mesh"], runs["flumen_a"]
        s = speedup(mesh, fa)
        e = energy_reduction(mesh, fa)
        d = edp_reduction(mesh, fa)
        speedups.append(s)
        energies.append(e)
        edps.append(d)
        ps, pe, pd = PAPER[workload.name]
        rows.append([workload.name,
                     f"{s:.2f}x", f"{ps}x",
                     f"{e:.2f}x", f"{pe}x",
                     f"{d:.1f}x", f"{pd}x",
                     f"{time.time() - t0:.0f}s"])
    rows.append(["GEOMEAN",
                 f"{geomean(speedups):.2f}x", f"{PAPER_GEOMEAN[0]}x",
                 f"{geomean(energies):.2f}x", f"{PAPER_GEOMEAN[1]}x",
                 f"{geomean(edps):.1f}x", f"{PAPER_GEOMEAN[2]}x", ""])
    print(format_table(
        ["workload", "speedup", "(paper)", "energy", "(paper)",
         "EDP", "(paper)", "sim"],
        rows,
        title="Flumen-A vs electrical Mesh (Figures 13, 14, 15)"))
    print(f"\ntotal simulation time: {time.time() - start:.0f}s")
    print("Full figure-by-figure reproduction: "
          "pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
