#!/usr/bin/env python3
"""A tiny CNN classified entirely through photonic matmuls.

Builds a two-layer network — 3x3 depthwise conv + ReLU + fully-connected
readout — with synthetic weights trained-by-construction to separate two
pattern classes (horizontal vs vertical stripes).  Every multiply runs
through :class:`BlockMatmul` SVD circuits, optionally with the 8-bit
analog chain, and the classification accuracy is compared against the
float reference — the DNN-inference story of Section 1 in miniature.

Run:  python examples/mini_cnn_inference.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.accelerator import BlockMatmul, conv2d_as_matmul
from repro.photonics.noise import AnalogMVM

IMAGE = 12
CLASSES = ("horizontal", "vertical")


def make_dataset(n: int = 60, seed: int = 5):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for i in range(n):
        label = i % 2
        img = rng.normal(0.0, 0.15, (IMAGE, IMAGE))
        stripe = rng.integers(1, IMAGE - 1)
        if label == 0:  # horizontal
            img[stripe, :] += 1.0
        else:           # vertical
            img[:, stripe] += 1.0
        xs.append(img)
        ys.append(label)
    return np.array(xs), np.array(ys)


def make_network():
    """Hand-constructed edge detectors + readout."""
    kernels = np.zeros((2, 3, 3))
    kernels[0] = [[-1, -1, -1], [2, 2, 2], [-1, -1, -1]]  # horizontal
    kernels[1] = [[-1, 2, -1], [-1, 2, -1], [-1, 2, -1]]  # vertical
    feat = 2 * (IMAGE - 2) * (IMAGE - 2)
    readout = np.zeros((2, feat))
    half = feat // 2
    readout[0, :half] = 1.0 / half
    readout[1, half:] = 1.0 / half
    return kernels, readout


def forward(images, kernels, readout, matmul_factory):
    """Run the network; matmul_factory builds the multiply engine."""
    preds = []
    weights, _, (oh, ow) = conv2d_as_matmul(images[0], kernels)
    conv_engine = matmul_factory(weights)
    read_engine = matmul_factory(readout)
    for img in images:
        _, cols, _ = conv2d_as_matmul(img, kernels)
        fmap = conv_engine(cols)                    # photonic conv
        fmap = np.maximum(fmap, 0.0)                # ReLU on the cores
        logits = read_engine(fmap.reshape(-1))      # photonic FC
        preds.append(int(np.argmax(logits)))
    return np.array(preds)


def main() -> None:
    xs, ys = make_dataset()
    kernels, readout = make_network()

    def exact_factory(weight):
        return BlockMatmul(weight, mzim_size=8)

    def analog_factory(weight):
        engine = BlockMatmul(weight, mzim_size=8)
        rng = np.random.default_rng(9)

        def run(batch):
            return engine(batch, mvm=lambda p, w: AnalogMVM(
                p, bits=8, rng=rng)(w))

        return run

    rows = []
    for label, factory in [("float reference",
                            lambda w: (lambda b: w @ b)),
                           ("ideal MZIM", exact_factory),
                           ("8-bit analog MZIM", analog_factory)]:
        preds = forward(xs, kernels, readout, factory)
        acc = float((preds == ys).mean())
        rows.append([label, f"{100 * acc:.1f}%"])
    print(f"dataset: {len(xs)} {IMAGE}x{IMAGE} images, "
          f"classes = {CLASSES}")
    print(format_table(["inference engine", "accuracy"], rows,
                       title="Mini CNN through the photonic interconnect"))
    print("\nConv + FC multiplies run in SVD MZIM circuits; ReLU and "
          "argmax stay on the cores — the paper's division of labour.")


if __name__ == "__main__":
    main()
