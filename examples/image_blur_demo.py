#!/usr/bin/env python3
"""Image blur through the photonic interconnect, with analog noise.

Reproduces the paper's flagship workload end to end: a 3x3 Gaussian blur
lowered to matrix multiplication (Figure 7), executed on SVD MZIM circuits,
first with ideal optics and then through the 8-bit analog chain
(quantization + detector noise), reporting the image-quality cost.

Run:  python examples/image_blur_demo.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.accelerator import BlockMatmul, im2col
from repro.core.system import SystemModel
from repro.photonics.noise import AnalogMVM
from repro.workloads import ImageBlur


def psnr(reference: np.ndarray, candidate: np.ndarray,
         peak: float = 255.0) -> float:
    mse = float(np.mean((reference - candidate) ** 2))
    return float("inf") if mse == 0 else 10.0 * np.log10(peak ** 2 / mse)


def main() -> None:
    workload = ImageBlur(height=64, width=64)  # small for a quick demo
    print(f"image: {workload.image.shape}, "
          f"MACs: {workload.total_macs():,}")

    reference = workload.reference()
    ideal = workload.photonic()
    print(f"ideal optics max error: {np.abs(ideal - reference).max():.2e}")

    # Analog chain: 8-bit quantization + detector noise per window.
    cols = im2col(workload.image, (3, 3), stride=1, padding=1)
    matmul = BlockMatmul(workload._weight_matrix(), 8)
    rng = np.random.default_rng(3)

    def analog_pass(program, window):
        mvm = AnalogMVM(program, bits=8, rng=rng)
        return mvm(window)

    noisy = matmul(cols, mvm=analog_pass).reshape(reference.shape)
    err = np.abs(noisy - reference)
    print(f"8-bit analog chain: PSNR {psnr(reference, noisy):.1f} dB, "
          f"mean pixel error {err.mean():.1f}/255 — the cost of analog "
          f"computation (quantized partials accumulate noise across the "
          f"{matmul.block_cols} column blocks)\n")

    print("=== System-level outcome (Figures 13-15 slice) ===")
    model = SystemModel()
    runs = model.run_all(workload)
    rows = []
    for cfg in ("ring", "mesh", "optbus", "flumen_i", "flumen_a"):
        r = runs[cfg]
        rows.append([cfg, f"{r.runtime_s * 1e6:.1f} us",
                     f"{r.energy.total * 1e6:.1f} uJ",
                     f"{r.edp * 1e9:.3f} nJ*s"])
    print(format_table(["config", "runtime", "energy", "EDP"], rows))
    fa, mesh = runs["flumen_a"], runs["mesh"]
    print(f"\nFlumen-A vs Mesh: {mesh.runtime_s / fa.runtime_s:.1f}x faster, "
          f"{mesh.energy.total / fa.energy.total:.1f}x less energy, "
          f"{mesh.edp / fa.edp:.1f}x lower EDP")


if __name__ == "__main__":
    main()
