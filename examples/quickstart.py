#!/usr/bin/env python3
"""Quickstart: program a Flumen MZIM, communicate, then compute.

Walks the library's three core abilities in under a minute:

1. program the photonic fabric for point-to-point + broadcast traffic,
2. partition it and run a matrix multiplication in the interconnect,
3. compare the photonic compute energy against the electrical MAC baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.photonics import (
    FlumenFabric,
    MZIMComputeModel,
    program_broadcast,
    received_power,
)
from repro.photonics.render import render_fabric

rng = np.random.default_rng(7)


def communication_demo() -> None:
    print("=== 1. Communication on an 8-port Flumen fabric ===")
    fabric = FlumenFabric(8)
    fabric.configure_communication({0: 5, 5: 0, 2: 7, 7: 2})
    rows = []
    for src, dst in [(0, 5), (5, 0), (2, 7), (7, 2)]:
        rows.append([f"{src} -> {dst}",
                     fabric.path_mzi_count(src, dst),
                     f"{fabric.path_loss_db(src, dst):.2f} dB"])
    print(format_table(["link", "MZIs on path", "equalized loss"], rows))
    print(f"fabric inventory: {fabric.num_mesh_mzis} mesh MZIs + "
          f"{fabric.num_attenuator_mzis} attenuators, "
          f"{fabric.mesh_columns} columns\n")

    mesh = program_broadcast(0, 8)
    power = received_power(mesh, 0)
    print("broadcast from port 0, per-port received power:",
          np.round(power, 4), "\n")


def compute_demo() -> None:
    print("=== 2. Matrix multiplication inside the interconnect ===")
    fabric = FlumenFabric(8)
    top, bottom = fabric.split_even()  # two 4-input SVD MZIMs (Figure 5)
    matrix = rng.standard_normal((4, 4))
    program = fabric.program_compute(top, matrix)
    vectors = rng.standard_normal((4, 3))
    optical = program.apply(vectors.astype(complex)).real
    exact = matrix @ vectors
    print(f"partitions: {[(p.lo, p.hi, p.kind.value) for p in fabric.partitions]}")
    print(f"max |optical - exact| = {np.abs(optical - exact).max():.2e}")
    print(f"reconfiguration time charged: "
          f"{fabric.reconfiguration_time_s * 1e9:.0f} ns\n")

    mixed = FlumenFabric(8)
    mixed.split(4, 8, matrix=rng.standard_normal((4, 4)))
    mixed.configure_communication({0: 3, 3: 0, 1: 2, 2: 1})
    print("mixed-mode fabric (top half communicating, bottom computing):")
    print(render_fabric(mixed))
    print()


def energy_demo() -> None:
    print("=== 3. Photonic vs electrical compute energy (Fig. 12b) ===")
    model = MZIMComputeModel()
    rows = []
    for n, m in [(8, 4), (16, 8), (64, 8)]:
        phot = model.matmul_energy(n, m).total
        elec = model.electrical_matmul_energy(n, m)
        rows.append([f"{n}x{n}, {m} vectors",
                     f"{phot * 1e12:.1f} pJ",
                     f"{elec * 1e12:.1f} pJ",
                     f"{elec / phot:.1f}x"])
    print(format_table(
        ["job", "Flumen MZIM", "electrical MAC", "advantage"], rows))


if __name__ == "__main__":
    communication_demo()
    compute_demo()
    energy_demo()
