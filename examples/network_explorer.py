#!/usr/bin/env python3
"""Explore the four NoP topologies under synthetic traffic (Figure 11).

Sweeps offered load for every topology and pattern the paper evaluates,
prints latency curves as ASCII charts, and reports per-topology network
energy at a fixed operating point (Section 5.2).

Run:  python examples/network_explorer.py
"""

from repro.analysis.report import ascii_chart, format_table
from repro.noc import (
    NetworkEnergyModel,
    SweepConfig,
    load_sweep,
    run_point,
)

CONFIG = SweepConfig(cycles=2500, warmup=800)
LOADS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
TOPOLOGIES = ("ring", "mesh", "optbus", "flumen")


def latency_curves() -> None:
    for pattern in ("uniform", "bit_reversal", "shuffle"):
        series = {}
        for topo in TOPOLOGIES:
            results = load_sweep(topo, pattern, LOADS, CONFIG)
            series[topo] = [(r.load, r.avg_latency) for r in results
                            if not r.saturated]
        print(ascii_chart(series, title=f"\n[{pattern}] latency vs load "
                                        f"(cycles)", log_y=False))


def energy_comparison() -> None:
    print("\n=== Network energy at 0.3 load, uniform traffic ===")
    model = NetworkEnergyModel()
    rows = []
    ring_total = None
    for topo in TOPOLOGIES:
        result = run_point(topo, "uniform", 0.3, CONFIG)
        report = model.of(result)
        if topo == "ring":
            ring_total = report.total
        saving = (1 - report.total / ring_total) * 100 if ring_total else 0
        rows.append([topo, f"{report.total * 1e6:.2f} uJ",
                     f"{saving:.0f}%"])
    print(format_table(["topology", "energy", "reduction vs ring"], rows))


if __name__ == "__main__":
    latency_curves()
    energy_comparison()
