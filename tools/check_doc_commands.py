#!/usr/bin/env python
"""Docs-consistency check: every documented CLI command must parse.

Extracts ``python -m repro ...`` commands from the fenced code blocks of
the user-facing documents (README.md, DESIGN.md, EXPERIMENTS.md),
re-joins backslash line continuations, and smoke-runs each command with
``--help`` appended.  Argparse exits 0 from ``--help`` only after the
subcommand resolved and eagerly-validated arguments (choices, types)
parsed, so a doc referencing a renamed subcommand, a dropped flag value,
or a stale invocation style fails this check — which is how the README
drifted from the CLI once before (the pre-sweep/trace overview).

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_doc_commands.py

Documented ``serve`` commands get a second, stronger check: each one is
*executed* (not just parsed) with the session clamped to a short
duration, side-effecting flags redirected into a temp directory, and
``--check`` forced on, so the daemon's own validators (event schema,
exposition parse, ledger conservation, drain) run against the exact
argument combinations the docs advertise.

Exit status is the number of failing commands (0 = docs and CLI agree).
"""

from __future__ import annotations

import contextlib
import io
import shlex
import sys
import tempfile
from pathlib import Path

#: Documents whose fenced command examples must stay runnable.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The prefix a fenced line must carry to be checked.
COMMAND_PREFIX = ("python", "-m", "repro")


def fenced_blocks(text: str) -> list[str]:
    """The contents of every triple-backtick fenced block, in order."""
    blocks = []
    inside = False
    current: list[str] = []
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            if inside:
                blocks.append("\n".join(current))
                current = []
            inside = not inside
            continue
        if inside:
            current.append(line)
    return blocks


def _join_continuations(block: str) -> list[str]:
    """Physical lines -> logical lines, honouring trailing backslashes."""
    logical: list[str] = []
    pending = ""
    for line in block.splitlines():
        stripped = line.strip()
        if stripped.endswith("\\"):
            pending += stripped[:-1] + " "
            continue
        logical.append(pending + stripped)
        pending = ""
    if pending:
        logical.append(pending.strip())
    return logical


def extract_commands(text: str) -> list[list[str]]:
    """All ``python -m repro`` argument vectors in ``text``'s fences.

    Returns each command as the argv *after* ``python -m repro`` (what
    ``repro.__main__.main`` accepts).  Shell comments are stripped; a
    leading ``$`` prompt is tolerated.
    """
    commands = []
    for block in fenced_blocks(text):
        for line in _join_continuations(block):
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue  # not shell syntax (e.g. a Python snippet)
            if tokens and tokens[0] == "$":
                tokens = tokens[1:]
            if tuple(tokens[:3]) == COMMAND_PREFIX:
                commands.append(tokens[3:])
    return commands


def check_command(argv: list[str]) -> str | None:
    """Smoke-parse one documented command; return an error or None."""
    from repro.__main__ import main

    sink = io.StringIO()
    try:
        with contextlib.redirect_stdout(sink), \
                contextlib.redirect_stderr(sink):
            main([*argv, "--help"])
    except SystemExit as exit_:  # argparse signals via SystemExit
        if exit_.code not in (0, None):
            return sink.getvalue().strip().splitlines()[-1] \
                if sink.getvalue().strip() else f"exit {exit_.code}"
    except Exception as error:  # pragma: no cover - defensive
        return f"{type(error).__name__}: {error}"
    return None


#: Ceiling on simulated cycles when executing documented serve sessions.
SMOKE_MAX_DURATION = 512

#: Serve flags rewritten before execution: wall-clock / network /
#: filesystem side effects have no place in a docs check.
_SERVE_DROP_FLAGS = ("--http-port", "--host", "--linger",
                     "--out", "--telemetry-dir")


def clamped_serve_argv(argv: list[str], tmp: Path) -> list[str]:
    """A fast, side-effect-free variant of a documented serve command."""
    out: list[str] = []
    skip = 0
    duration = SMOKE_MAX_DURATION
    for index, token in enumerate(argv):
        if skip:
            skip -= 1
            continue
        if token in _SERVE_DROP_FLAGS:
            skip = 1
            continue
        if token == "--duration":
            skip = 1
            try:
                duration = min(int(argv[index + 1]), SMOKE_MAX_DURATION)
            except (IndexError, ValueError):
                pass
            continue
        out.append(token)
    out += ["--duration", str(duration), "--out", str(tmp / "report.json")]
    if "--check" not in out:
        out.append("--check")
    return out


def smoke_run_command(argv: list[str]) -> str | None:
    """Execute one documented serve command; return an error or None."""
    from repro.__main__ import main

    sink = io.StringIO()
    with tempfile.TemporaryDirectory() as tmp:
        run_argv = clamped_serve_argv(argv, Path(tmp))
        try:
            with contextlib.redirect_stdout(sink), \
                    contextlib.redirect_stderr(sink):
                code = main(run_argv)
        except SystemExit as exit_:
            code = exit_.code if isinstance(exit_.code, int) else 1
        except Exception as error:
            return f"{type(error).__name__}: {error}"
    if code not in (0, None):
        tail = sink.getvalue().strip().splitlines()
        return tail[-1] if tail else f"exit {code}"
    return None


def main(argv: list[str] | None = None) -> int:
    paths = [Path(p) for p in (argv or [])] \
        or [REPO_ROOT / name for name in DOC_FILES]
    failures = 0
    checked = 0
    seen: set[tuple[str, ...]] = set()
    for path in paths:
        for command in extract_commands(path.read_text()):
            key = tuple(command)
            if key in seen:
                continue
            seen.add(key)
            checked += 1
            error = check_command(command)
            mode = "ok  "
            if error is None and command[:1] == ["serve"]:
                error = smoke_run_command(command)
                mode = "ran "
            rendered = "python -m repro " + " ".join(command)
            if error is None:
                print(f"{mode} {rendered}")
            else:
                failures += 1
                print(f"FAIL {rendered}\n     {error}")
    print(f"{checked} documented commands checked, {failures} failing")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
