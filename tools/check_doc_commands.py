#!/usr/bin/env python
"""Docs-consistency check: every documented CLI command must parse.

Extracts ``python -m repro ...`` commands from the fenced code blocks of
the user-facing documents (README.md, DESIGN.md, EXPERIMENTS.md),
re-joins backslash line continuations, and smoke-runs each command with
``--help`` appended.  Argparse exits 0 from ``--help`` only after the
subcommand resolved and eagerly-validated arguments (choices, types)
parsed, so a doc referencing a renamed subcommand, a dropped flag value,
or a stale invocation style fails this check — which is how the README
drifted from the CLI once before (the pre-sweep/trace overview).

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_doc_commands.py

Exit status is the number of failing commands (0 = docs and CLI agree).
"""

from __future__ import annotations

import contextlib
import io
import shlex
import sys
from pathlib import Path

#: Documents whose fenced command examples must stay runnable.
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The prefix a fenced line must carry to be checked.
COMMAND_PREFIX = ("python", "-m", "repro")


def fenced_blocks(text: str) -> list[str]:
    """The contents of every triple-backtick fenced block, in order."""
    blocks = []
    inside = False
    current: list[str] = []
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            if inside:
                blocks.append("\n".join(current))
                current = []
            inside = not inside
            continue
        if inside:
            current.append(line)
    return blocks


def _join_continuations(block: str) -> list[str]:
    """Physical lines -> logical lines, honouring trailing backslashes."""
    logical: list[str] = []
    pending = ""
    for line in block.splitlines():
        stripped = line.strip()
        if stripped.endswith("\\"):
            pending += stripped[:-1] + " "
            continue
        logical.append(pending + stripped)
        pending = ""
    if pending:
        logical.append(pending.strip())
    return logical


def extract_commands(text: str) -> list[list[str]]:
    """All ``python -m repro`` argument vectors in ``text``'s fences.

    Returns each command as the argv *after* ``python -m repro`` (what
    ``repro.__main__.main`` accepts).  Shell comments are stripped; a
    leading ``$`` prompt is tolerated.
    """
    commands = []
    for block in fenced_blocks(text):
        for line in _join_continuations(block):
            try:
                tokens = shlex.split(line, comments=True)
            except ValueError:
                continue  # not shell syntax (e.g. a Python snippet)
            if tokens and tokens[0] == "$":
                tokens = tokens[1:]
            if tuple(tokens[:3]) == COMMAND_PREFIX:
                commands.append(tokens[3:])
    return commands


def check_command(argv: list[str]) -> str | None:
    """Smoke-parse one documented command; return an error or None."""
    from repro.__main__ import main

    sink = io.StringIO()
    try:
        with contextlib.redirect_stdout(sink), \
                contextlib.redirect_stderr(sink):
            main([*argv, "--help"])
    except SystemExit as exit_:  # argparse signals via SystemExit
        if exit_.code not in (0, None):
            return sink.getvalue().strip().splitlines()[-1] \
                if sink.getvalue().strip() else f"exit {exit_.code}"
    except Exception as error:  # pragma: no cover - defensive
        return f"{type(error).__name__}: {error}"
    return None


def main(argv: list[str] | None = None) -> int:
    paths = [Path(p) for p in (argv or [])] \
        or [REPO_ROOT / name for name in DOC_FILES]
    failures = 0
    checked = 0
    seen: set[tuple[str, ...]] = set()
    for path in paths:
        for command in extract_commands(path.read_text()):
            key = tuple(command)
            if key in seen:
                continue
            seen.add(key)
            checked += 1
            error = check_command(command)
            rendered = "python -m repro " + " ".join(command)
            if error is None:
                print(f"ok   {rendered}")
            else:
                failures += 1
                print(f"FAIL {rendered}\n     {error}")
    print(f"{checked} documented commands checked, {failures} failing")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
