"""Figure 12(c): energy per MAC versus MZIM dimension and wavelengths.

Larger MZIMs amortize the phase-shifter-DAC static power over more MACs
per pass; more wavelengths amortize the per-window static energy over more
concurrent MVMs.  Also prints the static-power split Section 5.3 discusses
(DAC hold power dominating).
"""

from repro.analysis.report import format_table
from repro.photonics.compute_energy import MZIMComputeModel

DIMS = [4, 8, 16, 32, 64]
LAMBDAS = [1, 2, 4, 8, 16]


def run_grid():
    model = MZIMComputeModel()
    return model.mac_energy_sweep(DIMS, LAMBDAS), model


def test_mac_energy_tradeoff(benchmark):
    grid, model = benchmark(run_grid)
    rows = []
    for n in DIMS:
        rows.append([f"{n}x{n}"] +
                    [f"{grid[(n, p)] * 1e15:.1f}" for p in LAMBDAS])
    print()
    print(format_table(
        ["MZIM \\ lambdas"] + [str(p) for p in LAMBDAS], rows,
        title="Figure 12(c): energy per MAC (fJ), saturated windows"))

    # Static split at 8x8, one window (Section 5.3 narrative).
    e = model.matmul_energy(8, 8)
    print(f"\n8x8 window energy split: static {e.static * 1e12:.1f} pJ "
          f"(phase-hold DACs), laser {e.laser * 1e12:.1f} pJ, "
          f"I/O {e.io * 1e12:.1f} pJ")

    # Energy/MAC improves monotonically with wavelengths at every size.
    for n in DIMS:
        series = [grid[(n, p)] for p in LAMBDAS]
        assert series == sorted(series, reverse=True), n
    # And improves with dimension at full WDM width.
    wide = [grid[(n, 16)] for n in DIMS]
    assert wide[0] > wide[-1]
