"""Section 5.2: network energy on synthetic traffic, relative to Ring.

Paper: reductions vs Ring of 77% (Mesh), 35% (OptBus), 39% (Flumen); the
note that Flumen's energy slightly exceeds OptBus because of compute-path
DAC/ADC overhead, which a pure-communication MZIM would not carry.
"""

from repro.analysis.metrics import percent_reduction
from repro.analysis.report import format_table
from repro.noc.energy import NetworkEnergyModel
from repro.noc.simulation import SweepConfig, run_point

CONFIG = SweepConfig(cycles=2500, warmup=800)
LOAD = 0.3
PAPER_REDUCTION = {"mesh": 77.0, "optbus": 35.0, "flumen": 39.0}


def run_energy():
    model = NetworkEnergyModel()
    out = {}
    for topo in ("ring", "mesh", "optbus", "flumen"):
        result = run_point(topo, "uniform", LOAD, CONFIG)
        out[topo] = model.of(result)
        if topo == "flumen":
            out["flumen_pure_comm"] = model.flumen(
                result, include_converters=False)
    return out


def test_network_energy_vs_ring(benchmark):
    reports = benchmark.pedantic(run_energy, rounds=1, iterations=1)
    ring = reports["ring"].total
    rows = []
    for topo in ("ring", "mesh", "optbus", "flumen", "flumen_pure_comm"):
        total = reports[topo].total
        red = percent_reduction(ring, total)
        paper = PAPER_REDUCTION.get(topo)
        rows.append([topo, f"{total * 1e6:.2f}",
                     f"{red:.0f}%", f"{paper:.0f}%" if paper else "-"])
    print()
    print(format_table(
        ["topology", "energy (uJ)", "reduction vs ring", "paper"],
        rows, title=f"Section 5.2: network energy (uniform @ {LOAD})"))

    # Ordering claims.
    assert reports["mesh"].total < ring
    assert reports["optbus"].total < reports["mesh"].total
    # Flumen slightly above OptBus due to converter statics...
    assert reports["flumen"].total > reports["optbus"].total
    # ...and a pure-communication MZIM drops that overhead.
    assert reports["flumen_pure_comm"].total < reports["flumen"].total
    assert reports["flumen_pure_comm"].converter_static == 0.0
