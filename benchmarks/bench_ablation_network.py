"""Network design-space ablations: VCs, buffer depth, reconfiguration cost.

Standard Booksim-style sensitivity studies on the electrical baselines,
plus the Flumen-specific reconfiguration-delay sweep (what if phase
programming were slower/faster than the paper's 1 ns?).
"""

from repro.analysis.report import format_table
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.network import Network
from repro.noc.topology import make_topology
from repro.noc.traffic import TrafficGenerator

CYCLES, WARMUP, LOAD = 2000, 600, 0.45


def mesh_latency(num_vcs: int, buffer_depth: int) -> float:
    net = Network(make_topology("mesh", 16), num_vcs=num_vcs,
                  buffer_depth=buffer_depth)
    traffic = TrafficGenerator(16, "uniform", LOAD, seed=13)
    net.run(traffic, cycles=CYCLES, warmup=WARMUP)
    return net.latency.average


def flumen_latency(reconfig_cycles: int) -> float:
    net = FlumenNetwork(16, reconfig_cycles=reconfig_cycles)
    traffic = TrafficGenerator(16, "uniform", 0.1, seed=13)
    net.run(traffic, cycles=CYCLES, warmup=WARMUP)
    return net.latency.average


def test_buffer_depth_sensitivity(benchmark):
    depths = [2, 4, 8, 16]
    lat = benchmark.pedantic(
        lambda: {d: mesh_latency(2, d) for d in depths},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ["buffer depth (flits)", "mesh avg latency @0.45"],
        [[d, f"{lat[d]:.1f}"] for d in depths],
        title="Ablation: input buffer depth"))
    # Starved buffers can't cover the credit round trip; deep buffers
    # bring diminishing returns.
    assert lat[2] > lat[8]
    assert abs(lat[16] - lat[8]) < 0.5 * lat[8]


def test_vc_count_sensitivity(benchmark):
    vcs = [1, 2, 4]
    lat = benchmark.pedantic(
        lambda: {v: mesh_latency(v, 8) for v in vcs},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ["virtual channels", "mesh avg latency @0.45"],
        [[v, f"{lat[v]:.1f}"] for v in vcs],
        title="Ablation: virtual channel count"))
    # Under benign uniform traffic VC count barely matters (their real
    # job is deadlock avoidance and adversarial patterns); wormhole
    # interleaving adds a little per-packet completion time.
    assert max(lat.values()) < 1.3 * min(lat.values())


def routing_comparison():
    out = {}
    for pattern in ("uniform", "transpose", "bit_reversal"):
        for name in ("mesh", "mesh_wf"):
            net = Network(make_topology(name, 16))
            traffic = TrafficGenerator(16, pattern, 0.35, seed=3)
            net.run(traffic, cycles=CYCLES, warmup=WARMUP)
            out[(pattern, name)] = net.latency.average
    return out


def test_adaptive_routing(benchmark):
    lat = benchmark.pedantic(routing_comparison, rounds=1, iterations=1)
    rows = [[p, f"{lat[(p, 'mesh')]:.1f}", f"{lat[(p, 'mesh_wf')]:.1f}"]
            for p in ("uniform", "transpose", "bit_reversal")]
    print()
    print(format_table(
        ["pattern", "XY routing", "west-first adaptive"],
        rows, title="Ablation: mesh routing algorithm @0.35 load"))
    # Adaptivity pays on adversarial patterns, costs little on uniform.
    assert lat[("transpose", "mesh_wf")] < lat[("transpose", "mesh")]
    assert lat[("bit_reversal", "mesh_wf")] < lat[("bit_reversal", "mesh")]
    assert lat[("uniform", "mesh_wf")] < 1.3 * lat[("uniform", "mesh")]


def test_reconfiguration_cost_sensitivity(benchmark):
    costs = [0, 3, 10, 25]
    lat = benchmark.pedantic(
        lambda: {c: flumen_latency(c) for c in costs},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ["reconfig cycles", "flumen avg latency @0.1"],
        [[c, f"{lat[c]:.1f}"] for c in costs],
        title="Ablation: MZI phase-programming delay "
              "(paper: 1 ns = 3 cycles)"))
    series = [lat[c] for c in costs]
    assert series == sorted(series)
    # The paper's 3-cycle point costs a couple of cycles over
    # instantaneous programming; a slow (25-cycle) programmer pushes the
    # crossbar into saturation even at light load.
    assert lat[3] < lat[0] + 5
    assert lat[25] > 5 * lat[3]
