"""Network design-space ablations: VCs, buffer depth, reconfiguration cost.

Standard Booksim-style sensitivity studies on the electrical baselines,
plus the Flumen-specific reconfiguration-delay sweep (what if phase
programming were slower/faster than the paper's 1 ns?).  All scans run
through the sweep engine's registered ``noc_latency`` task, so the
points execute on worker processes.
"""

from repro.analysis.engine import PointSpec, SweepEngine, default_jobs
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_task

CYCLES, WARMUP, LOAD = 2000, 600, 0.45
MESH_PARAMS = {"topology": "mesh", "pattern": "uniform", "load": LOAD,
               "cycles": CYCLES, "warmup": WARMUP, "traffic_seed": 13}


def buffer_depth_sweep(depths):
    points = sweep_task(
        "buffer_depth", depths, task="noc_latency",
        base_params={**MESH_PARAMS, "num_vcs": 2}, jobs=default_jobs())
    return {int(p.value): p.metrics["avg_latency"] for p in points}


def vc_count_sweep(vcs):
    points = sweep_task(
        "num_vcs", vcs, task="noc_latency",
        base_params={**MESH_PARAMS, "buffer_depth": 8},
        jobs=default_jobs())
    return {int(p.value): p.metrics["avg_latency"] for p in points}


def reconfig_cost_sweep(costs):
    points = sweep_task(
        "reconfig_cycles", costs, task="noc_latency",
        base_params={"topology": "flumen", "pattern": "uniform",
                     "load": 0.1, "cycles": CYCLES, "warmup": WARMUP,
                     "traffic_seed": 13},
        jobs=default_jobs())
    return {int(p.value): p.metrics["avg_latency"] for p in points}


def test_buffer_depth_sensitivity(benchmark):
    depths = [2, 4, 8, 16]
    lat = benchmark.pedantic(lambda: buffer_depth_sweep(depths),
                             rounds=1, iterations=1)
    print()
    print(format_table(
        ["buffer depth (flits)", "mesh avg latency @0.45"],
        [[d, f"{lat[d]:.1f}"] for d in depths],
        title="Ablation: input buffer depth"))
    # Starved buffers can't cover the credit round trip; deep buffers
    # bring diminishing returns.
    assert lat[2] > lat[8]
    assert abs(lat[16] - lat[8]) < 0.5 * lat[8]


def test_vc_count_sensitivity(benchmark):
    vcs = [1, 2, 4]
    lat = benchmark.pedantic(lambda: vc_count_sweep(vcs),
                             rounds=1, iterations=1)
    print()
    print(format_table(
        ["virtual channels", "mesh avg latency @0.45"],
        [[v, f"{lat[v]:.1f}"] for v in vcs],
        title="Ablation: virtual channel count"))
    # Under benign uniform traffic VC count barely matters (their real
    # job is deadlock avoidance and adversarial patterns); wormhole
    # interleaving adds a little per-packet completion time.
    assert max(lat.values()) < 1.3 * min(lat.values())


def routing_comparison():
    patterns = ("uniform", "transpose", "bit_reversal")
    points = [
        PointSpec(key=f"{pattern}/{name}",
                  params={"topology": name, "pattern": pattern,
                          "load": 0.35, "cycles": CYCLES,
                          "warmup": WARMUP, "traffic_seed": 3})
        for pattern in patterns for name in ("mesh", "mesh_wf")]
    run = SweepEngine(jobs=default_jobs()).run("noc_latency", points)
    run.raise_failures()
    return {(p.params["pattern"], p.params["topology"]):
            r.metrics["avg_latency"]
            for p, r in zip(points, run.results)}


def test_adaptive_routing(benchmark):
    lat = benchmark.pedantic(routing_comparison, rounds=1, iterations=1)
    rows = [[p, f"{lat[(p, 'mesh')]:.1f}", f"{lat[(p, 'mesh_wf')]:.1f}"]
            for p in ("uniform", "transpose", "bit_reversal")]
    print()
    print(format_table(
        ["pattern", "XY routing", "west-first adaptive"],
        rows, title="Ablation: mesh routing algorithm @0.35 load"))
    # Adaptivity pays on adversarial patterns, costs little on uniform.
    assert lat[("transpose", "mesh_wf")] < lat[("transpose", "mesh")]
    assert lat[("bit_reversal", "mesh_wf")] < lat[("bit_reversal", "mesh")]
    assert lat[("uniform", "mesh_wf")] < 1.3 * lat[("uniform", "mesh")]


def test_reconfiguration_cost_sensitivity(benchmark):
    costs = [0, 3, 10, 25]
    lat = benchmark.pedantic(lambda: reconfig_cost_sweep(costs),
                             rounds=1, iterations=1)
    print()
    print(format_table(
        ["reconfig cycles", "flumen avg latency @0.1"],
        [[c, f"{lat[c]:.1f}"] for c in costs],
        title="Ablation: MZI phase-programming delay "
              "(paper: 1 ns = 3 cycles)"))
    series = [lat[c] for c in costs]
    assert series == sorted(series)
    # The paper's 3-cycle point costs a couple of cycles over
    # instantaneous programming; a slow (25-cycle) programmer pushes the
    # crossbar into saturation even at light load.
    assert lat[3] < lat[0] + 5
    assert lat[25] > 5 * lat[3]
