"""Section 5.1: area accounting and interposer scaling.

Paper anchors: 9.46 mm^2 per Flumen endpoint (4.2% transceiver), 8x8 MZIM
+ controller = 11.2 mm^2, 162.6 mm^2 Flumen system vs 114.9 mm^2 mesh;
64x64 MZIM = 291.20 mm^2 against 1210.88 mm^2 of chiplets at 128 chiplets.
"""

from repro.analysis.report import format_table
from repro.multicore.area import AreaModel


def run_model():
    area = AreaModel()
    return {
        "endpoint": area.flumen_endpoint(),
        "flumen_system": area.flumen_system(),
        "mesh_system": area.mesh_system(),
        "mzim_ctrl": area.mzim_with_controller(),
        "scaling": [area.scaling_row(c) for c in (16, 32, 64, 128)],
    }


def test_area_report(benchmark):
    out = benchmark(run_model)
    ep = out["endpoint"]
    rows = [
        ["Flumen endpoint", f"{ep.total:.2f}", "9.46"],
        ["  transceiver share",
         f"{100 * ep['transceiver'] / ep.total:.1f}%", "4.2%"],
        ["8x8 MZIM + controller", f"{out['mzim_ctrl']:.2f}", "11.2"],
        ["Flumen system", f"{out['flumen_system'].total:.1f}", "162.6"],
        ["Mesh system", f"{out['mesh_system'].total:.1f}", "114.9"],
    ]
    print()
    print(format_table(["component", "mm^2 (measured)", "paper"], rows,
                       title="Section 5.1: area"))

    scale_rows = [[r["chiplets"], f"{r['mzim_mm2']:.1f}",
                   f"{r['chiplet_mm2']:.1f}",
                   f"{100 * r['mzim_fraction']:.1f}%"]
                  for r in out["scaling"]]
    print(format_table(
        ["chiplets", "MZIM mm^2", "chiplets mm^2", "interposer share"],
        scale_rows, title="\nInterposer scaling (paper: 291.2 vs 1210.9 "
                          "at 128 chiplets)"))

    assert abs(ep.total - 9.46) < 0.1
    assert abs(out["flumen_system"].total - 162.6) / 162.6 < 0.05
    assert abs(out["mesh_system"].total - 114.9) / 114.9 < 0.02
    big = out["scaling"][-1]
    assert abs(big["mzim_mm2"] - 291.2) / 291.2 < 0.02
    assert abs(big["chiplet_mm2"] - 1210.88) / 1210.88 < 0.01
    # MZIM area grows but stays a modest fraction of chiplet area.
    assert big["mzim_fraction"] < 0.25
