"""Section 3.4: sensitivity of the Algorithm 1 parameters tau, eta, zeta.

Paper findings under test:

* tau = 100 works; tau > 170 collapses serviced compute requests (too
  many left outstanding);
* eta <~ 30% is too strict (low compute service), eta >~ 55% lets
  computation block communication (packet latency climbs);
* a buffer scan depth zeta surfaces hot buffers a global average washes
  out (motivating zeta = 50%).
"""

from repro.analysis.engine import default_jobs
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_task
from repro.noc.flumen_net import FlumenNetwork

SIM_CYCLES = 4000
#: Fixed traffic seed the paper-matching assertions were tuned against.
TRAFFIC_SEED = 3


def tau_sweep():
    # Calm network: tau alone controls when requests get evaluated.
    # The mixed run itself lives in repro.analysis.tasks.alg1_mix, so
    # the engine can fan the six points out across worker processes.
    return sweep_task(
        "tau", [25, 50, 100, 150, 200, 300], task="alg1_mix",
        value_param="tau_cycles",
        base_params={"load": 0.12, "cycles": SIM_CYCLES,
                     "traffic_seed": TRAFFIC_SEED},
        jobs=default_jobs())


def eta_sweep():
    # Moderate load: buffers hover near the threshold, so eta decides.
    return sweep_task(
        "eta", [0.1, 0.25, 0.4, 0.55, 0.7, 0.9], task="alg1_mix",
        base_params={"load": 0.25, "cycles": SIM_CYCLES,
                     "traffic_seed": TRAFFIC_SEED},
        jobs=default_jobs())


def test_tau_sensitivity(benchmark):
    points = benchmark.pedantic(tau_sweep, rounds=1, iterations=1)
    rows = [[p.value, f"{p.metrics['service_rate'] * 100:.0f}%",
             f"{p.metrics['avg_wait']:.0f}",
             f"{p.metrics['packet_latency']:.1f}"] for p in points]
    print()
    print(format_table(
        ["tau (cycles)", "requests serviced", "avg grant wait",
         "pkt latency"], rows,
        title="Section 3.4: partition period tau sweep"))
    by_tau = {p.value: p.metrics for p in points}
    # Service holds up through tau = 100-150 and collapses past ~170
    # (paper: "tau > 170 ... rapid decrease in serviced computation").
    assert by_tau[100]["service_rate"] > 0.9
    assert by_tau[300]["service_rate"] < by_tau[100]["service_rate"]
    # Grant waits stretch as tau grows (requests sit until the next
    # evaluation boundary).
    assert by_tau[300]["avg_wait"] > by_tau[50]["avg_wait"]


def test_eta_sensitivity(benchmark):
    points = benchmark.pedantic(eta_sweep, rounds=1, iterations=1)
    rows = [[f"{p.value:.2f}", f"{p.metrics['service_rate'] * 100:.0f}%",
             f"{p.metrics['packet_latency']:.1f}"] for p in points]
    print()
    print(format_table(
        ["eta", "requests serviced", "pkt latency"], rows,
        title="Section 3.4: buffer threshold eta sweep (hot network)"))
    by_eta = {round(p.value, 2): p.metrics for p in points}
    # Strict eta refuses compute service under load...
    assert by_eta[0.1]["service_rate"] < by_eta[0.9]["service_rate"]
    # ...while permissive eta lets compute block communication (paper:
    # eta >~ 55% causes slowdown).
    assert by_eta[0.9]["packet_latency"] > 2 * by_eta[0.1]["packet_latency"]


def test_zeta_scan_depth(benchmark):
    def build():
        net = FlumenNetwork(16, request_buffer_capacity=8)
        net.block_ports(set(range(16)))
        # Two hot nodes in an otherwise idle network.
        from repro.noc.packet import Packet
        for src in (3, 9):
            for _ in range(8):
                net.offer_packet(Packet(src=src, dst=0, size_flits=1,
                                        create_cycle=0))
        return {zeta: net.buffer_utilization(scan_depth=zeta)
                for zeta in (0.125, 0.25, 0.5, 1.0)}

    util = benchmark(build)
    rows = [[z, f"{u:.3f}"] for z, u in util.items()]
    print()
    print(format_table(["zeta", "observed utilization"], rows,
                       title="Section 3.4: scan depth zeta on 2 hot nodes"))
    # A global average (zeta=1) underestimates hot-node pressure by ~8x
    # relative to a focused scan — the paper's motivation for zeta.
    assert util[0.125] == 1.0
    assert util[1.0] < 0.2
    values = [util[z] for z in (0.125, 0.25, 0.5, 1.0)]
    assert values == sorted(values, reverse=True)
