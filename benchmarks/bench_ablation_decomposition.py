"""Ablation: Clements rectangle vs Reck triangle, and self-configuration.

Two design choices behind the Flumen fabric:

1. **Mesh arrangement.**  Both decompositions use N(N-1)/2 MZIs, but the
   rectangle (Clements, the paper's reference [10]) has depth N vs the
   triangle's 2N-3 — lower worst-case insertion loss and a smaller
   path-length spread for the attenuator column to equalize.
2. **Self-configuration** (reference [15]): a fabricated mesh with
   systematic phase offsets is reprogrammed to the target matrix using
   only transfer-matrix measurements.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import DeviceParams
from repro.photonics.calibration import PhaseOffsets, calibrate_to
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.reck import decompose_reck

SIZES = (4, 8, 16, 32)


def depth_and_loss():
    mzi_db = DeviceParams().mzi.insertion_loss_db
    rows = []
    for n in SIZES:
        u = random_unitary(n, np.random.default_rng(n))
        clem = decompose(u)
        reck = decompose_reck(u)
        rows.append({
            "n": n,
            "clements_depth": clem.num_columns,
            "reck_depth": reck.num_columns,
            "clements_loss": clem.num_columns * mzi_db,
            "reck_loss": reck.num_columns * mzi_db,
        })
    return rows


def calibration_sweep():
    out = {}
    for sigma in (0.02, 0.1, 0.3):
        u = random_unitary(8, np.random.default_rng(42))
        offsets = PhaseOffsets.random(28, sigma,
                                      np.random.default_rng(43))
        out[sigma] = calibrate_to(u, offsets, method="decomposition")
    return out


def test_mesh_arrangement(benchmark):
    rows = benchmark(depth_and_loss)
    table = [[r["n"], r["clements_depth"], r["reck_depth"],
              f"{r['clements_loss']:.2f}", f"{r['reck_loss']:.2f}"]
             for r in rows]
    print()
    print(format_table(
        ["N", "Clements depth", "Reck depth",
         "Clements loss (dB)", "Reck loss (dB)"],
        table, title="Ablation: rectangular vs triangular mesh"))
    for r in rows:
        assert r["clements_depth"] == r["n"]
        assert r["reck_depth"] == 2 * r["n"] - 3
    # The loss advantage is what justifies the paper's choice.
    big = rows[-1]
    assert big["reck_loss"] / big["clements_loss"] > 1.8


def test_self_configuration(benchmark):
    results = benchmark.pedantic(calibration_sweep, rounds=1, iterations=1)
    rows = [[f"{sigma:.2f}", f"{r.initial_error:.3f}",
             f"{r.final_error:.2e}", r.sweeps_used, r.measurements]
            for sigma, r in results.items()]
    print()
    print(format_table(
        ["offset sigma (rad)", "error before", "error after",
         "iterations", "measurements"],
        rows, title="Self-configuration of a fabricated 8x8 mesh"))
    for r in results.values():
        assert r.final_error < 1e-9
        assert r.sweeps_used <= 2
