"""Ablation: mesh arrangements compared, and self-configuration.

Two design choices behind the Flumen fabric:

1. **Mesh arrangement.**  Every registered architecture programs
   N(N-1)/2 MZI states, but depth and physical device count differ: the
   rectangle (Clements, the paper's reference [10]) has depth N vs the
   Reck triangle's 2N-3 — lower worst-case insertion loss and a smaller
   path-length spread for the attenuator column to equalize — while the
   recirculating brick holds only N-1 physical devices and re-traverses
   them every pass.  The comparison now iterates the mesh-architecture
   registry (DESIGN.md §16) instead of naming decompositions.
2. **Self-configuration** (reference [15]): a fabricated mesh with
   systematic phase offsets is reprogrammed to the target matrix using
   only transfer-matrix measurements.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.config import DeviceParams
from repro.photonics.calibration import PhaseOffsets, calibrate_to
from repro.photonics.clements import random_unitary
from repro.photonics.registry import make_mesh, registered_meshes

SIZES = (4, 8, 16, 32)


def depth_and_loss():
    mzi_db = DeviceParams().mzi.insertion_loss_db
    archs = {name: make_mesh(name) for name in registered_meshes()}
    rows = []
    for n in SIZES:
        u = random_unitary(n, np.random.default_rng(n))
        row = {"n": n}
        for name, arch in archs.items():
            depth = arch.decompose(u).num_columns
            # Recirculation re-incurs the physical columns every pass,
            # so the light path length is the virtual depth either way.
            row[f"{name}_depth"] = depth
            row[f"{name}_loss"] = depth * mzi_db
            row[f"{name}_devices"] = arch.device_count(n)
        rows.append(row)
    return rows


def calibration_sweep():
    out = {}
    for sigma in (0.02, 0.1, 0.3):
        u = random_unitary(8, np.random.default_rng(42))
        offsets = PhaseOffsets.random(28, sigma,
                                      np.random.default_rng(43))
        out[sigma] = calibrate_to(u, offsets, method="decomposition")
    return out


def test_mesh_arrangement(benchmark):
    rows = benchmark(depth_and_loss)
    names = list(registered_meshes())
    table = [[r["n"]]
             + [r[f"{name}_depth"] for name in names]
             + [f"{r[f'{name}_loss']:.2f}" for name in names]
             + [r[f"{name}_devices"] for name in names]
             for r in rows]
    print()
    print(format_table(
        ["N"]
        + [f"{name} depth" for name in names]
        + [f"{name} loss (dB)" for name in names]
        + [f"{name} devices" for name in names],
        table, title="Ablation: mesh arrangements"))
    for r in rows:
        assert r["clements_depth"] == r["n"]
        assert r["reck_depth"] == 2 * r["n"] - 3
        # The parity re-packing adds at most one column; the brick's
        # physical footprint is a single two-sub-column pair.
        assert r["bricks_depth"] <= r["n"] + 1
        assert r["bricks_devices"] == r["n"] - 1
    # The loss advantage is what justifies the paper's choice.
    big = rows[-1]
    assert big["reck_loss"] / big["clements_loss"] > 1.8


def test_self_configuration(benchmark):
    results = benchmark.pedantic(calibration_sweep, rounds=1, iterations=1)
    rows = [[f"{sigma:.2f}", f"{r.initial_error:.3f}",
             f"{r.final_error:.2e}", r.sweeps_used, r.measurements]
            for sigma, r in results.items()]
    print()
    print(format_table(
        ["offset sigma (rad)", "error before", "error after",
         "iterations", "measurements"],
        rows, title="Self-configuration of a fabricated 8x8 mesh"))
    for r in results.values():
        assert r.final_error < 1e-9
        assert r.sweeps_used <= 2
