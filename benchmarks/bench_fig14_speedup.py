"""Figure 14: speedup of Flumen-A over Ring/Mesh/OptBus/Flumen-I.

Paper: maximum speedups of 3.3/2.0/4.5/4.0/5.2x per workload, geomean
3.6x vs Mesh; VGG16 FC benefits least (large kernel, low operand reuse),
3D Rotation most (tiny reused kernel, no partial sums); phase programming
plus blocking costs ~9% extra average packet latency.
"""

from repro.analysis.metrics import geomean, speedup
from repro.analysis.report import format_table

from benchmarks.common import (
    PAPER_GEOMEAN,
    PAPER_SPEEDUP_VS_MESH,
    full_sweep,
    workload_names,
)

BASELINES = ("ring", "mesh", "optbus", "flumen_i")


def test_speedup(benchmark):
    sweep = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    rows = []
    vs_mesh = {}
    for name in workload_names():
        fa = sweep[name]["flumen_a"]
        cells = [name]
        for base in BASELINES:
            cells.append(f"{speedup(sweep[name][base], fa):.2f}x")
        cells.append(f"{PAPER_SPEEDUP_VS_MESH[name]:.1f}x")
        vs_mesh[name] = speedup(sweep[name]["mesh"], fa)
        rows.append(cells)
    gm = geomean(list(vs_mesh.values()))
    rows.append(["GEOMEAN (vs mesh)", "", f"{gm:.2f}x", "", "",
                 f"{PAPER_GEOMEAN['speedup']:.1f}x"])
    print()
    print(format_table(
        ["workload"] + [f"vs {b}" for b in BASELINES] + ["paper (mesh)"],
        rows, title="Figure 14: Flumen-A speedup"))

    assert 2.8 < gm < 4.5  # paper: 3.6x
    # Every workload accelerates against every baseline.
    for name in workload_names():
        for base in BASELINES:
            assert speedup(sweep[name][base],
                           sweep[name]["flumen_a"]) > 1.0, (name, base)
    # Ordering: VGG lowest, rotation at/near the top.
    assert vs_mesh["vgg16_fc"] == min(vs_mesh.values())
    assert vs_mesh["rotation3d"] >= sorted(vs_mesh.values())[-2]
