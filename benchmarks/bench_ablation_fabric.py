"""Ablations of Flumen fabric design choices (DESIGN.md Section 7).

1. **Attenuator-column loss equalization** (Section 3.1.2): without the
   added column, receivers on short paths see more power than receivers
   on long paths for the same modulated value; the column levels them.
2. **DAC phase resolution**: the 6 ns compute programming buys accuracy —
   coarse phases corrupt the implemented matrix.
3. **Wavefront vs sequential arbitration** in the control unit: the
   wavefront arbiter's maximal matching sustains full-permutation
   throughput a one-grant-per-cycle controller cannot.
4. **Pipelined setup**: overlapping the next circuit's programming with
   the current transfer recovers the reconfiguration bubble.
"""

import numpy as np

from repro.analysis.engine import default_jobs
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_task
from repro.noc.simulation import SweepConfig
from repro.photonics.fabric import FlumenFabric
from repro.photonics.noise import matrix_fidelity_vs_bits

CONFIG = SweepConfig(cycles=2000, warmup=600)


def _pairs_with_unequal_paths() -> dict[int, int]:
    """Find a communication map whose paths traverse different MZI counts.

    Path lengths depend on the routed permutation (Section 3.1.2 quotes a
    7-vs-4 spread); scan seeds until the map shows one.
    """
    for seed in range(64):
        targets = list(np.random.default_rng(seed).permutation(8))
        pairs = {s: d for s, d in enumerate(targets) if s != d}
        fabric = FlumenFabric(8)
        fabric.configure_communication(pairs)
        hops = [fabric.path_mzi_count(s, d) for s, d in pairs.items()]
        if max(hops) - min(hops) >= 2:
            return pairs
    raise RuntimeError("no unequal-path permutation found")


def equalization_spread():
    """Per-destination loss spread with and without equalization (dB)."""
    pairs = _pairs_with_unequal_paths()

    def spread(equalize: bool) -> float:
        fabric = FlumenFabric(8)
        fabric.configure_communication(pairs)
        if not equalize:
            fabric.attenuator_transmission = np.ones(8)
        losses = [fabric.path_loss_db(s, d) for s, d in pairs.items()]
        return max(losses) - min(losses)

    return {"without": spread(False), "with": spread(True)}


def arbitration_throughput():
    """Accepted throughput under permutation traffic, both arbiters."""
    points = sweep_task(
        "arbitration", ["wavefront", "sequential"], task="noc_latency",
        base_params={"topology": "flumen", "pattern": "bit_reversal",
                     "load": 0.6, "packet_size": 4, "traffic_seed": 9,
                     "cycles": CONFIG.cycles, "warmup": CONFIG.warmup},
        jobs=default_jobs())
    return {p.value: p.metrics["throughput"] for p in points}


def pipelined_setup_latency():
    """Average latency at high load with and without setup pipelining."""
    points = sweep_task(
        "pipelined_setup", [True, False], task="noc_latency",
        base_params={"topology": "flumen", "pattern": "shuffle",
                     "load": 0.7, "packet_size": 4, "traffic_seed": 11,
                     "cycles": CONFIG.cycles, "warmup": CONFIG.warmup},
        jobs=default_jobs())
    return {p.value: p.metrics["avg_latency"] for p in points}


def test_equalization(benchmark):
    spread = benchmark(equalization_spread)
    print()
    print(format_table(
        ["attenuator column", "loss spread (dB)"],
        [["disabled", f"{spread['without']:.3f}"],
         ["enabled", f"{spread['with']:.3f}"]],
        title="Ablation: loss equalization (Section 3.1.2)"))
    assert spread["with"] < 0.05
    assert spread["without"] > spread["with"]


def test_phase_resolution(benchmark):
    m = np.random.default_rng(1).standard_normal((8, 8))
    fid = benchmark.pedantic(
        lambda: matrix_fidelity_vs_bits(m, [4, 6, 8, 10, 12]),
        rounds=1, iterations=1)
    rows = [[bits, f"{err * 100:.3f}%"] for bits, err in fid.items()]
    print()
    print(format_table(["phase DAC bits", "matrix error"], rows,
                       title="Ablation: phase programming resolution"))
    assert fid[4] > 0.05       # coarse phases are unusable
    assert fid[8] < 0.02       # the paper's 8-bit operating point
    errors = [fid[b] for b in (4, 6, 8, 10, 12)]
    assert errors == sorted(errors, reverse=True)


def test_arbitration(benchmark):
    tp = benchmark.pedantic(arbitration_throughput, rounds=1, iterations=1)
    print()
    print(format_table(
        ["arbiter", "accepted flits/node/cycle @0.6 offered"],
        [[m, f"{v:.3f}"] for m, v in tp.items()],
        title="Ablation: wavefront vs sequential arbitration"))
    # One grant per cycle caps sustained throughput near
    # packet_size/nodes = 0.25 flits/node/cycle (measured slightly higher
    # while the warmup backlog drains); the wavefront matches all pairs.
    assert tp["wavefront"] > 1.5 * tp["sequential"]
    assert tp["sequential"] < 0.45
    assert tp["wavefront"] > 0.55


def test_pipelined_setup(benchmark):
    lat = benchmark.pedantic(pipelined_setup_latency, rounds=1, iterations=1)
    print()
    print(format_table(
        ["setup pipelining", "avg latency @0.7 shuffle"],
        [["enabled", f"{lat[True]:.1f}"],
         ["disabled", f"{lat[False]:.1f}"]],
        title="Ablation: pipelined reconfiguration"))
    assert lat[True] < lat[False]
