"""Scaling study: Flumen toward 128-chiplet systems (Sections 1, 5.1).

The paper motivates Flumen with future large chiplet systems; Section 5.1
sketches a 64x64 MZIM for 128 chiplets.  This bench sweeps the system
size and reports the quantities that govern scalability: MZI count, mesh
depth, interposer area fraction, worst-case loss, and laser power for
Flumen vs OptBus.
"""

from repro.analysis.report import format_table
from repro.multicore.area import AreaModel, flumen_mzim_mzis
from repro.photonics.power import (
    flumen_worst_loss_db,
    laser_power_w,
    optbus_worst_loss_db,
)

CHIPLET_COUNTS = (16, 32, 64, 128)
WAVELENGTHS = 64


def scale_table():
    area = AreaModel()
    rows = []
    for chiplets in CHIPLET_COUNTS:
        ports = chiplets // 2
        mzis = flumen_mzim_mzis(ports)
        fl_loss = flumen_worst_loss_db(chiplets, WAVELENGTHS)
        ob_loss = optbus_worst_loss_db(chiplets, WAVELENGTHS)
        fl_laser = laser_power_w(fl_loss, WAVELENGTHS)
        ob_laser = laser_power_w(ob_loss, WAVELENGTHS)
        scaling = area.scaling_row(chiplets)
        rows.append({
            "chiplets": chiplets,
            "ports": ports,
            "mzis": mzis,
            "depth": ports + 1,
            "interposer_frac": scaling["mzim_fraction"],
            "fl_loss": fl_loss,
            "ob_loss": ob_loss,
            "fl_laser": fl_laser,
            "ob_laser": ob_laser,
        })
    return rows


def test_scaling(benchmark):
    rows = benchmark(scale_table)
    table = [[r["chiplets"], f"{r['ports']}x{r['ports']}", r["mzis"],
              r["depth"], f"{100 * r['interposer_frac']:.1f}%",
              f"{r['fl_loss']:.1f}", f"{r['ob_loss']:.1f}",
              f"{r['fl_laser'] * 1e3:.2f}", f"{r['ob_laser'] * 1e3:.2f}"]
             for r in rows]
    print()
    print(format_table(
        ["chiplets", "MZIM", "MZIs", "depth",
         "interposer share", "Flumen loss dB", "OptBus loss dB",
         "Flumen laser mW", "OptBus laser mW"],
        table, title="Scaling toward 128 chiplets (64 lambdas)"))

    first, last = rows[0], rows[-1]
    # MZI count grows quadratically with ports...
    assert last["mzis"] / first["mzis"] > 40
    # ...yet the interposer share of total silicon stays bounded
    # (Section 5.1: the MZIM "scales well in comparison to the chiplets").
    assert last["interposer_frac"] < 0.30
    # Flumen loss grows linearly (k/2 columns) while OptBus grows with
    # k*p ring passes: the laser-power gap explodes with system size.
    fl_growth = last["fl_laser"] / first["fl_laser"]
    ob_growth = last["ob_laser"] / first["ob_laser"]
    assert ob_growth > 10 * fl_growth
    # At 128 chiplets Flumen's laser stays in the single-watt regime
    # while OptBus is already off the charts.
    assert last["fl_laser"] < 5.0
    assert last["ob_laser"] > 100.0
