"""Figure 12(b) + Section 5.3: compute energy scaling vs electrical MACs.

Anchors from the paper: 8x8 with 4 vectors = 69.2 pJ electrical vs
33.8 pJ Flumen (2x); 16x16 with 8 vectors = 554 pJ vs 82 pJ; 64x64 =
0.62 / 1.32 / 2.24 nJ for 1 / 4 / 8 MVMs (1.8x / 3.4x / 4.0x).
"""

from repro.analysis.report import format_table
from repro.photonics.compute_energy import MZIMComputeModel

JOBS = [(8, 1), (8, 4), (8, 8), (16, 4), (16, 8), (32, 8),
        (64, 1), (64, 4), (64, 8)]
PAPER = {(8, 4): 33.8e-12, (16, 8): 82e-12,
         (64, 1): 0.62e-9, (64, 4): 1.32e-9, (64, 8): 2.24e-9}


def run_grid():
    model = MZIMComputeModel()
    return {(n, m): (model.matmul_energy(n, m),
                     model.electrical_matmul_energy(n, m))
            for n, m in JOBS}


def test_compute_energy_scaling(benchmark):
    grid = benchmark(run_grid)
    rows = []
    for (n, m), (phot, elec) in grid.items():
        paper = PAPER.get((n, m))
        rows.append([
            f"{n}x{n}", m,
            f"{phot.total * 1e12:.1f}",
            f"{paper * 1e12:.1f}" if paper else "-",
            f"{elec * 1e12:.1f}",
            f"{elec / phot.total:.1f}x",
        ])
    print()
    print(format_table(
        ["MZIM", "vectors", "Flumen (pJ)", "paper (pJ)",
         "electrical (pJ)", "advantage"],
        rows, title="Figure 12(b): compute energy scaling"))

    # Absolute anchors within 15% — except (16, 8): the paper's 82 pJ is
    # mutually inconsistent with its own additive 64x64 series (see
    # EXPERIMENTS.md); our model lands at ~131 pJ and we only require the
    # right order of magnitude there.
    for key, expected in PAPER.items():
        measured = grid[key][0].total
        if key == (16, 8):
            assert expected * 0.5 < measured < expected * 2.0
            continue
        assert abs(measured - expected) / expected < 0.15, key
    # Advantage grows with vector count at 64x64 (1.8x -> 4.0x).
    adv = [grid[(64, m)][1] / grid[(64, m)][0].total for m in (1, 4, 8)]
    assert adv == sorted(adv)
    assert 1.4 < adv[0] < 2.3
    assert 3.2 < adv[2] < 4.8
