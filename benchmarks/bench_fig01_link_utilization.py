"""Figure 1: link utilization and bandwidth sensitivity.

Plays Image Blur's and VGG16 FC's memory traffic through the photonic
16-node network at 16 / 32 / 64 wavelengths (160 / 320 / 640 Gbps links —
fewer wavelengths mean more flits per line transfer) and records the
utilization timeline.  Paper: average utilization stays low even when
links are underprovisioned 4x (64 lam: 5.5% / 1.9%; 16 lam: 19.7% / 7.5%
for Blur / VGG), which is the opportunity in-network compute exploits.
"""

import math

from repro.analysis.report import format_table
from repro.core.system import SystemModel
from repro.noc.simulation import make_network
from repro.noc.traffic import TracePlayback
from repro.workloads import ImageBlur, VGG16FC

WAVELENGTH_FLITS = {64: 3, 32: 6, 16: 12}  # flits per 64B line transfer
PAPER_AVG = {("image_blur", 64): 5.5, ("image_blur", 16): 19.7,
             ("vgg16_fc", 64): 1.9, ("vgg16_fc", 16): 7.5}


def utilization_for(workload, wavelengths: int) -> float:
    model = SystemModel()
    counts, hierarchy = model._cache_counts(workload, offloaded=False)
    cost = model.core_model.phase_cost(
        workload.total_macs(), workload.extra_core_ops(), counts,
        hierarchy, model._cores_for(workload))
    span = int(cost.total_cycles)
    flits = WAVELENGTH_FLITS[wavelengths]
    # L2 misses travel to interleaved L3 homes across the NoP; DRAM fills
    # cross it again from the memory controllers.
    packets = counts.l2.misses + counts.dram_accesses
    scale = max(1, math.ceil(packets / 3000))
    window = max(1, span // scale)
    events = []
    n = packets // scale
    for i in range(n):
        cycle = (i * window) // max(n, 1)
        src = (i * 5) % 16
        dst = (i * 11 + 3) % 16
        if dst == src:
            dst = (dst + 1) % 16
        events.append((cycle, src, dst, flits))
    net = make_network("flumen", 16)
    net.run(TracePlayback(events), cycles=window, drain=True)
    return net.utilization.average, net.utilization.timeline


def sparkline(timeline, width: int = 48) -> str:
    """Render a utilization timeline as a text sparkline (Figure 1's
    over-time view)."""
    if not timeline:
        return "(empty)"
    marks = " .:-=+*#%@"
    step = max(1, len(timeline) // width)
    samples = [max(timeline[i:i + step])
               for i in range(0, len(timeline), step)]
    peak = max(max(samples), 1e-9)
    return "".join(marks[min(int(s / peak * (len(marks) - 1)),
                             len(marks) - 1)] for s in samples)


def run_all():
    out = {}
    for workload in (ImageBlur(), VGG16FC()):
        for lam in (64, 32, 16):
            out[(workload.name, lam)] = utilization_for(workload, lam)
    return out


def test_link_utilization(benchmark):
    full = benchmark.pedantic(run_all, rounds=1, iterations=1)
    grid = {key: avg for key, (avg, _) in full.items()}
    rows = []
    for (name, lam), util in grid.items():
        paper = PAPER_AVG.get((name, lam))
        rows.append([name, lam, f"{100 * util:.1f}%",
                     f"{paper:.1f}%" if paper else "-"])
    print()
    print(format_table(
        ["workload", "lambdas", "avg utilization", "paper"],
        rows, title="Figure 1: average link utilization"))
    print("\nutilization over time (16-lambda underprovisioned links):")
    for name in ("image_blur", "vgg16_fc"):
        _, timeline = full[(name, 16)]
        print(f"  {name:12s} |{sparkline(timeline)}|")

    for name in ("image_blur", "vgg16_fc"):
        # Utilization rises roughly with underprovisioning (~4x from
        # 64 to 16 wavelengths)...
        assert grid[(name, 16)] > 2.5 * grid[(name, 64)]
        # ...but stays low in absolute terms: the paper's headline.
        assert grid[(name, 16)] < 0.5
        assert grid[(name, 64)] < 0.15
