"""Figure 11: latency versus offered load, 4 topologies x 3 patterns.

Regenerates the paper's synthetic-traffic curves with the cycle-accurate
NoP simulator.  Paper claims under test: Flumen has the lowest latency at
low load everywhere and stays flat on permutation traffic (bit reversal,
shuffle) where its non-blocking crossbar never conflicts; OptBus saturates
earlier due to shared-waveguide contention; the ring saturates first.
"""

import pytest

from repro.analysis.report import ascii_chart, format_table
from repro.noc.simulation import SweepConfig, load_sweep

CONFIG = SweepConfig(cycles=2000, warmup=600)
LOADS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
TOPOLOGIES = ("ring", "mesh", "optbus", "flumen")
PATTERNS = ("uniform", "bit_reversal", "shuffle")


def run_pattern(pattern: str):
    return {topo: load_sweep(topo, pattern, LOADS, CONFIG)
            for topo in TOPOLOGIES}


@pytest.mark.parametrize("pattern", PATTERNS)
def test_latency_vs_load(benchmark, pattern):
    curves = benchmark.pedantic(run_pattern, args=(pattern,),
                                rounds=1, iterations=1)
    rows = []
    series = {}
    for topo, results in curves.items():
        series[topo] = [(r.load, r.avg_latency) for r in results
                        if not r.saturated]
        for r in results:
            rows.append([topo, r.load, f"{r.avg_latency:.1f}",
                         "saturated" if r.saturated else ""])
    print()
    print(format_table(["topology", "load", "avg latency (cycles)", ""],
                       rows, title=f"Figure 11 [{pattern}]"))
    print(ascii_chart(series, title=f"latency vs load [{pattern}]"))

    low = {t: curves[t][0].avg_latency for t in TOPOLOGIES}
    # Flumen lowest at low load (paper: lowest at all loads for these
    # patterns; under uniform our crossbar saturates near 0.45 from
    # head-of-line blocking — recorded in EXPERIMENTS.md).
    assert low["flumen"] == min(low.values())
    assert low["ring"] == max(low.values())
    if pattern in ("bit_reversal", "shuffle"):
        flumen = [r.avg_latency for r in curves["flumen"]]
        assert len(flumen) == len(LOADS), "flumen saturated on a permutation"
        assert flumen[-1] < 3 * flumen[0]
