"""WDM link budget: the Figure 2 / Table 2 loss stack, end to end.

Walks one photonic NoP link device by device — laser coupling, TX ring
bank, MZIM traversal, RX demux, photodetection — and checks the budget
closes at the receiver sensitivity for every wavelength count, with the
laser power the closure implies.
"""

from repro.analysis.report import format_table
from repro.config import DEFAULT_DEVICES, dbm_to_watts, watts_to_dbm
from repro.photonics.power import (
    RING_SPECTRAL_FRACTION,
    flumen_worst_loss_db,
    laser_power_w,
    photonic_link_energy,
)

WAVELENGTHS = (16, 32, 64)
ROUTERS = 16


def budget_rows(wavelengths: int):
    d = DEFAULT_DEVICES
    columns = ROUTERS // 2 + 1
    items = [
        ("MZIM traversal", columns * d.mzi.insertion_loss_db,
         f"{columns} columns x {d.mzi.insertion_loss_db:.2f} dB"),
        ("TX+RX ring banks",
         2 * wavelengths * d.mrr.thru_loss_db * RING_SPECTRAL_FRACTION,
         f"2 x {wavelengths} rings (spectral fraction "
         f"{RING_SPECTRAL_FRACTION})"),
        ("RX drop", d.mrr.drop_loss_db, "on-resonance drop"),
        ("waveguide", 0.4 * d.waveguide.straight_loss_db_per_cm,
         "0.4 cm interposer crossing"),
    ]
    total = sum(loss for _, loss, _ in items)
    return items, total


def test_link_budget(benchmark):
    tables = benchmark(lambda: {lam: budget_rows(lam)
                                for lam in WAVELENGTHS})
    d = DEFAULT_DEVICES
    for lam, (items, total) in tables.items():
        rows = [[name, f"{loss:.2f}", note] for name, loss, note in items]
        rows.append(["TOTAL", f"{total:.2f}", ""])
        print()
        print(format_table(["stage", "loss (dB)", "note"], rows,
                           title=f"Link budget @ {lam} wavelengths"))
        model_total = flumen_worst_loss_db(ROUTERS, lam)
        assert abs(model_total - total) < 1e-9

        laser = laser_power_w(total, lam)
        per_lambda_dbm = watts_to_dbm(laser * d.laser.owpe / lam)
        received_dbm = per_lambda_dbm - total
        print(f"laser: {laser * 1e3:.3f} mW electrical -> "
              f"{per_lambda_dbm:.1f} dBm/lambda optical -> "
              f"{received_dbm:.1f} dBm at the photodiode "
              f"(sensitivity {d.photodiode.sensitivity_dbm:.0f} dBm)")
        # Budget closes exactly at sensitivity (zero default margin).
        assert abs(received_dbm - d.photodiode.sensitivity_dbm) < 1e-6
        # Received power is detectable.
        assert dbm_to_watts(received_dbm) >= \
            dbm_to_watts(d.photodiode.sensitivity_dbm) - 1e-12

    # WDM's win is bandwidth *density*: 4x the bits through the same
    # waveguide at essentially constant energy per bit (each wavelength
    # brings its own modulator/TIA; the laser share grows only with the
    # extra ring loss).
    energies = {lam: photonic_link_energy(lam).total for lam in WAVELENGTHS}
    print("\nenergy/bit: " + ", ".join(
        f"{lam} lam = {e * 1e12:.2f} pJ" for lam, e in energies.items()))
    assert max(energies.values()) < 1.1 * min(energies.values())
    assert all(e < 1.17e-12 for e in energies.values())  # beats electrical
