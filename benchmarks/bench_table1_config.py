"""Tables 1 and 2: configuration consistency and derived quantities.

Regenerates the two parameter tables from the config dataclasses and
checks the derived values the paper states (link bandwidths, chiplet
count, 8x8 MZIM) hold.
"""

from repro.analysis.report import format_table
from repro.config import DEFAULT_DEVICES, DEFAULT_SYSTEM


def build_table1() -> str:
    cfg = DEFAULT_SYSTEM
    rows = [
        ["Core", "frequency", f"{cfg.core.frequency_hz / 1e9:.1f} GHz"],
        ["Core", "type", cfg.core.core_type],
        ["Core", "number", cfg.core.count],
        ["Core", "L1i / L1d", f"{cfg.core.l1i_size_b // 1024} kB"],
        ["L2 (private)", "size", f"{cfg.cache.l2_size_b // 1024} kB"],
        ["L3 (shared)", "size", f"{cfg.cache.l3_size_b // 2**20} MB"],
        ["L3 (shared)", "concentration",
         f"{cfg.cache.l3_concentration} cores"],
        ["Elec. NoP link", "energy",
         f"{cfg.elec_link.energy_j_per_bit * 1e12:.2f} pJ/bit"],
        ["Elec. NoP link", "bandwidth",
         f"{cfg.elec_link.bandwidth_bps / 1e9:.0f} Gbps"],
        ["Photonic NoP link", "bandwidth (64 lam)",
         f"{cfg.phot_link.bandwidth_bps / 1e9:.0f} Gbps"],
        ["Flumen Compute", "computation lambdas",
         cfg.compute.computation_wavelengths],
        ["Flumen Compute", "input modulation",
         f"{cfg.compute.input_modulation_hz / 1e9:.0f} GHz"],
        ["Flumen Compute", "MZIM switch delay",
         f"{cfg.compute.mzim_switch_delay_s * 1e9:.0f} ns"],
        ["Flumen Compute", "equivalent precision",
         f"{cfg.compute.equivalent_precision_bits} bits"],
    ]
    return format_table(["Component", "Parameter", "Value"], rows,
                        title="Table 1 (reproduced)")


def build_table2() -> str:
    d = DEFAULT_DEVICES
    rows = [
        ["Waveguide", "straight loss",
         f"{d.waveguide.straight_loss_db_per_cm} dB/cm"],
        ["Waveguide", "bent loss",
         f"{d.waveguide.bent_loss_db_per_cm} dB/cm"],
        ["Y-branch", "loss", f"{d.y_branch.loss_db} dB"],
        ["MRR", "thru / drop loss",
         f"{d.mrr.thru_loss_db} / {d.mrr.drop_loss_db} dB"],
        ["MZI", "phase shifter loss",
         f"{d.mzi.phase_shifter_loss_db} dB"],
        ["MZI", "coupler loss", f"{d.mzi.coupler_loss_db} dB"],
        ["Laser", "OWPE", d.laser.owpe],
        ["Laser", "RIN", f"{d.laser.rin_db_per_hz} dBc/Hz"],
        ["ADC / DAC", "power",
         f"{d.converter.adc_power_w * 1e3:.0f} / "
         f"{d.converter.dac_power_w * 1e3:.0f} mW"],
        ["TIA", "power", f"{d.converter.tia_power_w * 1e6:.0f} uW"],
        ["Ser & Deser", "power",
         f"{d.converter.serdes_power_w * 1e3:.1f} mW"],
    ]
    return format_table(["Component", "Parameter", "Value"], rows,
                        title="Table 2 (reproduced)")


def test_tables_render(benchmark):
    t1, t2 = benchmark(lambda: (build_table1(), build_table2()))
    print()
    print(t1)
    print()
    print(t2)
    # Derived quantities the paper states.
    assert DEFAULT_SYSTEM.chiplets == 16
    assert DEFAULT_SYSTEM.mzim_ports == 8
    assert DEFAULT_SYSTEM.phot_link.bandwidth_bps == 640e9
    assert "640 Gbps" in t1
