"""Thermal robustness: MZI meshes vs MRR weight banks (Section 6).

The paper's related-work argument: MRR-based photonic accelerators need
per-ring thermal stabilization because a ring's Lorentzian response makes
its programmed weight exquisitely sensitive to resonance drift, while MZI
phases degrade gracefully.  This bench quantifies both:

* MZIM: matrix error vs per-device phase drift (Gaussian, radians RMS);
* MRR weight bank: weight error vs the same drift applied as resonance
  detuning on a Lorentzian of finesse ~300 (Q ~ 10^4 rings, Table 2 size).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.photonics.noise import drift_tolerance

#: Ring finesse: FSR / linewidth for a 5 um-radius Q~10^4 ring.
FINESSE = 300.0


def mrr_weight_error(drift_rad: float) -> float:
    """Worst-case weight error of a Lorentzian ring at 50% transmission.

    The ring is biased to the steepest point of its resonance; a phase
    drift of ``drift_rad`` (round-trip) moves the operating point by
    ``drift / linewidth`` linewidths, with linewidth = 2*pi / finesse.
    """
    linewidth_rad = 2.0 * np.pi / FINESSE
    # Lorentzian transmission T(x) = x^2 / (1 + x^2), x in linewidths
    # from resonance; bias at x0 = 1 (T = 0.5, steepest useful point).
    x0 = 1.0
    x1 = x0 + 2.0 * drift_rad / linewidth_rad

    def t(x):
        return x * x / (1.0 + x * x)

    return abs(t(x1) - t(x0))


def run_sweep():
    sigmas = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2]
    matrix = np.random.default_rng(2).standard_normal((8, 8))
    mzim = drift_tolerance(matrix, sigmas)
    mrr = {s: mrr_weight_error(s) for s in sigmas}
    return sigmas, mzim, mrr


def test_thermal_robustness(benchmark):
    sigmas, mzim, mrr = benchmark.pedantic(run_sweep, rounds=1,
                                           iterations=1)
    rows = [[f"{s:.4f}", f"{mzim[s] * 100:.3f}%", f"{mrr[s] * 100:.2f}%",
             f"{mrr[s] / max(mzim[s], 1e-12):.0f}x"]
            for s in sigmas]
    print()
    print(format_table(
        ["phase drift (rad RMS)", "MZIM matrix error",
         "MRR weight error", "MRR penalty"],
        rows, title="Thermal drift: MZI mesh vs MRR weight bank"))

    # The MRR's Lorentzian amplifies drift by the finesse; the mesh
    # degrades near-linearly.  At 1 mrad the ring is already ~1-2 orders
    # of magnitude worse.
    assert mrr[1e-3] > 10 * mzim[1e-3]
    # MZIM stays usable (sub-2% error) through 3 mrad of drift.
    assert mzim[3e-3] < 0.02
    # Both grow monotonically.
    assert [mzim[s] for s in sigmas] == sorted(mzim[s] for s in sigmas)
    assert [mrr[s] for s in sigmas] == sorted(mrr[s] for s in sigmas)
