"""Figure 12(a): laser power scaling versus MRR thru loss and wavelengths.

OptBus worst-case loss scales with k*p ring passes; Flumen with k/2 MZI
columns + 2p endpoint passes — in dB, so the laser-power gap grows
exponentially.  The paper's quoted anchor: at 32 wavelengths and 0.1 dB
thru loss, 32.3 mW (OptBus) vs 429.6 uW (Flumen), a 75x gap.
"""

from repro.analysis.report import format_table
from repro.photonics.power import laser_power_sweep

ROUTERS = 16
THRU_SWEEP = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
WAVELENGTHS = (16, 32, 64)


def run_sweep():
    out = {}
    for lam in WAVELENGTHS:
        for topo in ("optbus", "flumen"):
            out[(topo, lam)] = laser_power_sweep(
                topo, ROUTERS, lam, THRU_SWEEP)
    return out


def test_laser_power_scaling(benchmark):
    grid = benchmark(run_sweep)
    rows = []
    for lam in WAVELENGTHS:
        for i, thru in enumerate(THRU_SWEEP):
            rows.append([lam, thru,
                         f"{grid[('optbus', lam)][i] * 1e3:.3f}",
                         f"{grid[('flumen', lam)][i] * 1e3:.3f}",
                         f"{grid[('optbus', lam)][i] / grid[('flumen', lam)][i]:.1f}x"])
    print()
    print(format_table(
        ["lambdas", "MRR thru (dB)", "OptBus (mW)", "Flumen (mW)", "gap"],
        rows, title="Figure 12(a): laser power vs MRR thru loss"))

    # Anchor point the paper quotes (0.1 dB, 32 lambdas).
    optbus = laser_power_sweep("optbus", ROUTERS, 32, [0.1])[0]
    flumen = laser_power_sweep("flumen", ROUTERS, 32, [0.1])[0]
    print(f"\nanchor @0.1 dB, 32 lambdas: OptBus {optbus * 1e3:.1f} mW "
          f"(paper 32.3), Flumen {flumen * 1e6:.0f} uW (paper 429.6), "
          f"gap {optbus / flumen:.0f}x (paper 75x)")

    # Shape claims: exponential growth for OptBus, large and widening gap.
    ob = grid[("optbus", 32)]
    fl = grid[("flumen", 32)]
    assert ob[-1] / ob[0] > fl[-1] / fl[0]  # OptBus grows faster
    ratios = [o / f for o, f in zip(ob, fl)]
    assert ratios == sorted(ratios)
    assert optbus / flumen > 30.0
    assert 10e-3 < optbus < 100e-3  # within ~2x of the paper's 32.3 mW
