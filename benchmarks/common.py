"""Shared infrastructure for the per-figure benchmark modules.

The Figure 13/14/15 benches all consume the same 5 workloads x 5
configurations sweep; it is computed once per pytest session and cached
here so each bench measures its own slice without re-simulating.
"""

from __future__ import annotations

import functools

from repro.core.system import CONFIGURATIONS, SystemModel, WorkloadRun
from repro.workloads import paper_workloads

#: Paper-reported values used in the printed comparisons.
PAPER_SPEEDUP_VS_MESH = {
    "image_blur": 3.3, "vgg16_fc": 2.0, "resnet50_conv3": 4.5,
    "jpeg": 4.0, "rotation3d": 5.2,
}
PAPER_ENERGY_VS_MESH = {
    "image_blur": 1.5, "vgg16_fc": 1.9, "resnet50_conv3": 2.9,
    "jpeg": 2.6, "rotation3d": 4.8,
}
PAPER_EDP_VS_MESH = {
    "image_blur": 5.1, "vgg16_fc": 3.9, "resnet50_conv3": 13.0,
    "jpeg": 10.5, "rotation3d": 25.2,
}
PAPER_GEOMEAN = {"speedup": 3.6, "energy": 2.5, "edp": 9.3}


@functools.lru_cache(maxsize=1)
def full_sweep() -> dict[str, dict[str, WorkloadRun]]:
    """All (workload, configuration) runs at paper shapes — cached."""
    model = SystemModel()
    results: dict[str, dict[str, WorkloadRun]] = {}
    for workload in paper_workloads():
        results[workload.name] = model.run_all(workload)
    return results


def workload_names() -> list[str]:
    return ["image_blur", "vgg16_fc", "resnet50_conv3", "jpeg",
            "rotation3d"]


def configurations() -> tuple[str, ...]:
    return CONFIGURATIONS
