"""Shared infrastructure for the per-figure benchmark modules.

The Figure 13/14/15 benches all consume the same 5 workloads x 5
configurations sweep.  It now runs through the parallel sweep engine:
points fan out across worker processes (``FLUMEN_JOBS`` overrides the
count) and land in the on-disk result cache (``FLUMEN_CACHE_DIR``,
default ``.flumen_cache/``), so a bench session after an unrelated edit
replays the sweep from disk instead of re-simulating 25 system points.
"""

from __future__ import annotations

import functools

from repro.analysis.engine import (
    PointSpec,
    ResultCache,
    SweepEngine,
    default_jobs,
)
from repro.analysis.tasks import run_from_record
from repro.core.pipelines import configuration_names
from repro.core.system import WorkloadRun

#: Paper-reported values used in the printed comparisons.
PAPER_SPEEDUP_VS_MESH = {
    "image_blur": 3.3, "vgg16_fc": 2.0, "resnet50_conv3": 4.5,
    "jpeg": 4.0, "rotation3d": 5.2,
}
PAPER_ENERGY_VS_MESH = {
    "image_blur": 1.5, "vgg16_fc": 1.9, "resnet50_conv3": 2.9,
    "jpeg": 2.6, "rotation3d": 4.8,
}
PAPER_EDP_VS_MESH = {
    "image_blur": 5.1, "vgg16_fc": 3.9, "resnet50_conv3": 13.0,
    "jpeg": 10.5, "rotation3d": 25.2,
}
PAPER_GEOMEAN = {"speedup": 3.6, "energy": 2.5, "edp": 9.3}


@functools.lru_cache(maxsize=1)
def full_sweep() -> dict[str, dict[str, WorkloadRun]]:
    """All (workload, configuration) runs at paper shapes — cached.

    ``traffic_seed`` is pinned to the :class:`SystemModel` default so
    the engine path reproduces the historical serial sweep exactly.
    """
    points = [
        PointSpec(key=f"{name}/{cfg}",
                  params={"workload": name, "configuration": cfg,
                          "shapes": "paper", "traffic_seed": 17})
        for name in workload_names() for cfg in configuration_names()]
    engine = SweepEngine(jobs=default_jobs(), cache=ResultCache())
    run = engine.run("system_point", points).raise_failures()
    results: dict[str, dict[str, WorkloadRun]] = {}
    for point, result in zip(points, run.results):
        name = point.params["workload"]
        results.setdefault(name, {})[point.params["configuration"]] = \
            run_from_record(result.metrics)
    return results


def workload_names() -> list[str]:
    return ["image_blur", "vgg16_fc", "resnet50_conv3", "jpeg",
            "rotation3d"]


def configurations() -> tuple[str, ...]:
    return configuration_names()
