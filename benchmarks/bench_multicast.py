"""Physical multicast vs electrical replication (Sections 1 and 3.2).

"Optical signals can also be easily split for broadcast and multicast
communication, whereas electrical links require data replication that
incurs high energy costs."  This bench quantifies that: one photonic
multicast circuit (splitting states) against replicated unicasts on the
electrical mesh, across fanouts.
"""

from repro.analysis.report import format_table
from repro.noc.energy import NetworkEnergyModel
from repro.noc.network import Network
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.packet import Packet
from repro.noc.topology import MeshTopology

SIZE_FLITS = 8
FANOUTS = (2, 4, 8, 15)


def run_case(fanout: int):
    dsts = list(range(1, fanout + 1))

    flumen = FlumenNetwork(16)
    flumen.offer_packet(Packet(
        src=0, dst=dsts[0], size_flits=SIZE_FLITS, create_cycle=0,
        multicast_dsts=tuple(dsts)))
    for _ in range(2000):
        flumen.step()
        if flumen.quiescent():
            break

    mesh = Network(MeshTopology(16))
    for d in dsts:
        mesh.offer_packet(Packet(src=0, dst=d, size_flits=SIZE_FLITS,
                                 create_cycle=0))
    for _ in range(5000):
        mesh.step()
        if mesh.quiescent():
            break
    return flumen, mesh


def test_multicast_advantage(benchmark):
    cases = benchmark.pedantic(
        lambda: {f: run_case(f) for f in FANOUTS}, rounds=1, iterations=1)
    model = NetworkEnergyModel()
    rows = []
    for fanout, (flumen, mesh) in cases.items():
        fl_e = model.of(flumen.result("mcast", 0.0)).total
        me_e = model.of(mesh.result("mcast", 0.0)).total
        rows.append([
            fanout,
            flumen.latency.maximum, mesh.latency.maximum,
            f"{fl_e * 1e9:.2f}", f"{me_e * 1e9:.2f}",
            f"{me_e / fl_e:.1f}x",
        ])
    print()
    print(format_table(
        ["fanout", "Flumen cycles", "mesh cycles",
         "Flumen nJ", "mesh nJ", "energy gap"],
        rows, title="Physical multicast vs electrical replication"))

    for fanout, (flumen, mesh) in cases.items():
        fl_e = model.of(flumen.result("m", 0.0)).total
        me_e = model.of(mesh.result("m", 0.0)).total
        assert me_e > fl_e, fanout
        if fanout >= 4:
            # Completion time: the mesh serializes replicas at the source.
            assert flumen.latency.maximum < mesh.latency.maximum, fanout
    # The gap widens with fanout (replication scales linearly, the
    # optical split is one transmission).
    gaps = [model.of(cases[f][1].result("m", 0.0)).total
            / model.of(cases[f][0].result("m", 0.0)).total
            for f in FANOUTS]
    assert gaps == sorted(gaps)
