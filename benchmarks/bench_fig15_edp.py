"""Figure 15: energy-delay product comparison.

Paper: Flumen-A improves EDP by 5.1/3.9/13.0/10.5/25.2x vs Mesh per
workload (geomean 9.3x) and 7.4x geomean vs Flumen-I.
"""

from repro.analysis.metrics import edp_reduction, geomean
from repro.analysis.report import format_table

from benchmarks.common import (
    PAPER_EDP_VS_MESH,
    PAPER_GEOMEAN,
    full_sweep,
    workload_names,
)


def test_edp(benchmark):
    sweep = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    rows = []
    vs_mesh, vs_fi = [], []
    for name in workload_names():
        fa = sweep[name]["flumen_a"]
        m = edp_reduction(sweep[name]["mesh"], fa)
        fi = edp_reduction(sweep[name]["flumen_i"], fa)
        vs_mesh.append(m)
        vs_fi.append(fi)
        rows.append([name,
                     f"{sweep[name]['mesh'].edp * 1e9:.3f}",
                     f"{fa.edp * 1e9:.3f}",
                     f"{m:.1f}x", f"{PAPER_EDP_VS_MESH[name]:.1f}x",
                     f"{fi:.1f}x"])
    gm_mesh, gm_fi = geomean(vs_mesh), geomean(vs_fi)
    rows.append(["GEOMEAN", "", "", f"{gm_mesh:.1f}x",
                 f"{PAPER_GEOMEAN['edp']:.1f}x", f"{gm_fi:.1f}x"])
    print()
    print(format_table(
        ["workload", "mesh EDP (nJ*s)", "F-A EDP (nJ*s)",
         "vs mesh", "paper", "vs F-I"],
        rows, title="Figure 15: energy-delay product"))

    assert 6.0 < gm_mesh < 14.0   # paper: 9.3x
    assert 5.0 < gm_fi < 13.0     # paper: 7.4x
    # EDP improves for every workload, and by more than energy alone
    # (speedup compounds).
    for name, m in zip(workload_names(), vs_mesh):
        assert m > 2.0, name
