"""Figure 13: per-component energy breakdown for every (workload, config).

Paper claims under test: Flumen-A improves energy by 1.5x/1.9x/2.9x/2.6x/
4.8x vs Mesh (geomean 2.5x) and 2.3x geomean vs Flumen-I; core energy
drops ~2x under acceleration; L1/L2 fall while L3/DRAM stay flat; NoP is a
small share of Flumen-A's total.
"""

from repro.analysis.metrics import energy_reduction, geomean
from repro.analysis.report import format_table

from benchmarks.common import (
    PAPER_ENERGY_VS_MESH,
    PAPER_GEOMEAN,
    full_sweep,
    workload_names,
)

COMPONENTS = ("core", "l1", "l2", "l3", "dram", "nop", "mzim")


def test_energy_breakdown(benchmark):
    sweep = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    for name in workload_names():
        rows = []
        for cfg in ("ring", "mesh", "optbus", "flumen_i", "flumen_a"):
            run = sweep[name][cfg]
            parts = run.energy.as_dict()
            rows.append([cfg] +
                        [f"{parts[c] * 1e6:.1f}" for c in COMPONENTS] +
                        [f"{run.energy.total * 1e6:.1f}"])
        print()
        print(format_table(
            ["config"] + list(COMPONENTS) + ["total"], rows,
            title=f"Figure 13 [{name}] energy by component (uJ)"))

    reductions = []
    rows = []
    for name in workload_names():
        r = energy_reduction(sweep[name]["mesh"], sweep[name]["flumen_a"])
        reductions.append(r)
        rows.append([name, f"{r:.2f}x",
                     f"{PAPER_ENERGY_VS_MESH[name]:.1f}x"])
    gm = geomean(reductions)
    rows.append(["GEOMEAN", f"{gm:.2f}x",
                 f"{PAPER_GEOMEAN['energy']:.1f}x"])
    print()
    print(format_table(["workload", "F-A vs Mesh", "paper"], rows,
                       title="Energy reduction summary"))

    assert 2.0 < gm < 3.2  # paper: 2.5x
    for name in workload_names():
        mesh = sweep[name]["mesh"]
        fa = sweep[name]["flumen_a"]
        assert fa.energy.total < mesh.energy.total, name
        assert fa.energy.core < mesh.energy.core, name
        # DRAM roughly unchanged (same data from memory).
        assert abs(fa.energy.dram - mesh.energy.dram) \
            <= 0.25 * mesh.energy.dram, name
    # Flumen-I vs Flumen-A geomean (paper 2.3x).
    gm_fi = geomean([energy_reduction(sweep[n]["flumen_i"],
                                      sweep[n]["flumen_a"])
                     for n in workload_names()])
    print(f"\ngeomean vs Flumen-I: {gm_fi:.2f}x (paper 2.3x)")
    assert 1.7 < gm_fi < 3.0
