"""Token-bucket admission control on the simulated clock.

The daemon's first line of defense against overload: each tenant gets a
:class:`TokenBucket` refilled in *simulated cycles*, so admission
decisions are a pure function of the arrival stream — no wall time, no
races — and a rejected request costs the fabric nothing.

The bucket refills fractionally (``rate_per_cycle`` tokens per elapsed
cycle, capped at ``burst``) and a request is admitted iff a whole token
is available.  Exact float arithmetic on the same sequence of cycles
yields the same decisions, preserving byte-identical session replay.
"""

from __future__ import annotations

import numpy as np


class TokenBucket:
    """Deterministic token bucket keyed to the simulated clock."""

    def __init__(self, rate_per_cycle: float, burst: float) -> None:
        if rate_per_cycle <= 0.0:
            raise ValueError(
                f"rate_per_cycle must be > 0, got {rate_per_cycle}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate_per_cycle = float(rate_per_cycle)
        self.burst = float(burst)
        #: Buckets start full so a session's first requests are not
        #: spuriously shed while the bucket warms up.
        self.tokens = float(burst)
        self._last_cycle = 0

    def _refill(self, cycle: int) -> None:
        if cycle > self._last_cycle:
            self.tokens = min(
                self.burst,
                self.tokens
                + self.rate_per_cycle * (cycle - self._last_cycle))
            self._last_cycle = cycle

    def try_take(self, cycle: int) -> bool:
        """Admit one request at ``cycle`` if a whole token is available."""
        self._refill(cycle)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def level(self, cycle: int) -> float:
        """Current token level after refilling to ``cycle`` (for tests)."""
        self._refill(cycle)
        return self.tokens


class AdmissionController:
    """Per-tenant token buckets with one shared rate/burst policy."""

    def __init__(self, rate_per_cycle: float, burst: float) -> None:
        self.rate_per_cycle = float(rate_per_cycle)
        self.burst = float(burst)
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        """``tenant``'s bucket, created full on first sight."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate_per_cycle, self.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, cycle: int) -> bool:
        """One admission decision; False means shed the request."""
        return self.bucket(tenant).try_take(cycle)


def precompute_decisions(wheel, tenants: tuple[str, ...],
                         rate_per_cycle: float,
                         burst: float) -> dict[int, list[bool]]:
    """Array-form token-bucket replay over a pre-drawn arrival wheel.

    Evaluates, for every arrival bucketed on ``wheel``, the decision the
    scalar per-tenant :class:`TokenBucket` path would make — but with
    the refill applied to *all* arriving tenants at once as a numpy
    ``minimum`` over token/last-cycle arrays instead of one Python
    method chain per request.  ``np.minimum(burst, tokens + rate * dt)``
    on float64 arrays is the same IEEE operation sequence as the scalar
    ``min`` in :meth:`TokenBucket._refill`, and takes stay sequential
    in offer order, so the decision stream is bit-identical to the
    oracle's.

    Returns ``{cycle: [admitted, ...]}`` aligned, per cycle, with the
    wheel's tenant-ordered arrival list.  Buckets start full at cycle 0
    (matching created-on-first-sight semantics: the first refill tops
    an untouched bucket back to ``burst`` regardless of elapsed time).
    """
    if rate_per_cycle <= 0.0:
        raise ValueError(
            f"rate_per_cycle must be > 0, got {rate_per_cycle}")
    if burst < 1.0:
        raise ValueError(f"burst must be >= 1, got {burst}")
    index = {tenant: i for i, tenant in enumerate(tenants)}
    tokens = np.full(len(tenants), float(burst))
    last_cycle = np.zeros(len(tenants), dtype=np.int64)
    decisions: dict[int, list[bool]] = {}
    cursor = wheel.next_arrival_cycle(0)
    while cursor is not None:
        arrivals = wheel.requests_for_cycle(cursor)
        idx = np.fromiter(
            sorted({index[a.tenant] for a in arrivals}), dtype=np.int64)
        dt = cursor - last_cycle[idx]
        grown = tokens[idx] + float(rate_per_cycle) * dt
        tokens[idx] = np.where(dt > 0,
                               np.minimum(float(burst), grown),
                               tokens[idx])
        last_cycle[idx] = cursor
        verdicts: list[bool] = []
        for arrival in arrivals:
            slot = index[arrival.tenant]
            if tokens[slot] >= 1.0:
                tokens[slot] -= 1.0
                verdicts.append(True)
            else:
                verdicts.append(False)
        decisions[cursor] = verdicts
        cursor = wheel.next_arrival_cycle(cursor + 1)
    return decisions
