"""The `repro serve` daemon: a live Flumen fabric under open load.

One :class:`ServeDaemon` is a long-lived co-simulation of the full
stack — seeded client populations (:mod:`repro.serve.arrivals`),
token-bucket admission (:mod:`repro.serve.admission`), per-tenant
request batching draining into the control unit's fleet MVM queue
(``queue_mvm`` / ``flush_mvms``), Algorithm 1 repartitioning driven by
the *observed* compute backlog, and the degradation ladder running live
(:class:`~repro.faults.recovery.FabricRecovery`): a fault injected
mid-session walks RECALIBRATE → SHRINK → REROUTE → ELECTRICAL while
the daemon keeps answering, and no admitted request is ever dropped —
at worst it completes on the electrical fallback path.

Lifecycle is a small state machine, every edge an emitted
``serve_transition`` event::

    BOOT ──start──▶ SERVING ──duration reached──▶ DRAINING ──empty──▶ STOPPED

BOOT builds the fabric and preloads tenant matrices; SERVING accepts
arrivals for ``config.duration`` cycles; DRAINING stops admission and
runs the same per-cycle body until every admitted request has
completed (bounded by ``config.drain_limit``); STOPPED takes the final
snapshot.

Determinism contract (byte-identical session replay): the daemon runs
entirely on the simulated clock — arrivals, admission refills, batch
age-outs, probes, ladder backoff, and every event/snapshot timestamp
are cycle-based, never wall time; all randomness flows from per-purpose
generators seeded via ``point_seed(config.seed, purpose)``; and request
ids are per-session ordinals (never the process-global
:class:`~repro.core.control_unit.ComputeRequest` counter).  Two runs of
the same :class:`ServeConfig` therefore produce byte-identical event
logs, snapshot series, expositions, and session reports — with or
without a live HTTP observer attached, since the read side never
mutates daemon state.

The accounting ledger is conserved at every snapshot::

    offered == admitted + rejected
    in_flight == admitted - completed

which the hypothesis suite asserts across arrival shapes and seeds.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.engine import point_seed
from repro.config import DeviceParams, SystemConfig
from repro.core.accelerator import BlockMatmul, plan_offload
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.scheduler import FlumenScheduler
from repro.faults.injector import FaultInjector
from repro.faults.ladder import BackoffPolicy
from repro.faults.models import FaultSchedule, fault_class
from repro.faults.recovery import FabricRecovery
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.packet import Packet
from repro.obs import Obs, percentile_summary
from repro.serve.admission import (
    AdmissionController,
    precompute_decisions,
)
from repro.serve.arrivals import (
    Arrival,
    ClientPopulation,
    make_arrival,
    registered_arrivals,
)

#: Latency histogram buckets, in cycles (shared by mvm and comm series).
LATENCY_BOUNDS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
                  1024.0, 2048.0, 4096.0)


class DaemonState(enum.Enum):
    """Daemon lifecycle; transitions are emitted as events."""

    BOOT = "boot"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one serving session (all time in cycles)."""

    #: Cycles of the SERVING phase (arrivals accepted).
    duration: int = 4096
    seed: int = 0
    #: Arrival-process name (:func:`~repro.serve.arrivals.make_arrival`).
    arrival: str = "poisson"
    #: Mean offered requests per tenant per cycle at intensity 1.0.
    rate: float = 0.05
    tenants: int = 3
    #: Fraction of offered requests that are MVM offloads (rest: comm).
    mvm_fraction: float = 0.5
    nodes: int = 16
    ports: int = 8
    # -- batching ----------------------------------------------------------
    #: Close a tenant batch at this many requests...
    batch_size: int = 8
    #: ...or when its oldest request has waited this many cycles.
    batch_window: int = 64
    #: Photonic service time for a dispatched batch: base + per-request.
    service_base_cycles: int = 32
    service_per_request_cycles: int = 4
    # -- admission ---------------------------------------------------------
    #: Token-bucket refill per tenant (requests per cycle).
    admission_rate: float = 0.12
    #: Token-bucket depth (burst tolerance), in requests.
    admission_burst: float = 24.0
    # -- faults ------------------------------------------------------------
    #: Fault kind to inject mid-session (None = fault-free).
    fault: str | None = None
    fault_magnitude: float = 1.0
    probe_interval: int = 48
    backoff: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        base_cycles=16, factor=2.0, max_retries=2,
        max_backoff_cycles=512))
    # -- misc --------------------------------------------------------------
    #: DRAINING gives up (and reports it) after this many extra cycles.
    drain_limit: int = 60_000
    packet_flits: int = 4
    snapshot_interval: int = 256
    #: Bound the event log for long sessions (None = unbounded).
    max_events: int | None = None
    #: Explicit tenant roster (a cluster shard); ``None`` means the
    #: default ``tenant0 .. tenantN-1``.  Per-tenant RNG streams are
    #: keyed by name, so a shard serving a subset of a session's
    #: tenants draws exactly the streams those tenants would see in
    #: the unsharded session.
    tenant_list: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")
        if self.arrival not in registered_arrivals():
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"known: {list(registered_arrivals())}")
        if self.tenant_list is not None:
            roster = tuple(str(t) for t in self.tenant_list)
            if not roster:
                raise ValueError("tenant_list must not be empty")
            if len(set(roster)) != len(roster):
                raise ValueError(
                    f"tenant_list has duplicates: {roster}")
            object.__setattr__(self, "tenant_list", roster)
            object.__setattr__(self, "tenants", len(roster))
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {self.batch_window}")
        if self.fault is not None:
            fault_class(self.fault)  # raises with the registered list

    def tenant_names(self) -> tuple[str, ...]:
        """Stable tenant identifiers (``tenant0`` .. ``tenantN-1``).

        An explicit ``tenant_list`` (a cluster shard's roster) takes
        precedence over the generated names.
        """
        if self.tenant_list is not None:
            return self.tenant_list
        return tuple(f"tenant{i}" for i in range(self.tenants))

    def to_dict(self) -> dict:
        """JSON-serializable config record (embedded in the report)."""
        record = dataclasses.asdict(self)
        record["backoff"] = dataclasses.asdict(self.backoff)
        return record


@dataclass
class _Batch:
    """One open per-tenant batch awaiting dispatch."""

    tenant: str
    opened_cycle: int
    requests: list[Arrival] = field(default_factory=list)
    submit_cycles: list[int] = field(default_factory=list)


class _ServeNetwork(FlumenNetwork):
    """FlumenNetwork that surfaces per-packet delivery to the daemon.

    The kernel's latency stats are aggregate; the daemon needs each
    delivery attributed to the tenant that offered the packet, so this
    subclass forwards every completed packet through ``on_deliver``.
    """

    on_deliver = None

    def _deliver(self, packet: Packet, delivered_cycle: int,
                 track: str, **trace_args: object) -> None:
        super()._deliver(packet, delivered_cycle, track, **trace_args)
        if self.on_deliver is not None:
            self.on_deliver(packet, delivered_cycle)


class ServeDaemon:
    """Long-lived serving loop over one live Flumen fabric.

    Build it, then call :meth:`run` for the whole session, or drive
    :meth:`start` / :meth:`step` / :meth:`finish` yourself (the perf
    harness and tests do) — the report is identical either way.
    """

    def __init__(self, config: ServeConfig,
                 obs: Obs | None = None,
                 vectorized: bool = True) -> None:
        self.config = config
        self.obs = obs if obs is not None else Obs.telemetry(
            snapshot_interval=config.snapshot_interval,
            max_events=config.max_events)
        self.state = DaemonState.BOOT
        self.cycle = 0
        self.system = SystemConfig()
        self.devices = DeviceParams()
        self._rng = np.random.default_rng(
            point_seed(config.seed, "serve/fabric"))
        self.recovery = FabricRecovery(
            ports=config.ports, nodes=config.nodes,
            seed=point_seed(config.seed, "serve/recovery"),
            rng=self._rng, backoff=config.backoff,
            probe_interval=config.probe_interval,
            devices=self.devices, obs=self.obs)
        self.ladder = self.recovery.ladder
        self.net = _ServeNetwork(config.nodes, obs=self.obs)
        self.net.on_deliver = self._on_deliver
        self.recovery.bind_network(self.net)
        self.control = MZIMControlUnit(self.net, self.system,
                                       obs=self.obs,
                                       health=self.recovery.monitor)
        self.scheduler = FlumenScheduler(self.control, self.system,
                                         obs=self.obs,
                                         ladder=self.ladder)
        self.population = ClientPopulation(
            config.tenant_names(), make_arrival(config.arrival),
            config.rate, config.mvm_fraction, config.nodes,
            config.seed)
        self.admission = AdmissionController(
            config.admission_rate, config.admission_burst)
        if config.fault is None:
            schedule = FaultSchedule()
        else:
            schedule = FaultSchedule.seeded(
                [config.fault], point_seed(config.seed, "serve/faults"),
                window_cycles=config.duration, ports=config.ports,
                nodes=config.nodes, magnitude=config.fault_magnitude)
        self.injector = FaultInjector(
            schedule, self.recovery.domain,
            seed=point_seed(config.seed, "serve/faults"), obs=self.obs)
        # Ledger (mirrored into serve.* metrics every cycle).
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.drained = True
        self._open: dict[str, _Batch] = {}
        self._in_scheduler: dict[int, _Batch] = {}
        self._batch_ordinal = 0
        self._packet_tenant: dict[int, str] = {}
        self._mvm_latencies: list[int] = []
        self._per_tenant: dict[str, dict[str, int]] = {
            t: {"offered": 0, "admitted": 0, "rejected": 0,
                "completed": 0}
            for t in config.tenant_names()}
        metrics = self.obs.metrics
        self._m_offered = metrics.counter("serve.offered")
        self._m_admitted = metrics.counter("serve.admitted")
        self._m_rejected = metrics.counter("serve.rejected")
        self._m_completed = metrics.counter("serve.completed")
        self._g_in_flight = metrics.gauge("serve.in_flight")
        self._g_open_batches = metrics.gauge("serve.open_batches")
        self._h_mvm = metrics.histogram("serve.latency_cycles",
                                        bounds=LATENCY_BOUNDS,
                                        kind="mvm")
        self._h_comm = metrics.histogram("serve.latency_cycles",
                                         bounds=LATENCY_BOUNDS,
                                         kind="comm")
        # Per-tenant fabric state: a preloaded matrix program and a
        # fixed vector block every MVM in the tenant's stream reuses.
        self._vectors: dict[str, np.ndarray] = {}
        self._tenants = config.tenant_names()
        for tenant in self._tenants:
            t_rng = np.random.default_rng(
                point_seed(config.seed, f"serve/matrix/{tenant}"))
            matrix = t_rng.normal(size=(config.ports, config.ports))
            self.control.matrix_memory.store(
                f"serve/{tenant}",
                BlockMatmul(matrix, mzim_size=config.ports))
            self._vectors[tenant] = t_rng.normal(
                size=(config.ports, 4))
        # Lazily-cached per-tenant labeled counters (creation stays
        # on-first-use so the metric series set matches the live path).
        self._c_admitted: dict[str, object] = {}
        self._c_rejected: dict[str, object] = {}
        self._c_completed: dict[str, object] = {}
        # -- vectorized fast path (two-slot oracle/fast pattern) ----------
        # The fast slot pre-draws the whole arrival schedule (wheel),
        # replays admission as array-form token buckets, memoizes the
        # fleet-MVM flush and the healthy-mesh probe, and lets run() /
        # _drain() fast-forward provably idle cycles.  Every artifact —
        # events, snapshots, ledger, report — is byte-identical to the
        # oracle slot (``vectorized=False``), which keeps the original
        # per-cycle objects live.
        self.vectorized = bool(vectorized)
        if self.vectorized:
            self._wheel = self.population.prebuild(config.duration)
            self._decisions: dict[int, list[bool]] | None = \
                precompute_decisions(
                    self._wheel, config.tenant_names(),
                    config.admission_rate, config.admission_burst)
            self._arrival_source = self._wheel
            self.control.mvm_memo_entries = max(8, 4 * config.tenants)
            self.recovery.probe_memo = True
        else:
            self._wheel = None
            self._decisions = None
            self._arrival_source = self.population

    # -- accounting --------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Admitted requests not yet completed (ledger invariant)."""
        return self.admitted - self.completed

    def _sync_gauges(self) -> None:
        self._g_in_flight.set(float(self.in_flight))
        self._g_open_batches.set(float(len(self._open)))

    def _transition(self, dst: DaemonState, reason: str) -> None:
        src, self.state = self.state, dst
        self.obs.events.emit("serve_transition", self.cycle,
                             src=src.value, dst=dst.value,
                             reason=reason)

    # -- request intake ----------------------------------------------------

    def _tenant_counter(self, cache: dict, name: str, tenant: str):
        counter = cache.get(tenant)
        if counter is None:
            counter = self.obs.metrics.counter(name, tenant=tenant)
            cache[tenant] = counter
        return counter

    def _offer(self, arrival: Arrival,
               admit: bool | None = None) -> None:
        """Offer one arrival; ``admit`` carries a precomputed verdict.

        The oracle slot passes ``None`` and consults the live
        :class:`AdmissionController`; the vectorized slot passes the
        array-form replay's (bit-identical) decision.
        """
        self.offered += 1
        self._m_offered.inc()
        tenant = self._per_tenant[arrival.tenant]
        tenant["offered"] += 1
        if admit is None:
            admit = self.admission.admit(arrival.tenant, self.cycle)
        if not admit:
            self.rejected += 1
            self._m_rejected.inc()
            tenant["rejected"] += 1
            self._tenant_counter(self._c_rejected,
                                 "serve.tenant_rejected",
                                 arrival.tenant).inc()
            self.obs.events.emit("admission_reject", self.cycle,
                                 tenant=arrival.tenant,
                                 kind=arrival.kind)
            return
        self.admitted += 1
        self._m_admitted.inc()
        tenant["admitted"] += 1
        self._tenant_counter(self._c_admitted,
                             "serve.tenant_admitted",
                             arrival.tenant).inc()
        if arrival.kind == "comm":
            packet = Packet(
                src=arrival.src, dst=arrival.dst,
                size_flits=self.config.packet_flits,
                create_cycle=self.net.cycle,
                traffic_class="serve")
            self._packet_tenant[packet.packet_id] = arrival.tenant
            self.net.offer_packet(packet)
        else:
            batch = self._open.get(arrival.tenant)
            if batch is None:
                batch = _Batch(tenant=arrival.tenant,
                               opened_cycle=self.cycle)
                self._open[arrival.tenant] = batch
            batch.requests.append(arrival)
            batch.submit_cycles.append(self.cycle)

    # -- batching → Algorithm 1 -------------------------------------------

    def _dispatch_gate(self) -> bool:
        """May a closed batch enter the scheduler this cycle?

        Mirrors the campaign's offload gate: nodes hold work back while
        the network is saturated or the fabric is being recovered —
        *unless* the ladder has reached its terminal electrical rung
        (the fallback path is always serviceable) or the daemon is
        draining (shutdown flushes everything that was admitted).
        """
        return (self.control.advise_offload()
                or self.ladder.electrical_fallback
                or self.state is DaemonState.DRAINING)

    def _dispatch_due(self) -> None:
        if not self._open:
            return
        gate = None  # evaluated lazily: advise_offload emits metrics
        for tenant in self._tenants:
            batch = self._open.get(tenant)
            if batch is None:
                continue
            due = (len(batch.requests) >= self.config.batch_size
                   or self.cycle - batch.opened_cycle
                   >= self.config.batch_window)
            if not due:
                continue
            if gate is None:
                gate = self._dispatch_gate()
            if not gate:
                return  # retry every held batch next cycle
            del self._open[tenant]
            self._submit_batch(batch)

    def _submit_batch(self, batch: _Batch) -> None:
        config = self.config
        request_id = self._batch_ordinal
        self._batch_ordinal += 1
        plan = plan_offload(
            config.ports, config.ports,
            4 * len(batch.requests), mzim_size=config.ports,
            wavelengths=self.system.compute.computation_wavelengths)
        duration = (config.service_base_cycles
                    + config.service_per_request_cycles
                    * len(batch.requests))
        self.control.compute_buffer.append(ComputeRequest(
            node=batch.requests[0].node, plan=plan,
            matrix_key=f"serve/{batch.tenant}",
            submit_cycle=self.cycle,
            ports_needed=max(2, config.ports // 4),
            duration_override=duration,
            tenant=batch.tenant, request_id=request_id))
        self.control.requests_received += 1
        self._in_scheduler[request_id] = batch

    def _collect_completions(self) -> None:
        if not self.scheduler.completions:
            return
        for request_id, done_cycle in \
                self.scheduler.take_completions().items():
            batch = self._in_scheduler.pop(request_id, None)
            if batch is None:
                continue
            for arrival, submitted in zip(batch.requests,
                                          batch.submit_cycles):
                latency = done_cycle - submitted
                self._mvm_latencies.append(latency)
                self._h_mvm.observe(float(latency))
                self.completed += 1
                self._m_completed.inc()
                self._per_tenant[batch.tenant]["completed"] += 1
                self._tenant_counter(self._c_completed,
                                     "serve.tenant_completed",
                                     batch.tenant).inc()
                self.control.queue_mvm(
                    f"serve/{batch.tenant}",
                    self._vectors[batch.tenant],
                    node=arrival.node, tenant=batch.tenant)
        if self.control.pending_mvms:
            # One stacked fleet dispatch services every batch that
            # completed this cycle (DESIGN.md §14).
            self.control.flush_mvms()

    def _on_deliver(self, packet: Packet, delivered_cycle: int) -> None:
        """Per-packet completion hook from the network kernel."""
        tenant = self._packet_tenant.pop(packet.packet_id, None)
        if tenant is None:
            return
        self._h_comm.observe(float(delivered_cycle
                                   - packet.create_cycle))
        self.completed += 1
        self._m_completed.inc()
        self._per_tenant[tenant]["completed"] += 1
        self._tenant_counter(self._c_completed,
                             "serve.tenant_completed", tenant).inc()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """BOOT -> SERVING; idempotence is an error, not a no-op."""
        if self.state is not DaemonState.BOOT:
            raise RuntimeError(f"cannot start from {self.state}")
        self._sync_gauges()
        self._transition(DaemonState.SERVING,
                         f"session seed={self.config.seed} "
                         f"duration={self.config.duration}")

    def step(self) -> None:
        """One simulated cycle of the serving (or draining) loop."""
        serving = self.state is DaemonState.SERVING
        if serving:
            arrivals = self._arrival_source.requests_for_cycle(
                self.cycle)
            if self._decisions is None:
                for arrival in arrivals:
                    self._offer(arrival)
            else:
                verdicts = self._decisions.get(self.cycle, ())
                for arrival, verdict in zip(arrivals, verdicts):
                    self._offer(arrival, verdict)
            self.injector.tick(self.cycle)
        self.recovery.service(self.cycle)
        self._dispatch_due()
        self.scheduler.tick()
        self.net.step()
        self._collect_completions()
        sampler = self.obs.sampler
        offer = sampler is not None and self.cycle & 63 == 0
        if offer or not self.vectorized:
            # Gauges are only *read* at snapshot samples and at
            # finish(), and both gauges are pure functions of current
            # daemon state, so the fast slot syncs them just before a
            # snapshot offer instead of every cycle — the sampled
            # values are identical either way.
            self._sync_gauges()
        if offer:
            # Throttled snapshot offer (the sampler's interval stays
            # the sampling authority, as in SimKernel.run).
            sampler.tick(self.cycle)
        self.cycle += 1

    # -- idle fast-forward (vectorized slot only) --------------------------

    def _idle_skip(self, end: int) -> int:
        """Length of the provably no-op cycle run starting at ``cycle``.

        Returns 0 whenever the next cycle might do *anything* the
        oracle slot's :meth:`step` would do — an arrival, a fault-event
        or continuous-fault tick, a probe (every ``probe_interval``
        cycles), a batch reaching its size or age threshold (a held-due
        batch re-evaluates the dispatch gate, and so its metrics, every
        cycle), a firing snapshot offer, or any queued/active work in
        the scheduler or the network.  Otherwise every skipped cycle is
        exactly ``arbiter rotate + idle utilization + three clock
        increments``, which :meth:`_skip_cycles` replays in bulk,
        byte-identically.
        """
        cycle = self.cycle
        if not self.ladder.healthy or self.obs.tracer.enabled:
            return 0
        config = self.config
        bound = end
        # Net first: under load it is the countdown that most often
        # forbids the skip, and it is the cheaper of the two queries.
        for countdown in (self.net.quiet_countdown(),
                          self.scheduler.quiet_countdown()):
            if countdown is not None:
                if countdown <= 2:
                    return 0
                bound = min(bound, cycle + countdown - 1)
        for batch in self._open.values():
            due_cycle = batch.opened_cycle + config.batch_window
            if (len(batch.requests) >= config.batch_size
                    or due_cycle <= cycle):
                return 0
            bound = min(bound, due_cycle)
        if self.state is DaemonState.SERVING:
            if self._arrival_source.requests_for_cycle(cycle):
                return 0
            next_arrival = self._wheel.next_arrival_cycle(cycle + 1)
            if next_arrival is not None:
                bound = min(bound, next_arrival)
            next_fault = self.injector.next_due_cycle(cycle)
            if next_fault is not None:
                if next_fault <= cycle:
                    return 0
                bound = min(bound, next_fault)
        interval = config.probe_interval
        if cycle % interval == 0:
            return 0
        bound = min(bound, (cycle // interval + 1) * interval)
        sampler = self.obs.sampler
        if sampler is not None:
            # Offers happen every 64 local cycles; the sampler fires on
            # the *rebased* timeline, so translate its global due time
            # back through the shared clock before rounding up.
            local_due = sampler.clock.first_reaching(sampler.next_due)
            offer = max(cycle, local_due)
            fire = (offer + 63) & ~63
            if fire <= cycle:
                return 0
            bound = min(bound, fire)
        return max(0, bound - cycle)

    def _skip_cycles(self, cycles: int) -> None:
        """Bulk-advance ``cycles`` quiet cycles across all three clocks."""
        scheduler = self.scheduler
        if (scheduler.active or scheduler.electrical
                or scheduler.control.compute_buffer):
            scheduler.skip_quiet_cycles(cycles)
        else:
            scheduler.skip_idle_cycles(cycles)
        self.net.skip_quiet_cycles(cycles)
        self.cycle += cycles

    def _advance_until(self, end: int) -> None:
        """Vectorized loop body: fast-forward idle runs, step the rest."""
        skip = self._idle_skip(end)
        if skip > 1:
            self._skip_cycles(skip)
        else:
            self.step()

    def _drain(self) -> None:
        self._transition(DaemonState.DRAINING,
                         f"in_flight={self.in_flight}")
        deadline = self.cycle + self.config.drain_limit
        while self.cycle < deadline:
            if (self.in_flight == 0 and not self._open
                    and not self._in_scheduler
                    and self.net.quiescent()):
                break
            if self.vectorized:
                self._advance_until(deadline)
            else:
                self.step()
        else:
            self.drained = False
        self.drained = self.drained and self.in_flight == 0

    def finish(self) -> dict:
        """Drain, stop, take the final snapshot, return the report."""
        self._drain()
        self._sync_gauges()
        self._transition(DaemonState.STOPPED,
                         f"completed={self.completed}")
        if self.obs.sampler is not None:
            self.obs.sampler.sample(self.cycle)
        return self.report()

    def run(self) -> dict:
        """The whole session: start, serve, drain, report.

        The vectorized slot fast-forwards idle cycle runs here (and in
        :meth:`_drain`); :meth:`step` itself stays strictly
        single-cycle so manual drivers behave identically in both
        slots.
        """
        self.start()
        if self.vectorized:
            end = self.config.duration
            while self.cycle < end:
                self._advance_until(end)
        else:
            for _ in range(self.config.duration):
                self.step()
        return self.finish()

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """Canonical session record (byte-stable under one seed)."""
        stats = self.scheduler.stats
        injected = [
            {"cycle": e.cycle, "kind": e.fault.kind,
             "params": e.fault.params()}
            for e in self.injector.injected]
        total_cycles = self.cycle
        return {
            "config": self.config.to_dict(),
            "state": self.state.value,
            "cycles": total_cycles,
            "ledger": {
                "offered": self.offered,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "in_flight": self.in_flight,
            },
            "conserved": (
                self.offered == self.admitted + self.rejected
                and self.in_flight == self.admitted - self.completed),
            "drained": self.drained,
            "per_tenant": self._per_tenant,
            "latency": {
                "mvm": percentile_summary(self._mvm_latencies),
                "comm": percentile_summary(
                    list(self.net.latency.latencies)),
            },
            "goodput_per_kcycle": (
                1000.0 * self.completed / total_cycles
                if total_cycles else 0.0),
            "scheduler": stats.to_dict(),
            "ladder": self.ladder.to_dict(),
            "final_rung": self.ladder.rung.name,
            "electrical_completions": stats.electrical_completions,
            "injected": injected,
            "detected_cycle": self.recovery.detected_cycle,
            "events": len(self.obs.events),
            "snapshots": (len(self.obs.sampler)
                          if self.obs.sampler is not None else 0),
        }
