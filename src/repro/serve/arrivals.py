"""Seeded client populations: arrival processes for the serve daemon.

A serving fabric does not see a pre-generated trace — it sees streams
of requests whose *intensity* shifts over time, and Flumen's whole
pitch is repartitioning the interconnect as that intensity moves.  This
module models the streams: an :class:`ArrivalProcess` is a deterministic
intensity profile over simulated cycles, and a :class:`ClientPopulation`
turns one profile into per-tenant Poisson request counts (the standard
stand-in for a large independent user population), all derived from the
session seed.

Processes live in a registry shaped like :mod:`repro.noc.registry` and
:mod:`repro.faults.models`: look up by name (``make_arrival``), extend
with ``register_arrival``, and patch temporarily in tests with
``temporary_arrival``.

Determinism contract: every draw comes from per-tenant
``np.random.default_rng`` generators seeded via
:func:`~repro.analysis.engine.point_seed`, and tenants are visited in a
fixed order each cycle, so the full arrival stream is a pure function
of ``(seed, tenants, process, rate, mvm_fraction, nodes)``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.analysis.engine import point_seed

_ARRIVALS: dict[str, Callable[..., "ArrivalProcess"]] = {}


def register_arrival(name: str,
                     factory: Callable[..., "ArrivalProcess"]) -> None:
    """Register an arrival-process factory under ``name``."""
    if name in _ARRIVALS:
        raise ValueError(f"arrival process {name!r} already registered")
    _ARRIVALS[name] = factory


def registered_arrivals() -> tuple[str, ...]:
    """Names of every registered arrival process, sorted."""
    return tuple(sorted(_ARRIVALS))


def make_arrival(name: str, **kwargs: object) -> "ArrivalProcess":
    """Instantiate a registered arrival process by name."""
    factory = _ARRIVALS.get(name)
    if factory is None:
        raise ValueError(f"unknown arrival process {name!r}; "
                         f"known: {list(registered_arrivals())}")
    return factory(**kwargs)


@contextmanager
def temporary_arrival(name: str,
                      factory: Callable[..., "ArrivalProcess"]
                      ) -> Iterator[None]:
    """Register an arrival process for the duration of a ``with`` block."""
    register_arrival(name, factory)
    try:
        yield
    finally:
        del _ARRIVALS[name]


class ArrivalProcess:
    """Deterministic intensity profile over simulated cycles.

    ``intensity(cycle)`` is a dimensionless multiplier (>= 0) applied
    to the population's base rate; subclasses encode the load shape.
    """

    name = "base"

    def intensity(self, cycle: int) -> float:
        """Dimensionless rate multiplier (>= 0) at ``cycle``."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Constant-intensity stream: the classic memoryless open load."""

    name = "poisson"

    def intensity(self, cycle: int) -> float:
        """Always 1.0: the base rate, uncontoured."""
        return 1.0


class BurstyArrivals(ArrivalProcess):
    """On/off duty-cycle bursts with the same long-run mean as poisson.

    For ``duty`` of each ``period`` the stream runs at ``peak`` times
    the base rate; the off phase rate is chosen so the cycle-averaged
    intensity stays 1.0 (clamped at zero when ``duty * peak >= 1``,
    i.e. the burst alone carries the whole mean).
    """

    name = "bursty"

    def __init__(self, period: int = 512, duty: float = 0.25,
                 peak: float = 4.0) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {duty}")
        if peak <= 0.0:
            raise ValueError(f"peak must be > 0, got {peak}")
        self.period = int(period)
        self.duty = float(duty)
        self.peak = float(peak)
        self._low = max(0.0, (1.0 - self.duty * self.peak)
                        / (1.0 - self.duty))

    def intensity(self, cycle: int) -> float:
        """``peak`` during the burst phase, the balancing low after."""
        phase = (cycle % self.period) / self.period
        return self.peak if phase < self.duty else self._low


class DiurnalArrivals(ArrivalProcess):
    """Slow sinusoidal swell standing in for a day/night load curve."""

    name = "diurnal"

    def __init__(self, period: int = 2048,
                 amplitude: float = 0.8) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1], got {amplitude}")
        self.period = int(period)
        self.amplitude = float(amplitude)

    def intensity(self, cycle: int) -> float:
        """``1 + amplitude * sin`` over ``period``, clipped at zero."""
        phase = 2.0 * math.pi * (cycle % self.period) / self.period
        return max(0.0, 1.0 + self.amplitude * math.sin(phase))


register_arrival("poisson", PoissonArrivals)
register_arrival("bursty", BurstyArrivals)
register_arrival("diurnal", DiurnalArrivals)


@dataclass(frozen=True)
class Arrival:
    """One offered request, before admission."""

    tenant: str
    #: ``"mvm"`` (compute offload) or ``"comm"`` (interposer packet).
    kind: str
    #: Originating node for MVM offloads.
    node: int = 0
    #: Endpoints for communication requests (``src != dst``).
    src: int = 0
    dst: int = 1


class ClientPopulation:
    """Per-tenant seeded request streams sharing one intensity profile.

    Each tenant owns an independent generator, so adding a tenant never
    perturbs another tenant's stream, and the per-cycle request count
    is Poisson-distributed around ``rate * intensity(cycle)``.
    """

    def __init__(self, tenants: tuple[str, ...],
                 process: ArrivalProcess, rate: float,
                 mvm_fraction: float, nodes: int, seed: int) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        if rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if not 0.0 <= mvm_fraction <= 1.0:
            raise ValueError(
                f"mvm_fraction must be in [0, 1], got {mvm_fraction}")
        if nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {nodes}")
        self.tenants = tuple(tenants)
        self.process = process
        self.rate = float(rate)
        self.mvm_fraction = float(mvm_fraction)
        self.nodes = int(nodes)
        self._rngs = {
            tenant: np.random.default_rng(
                point_seed(seed, f"arrivals/{tenant}"))
            for tenant in self.tenants}

    def requests_for_cycle(self, cycle: int) -> list[Arrival]:
        """All requests offered this cycle, in fixed tenant order."""
        lam = self.rate * self.process.intensity(cycle)
        out: list[Arrival] = []
        for tenant in self.tenants:
            rng = self._rngs[tenant]
            for _ in range(int(rng.poisson(lam))):
                if rng.random() < self.mvm_fraction:
                    out.append(Arrival(
                        tenant=tenant, kind="mvm",
                        node=int(rng.integers(self.nodes))))
                else:
                    src = int(rng.integers(self.nodes))
                    dst = (src + 1
                           + int(rng.integers(self.nodes - 1))) \
                        % self.nodes
                    out.append(Arrival(tenant=tenant, kind="comm",
                                       src=src, dst=dst))
        return out

    def prebuild(self, duration: int) -> "ArrivalWheel":
        """Pre-draw the whole arrival schedule for cycles ``[0, duration)``.

        Consumes this population's generators: the wheel replays, per
        tenant, the *exact* RNG call sequence
        :meth:`requests_for_cycle` would have issued over those cycles
        (one ``poisson`` per cycle, then the per-request draws), so the
        resulting stream is byte-identical to live drawing.  A
        population is touched either live or through one wheel — never
        both — since the draws are consumed up front.
        """
        return ArrivalWheel(self, duration)


class ArrivalWheel:
    """Cycle-bucketed pre-drawn arrivals over a fixed horizon.

    The wheel is the fast-path counterpart of live per-cycle drawing
    (mirroring the SoA NoC kernel's pre-drawn injection wheel): all
    Poisson counts and per-request shape draws for ``[0, duration)``
    are materialized once, bucketed by cycle, keeping the hot loop free
    of per-cycle RNG calls and giving the idle fast-forward an exact
    "next arrival" query.

    Per-tenant generators are independent, so drawing tenant-major
    (each tenant's full horizon in one pass) reproduces exactly the
    stream the cycle-major live path yields; within a cycle bucket,
    arrivals stay in fixed tenant order.
    """

    def __init__(self, population: ClientPopulation,
                 duration: int) -> None:
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        self.duration = int(duration)
        process = population.process
        lams = [population.rate * process.intensity(cycle)
                for cycle in range(self.duration)]
        mvm_fraction = population.mvm_fraction
        nodes = population.nodes
        buckets: dict[int, list[Arrival]] = {}
        for tenant in population.tenants:
            rng = population._rngs[tenant]
            for cycle, lam in enumerate(lams):
                for _ in range(int(rng.poisson(lam))):
                    if rng.random() < mvm_fraction:
                        arrival = Arrival(
                            tenant=tenant, kind="mvm",
                            node=int(rng.integers(nodes)))
                    else:
                        src = int(rng.integers(nodes))
                        dst = (src + 1
                               + int(rng.integers(nodes - 1))) % nodes
                        arrival = Arrival(tenant=tenant, kind="comm",
                                          src=src, dst=dst)
                    buckets.setdefault(cycle, []).append(arrival)
        self._by_cycle = buckets
        self._cycles = np.array(sorted(buckets), dtype=np.int64)
        self.total = sum(len(v) for v in buckets.values())

    def requests_for_cycle(self, cycle: int) -> list[Arrival]:
        """Arrivals bucketed at ``cycle`` (empty outside the horizon)."""
        return self._by_cycle.get(cycle, [])

    def next_arrival_cycle(self, cycle: int) -> int | None:
        """First cycle ``>= cycle`` with any arrival, or ``None``."""
        index = int(np.searchsorted(self._cycles, cycle))
        if index >= len(self._cycles):
            return None
        return int(self._cycles[index])
