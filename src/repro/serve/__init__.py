"""Long-lived serving daemon: live traffic over the Flumen fabric.

``python -m repro serve`` runs a persistent session in which seeded
client populations (:mod:`repro.serve.arrivals`) offer concurrent MVM
and communication requests, token buckets shed overload
(:mod:`repro.serve.admission`), per-tenant batches drain into the
fleet MVM queue, Algorithm 1 repartitions under the *observed* load,
and the degradation ladder handles faults mid-session
(:mod:`repro.serve.daemon`).  A live `/metrics` / `/healthz` endpoint
(:mod:`repro.serve.live`) serves the running session through the
standard telemetry server.  See DESIGN.md §17.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.arrivals import (
    Arrival,
    ArrivalProcess,
    BurstyArrivals,
    ClientPopulation,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival,
    register_arrival,
    registered_arrivals,
    temporary_arrival,
)
from repro.serve.cluster import (
    ClusterTelemetryStore,
    ReplicaSet,
    shard_configs,
    shard_tenants,
)
from repro.serve.daemon import (
    LATENCY_BOUNDS,
    DaemonState,
    ServeConfig,
    ServeDaemon,
)
from repro.serve.live import LiveTelemetryStore

__all__ = [
    "AdmissionController",
    "Arrival",
    "ArrivalProcess",
    "BurstyArrivals",
    "ClientPopulation",
    "ClusterTelemetryStore",
    "DaemonState",
    "DiurnalArrivals",
    "LATENCY_BOUNDS",
    "LiveTelemetryStore",
    "PoissonArrivals",
    "ReplicaSet",
    "ServeConfig",
    "ServeDaemon",
    "TokenBucket",
    "make_arrival",
    "register_arrival",
    "registered_arrivals",
    "shard_configs",
    "shard_tenants",
    "temporary_arrival",
]
