"""Live telemetry store: `/metrics` and `/healthz` over a running daemon.

:class:`~repro.obs.telemetry.TelemetryServer` is store-agnostic — it
calls ``exposition() / health() / events_tail() / snapshots()`` on
whatever it is given.  The file-backed
:class:`~repro.obs.telemetry.TelemetryStore` re-reads a telemetry
directory per request; :class:`LiveTelemetryStore` implements the same
duck-typed read surface directly over a running daemon's
:class:`~repro.obs.Obs` bundle, so `repro serve --http-port` exposes
the session *while it runs* with zero file I/O.

Thread-safety and determinism: the HTTP thread only *reads*.  The
snapshot series and event log are append-only, so bounded reads are
safe without locks; a scrape can race an append mid-iteration, so
reads are length-bounded copies (never live iterators), and the
exposition is rendered from the latest completed snapshot — exactly
like the file-backed store renders the latest written one.  Because
the read side never mutates daemon state, a session's artifacts are
byte-identical with or without an observer attached.
"""

from __future__ import annotations

from repro.obs import Obs
from repro.obs.telemetry import prometheus_exposition


class LiveTelemetryStore:
    """Read-only telemetry view over a live daemon (duck-typed store)."""

    def __init__(self, obs: Obs, daemon=None,
                 describe: str = "live session") -> None:
        self.obs = obs
        #: Optional :class:`~repro.serve.daemon.ServeDaemon` whose
        #: lifecycle state and ledger enrich ``/healthz``.
        self.daemon = daemon
        #: Human-readable origin, shown where the file-backed store
        #: shows its directory path.
        self.root = describe

    @staticmethod
    def _bounded(seq) -> list:
        """Length-bounded copy of an append-only sequence.

        The writer only appends, so the first ``len(seq)`` entries
        observed here are complete records even if an append races the
        copy.
        """
        n = len(seq)
        return list(seq)[:n]

    def events(self) -> list[dict]:
        """Every event emitted so far (bounded copy)."""
        return self._bounded(self.obs.events.events)

    def events_tail(self, n: int) -> list[dict]:
        """The most recent ``n`` events (``/events?tail=N``)."""
        return self.events()[-n:] if n > 0 else []

    def snapshots(self) -> list[dict]:
        """Every snapshot sampled so far (bounded copy)."""
        if self.obs.sampler is None:
            return []
        return self._bounded(self.obs.sampler.series)

    def latest_snapshot(self) -> dict | None:
        """The most recent completed snapshot, or None before the first."""
        snaps = self.snapshots()
        return snaps[-1] if snaps else None

    def exposition(self) -> str:
        """Prometheus text for the latest snapshot (plus stream meta)."""
        snap = self.latest_snapshot()
        if snap is None:
            return ""
        meta = {
            "telemetry.snapshot_cycle": snap["cycle"],
            "telemetry.snapshots": len(self.snapshots()),
            "telemetry.events": len(self.events()),
        }
        return prometheus_exposition(snap["metrics"], extra_gauges=meta)

    def health(self) -> dict:
        """``/healthz`` body; includes daemon state/cycle when attached."""
        record = {"status": "ok", "root": str(self.root),
                  "snapshots": len(self.snapshots()),
                  "events": len(self.events())}
        if self.daemon is not None:
            record["state"] = self.daemon.state.value
            record["cycle"] = self.daemon.cycle
            record["in_flight"] = self.daemon.in_flight
        return record
