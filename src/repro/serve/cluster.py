"""Replica-sharded serving tier: R independent daemons, one cluster.

A single :class:`~repro.serve.daemon.ServeDaemon` owns one photonic
fabric, so its MZIM ports are the throughput ceiling however many
tenants it serves.  A :class:`ReplicaSet` shards a session's tenants
across R independent daemons — replica ``r`` serves every R-th tenant
(``names[r::R]``) — each with its own fabric, scheduler, NoC, and
:class:`~repro.obs.Obs` bundle.  Capacity then scales with R while
every per-tenant stream stays *exactly* what the unsharded session
would have offered: arrival and matrix RNGs are keyed by tenant name
(:func:`~repro.analysis.engine.point_seed`), not by position, so a
shard draws byte-identical streams for its roster.

Execution is a two-slot pattern at the cluster level, mirroring the
daemon's own oracle/vectorized split: replicas run either sequentially
in-process (the oracle ordering) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Each replica is a
pure function of its shard config, so the shard payloads — report,
event stream, snapshot series — are byte-identical whichever way they
were executed, and so are the merged telemetry
(:func:`~repro.obs.merge.merge_event_logs`) and the aggregated cluster
report (which deliberately records no execution detail like a job
count).  ``repro serve --check`` exploits this: with ``--jobs > 1`` it
runs both ways and byte-compares every per-tenant stream.

Cluster time is the *slowest* replica's clock: goodput uses
``max(replica cycles)``, the conservative reading where faster shards
idle-wait the stragglers.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor

from repro.obs import (
    merge_event_logs,
    merge_snapshot_series,
    percentile_summary,
)
from repro.serve.daemon import ServeConfig, ServeDaemon


def shard_tenants(names: tuple[str, ...],
                  replicas: int) -> list[tuple[str, ...]]:
    """Deterministic round-robin shard: replica ``r`` gets ``names[r::R]``.

    Every name lands in exactly one shard and every shard is non-empty
    (``replicas`` may not exceed the tenant count).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas > len(names):
        raise ValueError(
            f"{replicas} replicas need at least {replicas} tenants, "
            f"got {len(names)}")
    return [tuple(names[r::replicas]) for r in range(replicas)]


def shard_configs(config: ServeConfig,
                  replicas: int) -> list[ServeConfig]:
    """Per-replica configs: the session config with a sharded roster."""
    return [dataclasses.replace(config, tenant_list=shard)
            for shard in shard_tenants(config.tenant_names(), replicas)]


def _run_shard(config: ServeConfig, vectorized: bool) -> dict:
    """Run one replica to completion; returns a picklable payload.

    Top-level (not a method) so a process pool can ship it to workers;
    the payload carries everything the cluster aggregates, including
    the raw latency samples the cluster-level quantiles need.
    """
    daemon = ServeDaemon(config, vectorized=vectorized)
    report = daemon.run()
    return {
        "report": report,
        "events": list(daemon.obs.events.events),
        "snapshots": list(daemon.obs.sampler.series),
        "mvm_latencies": list(daemon._mvm_latencies),
        "comm_latencies": list(daemon.net.latency.latencies),
    }


class ReplicaSet:
    """R tenant-sharded serve replicas run as one logical cluster."""

    def __init__(self, config: ServeConfig, replicas: int,
                 vectorized: bool = True) -> None:
        self.config = config
        self.replicas = int(replicas)
        self.vectorized = bool(vectorized)
        self.shards = shard_configs(config, self.replicas)
        #: Per-replica payloads from :func:`_run_shard`, in shard order.
        self.results: list[dict] | None = None
        self.merged_events: list[dict] = []
        self.merged_snapshots: list[dict] = []

    def run(self, jobs: int = 1) -> dict:
        """Execute every replica; returns the aggregated cluster report.

        ``jobs == 1`` runs the shards sequentially in-process (the
        oracle ordering); ``jobs > 1`` fans them out over a process
        pool.  ``pool.map`` preserves shard order, so downstream
        aggregation sees identical inputs either way.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        flags = [self.vectorized] * len(self.shards)
        if jobs == 1:
            results = [_run_shard(shard, vec)
                       for shard, vec in zip(self.shards, flags)]
        else:
            workers = min(jobs, len(self.shards))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_run_shard, self.shards, flags))
        self.results = results
        self.merged_events = merge_event_logs(
            [r["events"] for r in results])
        self.merged_snapshots = merge_snapshot_series(
            [r["snapshots"] for r in results])
        return self.report()

    def report(self) -> dict:
        """Aggregated cluster record (byte-stable under one seed).

        A pure function of the per-replica payloads — it records what
        the cluster computed, never how it was executed, so the record
        is identical for any ``jobs`` value.
        """
        if self.results is None:
            raise RuntimeError("run() the replica set first")
        reports = [r["report"] for r in self.results]
        ledger = {key: sum(rep["ledger"][key] for rep in reports)
                  for key in ("offered", "admitted", "rejected",
                              "completed", "in_flight")}
        per_tenant: dict[str, dict] = {}
        for rep in reports:
            per_tenant.update(rep["per_tenant"])
        mvm = [s for r in self.results for s in r["mvm_latencies"]]
        comm = [s for r in self.results for s in r["comm_latencies"]]
        cycles = max(rep["cycles"] for rep in reports)
        return {
            "config": self.config.to_dict(),
            "replicas": self.replicas,
            "cycles": cycles,
            "ledger": ledger,
            "conserved": all(rep["conserved"] for rep in reports),
            "drained": all(rep["drained"] for rep in reports),
            "per_tenant": dict(sorted(per_tenant.items())),
            "latency": {
                "mvm": percentile_summary(mvm),
                "comm": percentile_summary(comm),
            },
            "goodput_per_kcycle": (
                1000.0 * ledger["completed"] / cycles if cycles else 0.0),
            "electrical_completions": sum(
                rep["electrical_completions"] for rep in reports),
            "final_rungs": [rep["final_rung"] for rep in reports],
            "events": len(self.merged_events),
            "snapshots": len(self.merged_snapshots),
            "per_replica": [
                {
                    "tenants": list(shard.tenant_names()),
                    "cycles": rep["cycles"],
                    "completed": rep["ledger"]["completed"],
                    "goodput_per_kcycle": rep["goodput_per_kcycle"],
                    "final_rung": rep["final_rung"],
                }
                for shard, rep in zip(self.shards, reports)
            ],
        }

    def per_tenant_streams(self) -> dict[str, list[dict]]:
        """Per-tenant event streams, exactly as each replica emitted them.

        The unit of the cluster's byte-identity contract: for any
        tenant, this list is identical whether its replica ran alone,
        sequentially with the others, or in a process pool.  Untagged
        events (daemon lifecycle, fault probes) are not included.
        """
        if self.results is None:
            raise RuntimeError("run() the replica set first")
        streams: dict[str, list[dict]] = {
            name: [] for shard in self.shards
            for name in shard.tenant_names()}
        for result in self.results:
            for record in result["events"]:
                tenant = record.get("tenant")
                if tenant is not None:
                    streams[tenant].append(record)
        return streams


class ClusterTelemetryStore:
    """Merged-telemetry read surface over a completed cluster run.

    Duck-types the same store interface as
    :class:`~repro.serve.live.LiveTelemetryStore` — ``events() /
    events_tail() / snapshots() / latest_snapshot() / exposition() /
    health()`` — so :class:`~repro.obs.telemetry.TelemetryServer`
    serves a cluster's merged view unchanged.
    """

    def __init__(self, replica_set: ReplicaSet,
                 describe: str = "serve cluster") -> None:
        if replica_set.results is None:
            raise RuntimeError("run() the replica set first")
        self._set = replica_set
        self._report = replica_set.report()
        self.root = describe

    def events(self) -> list[dict]:
        return list(self._set.merged_events)

    def events_tail(self, n: int) -> list[dict]:
        return self.events()[-n:] if n > 0 else []

    def snapshots(self) -> list[dict]:
        return list(self._set.merged_snapshots)

    def latest_snapshot(self) -> dict | None:
        snaps = self._set.merged_snapshots
        return snaps[-1] if snaps else None

    def exposition(self) -> str:
        """Prometheus text for the latest merged snapshot."""
        from repro.obs.telemetry import prometheus_exposition

        snap = self.latest_snapshot()
        if snap is None:
            return ""
        meta = {
            "telemetry.snapshot_cycle": snap["cycle"],
            "telemetry.snapshots": len(self._set.merged_snapshots),
            "telemetry.events": len(self._set.merged_events),
            "telemetry.replicas": self._set.replicas,
        }
        return prometheus_exposition(snap["metrics"], extra_gauges=meta)

    def health(self) -> dict:
        ledger = self._report["ledger"]
        return {
            "status": "ok" if self._report["conserved"]
            and self._report["drained"] else "degraded",
            "root": str(self.root),
            "replicas": self._set.replicas,
            "cycles": self._report["cycles"],
            "snapshots": len(self._set.merged_snapshots),
            "events": len(self._set.merged_events),
            "in_flight": ledger["in_flight"],
            "completed": ledger["completed"],
        }
