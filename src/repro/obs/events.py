"""Schema-versioned structured event log for runtime decisions.

Counters say *how many* ladder transitions or cache misses a run saw;
the event log says *which*, *when*, and *why*.  Each record is a flat
JSON-serializable dict with a fixed envelope::

    {"v": 1, "seq": 0, "cycle": 120, "type": "ladder_transition",
     "tenant": "default", "request_id": 3, ...payload...}

``v`` is the schema version (:data:`EVENT_SCHEMA_VERSION`), ``seq`` a
contiguous emission index, ``cycle`` a monotone simulation-cycle
timestamp, and ``type`` one of :data:`EVENT_TYPES` whose entry names the
payload fields every record of that type must carry.  ``tenant`` and
``request_id`` are the accounting context and appear when the emitting
component has one.

Determinism: timestamps are simulation cycles (or a component's own
deterministic clock such as the sweep engine's point index), never wall
time, so same-seed runs emit byte-identical logs.  Components restart
their local cycle counters between runs; :class:`MonotoneClock` rebases
those local clocks onto one non-decreasing timeline so an appended log
always validates (see ``load_and_validate_events`` in
:mod:`repro.obs.export`).

The default backend is :data:`NULL_EVENTS` (a :class:`NullEventLog`):
``enabled`` is ``False`` and every emit is a no-op, so uninstrumented
runs pay nothing.
"""

from __future__ import annotations

from collections import deque

#: Version stamp carried by every record; bump on breaking layout change.
EVENT_SCHEMA_VERSION = 1

#: Event type -> required payload fields (beyond the envelope).
#: Emission validates against this table, so a written log is valid by
#: construction; loaders re-check it (defense against hand-edited or
#: truncated files).
EVENT_TYPES: dict[str, tuple[str, ...]] = {
    # faults/ladder.py — every DegradationLadder rung change.
    "ladder_transition": ("src", "dst", "reason"),
    # faults/injector.py — a scheduled fault fires.
    "fault_activation": ("kind",),
    # core/scheduler.py — Algorithm 1 repartition decisions.
    "partition_grant": ("lo_port", "hi_port", "beta", "wait_cycles"),
    "partition_defer": ("reason",),
    "partition_complete": ("duration",),
    "electrical_fallback": ("duration",),
    # core/control_unit.py — batched MVM dispatch.
    "mvm_flush": ("jobs", "nodes"),
    # analysis/engine.py — sweep-engine cache decisions and failures.
    "cache_hit": ("task", "key"),
    "cache_miss": ("task", "key"),
    "point_failed": ("task", "key", "error"),
    # serve/daemon.py — daemon lifecycle and admission decisions.
    "serve_transition": ("src", "dst", "reason"),
    "admission_reject": ("kind",),
}

#: Envelope keys; payload fields must not collide with them.
RESERVED_KEYS = frozenset({"v", "seq", "cycle", "type", "tenant",
                           "request_id"})


class MonotoneClock:
    """Rebases restarting component-local cycle counters onto one
    non-decreasing timeline.

    Each simulated network starts its cycle counter at zero; a telemetry
    stream spanning several runs would be non-monotonic in raw local
    cycles.  ``advance(local)`` detects a counter restart (the local
    cycle went backwards) and shifts the epoch so global time never
    decreases.  The mapping depends only on the sequence of local cycles
    fed in, so it is deterministic for same-seed runs.
    """

    __slots__ = ("_epoch", "_last_local", "_last_global")

    def __init__(self) -> None:
        self._epoch = 0
        self._last_local = 0
        self._last_global = 0

    def advance(self, local_cycle: int) -> int:
        local = int(local_cycle)
        if local < self._last_local:
            self._epoch = self._last_global
        self._last_local = local
        global_cycle = self._epoch + local
        if global_cycle < self._last_global:
            global_cycle = self._last_global
        self._last_global = global_cycle
        return global_cycle

    @property
    def now(self) -> int:
        """Last global cycle handed out."""
        return self._last_global

    def first_reaching(self, global_target: int) -> int:
        """Smallest local cycle whose rebased time reaches the target.

        Pure query: assuming locals stay monotone (no further restarts),
        ``advance(local)`` returns at least ``global_target`` exactly
        for ``local >= first_reaching(global_target)``; returns 0 when
        the timeline is already there.  Idle fast-forward loops use
        this to translate a global deadline (e.g. a snapshot sampler's
        next due time) back into local cycles without mutating the
        clock.
        """
        if self._last_global >= global_target:
            return 0
        return int(global_target) - self._epoch


class EventLog:
    """Recording backend: append-only list of typed event records."""

    enabled = True

    def __init__(self, max_events: int | None = None) -> None:
        self.events: list[dict] | deque[dict]
        self._max_events = max_events
        if max_events is None:
            self.events = []
        else:
            self.events = deque(maxlen=max_events)
        #: Oldest-record evictions under ``max_events`` (bounded mode).
        self.dropped = 0
        self._seq = 0
        #: Shared with the snapshot sampler so events and snapshots sit
        #: on one timeline.
        self.clock = MonotoneClock()

    def emit(self, event_type: str, cycle: int, *,
             tenant: str | None = None,
             request_id: int | None = None,
             **payload: object) -> dict:
        """Append one record; returns it (tests inspect the envelope)."""
        required = EVENT_TYPES.get(event_type)
        if required is None:
            raise ValueError(f"unknown event type {event_type!r}; "
                             f"known: {sorted(EVENT_TYPES)}")
        missing = [k for k in required if k not in payload]
        if missing:
            raise ValueError(f"event {event_type!r} missing required "
                             f"payload fields {missing}")
        clash = RESERVED_KEYS.intersection(payload)
        if clash:
            raise ValueError(f"payload keys {sorted(clash)} collide with "
                             "the event envelope")
        record: dict = {"v": EVENT_SCHEMA_VERSION, "seq": self._seq,
                        "cycle": self.clock.advance(cycle),
                        "type": event_type}
        if tenant is not None:
            record["tenant"] = str(tenant)
        if request_id is not None:
            record["request_id"] = int(request_id)
        record.update(payload)
        if (self._max_events is not None
                and len(self.events) == self._max_events):
            self.dropped += 1
        self.events.append(record)
        self._seq += 1
        return record

    def tail(self, n: int) -> list[dict]:
        """The most recent ``n`` records (oldest first)."""
        if n <= 0:
            return []
        return list(self.events)[-n:]

    def by_type(self, event_type: str) -> list[dict]:
        """Records of one type, in emission order."""
        return [e for e in self.events if e["type"] == event_type]

    def __len__(self) -> int:
        return len(self.events)


class NullEventLog:
    """No-op backend; ``enabled`` is False so hot paths skip emits."""

    enabled = False
    dropped = 0

    #: Shared empty list — never mutated (all emits are no-ops).
    events: list[dict] = []

    def emit(self, event_type: str, cycle: int, *,
             tenant: str | None = None,
             request_id: int | None = None,
             **payload: object) -> dict:
        return {}

    def tail(self, n: int) -> list[dict]:
        return []

    def by_type(self, event_type: str) -> list[dict]:
        return []

    def __len__(self) -> int:
        return 0


#: Process-wide default backend for uninstrumented runs.
NULL_EVENTS = NullEventLog()
