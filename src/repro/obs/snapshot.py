"""Cycle-driven snapshot sampler: the metrics registry as a time-series.

A :class:`SnapshotSampler` is ticked from simulation loops (the NoC
kernel's run loop, the scheduler co-simulation in
:mod:`repro.core.system`, the sweep engine's point loop) and freezes the
whole registry every ``interval_cycles`` of *simulation* time::

    {"v": 1, "seq": 0, "cycle": 256, "metrics": {...to_dict()...}}

Sampling is keyed to cycles, never wall time, and the frozen snapshot
uses the registry's deterministic ``to_dict`` default (timers report
observation counts only), so same-seed runs emit byte-identical series.
When the host kernel fast-forwards through an idle stretch the skipped
cycles carry no registry mutations; the series simply resumes at the
post-jump cycle, deterministically.

Pass the run's :class:`~repro.obs.events.EventLog` so snapshots and
events share one :class:`~repro.obs.events.MonotoneClock` timeline.
"""

from __future__ import annotations

from repro.obs.events import EventLog, MonotoneClock

#: Version stamp carried by every snapshot record.
SNAPSHOT_SCHEMA_VERSION = 1

#: Default sampling period, in simulation cycles.
DEFAULT_INTERVAL_CYCLES = 256


class SnapshotSampler:
    """Periodically freeze a metrics registry on a cycle-driven cadence."""

    enabled = True

    def __init__(self, metrics,
                 interval_cycles: int = DEFAULT_INTERVAL_CYCLES,
                 event_log: EventLog | None = None,
                 max_snapshots: int | None = None) -> None:
        if interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1, got "
                             f"{interval_cycles}")
        self.metrics = metrics
        self.interval_cycles = int(interval_cycles)
        self.series: list[dict] = []
        self._max_snapshots = max_snapshots
        #: Oldest-snapshot evictions under ``max_snapshots``.
        self.dropped = 0
        self._seq = 0
        self._next_due = 0
        self._clock = event_log.clock if event_log is not None \
            else MonotoneClock()

    @property
    def next_due(self) -> int:
        """First *global* cycle at which :meth:`tick` would sample.

        Host loops that fast-forward idle stretches use this (together
        with :meth:`clock` ``.first_reaching``) to bound the jump so no
        due sample is skipped; offers projecting before this cycle are
        guaranteed non-firing.
        """
        return self._next_due

    @property
    def clock(self):
        """The monotone clock rebasing this sampler's local cycles."""
        return self._clock

    def tick(self, cycle: int) -> bool:
        """Offer the sampler one simulation cycle; sample when due.

        Returns True when a snapshot was taken.  Cheap when not due:
        one clock advance and one comparison.
        """
        global_cycle = self._clock.advance(cycle)
        if global_cycle < self._next_due:
            return False
        self._sample(global_cycle)
        return True

    def sample(self, cycle: int) -> dict:
        """Force a snapshot now regardless of the sampling cadence."""
        return self._sample(self._clock.advance(cycle))

    def _sample(self, global_cycle: int) -> dict:
        snap = {"v": SNAPSHOT_SCHEMA_VERSION, "seq": self._seq,
                "cycle": global_cycle,
                "metrics": self.metrics.to_dict()}
        if (self._max_snapshots is not None
                and len(self.series) == self._max_snapshots):
            del self.series[0]
            self.dropped += 1
        self.series.append(snap)
        self._seq += 1
        self._next_due = global_cycle + self.interval_cycles
        return snap

    def latest(self) -> dict | None:
        """The most recent snapshot, or None before the first sample."""
        return self.series[-1] if self.series else None

    def __len__(self) -> int:
        return len(self.series)
