"""Merging per-replica telemetry streams into one validating timeline.

A replica-sharded serving tier (:mod:`repro.serve.cluster`) runs R
independent daemons, each with its own :class:`~repro.obs.Obs` bundle:
R event logs and R snapshot series, every one starting its cycle
counter at zero.  The cluster surfaces *one* merged view, so the
streams must land on a single non-decreasing timeline — the same
problem :class:`~repro.obs.events.MonotoneClock` solves for restarting
component-local counters, applied across replicas instead of across
runs.

Replica streams are interleaved by ``(cycle, replica, seq)`` — each
input stream is already cycle-monotone, so the sorted merge is
monotone by construction and the per-replica emission order is
preserved — then re-enveloped: ``seq`` is reassigned contiguously over
the merged stream (``validate_events`` requires ``seq == index``),
``cycle`` is re-driven through one shared :class:`MonotoneClock`, and
the source replica index rides along as a ``replica`` payload field.
The merge is a pure function of the input streams, so a cluster's
merged telemetry is byte-identical however the replicas were executed
(sequentially or across a process pool).
"""

from __future__ import annotations

from repro.obs.events import MonotoneClock

#: Payload key carrying the source replica index in merged records.
REPLICA_KEY = "replica"


def _interleave(streams: list[list[dict]]) -> list[tuple[int, dict]]:
    """Stable ``(cycle, replica, seq)`` merge of per-replica records."""
    tagged = [(record["cycle"], replica, record["seq"], record)
              for replica, stream in enumerate(streams)
              for record in stream]
    tagged.sort(key=lambda item: item[:3])
    return [(replica, record) for _, replica, _, record in tagged]


def merge_event_logs(streams: list[list[dict]]) -> list[dict]:
    """Merge per-replica event records into one validating stream.

    Each input stream must be a list of event records (dicts) as
    emitted by an :class:`~repro.obs.events.EventLog`.  The result
    passes :func:`~repro.obs.export.validate_events`: contiguous
    ``seq``, non-decreasing ``cycle`` (rebased through one
    :class:`MonotoneClock`), with every record tagged by its source
    ``replica``.  Input records are not mutated.
    """
    clock = MonotoneClock()
    merged: list[dict] = []
    for replica, record in _interleave(streams):
        out = dict(record)
        out["seq"] = len(merged)
        out["cycle"] = clock.advance(record["cycle"])
        out[REPLICA_KEY] = replica
        merged.append(out)
    return merged


def merge_snapshot_series(series: list[list[dict]]) -> list[dict]:
    """Merge per-replica snapshot series onto one monotone timeline.

    Same envelope treatment as :func:`merge_event_logs`: interleave by
    ``(cycle, replica, seq)``, reassign ``seq``, rebase ``cycle``, tag
    the source ``replica``.  Snapshot ``metrics`` payloads are carried
    through untouched — aggregation across replicas is the cluster
    store's job, not the merge's.
    """
    clock = MonotoneClock()
    merged: list[dict] = []
    for replica, record in _interleave(series):
        out = dict(record)
        out["seq"] = len(merged)
        out["cycle"] = clock.advance(record["cycle"])
        out[REPLICA_KEY] = replica
        merged.append(out)
    return merged
