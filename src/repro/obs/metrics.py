"""Unified metrics registry: counters, gauges, histograms with labels.

Every layer of the model reports through one of these registries instead
of ad-hoc attribute counters, so a run's complete quantitative state can
be snapshotted (:meth:`MetricsRegistry.to_dict`) and exported as JSONL
(:mod:`repro.obs.export`).

Two backends share one interface:

* :class:`MetricsRegistry` — the recording backend.  Instruments are
  created once (typically in a component's ``__init__``) and mutated on
  hot paths with plain attribute arithmetic.
* :class:`NullMetricsRegistry` — the default.  Every instrument request
  returns one shared no-op instrument, so uninstrumented runs pay a
  single virtual call per event at most; components that cache their
  instruments pay nothing per event beyond the no-op method.

Instruments are identified by ``(name, labels)``; requesting the same
identity twice returns the same instrument, so independent components
can safely accumulate into shared series.
"""

from __future__ import annotations

import bisect

#: Default histogram bucket upper bounds (cycles/latency-flavored).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1000.0, 2000.0, 5000.0)


def _series_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Flat series name: ``name`` or ``name{k=v,k2=v2}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "min_seen", "max_seen")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = float("inf")
        self.max_seen = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_seen if self.count else 0.0,
            "max": self.max_seen if self.count else 0.0,
            "buckets": {
                (f"le_{b:g}" if i < len(self.bounds) else "inf"): c
                for i, (b, c) in enumerate(
                    zip(self.bounds + (float("inf"),), self.bucket_counts))
            },
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Create-once / mutate-often instrument store with labeled series."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @staticmethod
    def _labels(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, self._labels(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, self._labels(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = _series_key(name, self._labels(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram(bounds)
        return self._histograms[key]

    def to_dict(self) -> dict:
        """Deterministic deep snapshot of every series (sorted keys)."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }


class NullMetricsRegistry(MetricsRegistry):
    """No-op backend: hands out one shared inert instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object):
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):
        return NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object):
        return NULL_INSTRUMENT


#: Process-wide default backend for uninstrumented runs.
NULL_REGISTRY = NullMetricsRegistry()
