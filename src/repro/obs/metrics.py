"""Unified metrics registry: counters, gauges, histograms with labels.

Every layer of the model reports through one of these registries instead
of ad-hoc attribute counters, so a run's complete quantitative state can
be snapshotted (:meth:`MetricsRegistry.to_dict`) and exported as JSONL
(:mod:`repro.obs.export`).

Two backends share one interface:

* :class:`MetricsRegistry` — the recording backend.  Instruments are
  created once (typically in a component's ``__init__``) and mutated on
  hot paths with plain attribute arithmetic.
* :class:`NullMetricsRegistry` — the default.  Every instrument request
  returns one shared no-op instrument, so uninstrumented runs pay a
  single virtual call per event at most; components that cache their
  instruments pay nothing per event beyond the no-op method.

Instruments are identified by ``(name, labels)``; requesting the same
identity twice returns the same instrument, so independent components
can safely accumulate into shared series.
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager

#: Default histogram bucket upper bounds (cycles/latency-flavored).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1000.0, 2000.0, 5000.0)


def _series_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    """Flat series name: ``name`` or ``name{k=v,k2=v2}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def interpolated_percentile(values, q: float) -> float:
    """Linear-interpolated percentile of raw samples (``q`` in [0, 100]).

    The one shared quantile implementation for *raw sample lists*
    (NumPy's default ``linear`` interpolation): the serve daemon's
    latency report, the NoC latency tracker, and the perf tables all
    route through here, so every quantile printed anywhere in the repo
    is computed the same way.  (:meth:`Histogram.quantile` is the
    separate *bucketed* estimator for pre-aggregated series.)
    """
    import numpy as np

    return float(np.percentile(np.asarray(values), q))


def percentile_summary(values) -> dict:
    """count/p50/p95/p99/max summary of raw latency samples.

    The canonical latency block of the serve daemon's session report
    and the cluster report; empty input yields the all-``None`` shape
    so JSON consumers need no special-casing.
    """
    import numpy as np

    if not len(values):
        return {"count": 0, "p50": None, "p95": None, "p99": None,
                "max": None}
    arr = np.asarray(values, dtype=np.int64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"count": int(arr.size), "p50": float(p50),
            "p95": float(p95), "p99": float(p99),
            "max": int(arr.max())}


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "min_seen", "max_seen")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_seen = float("inf")
        self.max_seen = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> dict[str, int]:
        """Prometheus-convention buckets: ``le`` upper bound -> count of
        observations at or below it, cumulative, ending at ``+Inf``."""
        out: dict[str, int] = {}
        running = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            running += c
            out[f"{bound:g}"] = running
        out["+Inf"] = self.count
        return out

    def quantile(self, q: float) -> float:
        """Estimated q-quantile by linear interpolation within buckets.

        Same estimator as PromQL's ``histogram_quantile``, tightened at
        the edges with the tracked ``min_seen``/``max_seen``: the first
        bucket interpolates from the observed minimum, and the open
        ``+Inf`` bucket from its lower bound to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.bucket_counts):
            if not c:
                continue
            below = cumulative
            cumulative += c
            if cumulative >= rank:
                if i == 0:
                    lo = min(self.min_seen, self.bounds[0])
                else:
                    lo = self.bounds[i - 1]
                if i < len(self.bounds):
                    hi = min(self.bounds[i], self.max_seen)
                else:
                    hi = self.max_seen
                if hi <= lo:
                    return hi
                frac = (rank - below) / c
                return lo + (hi - lo) * frac
        return self.max_seen

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_seen if self.count else 0.0,
            "max": self.max_seen if self.count else 0.0,
            "buckets": self.cumulative_buckets(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Timer:
    """Wall-clock phase timer: observation count plus elapsed seconds.

    Wall-clock readings are machine-dependent, so the *default* registry
    snapshot (:meth:`MetricsRegistry.to_dict`) reports only the
    deterministic observation count — same-seed runs stay byte-identical.
    Pass ``wall_time=True`` to :meth:`to_dict` for the measured seconds
    (the ``repro perf`` harness does).
    """

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = float("-inf")

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @contextmanager
    def time(self):
        """Context manager timing its body with ``time.perf_counter``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self, wall_time: bool = False) -> dict:
        if not wall_time:
            return {"count": self.count}
        return {
            "count": self.count,
            "sum_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s if self.count else 0.0,
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    value = 0
    count = 0
    total_s = 0.0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self):
        yield self


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Create-once / mutate-often instrument store with labeled series."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, Timer] = {}
        #: Flat key -> (name, labels) so series enumerate structurally.
        self._meta: dict[str, tuple[str, tuple[tuple[str, str], ...]]] = {}

    @staticmethod
    def _labels(labels: dict[str, object]) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _key(self, name: str,
             labels: dict[str, object]) -> str:
        lbl = self._labels(labels)
        key = _series_key(name, lbl)
        if key not in self._meta:
            self._meta[key] = (name, lbl)
        return key

    def counter(self, name: str, **labels: object) -> Counter:
        key = self._key(name, labels)
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = self._key(name, labels)
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        key = self._key(name, labels)
        if key not in self._histograms:
            self._histograms[key] = Histogram(bounds)
        return self._histograms[key]

    def timer(self, name: str, **labels: object) -> Timer:
        key = self._key(name, labels)
        if key not in self._timers:
            self._timers[key] = Timer()
        return self._timers[key]

    def iter_series(self):
        """Enumerate every series without touching private dicts.

        Yields ``(kind, key, name, labels, instrument)`` tuples in a
        deterministic order: kind (counter, gauge, histogram, timer),
        then sorted flat key.  ``labels`` is a plain dict copy.
        """
        stores = (("counter", self._counters), ("gauge", self._gauges),
                  ("histogram", self._histograms), ("timer", self._timers))
        for kind, store in stores:
            for key in sorted(store):
                name, labels = self._meta[key]
                yield kind, key, name, dict(labels), store[key]

    def to_dict(self, wall_time: bool = False) -> dict:
        """Deterministic deep snapshot of every series (sorted keys).

        Timers report only their observation count unless
        ``wall_time=True`` — wall-clock sums would break the
        byte-identity of same-seed snapshots.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {},
                     "timers": {}}
        for kind, key, _name, _labels, inst in self.iter_series():
            if kind == "counter":
                out["counters"][key] = inst.value
            elif kind == "gauge":
                out["gauges"][key] = inst.value
            elif kind == "histogram":
                out["histograms"][key] = inst.to_dict()
            else:
                out["timers"][key] = inst.to_dict(wall_time)
        return out


class NullMetricsRegistry(MetricsRegistry):
    """No-op backend: hands out one shared inert instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: object):
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):
        return NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object):
        return NULL_INSTRUMENT

    def timer(self, name: str, **labels: object):
        return NULL_INSTRUMENT


#: Process-wide default backend for uninstrumented runs.
NULL_REGISTRY = NullMetricsRegistry()
