"""Live telemetry: Prometheus exposition, HTTP endpoint, terminal view.

Everything here is stdlib-only.  The pieces:

* :func:`prometheus_exposition` — render a registry snapshot
  (:meth:`MetricsRegistry.to_dict` shape) in the Prometheus text
  exposition format (version 0.0.4): counters as ``_total`` series,
  histograms with cumulative ``le`` buckets plus ``_sum``/``_count``,
  timers as summaries.
* :func:`parse_exposition` — a minimal parser/validator for that format;
  CI scrapes the endpoint and fails if the exposition does not parse or
  histogram buckets are not cumulative.
* :class:`TelemetryStore` — read side of a telemetry directory
  (``events.jsonl`` + ``snapshots.jsonl`` + ``metrics.prom``); files are
  re-read per request, so a directory being appended to serves live data.
* :class:`TelemetryServer` — ``http.server``-based endpoint behind
  ``python -m repro metrics-server`` (``/metrics``, ``/healthz``,
  ``/events``, ``/snapshots``).
* :func:`render_top` — the ``python -m repro top`` frame: hottest
  counters, gauges, histogram quantiles, per-tenant accounting, and the
  most recent events.

Determinism note: the exposition of a *snapshot* is a pure function of
its bytes, so same-seed runs produce byte-identical ``metrics.prom``
files.  Only the HTTP side lives on the wall clock, and it only
*reads*: ``repro serve --http-port`` proves the contract by serving a
live session through :class:`~repro.serve.live.LiveTelemetryStore`
with byte-identical artifacts whether or not a scraper is attached.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.obs.export import write_event_log, write_metrics_jsonl

#: File names inside a telemetry directory.
EVENTS_FILE = "events.jsonl"
SNAPSHOTS_FILE = "snapshots.jsonl"
EXPOSITION_FILE = "metrics.prom"

#: Content type the Prometheus text format is served under.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"       # metric name
    r"(\{[^}]*\})?"                       # optional label set
    r" (-?(?:[0-9.]+(?:[eE][-+]?[0-9]+)?)|[-+]?Inf|NaN)$")
_TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")
_KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


# ----------------------------------------------------------------------
# series-key plumbing


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a flat registry key ``name{k=v,...}`` into name + labels."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _prom_name(name: str, namespace: str) -> str:
    return _NAME_SANITIZE.sub("_", f"{namespace}_{name}" if namespace
                              else name)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _grouped(series: dict, namespace: str):
    """Yield (prom_name, labels, value_dict_or_scalar) grouped by name."""
    by_name: dict[str, list[tuple[dict, object]]] = {}
    for key in sorted(series):
        name, labels = parse_series_key(key)
        by_name.setdefault(_prom_name(name, namespace), []).append(
            (labels, series[key]))
    for prom in sorted(by_name):
        yield prom, by_name[prom]


# ----------------------------------------------------------------------
# exposition (write side)


def _expose_counters(lines: list[str], counters: dict,
                     namespace: str) -> None:
    for prom, entries in _grouped(counters, namespace):
        # Counter convention: one ``_total`` suffix, never doubled for
        # registry names that already carry it (engine.points_total).
        name = prom if prom.endswith("_total") else f"{prom}_total"
        lines.append(f"# TYPE {name} counter")
        for labels, value in entries:
            lines.append(f"{name}{_label_str(labels)} {_fmt(value)}")


def _expose_gauges(lines: list[str], gauges: dict, namespace: str) -> None:
    for prom, entries in _grouped(gauges, namespace):
        lines.append(f"# TYPE {prom} gauge")
        for labels, value in entries:
            lines.append(f"{prom}{_label_str(labels)} {_fmt(value)}")


def _le_key(le: str) -> float:
    return float("inf") if le == "+Inf" else float(le)


def _expose_histograms(lines: list[str], histograms: dict,
                       namespace: str) -> None:
    for prom, entries in _grouped(histograms, namespace):
        lines.append(f"# TYPE {prom} histogram")
        for labels, snap in entries:
            # JSON round-trips sort bucket keys alphabetically; re-sort
            # numerically so the text format lists increasing le bounds.
            for le, cum in sorted(snap["buckets"].items(),
                                  key=lambda kv: _le_key(kv[0])):
                bucket_labels = dict(labels, le=le)
                lines.append(
                    f"{prom}_bucket{_label_str(bucket_labels)} {_fmt(cum)}")
            lines.append(f"{prom}_sum{_label_str(labels)} "
                         f"{_fmt(snap['sum'])}")
            lines.append(f"{prom}_count{_label_str(labels)} "
                         f"{_fmt(snap['count'])}")


def _expose_timers(lines: list[str], timers: dict, namespace: str) -> None:
    for prom, entries in _grouped(timers, namespace):
        lines.append(f"# TYPE {prom} summary")
        for labels, snap in entries:
            if "sum_s" in snap:
                lines.append(f"{prom}_sum{_label_str(labels)} "
                             f"{_fmt(snap['sum_s'])}")
            lines.append(f"{prom}_count{_label_str(labels)} "
                         f"{_fmt(snap['count'])}")


def prometheus_exposition(metrics: dict, namespace: str = "repro",
                          extra_gauges: dict | None = None) -> str:
    """Render one registry snapshot in Prometheus text format.

    ``metrics`` is the :meth:`MetricsRegistry.to_dict` shape.
    ``extra_gauges`` (flat key -> value) lets callers append synthetic
    series such as the telemetry stream's own positions.
    """
    lines: list[str] = []
    _expose_counters(lines, metrics.get("counters", {}), namespace)
    _expose_gauges(lines, metrics.get("gauges", {}), namespace)
    _expose_histograms(lines, metrics.get("histograms", {}), namespace)
    _expose_timers(lines, metrics.get("timers", {}), namespace)
    if extra_gauges:
        _expose_gauges(lines, extra_gauges, namespace)
    return "\n".join(lines) + ("\n" if lines else "")


def registry_exposition(registry, namespace: str = "repro",
                        wall_time: bool = True) -> str:
    """Exposition of a live registry (wall-clock timer sums included)."""
    return prometheus_exposition(registry.to_dict(wall_time=wall_time),
                                 namespace=namespace)


# ----------------------------------------------------------------------
# exposition (parse/validate side)


def _check_bucket_monotonic(buckets: dict[tuple, list], problems: list[str],
                            samples: dict[str, float]) -> None:
    for (name, labelkey), les in buckets.items():
        cums = [samples[f"{name}|{labelkey}|{le}"]
                for le in sorted(les, key=_le_key)]
        if any(b < a for a, b in zip(cums, cums[1:])):
            problems.append(f"histogram {name}{{{labelkey}}} buckets are "
                            "not cumulative")


def parse_exposition(text: str) -> tuple[dict[str, float], list[str]]:
    """Parse Prometheus text format; returns (samples, problems).

    ``samples`` maps ``name{labels}`` back to the parsed float value.
    ``problems`` is empty for a well-formed exposition; it flags
    syntactically invalid lines, unknown TYPE declarations, duplicate
    samples, and non-cumulative histogram buckets.
    """
    samples: dict[str, float] = {}
    problems: list[str] = []
    buckets: dict[tuple, list] = {}
    raw: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _TYPE_LINE.match(line)
            if line.startswith("# TYPE"):
                if not m:
                    problems.append(f"line {lineno}: malformed TYPE line")
                elif m.group(2) not in _KNOWN_TYPES:
                    problems.append(f"line {lineno}: unknown metric type "
                                    f"{m.group(2)!r}")
            continue
        m = _SAMPLE_LINE.match(line)
        if not m:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labelpart, value = m.group(1), m.group(2) or "", m.group(3)
        sample_key = f"{name}{labelpart}"
        if sample_key in samples:
            problems.append(f"line {lineno}: duplicate sample "
                            f"{sample_key}")
        samples[sample_key] = float(value.replace("Inf", "inf"))
        if name.endswith("_bucket"):
            labels = dict(re.findall(r'([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"',
                                     labelpart))
            le = labels.pop("le", None)
            if le is None:
                problems.append(f"line {lineno}: bucket sample without le")
                continue
            labelkey = ",".join(f"{k}={v}"
                                for k, v in sorted(labels.items()))
            buckets.setdefault((name, labelkey), []).append(le)
            raw[f"{name}|{labelkey}|{le}"] = samples[sample_key]
    _check_bucket_monotonic(buckets, problems, raw)
    return samples, problems


# ----------------------------------------------------------------------
# telemetry directory: write + read sides


def write_telemetry_dir(root: str | os.PathLike, obs) -> dict[str, Path]:
    """Serialize an Obs bundle's telemetry into ``root``.

    Writes ``events.jsonl`` (the structured event log),
    ``snapshots.jsonl`` (the cycle-driven snapshot series) and
    ``metrics.prom`` (final-state exposition).  All three are canonical
    — same-seed runs produce byte-identical directories.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    paths = {
        "events": write_event_log(root / EVENTS_FILE, obs.events),
        "snapshots": write_metrics_jsonl(
            root / SNAPSHOTS_FILE,
            list(obs.sampler.series) if obs.sampler is not None else []),
    }
    prom = prometheus_exposition(obs.metrics.to_dict())
    (root / EXPOSITION_FILE).write_text(prom)
    paths["exposition"] = root / EXPOSITION_FILE
    return paths


class TelemetryStore:
    """Read side of a telemetry directory; files re-read per request."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def _jsonl(self, name: str) -> list[dict]:
        path = self.root / name
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                # A line mid-write; serve what parsed.
                break
        return records

    def events(self) -> list[dict]:
        """Every event record currently on disk (re-read per call)."""
        return self._jsonl(EVENTS_FILE)

    def events_tail(self, n: int) -> list[dict]:
        """The most recent ``n`` events (``/events?tail=N``)."""
        return self.events()[-n:] if n > 0 else []

    def snapshots(self) -> list[dict]:
        """Every snapshot currently on disk (re-read per call)."""
        return self._jsonl(SNAPSHOTS_FILE)

    def latest_snapshot(self) -> dict | None:
        """The most recent snapshot, or None for an empty directory."""
        snaps = self.snapshots()
        return snaps[-1] if snaps else None

    def exposition(self) -> str:
        """Prometheus text for the latest snapshot (plus stream meta)."""
        snap = self.latest_snapshot()
        if snap is None:
            path = self.root / EXPOSITION_FILE
            return path.read_text() if path.exists() else ""
        meta = {
            "telemetry.snapshot_cycle": snap["cycle"],
            "telemetry.snapshots": len(self.snapshots()),
            "telemetry.events": len(self.events()),
        }
        return prometheus_exposition(snap["metrics"], extra_gauges=meta)

    def health(self) -> dict:
        """``/healthz`` body: status plus stream sizes."""
        return {"status": "ok", "root": str(self.root),
                "snapshots": len(self.snapshots()),
                "events": len(self.events())}


# ----------------------------------------------------------------------
# HTTP endpoint


class _TelemetryHandler(BaseHTTPRequestHandler):
    store: TelemetryStore  # injected by TelemetryServer

    server_version = "repro-telemetry/1"

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass

    def _send(self, body: str, content_type: str, code: int = 200) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _tail_param(self, query: dict, default: int) -> int:
        try:
            return int(query.get("tail", [default])[0])
        except (TypeError, ValueError):
            return default

    def do_GET(self):  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        if url.path == "/metrics":
            self._send(self.store.exposition(), PROM_CONTENT_TYPE)
        elif url.path == "/healthz":
            self._send(json.dumps(self.store.health(), sort_keys=True),
                       "application/json")
        elif url.path == "/events":
            records = self.store.events_tail(self._tail_param(query, 100))
            body = "".join(json.dumps(r, sort_keys=True) + "\n"
                           for r in records)
            self._send(body, "application/x-ndjson")
        elif url.path == "/snapshots":
            records = self.store.snapshots()[-self._tail_param(query, 10):]
            body = "".join(json.dumps(r, sort_keys=True) + "\n"
                           for r in records)
            self._send(body, "application/x-ndjson")
        else:
            self._send("not found\n", "text/plain", code=404)


class TelemetryServer:
    """Stdlib HTTP server exposing a telemetry store.

    ``port=0`` binds an ephemeral port (tests); the bound port is on
    :attr:`port` after construction.  Use :meth:`start` for a background
    thread or :meth:`serve_forever` to block.
    """

    def __init__(self, store: TelemetryStore, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        handler = type("BoundTelemetryHandler", (_TelemetryHandler,),
                       {"store": store})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Serve from a daemon thread; returns immediately."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, close the socket, and join the thread."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> TelemetryServer:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# `repro top` frame rendering


def _top_section(title: str, rows: list[tuple], widths: tuple) -> list[str]:
    if not rows:
        return []
    lines = [title]
    for row in rows:
        cells = [str(c).ljust(w) if i == 0 else str(c).rjust(w)
                 for i, (c, w) in enumerate(zip(row, widths))]
        lines.append("  " + "  ".join(cells).rstrip())
    lines.append("")
    return lines


def _tenant_totals(counters: dict) -> dict[str, float]:
    totals: dict[str, float] = {}
    for key, value in counters.items():
        _, labels = parse_series_key(key)
        tenant = labels.get("tenant")
        if tenant is not None:
            totals[tenant] = totals.get(tenant, 0) + value
    return totals


def _event_line(event: dict) -> str:
    skip = {"v", "seq", "cycle", "type"}
    detail = " ".join(f"{k}={event[k]}" for k in event if k not in skip)
    if len(detail) > 60:
        detail = detail[:57] + "..."
    return f"@{event['cycle']:<8d} {event['type']:<20s} {detail}".rstrip()


def render_top(store: TelemetryStore, top_n: int = 10,
               events_tail: int = 8) -> str:
    """One ``repro top`` frame as a plain string (no ANSI control)."""
    snap = store.latest_snapshot()
    events = store.events()
    lines = [f"repro top — {store.root}"]
    if snap is None:
        lines.append("  (no snapshots yet)")
        return "\n".join(lines) + "\n"
    metrics = snap["metrics"]
    lines.append(f"  cycle={snap['cycle']} snapshots={snap['seq'] + 1} "
                 f"events={len(events)}")
    lines.append("")
    counters = metrics.get("counters", {})
    hottest = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    lines += _top_section(
        f"counters (top {top_n} by value)",
        [(k, _fmt(v)) for k, v in hottest[:top_n]], (44, 12))
    lines += _top_section(
        "gauges",
        [(k, _fmt(v)) for k, v in sorted(metrics.get("gauges",
                                                     {}).items())],
        (44, 12))
    hist_rows = [
        (k, h["count"], _fmt(round(h.get("p50", 0.0), 3)),
         _fmt(round(h.get("p95", 0.0), 3)),
         _fmt(round(h.get("p99", 0.0), 3)))
        for k, h in sorted(metrics.get("histograms", {}).items())]
    lines += _top_section("histograms (count / p50 / p95 / p99)",
                          hist_rows, (44, 8, 8, 8, 8))
    tenants = _tenant_totals(counters)
    lines += _top_section(
        "per-tenant accounting (counter totals)",
        [(t, _fmt(v)) for t, v in sorted(tenants.items())], (24, 12))
    lines += _top_section(
        f"recent events (last {events_tail})",
        [(_event_line(e),) for e in events[-events_tail:]], (0,))
    return "\n".join(lines).rstrip() + "\n"
