"""Span/event tracer whose clock is *simulation cycles*, not wall time.

Events carry a ``(layer, track)`` coordinate that maps onto the Chrome
trace-event ``(pid, tid)`` pair, so a run renders in Perfetto /
``chrome://tracing`` as one process row per model layer (engine,
multicore, noc, core, photonics) with one thread row per track (a node,
a fabric port range, a cache, ...).

Because timestamps are deterministic simulation state — never
``time.time()`` — two runs with the same seed produce byte-identical
traces, which makes trace files diffable regression artifacts.

The default backend is :class:`NullTracer`: every emit is a no-op and
``enabled`` is ``False`` so hot paths can skip argument building
entirely (``if tracer.enabled: ...``).
"""

from __future__ import annotations

from collections import deque

#: Model layers, in fixed pid order (pid = index + 1).
LAYERS = ("engine", "multicore", "noc", "core", "photonics")

_PIDS = {layer: i + 1 for i, layer in enumerate(LAYERS)}


class CycleTracer:
    """Recording tracer: appends Chrome-trace-event dicts in emit order.

    Pass ``max_events`` for a bounded ring buffer: once full, the oldest
    event is evicted per emit and counted on :attr:`dropped`.  A
    long-lived telemetry stream (the serve daemon) needs bounded memory;
    one-shot trace runs keep the default unbounded list.
    """

    enabled = True

    def __init__(self, max_events: int | None = None) -> None:
        self.events: list[dict] | deque[dict]
        self._max_events = max_events
        if max_events is None:
            self.events = []
        else:
            self.events = deque(maxlen=max_events)
        #: Oldest-event evictions under ``max_events`` (bounded mode).
        self.dropped = 0
        #: (layer, track label) -> tid, assigned in first-use order.
        self._tids: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------

    def _record(self, event: dict) -> None:
        if (self._max_events is not None
                and len(self.events) == self._max_events):
            self.dropped += 1
        self.events.append(event)

    def _coords(self, layer: str, track: str) -> tuple[int, int]:
        if layer not in _PIDS:
            raise ValueError(f"unknown layer {layer!r}; known: {LAYERS}")
        key = (layer, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([1 for k in self._tids if k[0] == layer]) + 1
            self._tids[key] = tid
        return _PIDS[layer], tid

    def instant(self, layer: str, track: str, name: str, cycle: int,
                **args: object) -> None:
        """A point event (``ph: "i"``) at one simulation cycle."""
        pid, tid = self._coords(layer, track)
        self._record({"name": name, "ph": "i", "ts": int(cycle),
                      "pid": pid, "tid": tid, "s": "t",
                      "args": args})

    def complete(self, layer: str, track: str, name: str,
                 start_cycle: int, end_cycle: int, **args: object) -> None:
        """A closed span (``ph: "X"``) covering ``[start, end]`` cycles."""
        pid, tid = self._coords(layer, track)
        self._record({"name": name, "ph": "X",
                      "ts": int(start_cycle),
                      "dur": max(int(end_cycle) - int(start_cycle), 0),
                      "pid": pid, "tid": tid, "args": args})

    def counter(self, layer: str, track: str, name: str, cycle: int,
                **values: float) -> None:
        """A counter sample (``ph: "C"``) — renders as a timeline plot."""
        pid, tid = self._coords(layer, track)
        self._record({"name": name, "ph": "C", "ts": int(cycle),
                      "pid": pid, "tid": tid, "args": values})

    # ------------------------------------------------------------------

    def metadata_events(self) -> list[dict]:
        """Process/thread naming events for the trace viewer."""
        meta: list[dict] = []
        for layer in LAYERS:
            meta.append({"name": "process_name", "ph": "M", "ts": 0,
                         "pid": _PIDS[layer], "tid": 0,
                         "args": {"name": layer}})
        for (layer, track), tid in self._tids.items():
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": _PIDS[layer], "tid": tid,
                         "args": {"name": track}})
        return meta

    def events_by_layer(self) -> dict[str, int]:
        """Event counts per layer (diagnostics and tests)."""
        by_pid: dict[int, int] = {}
        for event in self.events:
            by_pid[event["pid"]] = by_pid.get(event["pid"], 0) + 1
        return {layer: by_pid.get(_PIDS[layer], 0) for layer in LAYERS}


class NullTracer:
    """No-op backend; ``enabled`` is False so callers can skip emits."""

    enabled = False
    dropped = 0

    #: Shared empty list — never mutated (all emits are no-ops).
    events: list[dict] = []

    def instant(self, layer: str, track: str, name: str, cycle: int,
                **args: object) -> None:
        pass

    def complete(self, layer: str, track: str, name: str,
                 start_cycle: int, end_cycle: int, **args: object) -> None:
        pass

    def counter(self, layer: str, track: str, name: str, cycle: int,
                **values: float) -> None:
        pass

    def metadata_events(self) -> list[dict]:
        return []

    def events_by_layer(self) -> dict[str, int]:
        return {layer: 0 for layer in LAYERS}


#: Process-wide default backend for uninstrumented runs.
NULL_TRACER = NullTracer()
