"""Exporters: Chrome trace-event JSON, JSONL metrics, event logs.

``chrome_trace_payload`` produces the JSON object format of the Chrome
trace-event specification (loadable in Perfetto and ``chrome://tracing``):
metadata naming events first, then every recorded event in emission
order.  Serialization is canonical (sorted keys, fixed separators) so
identical simulations produce byte-identical files.

``validate_chrome_trace`` is the minimal schema check the CI smoke job
and the tests run against emitted traces: every event must carry
``name`` / ``ph`` / ``ts`` / ``pid`` / ``tid``.

``write_event_log`` / ``load_and_validate_events`` are the structured
event log's disk round-trip (:mod:`repro.obs.events`): append-only
JSONL, one canonical record per line.  The loader is deliberately
paranoid — it flags truncated lines, unknown schema versions,
out-of-order sequence numbers, non-monotonic cycle timestamps, unknown
event types, and missing per-type payload fields, because consumers
(``metrics-server --check``, ``serve --check``, ``repro top``) ingest
logs they did not write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    EventLog,
    NullEventLog,
)
from repro.obs.tracer import CycleTracer, NullTracer

#: Event keys every Chrome trace event must carry.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")
#: Phase codes this tracer can emit (plus metadata).
KNOWN_PHASES = ("X", "i", "C", "M", "B", "E")


def chrome_trace_payload(tracer: CycleTracer | NullTracer,
                         other_data: dict | None = None) -> dict:
    """Assemble the trace-event JSON object for one tracer."""
    payload: dict = {
        "traceEvents": tracer.metadata_events() + list(tracer.events),
        "displayTimeUnit": "ms",
    }
    if other_data:
        payload["otherData"] = dict(other_data)
    return payload


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str | os.PathLike,
                       tracer: CycleTracer | NullTracer,
                       other_data: dict | None = None) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace_payload(tracer, other_data)
    path.write_text(_canonical(payload) + "\n")
    return path


def write_metrics_jsonl(path: str | os.PathLike,
                        snapshots: list[dict]) -> Path:
    """Write metric snapshots, one canonical-JSON object per line."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_canonical(snap) for snap in snapshots]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a trace payload; returns a list of problems (empty=ok).

    Checks the containing object shape, the required per-event keys, the
    phase codes, and that ``ts`` is numeric and non-negative.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event[{i}] missing keys {missing}")
            continue
        if event["ph"] not in KNOWN_PHASES:
            problems.append(f"event[{i}] has unknown phase {event['ph']!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event[{i}] has invalid ts {ts!r}")
        if event["ph"] == "X" and "dur" not in event:
            problems.append(f"event[{i}] is a complete span without dur")
    return problems


def load_and_validate(path: str | os.PathLike) -> list[str]:
    """Read a trace file from disk and schema-check it."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable trace {path}: {exc}"]
    return validate_chrome_trace(payload)


# ----------------------------------------------------------------------
# structured event log (repro.obs.events) round-trip


def write_event_log(path: str | os.PathLike,
                    log: EventLog | NullEventLog) -> Path:
    """Write an event log as canonical JSONL; returns the path written."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_canonical(record) for record in log.events]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def _validate_event_record(i: int, record: object,
                           problems: list[str]) -> dict | None:
    """Envelope checks for one parsed record; returns it when usable."""
    if not isinstance(record, dict):
        problems.append(f"event[{i}] is not an object")
        return None
    missing = [k for k in ("v", "seq", "cycle", "type") if k not in record]
    if missing:
        problems.append(f"event[{i}] missing envelope keys {missing}")
        return None
    if record["v"] != EVENT_SCHEMA_VERSION:
        problems.append(f"event[{i}] has unknown schema version "
                        f"{record['v']!r} (expected "
                        f"{EVENT_SCHEMA_VERSION})")
        return None
    return record


def validate_events(records: list[object]) -> list[str]:
    """Schema-check parsed event records; returns problems (empty=ok)."""
    problems: list[str] = []
    last_cycle = None
    for i, raw in enumerate(records):
        record = _validate_event_record(i, raw, problems)
        if record is None:
            continue
        if record["seq"] != i:
            problems.append(f"event[{i}] has sequence {record['seq']}, "
                            f"expected {i}")
        cycle = record["cycle"]
        if not isinstance(cycle, int) or cycle < 0:
            problems.append(f"event[{i}] has invalid cycle {cycle!r}")
        elif last_cycle is not None and cycle < last_cycle:
            problems.append(f"event[{i}] has non-monotonic cycle {cycle} "
                            f"(previous {last_cycle})")
        else:
            last_cycle = cycle
        required = EVENT_TYPES.get(record["type"])
        if required is None:
            problems.append(f"event[{i}] has unknown type "
                            f"{record['type']!r}")
        else:
            absent = [k for k in required if k not in record]
            if absent:
                problems.append(f"event[{i}] ({record['type']}) missing "
                                f"payload fields {absent}")
    return problems


def load_and_validate_events(path: str | os.PathLike) -> list[str]:
    """Read an event log from disk and schema-check it.

    Failure modes covered: unreadable file, truncated/unparseable JSONL
    lines, unknown schema versions, sequence gaps, non-monotonic cycle
    timestamps, unknown event types, missing payload fields.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable event log {path}: {exc}"]
    problems: list[str] = []
    records: list[object] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            problems.append(f"line {lineno}: unparseable JSON "
                            "(truncated write?)")
    return problems + validate_events(records)
