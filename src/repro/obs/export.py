"""Exporters: Chrome trace-event JSON and JSONL metric snapshots.

``chrome_trace_payload`` produces the JSON object format of the Chrome
trace-event specification (loadable in Perfetto and ``chrome://tracing``):
metadata naming events first, then every recorded event in emission
order.  Serialization is canonical (sorted keys, fixed separators) so
identical simulations produce byte-identical files.

``validate_chrome_trace`` is the minimal schema check the CI smoke job
and the tests run against emitted traces: every event must carry
``name`` / ``ph`` / ``ts`` / ``pid`` / ``tid``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.tracer import CycleTracer, NullTracer

#: Event keys every Chrome trace event must carry.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")
#: Phase codes this tracer can emit (plus metadata).
KNOWN_PHASES = ("X", "i", "C", "M", "B", "E")


def chrome_trace_payload(tracer: CycleTracer | NullTracer,
                         other_data: dict | None = None) -> dict:
    """Assemble the trace-event JSON object for one tracer."""
    payload: dict = {
        "traceEvents": tracer.metadata_events() + list(tracer.events),
        "displayTimeUnit": "ms",
    }
    if other_data:
        payload["otherData"] = dict(other_data)
    return payload


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str | os.PathLike,
                       tracer: CycleTracer | NullTracer,
                       other_data: dict | None = None) -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace_payload(tracer, other_data)
    path.write_text(_canonical(payload) + "\n")
    return path


def write_metrics_jsonl(path: str | os.PathLike,
                        snapshots: list[dict]) -> Path:
    """Write metric snapshots, one canonical-JSON object per line."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_canonical(snap) for snap in snapshots]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a trace payload; returns a list of problems (empty=ok).

    Checks the containing object shape, the required per-event keys, the
    phase codes, and that ``ts`` is numeric and non-negative.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            problems.append(f"event[{i}] missing keys {missing}")
            continue
        if event["ph"] not in KNOWN_PHASES:
            problems.append(f"event[{i}] has unknown phase {event['ph']!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event[{i}] has invalid ts {ts!r}")
        if event["ph"] == "X" and "dur" not in event:
            problems.append(f"event[{i}] is a complete span without dur")
    return problems


def load_and_validate(path: str | os.PathLike) -> list[str]:
    """Read a trace file from disk and schema-check it."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable trace {path}: {exc}"]
    return validate_chrome_trace(payload)
