"""Cross-layer observability: metrics registry + cycle-time tracer.

One :class:`Obs` bundle threads through every model layer (multicore,
noc, core/Algorithm 1, photonics, engine).  The default is
:data:`NULL_OBS` — both backends are inert no-ops — so uninstrumented
runs keep their performance and existing call sites need no changes.
``Obs.active()`` builds a recording pair; :mod:`repro.obs.export` turns
the result into Chrome trace-event JSON (Perfetto-loadable) and JSONL
metric snapshots.

Cycle-time semantics: tracer timestamps are simulation cycles (or a
component's own deterministic clock, e.g. the multicore layer's stream
offset), never wall time, so same-seed runs emit byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import (
    chrome_trace_payload,
    load_and_validate,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
)
from repro.obs.tracer import (
    LAYERS,
    NULL_TRACER,
    CycleTracer,
    NullTracer,
)

__all__ = [
    "LAYERS",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "CycleTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "Obs",
    "Timer",
    "chrome_trace_payload",
    "load_and_validate",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
]


@dataclass(frozen=True)
class Obs:
    """The observability pair handed to instrumented components."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: CycleTracer | NullTracer = field(
        default_factory=lambda: NULL_TRACER)

    @property
    def enabled(self) -> bool:
        """True when either backend records anything."""
        return self.metrics.enabled or self.tracer.enabled

    @classmethod
    def active(cls) -> Obs:
        """A recording registry + tracer pair."""
        return cls(metrics=MetricsRegistry(), tracer=CycleTracer())

    @classmethod
    def null(cls) -> Obs:
        """The shared inert pair (the default everywhere)."""
        return NULL_OBS


#: Shared inert bundle; safe to use as a default argument.
NULL_OBS = Obs()
