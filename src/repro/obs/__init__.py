"""Cross-layer observability: metrics, tracing, events, telemetry.

One :class:`Obs` bundle threads through every model layer (multicore,
noc, core/Algorithm 1, photonics, engine).  The default is
:data:`NULL_OBS` — every backend is an inert no-op — so uninstrumented
runs keep their performance and existing call sites need no changes.

Four backends ride in the bundle:

* ``metrics`` — :class:`MetricsRegistry`, labeled counters / gauges /
  histograms / timers (:mod:`repro.obs.metrics`).
* ``tracer`` — :class:`CycleTracer`, Chrome-trace span/instant events
  (:mod:`repro.obs.tracer`).
* ``events`` — :class:`EventLog`, the schema-versioned structured event
  log of runtime decisions (:mod:`repro.obs.events`).
* ``sampler`` — optional :class:`SnapshotSampler`, freezing the registry
  into a cycle-driven time-series (:mod:`repro.obs.snapshot`).

``Obs.active()`` builds a full recording bundle (post-hoc analysis:
trace + metrics + events); ``Obs.telemetry()`` builds the streaming
bundle (metrics + events + snapshots, no per-event trace) that
``python -m repro metrics-server`` / ``repro top`` read and the serve
daemon (:mod:`repro.serve`) streams over a running session.

Cycle-time semantics: all timestamps are simulation cycles (or a
component's own deterministic clock, e.g. the multicore layer's stream
offset), never wall time, so same-seed runs emit byte-identical traces,
event logs, and snapshot series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    NULL_EVENTS,
    EventLog,
    MonotoneClock,
    NullEventLog,
)
from repro.obs.export import (
    chrome_trace_payload,
    load_and_validate,
    load_and_validate_events,
    validate_chrome_trace,
    validate_events,
    write_chrome_trace,
    write_event_log,
    write_metrics_jsonl,
)
from repro.obs.merge import (
    merge_event_logs,
    merge_snapshot_series,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
    interpolated_percentile,
    percentile_summary,
)
from repro.obs.snapshot import (
    DEFAULT_INTERVAL_CYCLES,
    SnapshotSampler,
)
from repro.obs.telemetry import (
    TelemetryServer,
    TelemetryStore,
    parse_exposition,
    prometheus_exposition,
    registry_exposition,
    render_top,
    write_telemetry_dir,
)
from repro.obs.tracer import (
    LAYERS,
    NULL_TRACER,
    CycleTracer,
    NullTracer,
)

__all__ = [
    "DEFAULT_INTERVAL_CYCLES",
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "LAYERS",
    "NULL_EVENTS",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "CycleTracer",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MonotoneClock",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullTracer",
    "Obs",
    "SnapshotSampler",
    "TelemetryServer",
    "TelemetryStore",
    "Timer",
    "chrome_trace_payload",
    "interpolated_percentile",
    "load_and_validate",
    "load_and_validate_events",
    "merge_event_logs",
    "merge_snapshot_series",
    "parse_exposition",
    "percentile_summary",
    "prometheus_exposition",
    "registry_exposition",
    "render_top",
    "validate_chrome_trace",
    "validate_events",
    "write_chrome_trace",
    "write_event_log",
    "write_metrics_jsonl",
    "write_telemetry_dir",
]


@dataclass(frozen=True)
class Obs:
    """The observability bundle handed to instrumented components."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: CycleTracer | NullTracer = field(
        default_factory=lambda: NULL_TRACER)
    events: EventLog | NullEventLog = field(
        default_factory=lambda: NULL_EVENTS)
    sampler: SnapshotSampler | None = None

    @property
    def enabled(self) -> bool:
        """True when any backend records anything."""
        return (self.metrics.enabled or self.tracer.enabled
                or self.events.enabled or self.sampler is not None)

    @classmethod
    def active(cls, snapshot_interval: int | None = None) -> Obs:
        """A full recording bundle: registry + tracer + event log.

        Pass ``snapshot_interval`` (cycles) to also attach a snapshot
        sampler sharing the event log's monotone clock.
        """
        metrics = MetricsRegistry()
        events = EventLog()
        sampler = None
        if snapshot_interval is not None:
            sampler = SnapshotSampler(metrics, snapshot_interval,
                                      event_log=events)
        return cls(metrics=metrics, tracer=CycleTracer(), events=events,
                   sampler=sampler)

    @classmethod
    def telemetry(cls,
                  snapshot_interval: int = DEFAULT_INTERVAL_CYCLES,
                  max_events: int | None = None) -> Obs:
        """The streaming bundle: metrics + events + snapshots, no tracer.

        This is what live consumers (``metrics-server`` / ``top`` /
        the serve daemon, :mod:`repro.serve`) run with: per-event
        Chrome tracing stays
        off (unbounded memory, the biggest overhead), while counters,
        the structured event log, and the cycle-driven snapshot series
        stay on.  ``max_events`` bounds the event log for long-lived
        processes.
        """
        metrics = MetricsRegistry()
        events = EventLog(max_events=max_events)
        sampler = SnapshotSampler(metrics, snapshot_interval,
                                  event_log=events)
        return cls(metrics=metrics, tracer=NULL_TRACER, events=events,
                   sampler=sampler)

    @classmethod
    def null(cls) -> Obs:
        """The shared inert bundle (the default everywhere)."""
        return NULL_OBS


#: Shared inert bundle; safe to use as a default argument.
NULL_OBS = Obs()
