"""System- and device-level configuration for the Flumen reproduction.

Two parameter tables drive the whole evaluation, mirroring the paper:

* :class:`SystemConfig` — Table 1 ("System-level parameters for performance
  evaluation"): core counts, cache sizes, link energies/bandwidths, and the
  Flumen compute parameters.
* :class:`DeviceParams` — Table 2 ("Photonic and electronic device
  parameters"): per-device optical losses and electrical powers used by the
  photonic power/energy models.

All values default to the paper's numbers.  Every model in the library takes
one of these objects (or both) so experiments can sweep parameters without
monkey-patching globals.

Unit conventions (enforced by attribute names):

* ``*_hz``        frequency in hertz
* ``*_db``        optical loss/gain in decibels (positive = loss)
* ``*_db_per_cm`` distributed loss in decibels per centimetre
* ``*_w``         power in watts
* ``*_j_per_bit`` energy in joules per bit
* ``*_bps``       bandwidth in bits per second
* ``*_b``         size in bytes
* ``*_s``         time in seconds
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


GIGA = 1.0e9
MEGA = 1.0e6
KILO = 1.0e3
MILLI = 1.0e-3
MICRO = 1.0e-6
NANO = 1.0e-9
PICO = 1.0e-12
FEMTO = 1.0e-15


def db_to_linear(loss_db: float) -> float:
    """Convert a decibel loss (positive number) to a linear power transmission.

    >>> db_to_linear(3.0103)  # doctest: +ELLIPSIS
    0.4999...
    """
    return 10.0 ** (-loss_db / 10.0)


def linear_to_db(transmission: float) -> float:
    """Convert a linear power transmission in (0, 1] to a decibel loss."""
    if transmission <= 0.0:
        raise ValueError(f"transmission must be positive, got {transmission}")
    return -10.0 * math.log10(transmission)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert dBm to watts.  0 dBm == 1 mW."""
    return 1.0e-3 * 10.0 ** (power_dbm / 10.0)


def watts_to_dbm(power_w: float) -> float:
    """Convert watts to dBm."""
    if power_w <= 0.0:
        raise ValueError(f"power must be positive, got {power_w}")
    return 10.0 * math.log10(power_w / 1.0e-3)


@dataclass(frozen=True)
class CoreConfig:
    """Per-core parameters (Table 1, "Core" rows)."""

    frequency_hz: float = 2.5 * GIGA
    core_type: str = "out-of-order"
    count: int = 64
    l1i_size_b: int = 32 * 1024
    l1d_size_b: int = 32 * 1024
    #: Fused multiply-accumulate throughput per core per cycle.  A modest
    #: OoO core with one 128-bit SIMD FMA pipe sustains ~2 8-bit MACs/cycle
    #: on irregular linear-algebra code once fetch/decode stalls are folded in.
    macs_per_cycle: float = 2.0
    #: Fraction of memory stall cycles hidden by out-of-order overlap.
    memory_level_parallelism: float = 4.0


@dataclass(frozen=True)
class CacheConfig:
    """Cache hierarchy parameters (Table 1, L2/L3 rows)."""

    l2_size_b: int = 512 * 1024
    l3_size_b: int = 16 * 1024 * 1024
    l3_concentration: int = 4  # cores sharing one L3 slice / chiplet
    line_size_b: int = 64
    l1_latency_cycles: int = 4
    l2_latency_cycles: int = 12
    l3_latency_cycles: int = 38
    dram_latency_cycles: int = 180
    l1_assoc: int = 8
    l2_assoc: int = 8
    l3_assoc: int = 16


@dataclass(frozen=True)
class ElectricalLinkConfig:
    """Electrical NoP link parameters (Table 1, Poulton et al. [37])."""

    energy_j_per_bit: float = 1.17 * PICO
    bandwidth_bps: float = 800.0 * GIGA


@dataclass(frozen=True)
class PhotonicLinkConfig:
    """Photonic NoP link parameters (Table 1)."""

    energy_j_per_bit_64lambda: float = 0.703 * PICO
    modulation_hz: float = 10.0 * GIGA
    wavelengths: int = 64

    @property
    def bandwidth_bps(self) -> float:
        """Aggregate link bandwidth: one bit per wavelength per symbol."""
        return self.modulation_hz * self.wavelengths


@dataclass(frozen=True)
class FlumenComputeConfig:
    """Flumen computation parameters (Table 1, "Flumen Compute" rows)."""

    computation_wavelengths: int = 8
    input_modulation_hz: float = 5.0 * GIGA
    mzim_switch_delay_s: float = 6.0 * NANO
    comm_switch_delay_s: float = 1.0 * NANO
    equivalent_precision_bits: int = 8


@dataclass(frozen=True)
class SchedulerConfig:
    """Algorithm 1 parameters (Section 3.4 sensitivity analysis)."""

    #: Partition evaluation period τ in network cycles.
    tau_cycles: int = 100
    #: Buffer utilization threshold η (fraction).
    eta: float = 0.40
    #: Buffer scan depth ζ (fraction of the most-utilized buffers examined).
    zeta: float = 0.50


@dataclass(frozen=True)
class SystemConfig:
    """Table 1: the full 64-core / 16-chiplet evaluation platform."""

    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    elec_link: ElectricalLinkConfig = field(default_factory=ElectricalLinkConfig)
    phot_link: PhotonicLinkConfig = field(default_factory=PhotonicLinkConfig)
    compute: FlumenComputeConfig = field(default_factory=FlumenComputeConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Mesh arrangement (a :mod:`repro.photonics.registry` name) the
    #: compute partitions program their SVD circuits with.  The paper's
    #: platform uses the Clements rectangle; alternatives trade device
    #: count against optical depth (see the ``mesh_comparison`` task).
    mesh_architecture: str = "clements"
    #: Cap on packets fed to the NoP cycle simulator per system run;
    #: heavier memory traces are subsampled and the energy counters
    #: rescaled.  Every rescale is logged (logger ``repro.system``) so
    #: no run is capped silently.
    max_simulated_packets: int = 3000

    @property
    def chiplets(self) -> int:
        """Number of chiplets: cores divided by the L3 concentration."""
        return self.core.count // self.cache.l3_concentration

    @property
    def mzim_ports(self) -> int:
        """Flumen MZIM port count: one port pair per two chiplets.

        The paper's 16-chiplet system uses an 8x8 MZIM (Section 5.1), i.e.
        each MZIM port serves two chiplets through a shared endpoint.
        """
        return self.chiplets // 2

    def replace(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with top-level sections replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class WaveguideParams:
    straight_loss_db_per_cm: float = 1.5
    bent_loss_db_per_cm: float = 3.8


@dataclass(frozen=True)
class YBranchParams:
    loss_db: float = 0.3


@dataclass(frozen=True)
class MRRParams:
    radius_um: float = 5.0
    thru_loss_db: float = 0.1
    drop_loss_db: float = 1.0
    modulation_power_w: float = 0.5 * MILLI
    driver_power_w: float = 1.0 * MILLI
    thermal_tuning_power_w: float = 1.0 * MILLI


@dataclass(frozen=True)
class MZIParams:
    phase_shifter_power_w: float = 1.0 * NANO
    phase_shifter_loss_db: float = 0.23
    coupler_loss_db: float = 0.02
    #: Phase programming times (Section 4.1): 1 ns for communication states,
    #: 6 ns for the higher-accuracy computation phases.
    comm_program_time_s: float = 1.0 * NANO
    compute_program_time_s: float = 6.0 * NANO

    @property
    def insertion_loss_db(self) -> float:
        """Loss through one MZI: two 3-dB couplers plus the phase shifter."""
        return self.phase_shifter_loss_db + 2.0 * self.coupler_loss_db


@dataclass(frozen=True)
class PhotodiodeParams:
    #: Receiver sensitivity for on-off-keyed communication.  Table 2 prints
    #: "20 dBm"; a detector that needs +20 dBm (100 mW) would be absurd, so
    #: the sign is a misprint.  -30 dBm calibrates the laser-power and
    #: link-energy models to the paper's reported values (0.703 pJ/bit,
    #: Figure 12a); analog *computation* needs a much larger optical budget,
    #: captured separately in ComputeCalibration.fixed_loss_db.
    sensitivity_dbm: float = -30.0
    dark_current_a: float = 25.0e-12
    extinction_ratio_db: float = 7.0
    responsivity_a_per_w: float = 1.0


@dataclass(frozen=True)
class LaserParams:
    #: Optical wall-plug efficiency.
    owpe: float = 0.2
    rin_db_per_hz: float = -140.0


@dataclass(frozen=True)
class ConverterParams:
    adc_power_w: float = 29.0 * MILLI
    dac_power_w: float = 50.0 * MILLI
    tia_power_w: float = 295.0 * MICRO
    serdes_power_w: float = 1.3 * MILLI
    adc_sample_rate_hz: float = 5.0 * GIGA
    dac_sample_rate_hz: float = 14.0 * GIGA


@dataclass(frozen=True)
class DeviceParams:
    """Table 2: photonic and electronic device parameters."""

    waveguide: WaveguideParams = field(default_factory=WaveguideParams)
    y_branch: YBranchParams = field(default_factory=YBranchParams)
    mrr: MRRParams = field(default_factory=MRRParams)
    mzi: MZIParams = field(default_factory=MZIParams)
    photodiode: PhotodiodeParams = field(default_factory=PhotodiodeParams)
    laser: LaserParams = field(default_factory=LaserParams)
    converter: ConverterParams = field(default_factory=ConverterParams)

    def replace(self, **kwargs: object) -> "DeviceParams":
        """Return a copy with device sections replaced."""
        return dataclasses.replace(self, **kwargs)


DEFAULT_SYSTEM = SystemConfig()
DEFAULT_DEVICES = DeviceParams()
