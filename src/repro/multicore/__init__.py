"""Multicore substrate: caches, cores, energy and area (Sniper + McPAT
substitute).
"""

from repro.multicore.area import (
    CHIPLET_BASE_MM2,
    MZI_AREA_MM2,
    AreaModel,
    AreaReport,
    flumen_mzim_mzis,
)
from repro.multicore.cache import (
    Cache,
    CacheHierarchy,
    CacheStats,
    HierarchyCounts,
    blocked_stream,
    strided_stream,
)
from repro.multicore.cpu import CoreModel, PhaseCost
from repro.multicore.energy import (
    CORE_MAC_ENERGY_J,
    CoreEnergyModel,
    EnergyBreakdown,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "CHIPLET_BASE_MM2",
    "CORE_MAC_ENERGY_J",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "CoreEnergyModel",
    "CoreModel",
    "EnergyBreakdown",
    "HierarchyCounts",
    "MZI_AREA_MM2",
    "PhaseCost",
    "blocked_stream",
    "flumen_mzim_mzis",
    "strided_stream",
]
