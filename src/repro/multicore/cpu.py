"""Analytic out-of-order core throughput model (the Sniper substitute's
compute side).

Sniper models cores mechanistically (interval simulation); for the linear
algebra kernels evaluated here the governing quantities are sustained MAC
throughput, non-MAC instruction overhead, and exposed memory stalls.  The
model composes those three, with memory-level parallelism hiding a
configurable share of miss latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CoreConfig
from repro.multicore.cache import CacheHierarchy, HierarchyCounts


@dataclass(frozen=True)
class PhaseCost:
    """Cycle cost of one execution phase on the core cluster."""

    compute_cycles: float
    stall_cycles: float
    macs: int
    other_ops: int

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles


@dataclass
class CoreModel:
    """Throughput model for one core."""

    config: CoreConfig = field(default_factory=CoreConfig)
    #: Non-MAC instructions retired per MAC in scalar linear-algebra code
    #: (loads, address arithmetic, loop control).
    ops_per_mac: float = 2.0

    def phase_cost(self, macs: int, other_ops: int,
                   counts: HierarchyCounts | None,
                   hierarchy: CacheHierarchy | None,
                   parallel_cores: int = 1) -> PhaseCost:
        """Cycles to execute a phase spread over ``parallel_cores`` cores."""
        if parallel_cores < 1:
            raise ValueError("need at least one core")
        implicit_ops = int(macs * self.ops_per_mac)
        issue_cycles = (macs / self.config.macs_per_cycle
                        + (other_ops + implicit_ops) / 2.0)
        stall = 0.0
        if counts is not None and hierarchy is not None:
            stall = hierarchy.stall_cycles(
                counts, mlp=self.config.memory_level_parallelism)
        return PhaseCost(
            compute_cycles=issue_cycles / parallel_cores,
            stall_cycles=stall / parallel_cores,
            macs=macs,
            other_ops=other_ops + implicit_ops,
        )

    def seconds(self, cycles: float) -> float:
        return cycles / self.config.frequency_hz

    def macs_per_second(self, parallel_cores: int = 1) -> float:
        """Sustained MAC rate including instruction overhead."""
        cycles_per_mac = (1.0 / self.config.macs_per_cycle
                          + self.ops_per_mac / 2.0)
        return parallel_cores * self.config.frequency_hz / cycles_per_mac
