"""Area model (Section 5.1), 7 nm scaled.

Calibrated to the paper's reported figures:

* Flumen endpoint: 9.46 mm^2, of which 4.2% is the photonic transceiver;
* 8x8 Flumen MZIM + controller: 11.2 mm^2 (MZIM alone 5.04 mm^2);
* 64-core Flumen system: 162.6 mm^2 total;
* electrical mesh system: 114.9 mm^2;
* 64x64 MZIM: 291.20 mm^2 serving 128 chiplets of 1210.88 mm^2 combined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig

#: Area of one MZI (including thermal isolation and routing), mm^2.
#: Fits the paper's 64x64 MZIM figure: 291.2 mm^2 / 2080 MZIs.
MZI_AREA_MM2 = 0.14
#: Base chiplet area: 4 cores + L1/L2 + L3 slice, mm^2 (7 nm).
CHIPLET_BASE_MM2 = 6.90
#: One electrical mesh router + link drivers, mm^2.
MESH_ROUTER_MM2 = 0.28
#: Photonic transceiver (modulators, PDs, TIAs, SerDes): 4.2% of the
#: 9.46 mm^2 Flumen endpoint.
TRANSCEIVER_MM2 = 0.40
#: Compute-path converters (DACs/ADCs) at each Flumen endpoint.
CONVERTERS_MM2 = 2.16
#: MZIM control unit (buffers, matrix memory, arbiters, DAC array).
CONTROLLER_MM2 = 6.16


def flumen_mzim_mzis(ports: int) -> int:
    """MZIs in an N-port Flumen fabric: N(N-1)/2 mesh + N attenuators."""
    return ports * (ports - 1) // 2 + ports


@dataclass
class AreaReport:
    """Per-component areas in mm^2."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def __getitem__(self, key: str) -> float:
        return self.components[key]


class AreaModel:
    """Assembles system areas from device constants."""

    def __init__(self, system: SystemConfig | None = None) -> None:
        self.system = system or SystemConfig()

    def flumen_endpoint(self) -> AreaReport:
        """One Flumen chiplet endpoint (Section 5.1: 9.46 mm^2)."""
        return AreaReport({
            "chiplet": CHIPLET_BASE_MM2,
            "transceiver": TRANSCEIVER_MM2,
            "converters": CONVERTERS_MM2,
        })

    def mesh_endpoint(self) -> AreaReport:
        """One electrical-mesh chiplet endpoint."""
        return AreaReport({
            "chiplet": CHIPLET_BASE_MM2,
            "router": MESH_ROUTER_MM2,
        })

    def mzim(self, ports: int | None = None) -> float:
        """Interposer area of the Flumen MZIM fabric, mm^2."""
        ports = ports if ports is not None else self.system.mzim_ports
        return flumen_mzim_mzis(ports) * MZI_AREA_MM2

    def mzim_with_controller(self, ports: int | None = None) -> float:
        return self.mzim(ports) + CONTROLLER_MM2

    def flumen_system(self) -> AreaReport:
        """Full Flumen system (Section 5.1: 162.6 mm^2)."""
        chiplets = self.system.chiplets
        endpoint = self.flumen_endpoint().total
        return AreaReport({
            "endpoints": chiplets * endpoint,
            "mzim": self.mzim(),
            "controller": CONTROLLER_MM2,
        })

    def mesh_system(self) -> AreaReport:
        """Electrical-mesh system (Section 5.1: 114.9 mm^2)."""
        chiplets = self.system.chiplets
        return AreaReport({
            "endpoints": chiplets * self.mesh_endpoint().total,
        })

    def scaling_row(self, chiplets: int) -> dict[str, float]:
        """Interposer-vs-chiplet scaling (Section 5.1's 128-chiplet point).

        MZIM ports scale with chiplets/2; chiplet area scales linearly.
        """
        ports = chiplets // 2
        return {
            "chiplets": chiplets,
            "mzim_mm2": self.mzim(ports),
            "chiplet_mm2": chiplets * self.flumen_endpoint().total,
            "mzim_fraction": self.mzim(ports)
            / (chiplets * self.flumen_endpoint().total),
        }
