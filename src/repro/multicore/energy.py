"""Per-event energy accounting (McPAT substitute, 7 nm calibrated).

Every energy in Figure 13's breakdown maps to a counter multiplied by a
per-event constant.  The constants below are calibrated so the electrical
MAC baseline reproduces the paper's own anchor (0.2703 pJ per 8-bit
approximate MAC, Section 5.3) and the component split of Figure 13 (core
energy dominant, caches next, DRAM flat across topologies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PICO
from repro.multicore.cache import HierarchyCounts

#: Energy of one 8-bit MAC on the in-core datapath including instruction
#: overhead (fetch/decode/rename/RF) that Sniper+McPAT attribute per op.
CORE_MAC_ENERGY_J = 12.0 * PICO
#: Energy of one generic non-MAC core operation (address math, control).
CORE_OP_ENERGY_J = 8.0 * PICO
#: Per-line access energies, 7 nm scaled.
L1_ACCESS_ENERGY_J = 8.0 * PICO
L2_ACCESS_ENERGY_J = 22.0 * PICO
L3_ACCESS_ENERGY_J = 60.0 * PICO
#: One 64-byte DRAM line transfer (LPDDR-class, ~8 pJ/bit).
DRAM_LINE_ENERGY_J = 4000.0 * PICO
#: Core leakage + clock power per active core (7 nm, power-gated idle).
CORE_STATIC_W = 0.05


@dataclass
class EnergyBreakdown:
    """Joules per component — one bar of Figure 13."""

    core: float = 0.0
    l1: float = 0.0
    l2: float = 0.0
    l3: float = 0.0
    dram: float = 0.0
    nop: float = 0.0
    mzim: float = 0.0

    @property
    def total(self) -> float:
        return (self.core + self.l1 + self.l2 + self.l3 + self.dram
                + self.nop + self.mzim)

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            core=self.core + other.core,
            l1=self.l1 + other.l1,
            l2=self.l2 + other.l2,
            l3=self.l3 + other.l3,
            dram=self.dram + other.dram,
            nop=self.nop + other.nop,
            mzim=self.mzim + other.mzim,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            core=self.core * factor, l1=self.l1 * factor,
            l2=self.l2 * factor, l3=self.l3 * factor,
            dram=self.dram * factor, nop=self.nop * factor,
            mzim=self.mzim * factor)

    def as_dict(self) -> dict[str, float]:
        return {"core": self.core, "l1": self.l1, "l2": self.l2,
                "l3": self.l3, "dram": self.dram, "nop": self.nop,
                "mzim": self.mzim}


@dataclass
class CoreEnergyModel:
    """Maps operation/cache counters to joules."""

    mac_energy_j: float = CORE_MAC_ENERGY_J
    op_energy_j: float = CORE_OP_ENERGY_J
    l1_energy_j: float = L1_ACCESS_ENERGY_J
    l2_energy_j: float = L2_ACCESS_ENERGY_J
    l3_energy_j: float = L3_ACCESS_ENERGY_J
    dram_energy_j: float = DRAM_LINE_ENERGY_J
    core_static_w: float = CORE_STATIC_W

    def compute_energy(self, macs: int, other_ops: int,
                       active_cores: int, runtime_s: float) -> float:
        """Core component: dynamic op energy plus static over the runtime."""
        dynamic = macs * self.mac_energy_j + other_ops * self.op_energy_j
        static = active_cores * self.core_static_w * runtime_s
        return dynamic + static

    def cache_energy(self, counts: HierarchyCounts,
                     chiplets: int = 1) -> tuple[float, float, float, float]:
        """(L1, L2, L3, DRAM) joules for one hierarchy's counters, scaled
        to ``chiplets`` identical chiplets."""
        l1 = counts.l1.accesses * self.l1_energy_j * chiplets
        l2 = counts.l2.accesses * self.l2_energy_j * chiplets
        l3 = counts.l3.accesses * self.l3_energy_j * chiplets
        dram = counts.dram_accesses * self.dram_energy_j * chiplets
        return l1, l2, l3, dram
