"""Set-associative cache hierarchy simulation (the Sniper substitute's
memory side).

Caches are simulated at line granularity with true LRU replacement.  The
full hierarchy walks L1 -> L2 -> L3 -> DRAM, counting accesses, hits and
misses per level — exactly the quantities the McPAT-style energy model
(Figure 13's cache components) consumes.

Workloads feed the hierarchy with *access streams* — iterables of byte
addresses — generated from their actual data-structure walk (strided
weight streams, im2col window reads, output writes), so locality emerges
from structure rather than hand-set hit rates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config import CacheConfig, CoreConfig
from repro.obs import NULL_OBS, Obs


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, size_b: int, assoc: int, line_b: int,
                 name: str = "cache") -> None:
        if size_b % (assoc * line_b):
            raise ValueError(
                f"{name}: size {size_b} not divisible by assoc*line")
        self.name = name
        self.line_b = line_b
        self.assoc = assoc
        self.num_sets = size_b // (assoc * line_b)
        # Sets materialize on first touch: an L3 slice has thousands of
        # sets, and short streams (the system model builds a fresh
        # hierarchy per workload phase set) touch a handful.  An absent
        # set and an empty one behave identically under LRU.
        self._sets: dict[int, OrderedDict[int, None]] = {}
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = addr // self.line_b
        index = line % self.num_sets
        s = self._sets.get(index)
        if s is None:
            s = self._sets[index] = OrderedDict()
        self.stats.accesses += 1
        if line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = None
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass
class HierarchyCounts:
    """Access counts per level for one simulated stream."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    l3: CacheStats = field(default_factory=CacheStats)
    dram_accesses: int = 0


class CacheHierarchy:
    """Private L1d + L2 backed by a shared L3 slice (Table 1 shapes).

    One instance models one chiplet's representative core cluster; the
    system model scales counts by the number of active chiplets, which is
    accurate for the data-parallel workloads evaluated (each chiplet works
    an independent tile of the same structure).
    """

    def __init__(self, core: CoreConfig | None = None,
                 cache: CacheConfig | None = None,
                 obs: Obs = NULL_OBS) -> None:
        core = core or CoreConfig()
        self.cfg = cache or CacheConfig()
        line = self.cfg.line_size_b
        self.l1 = Cache(core.l1d_size_b, self.cfg.l1_assoc, line, "L1d")
        self.l2 = Cache(self.cfg.l2_size_b, self.cfg.l2_assoc, line, "L2")
        self.l3 = Cache(self.cfg.l3_size_b, self.cfg.l3_assoc, line, "L3")
        self.dram_accesses = 0
        self.obs = obs
        self._m_hits = {
            level: obs.metrics.counter("multicore.cache_hits", level=level)
            for level in ("l1", "l2", "l3")}
        self._m_misses = {
            level: obs.metrics.counter("multicore.cache_misses", level=level)
            for level in ("l1", "l2", "l3")}
        self._m_dram = obs.metrics.counter("multicore.dram_accesses")

    def access(self, addr: int) -> str:
        """Walk the hierarchy; returns the level that served the access."""
        if self.l1.access(addr):
            return "l1"
        if self.l2.access(addr):
            return "l2"
        if self.l3.access(addr):
            return "l3"
        self.dram_accesses += 1
        return "dram"

    def access_stream(self, addresses) -> HierarchyCounts:
        """Run a full address stream, returning the per-level deltas."""
        before = self.snapshot()
        for addr in addresses:
            self.access(addr)
        after = self.snapshot()
        counts = HierarchyCounts(
            l1=_delta(before.l1, after.l1),
            l2=_delta(before.l2, after.l2),
            l3=_delta(before.l3, after.l3),
            dram_accesses=after.dram_accesses - before.dram_accesses,
        )
        for level, stats in (("l1", counts.l1), ("l2", counts.l2),
                             ("l3", counts.l3)):
            self._m_hits[level].inc(stats.hits)
            self._m_misses[level].inc(stats.misses)
        self._m_dram.inc(counts.dram_accesses)
        return counts

    def snapshot(self) -> HierarchyCounts:
        return HierarchyCounts(
            l1=CacheStats(self.l1.stats.accesses, self.l1.stats.hits),
            l2=CacheStats(self.l2.stats.accesses, self.l2.stats.hits),
            l3=CacheStats(self.l3.stats.accesses, self.l3.stats.hits),
            dram_accesses=self.dram_accesses,
        )

    def stall_cycles(self, counts: HierarchyCounts,
                     mlp: float = 4.0) -> float:
        """Exposed memory stall cycles for a set of counts.

        Misses at each level pay the next level's latency; out-of-order
        overlap divides the exposed portion by the memory-level
        parallelism.
        """
        raw = (counts.l1.misses * self.cfg.l2_latency_cycles
               + counts.l2.misses * self.cfg.l3_latency_cycles
               + counts.dram_accesses * self.cfg.dram_latency_cycles)
        return raw / max(mlp, 1.0)


def _delta(before: CacheStats, after: CacheStats) -> CacheStats:
    return CacheStats(accesses=after.accesses - before.accesses,
                      hits=after.hits - before.hits)


def strided_stream(base: int, count: int, stride_b: int,
                   repeats: int = 1):
    """Address generator: ``repeats`` passes over a strided region.

    The workhorse for weight/activation streams: a second pass over a
    region that fits in a level hits there, which is how operand reuse
    expresses itself.
    """
    for _ in range(repeats):
        for i in range(count):
            yield base + i * stride_b


def blocked_stream(base: int, rows: int, cols: int, elem_b: int,
                   tile_rows: int, tile_cols: int):
    """Tiled 2-D walk of a row-major matrix (blocked matmul access order)."""
    row_bytes = cols * elem_b
    for tr in range(0, rows, tile_rows):
        for tc in range(0, cols, tile_cols):
            for r in range(tr, min(tr + tile_rows, rows)):
                for c in range(tc, min(tc + tile_cols, cols)):
                    yield base + r * row_bytes + c * elem_b
