"""High-level simulation harness: factories, single points, load sweeps.

This is the entry point the benchmarks use to regenerate Figure 11
(latency versus offered load for all four topologies and the synthetic
patterns) and the Section 5.2 energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.registry import backend_factory
from repro.noc.stats import SimulationResult
from repro.noc.traffic import TrafficGenerator

#: The paper's built-in topologies (Figure 10).  The authoritative set is
#: the backend registry — use :func:`registered_topologies` for anything
#: that must see plugged-in backends too.
TOPOLOGIES = ("ring", "mesh", "optbus", "flumen")


def make_network(name: str, nodes: int = 16,
                 vectorized: bool | None = None, **kwargs):
    """Build a ready-to-run network of any registered topology.

    Resolution goes through :mod:`repro.noc.registry`; an unknown name
    raises a :class:`ValueError` listing the currently-registered set.
    ``vectorized=None`` serves the struct-of-arrays backend when one is
    registered; ``False`` forces the per-object oracle (the equivalence
    suite and byte-identity checks use this), ``True`` requires the
    vectorized twin.
    """
    return backend_factory(name, vectorized=vectorized)(nodes, **kwargs)


@dataclass(frozen=True)
class SweepConfig:
    """Shared knobs for latency/load experiments."""

    nodes: int = 16
    packet_size: int = 4
    cycles: int = 3000
    warmup: int = 1000
    seed: int = 7
    saturation_latency: float = 300.0


def run_point(topology: str, pattern: str, load: float,
              config: SweepConfig | None = None) -> SimulationResult:
    """Simulate one (topology, pattern, load) point."""
    cfg = config or SweepConfig()
    net = make_network(topology, cfg.nodes)
    traffic = TrafficGenerator(cfg.nodes, pattern, load,
                               packet_size=cfg.packet_size, seed=cfg.seed)
    net.run(traffic, cycles=cfg.cycles, warmup=cfg.warmup)
    return net.result(pattern, load,
                      saturation_latency=cfg.saturation_latency)


def load_sweep(topology: str, pattern: str, loads: list[float],
               config: SweepConfig | None = None) -> list[SimulationResult]:
    """Latency-vs-load curve; stops sweeping past saturation."""
    results: list[SimulationResult] = []
    for load in loads:
        result = run_point(topology, pattern, load, config)
        results.append(result)
        if result.saturated:
            break
    return results


def zero_load_latency(topology: str,
                      config: SweepConfig | None = None) -> float:
    """Average latency at near-zero load (the curve's left asymptote)."""
    return run_point(topology, "uniform", 0.02, config).avg_latency


def saturation_load(topology: str, pattern: str,
                    loads: list[float] | None = None,
                    config: SweepConfig | None = None) -> float:
    """First offered load at which the network saturates (1.0 if never)."""
    loads = loads or [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    for result in load_sweep(topology, pattern, loads, config):
        if result.saturated:
            return result.load
    return 1.0
