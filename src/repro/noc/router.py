"""Input-queued virtual-channel wormhole router.

A faithful (if compact) Booksim-style router: per-input-port VC buffers,
route computation, output-VC allocation, separable switch allocation, and
credit-based flow control.  Each pipeline action takes one cycle, giving a
2-3 cycle per-hop latency plus one link cycle — in line with aggressive NoP
router designs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.packet import Flit


@dataclass
class VCState:
    """Bookkeeping for one input virtual channel."""

    buffer: deque = field(default_factory=deque)
    #: Output port the current packet heads to (-1 = not routed yet).
    out_port: int = -1
    #: Output VC allocated for the current packet (-1 = none yet).
    out_vc: int = -1

    @property
    def busy(self) -> bool:
        return bool(self.buffer) or self.out_port != -1


class Router:
    """One input-queued router instance."""

    def __init__(self, router_id: int, num_ports: int, num_vcs: int,
                 buffer_depth: int) -> None:
        self.router_id = router_id
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.inputs = [[VCState() for _ in range(num_vcs)]
                       for _ in range(num_ports)]
        #: Credits available toward each (output port, vc).
        self.credits = [[buffer_depth] * num_vcs for _ in range(num_ports)]
        #: Which (in_port, in_vc) currently owns each (out_port, out_vc).
        self.out_owner: list[list[tuple[int, int] | None]] = \
            [[None] * num_vcs for _ in range(num_ports)]
        self._vc_arbiters = [[RoundRobinArbiter(num_ports * num_vcs)
                              for _ in range(num_vcs)]
                             for _ in range(num_ports)]
        self._sw_input = [RoundRobinArbiter(num_vcs)
                          for _ in range(num_ports)]
        self._sw_output = [RoundRobinArbiter(num_ports * num_vcs)
                           for _ in range(num_ports)]

    # -- occupancy ------------------------------------------------------

    def buffer_space(self, in_port: int, vc: int) -> int:
        return self.buffer_depth - len(self.inputs[in_port][vc].buffer)

    def accept_flit(self, in_port: int, flit: Flit) -> None:
        state = self.inputs[in_port][flit.vc]
        if len(state.buffer) >= self.buffer_depth:
            raise RuntimeError(
                f"router {self.router_id} port {in_port} vc {flit.vc} "
                f"overflow — credit protocol violated")
        state.buffer.append(flit)

    def occupancy(self) -> int:
        """Total buffered flits (control-unit utilization metric)."""
        return sum(len(vc.buffer) for port in self.inputs for vc in port)

    # -- pipeline stages --------------------------------------------------

    def route_stage(self, route_fn) -> None:
        """Compute output ports for head flits of unrouted VCs."""
        for port in self.inputs:
            for state in port:
                if state.out_port == -1 and state.buffer \
                        and state.buffer[0].is_head:
                    state.out_port = route_fn(self.router_id,
                                              state.buffer[0].dst)

    def vc_alloc_stage(self, allowed_vcs_fn) -> None:
        """Allocate a free output VC to routed packets lacking one.

        ``allowed_vcs_fn(flit) -> list[int]`` restricts candidate VCs
        (deadlock classes).
        """
        # Gather requests per (out_port, out_vc).
        requests: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for p, port in enumerate(self.inputs):
            for v, state in enumerate(port):
                if state.out_port == -1 or state.out_vc != -1 \
                        or not state.buffer:
                    continue
                head = state.buffer[0]
                if not head.is_head:
                    continue
                for out_vc in allowed_vcs_fn(head):
                    if self.out_owner[state.out_port][out_vc] is None:
                        requests.setdefault(
                            (state.out_port, out_vc), []).append((p, v))
        for (out_port, out_vc), claimants in requests.items():
            if self.out_owner[out_port][out_vc] is not None:
                continue
            lines = [False] * (self.num_ports * self.num_vcs)
            for p, v in claimants:
                lines[p * self.num_vcs + v] = True
            winner = self._vc_arbiters[out_port][out_vc].grant(lines)
            if winner is None:
                continue
            p, v = divmod(winner, self.num_vcs)
            state = self.inputs[p][v]
            if state.out_vc == -1:  # may have won another VC this cycle
                state.out_vc = out_vc
                self.out_owner[out_port][out_vc] = (p, v)

    def switch_alloc_stage(self) -> list[tuple[int, int]]:
        """Pick (in_port, in_vc) winners, one per input and output port."""
        # Stage 1: each input port nominates one ready VC.
        nominated: list[tuple[int, int] | None] = []
        for p, port in enumerate(self.inputs):
            ready = [bool(state.buffer) and state.out_vc != -1
                     and self.credits[state.out_port][state.out_vc] > 0
                     for state in port]
            choice = self._sw_input[p].grant(ready) if any(ready) else None
            nominated.append(choice if choice is None else choice)
        # Stage 2: each output port picks among nominated inputs.
        per_output: dict[int, list[tuple[int, int]]] = {}
        for p, v in enumerate(nominated):
            if v is None:
                continue
            state = self.inputs[p][v]
            per_output.setdefault(state.out_port, []).append((p, v))
        winners: list[tuple[int, int]] = []
        for out_port, claimants in per_output.items():
            lines = [False] * (self.num_ports * self.num_vcs)
            for p, v in claimants:
                lines[p * self.num_vcs + v] = True
            grant = self._sw_output[out_port].grant(lines)
            if grant is not None:
                winners.append(divmod(grant, self.num_vcs))
        return winners

    def traverse(self, in_port: int, in_vc: int) -> tuple[Flit, int, int]:
        """Pop the winning flit; returns (flit, out_port, out_vc).

        Tail flits release the input VC and the output VC ownership.
        Caller is responsible for credit decrement and upstream credit
        return.
        """
        state = self.inputs[in_port][in_vc]
        flit = state.buffer.popleft()
        out_port, out_vc = state.out_port, state.out_vc
        if flit.is_tail:
            self.out_owner[out_port][out_vc] = None
            state.out_port = -1
            state.out_vc = -1
        return flit, out_port, out_vc

    def idle(self) -> bool:
        return all(not state.busy for port in self.inputs for state in port)
