"""Arbiters: round-robin for router switch allocation, wavefront for the
MZIM control unit's crossbar scheduling (Section 3.4).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.noc._jit import rr_pick, wavefront_ranks


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over ``n`` requesters."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self._last = n - 1

    def grant(self, requests: Sequence[bool]) -> int | None:
        """Return the granted requester index, or None when idle.

        The winner becomes lowest priority for the next arbitration.
        """
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines")
        for offset in range(1, self.n + 1):
            idx = (self._last + offset) % self.n
            if requests[idx]:
                self._last = idx
                return idx
        return None

    def grant_sparse(self, lines: Sequence[int]) -> int | None:
        """Grant among a sparse list of requesting line indices.

        Equivalent to :meth:`grant` over a dense vector with exactly
        ``lines`` set: the scan from ``_last + 1`` finds the line with
        the smallest rotation distance ``(line - last - 1) mod n``.
        Distances are distinct per line, so the minimum is unique.
        """
        if not len(lines):
            return None
        if len(lines) > 8:
            idx = rr_pick(np.asarray(lines, dtype=np.int64),
                          self._last, self.n)
        else:
            last, n = self._last, self.n
            idx = min(lines, key=lambda line: (line - last - 1) % n)
        self._last = idx
        return idx


class WavefrontArbiter:
    """Wavefront allocator for an ``n x n`` crossbar request matrix.

    Computes a maximal matching between inputs and outputs in a single
    combinational wave, rotating the priority diagonal every allocation for
    fairness — the arbiter the MZIM control unit uses to build
    communication maps (Section 3.4).
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("arbiter needs at least one port")
        self.n = n
        self._priority = 0

    def rotate(self, turns: int = 1) -> None:
        """Advance the priority diagonal without allocating.

        :meth:`allocate` rotates on *every* call, requests or not, so an
        idle fast path that skips building an empty request matrix must
        still rotate to keep later allocations cycle-exact.  ``turns``
        lets an idle fast-forward apply many skipped cycles at once.
        """
        self._priority = (self._priority + turns) % self.n

    def allocate(self, requests: np.ndarray) -> list[tuple[int, int]]:
        """Grant a conflict-free subset of the request matrix.

        ``requests[i, j]`` is truthy when input ``i`` wants output ``j``.
        Returns granted ``(input, output)`` pairs.
        """
        req = np.asarray(requests, dtype=bool)
        if req.shape != (self.n, self.n):
            raise ValueError(f"expected {(self.n, self.n)} matrix, "
                             f"got {req.shape}")
        row_free = [True] * self.n
        col_free = [True] * self.n
        grants: list[tuple[int, int]] = []
        for wave in range(self.n):
            diag = (self._priority + wave) % self.n
            for i in range(self.n):
                j = (diag - i) % self.n
                if req[i, j] and row_free[i] and col_free[j]:
                    grants.append((i, j))
                    row_free[i] = False
                    col_free[j] = False
        self._priority = (self._priority + 1) % self.n
        return grants

    def allocate_sparse(self, pairs: Sequence[tuple[int, int]]
                        ) -> list[tuple[int, int]]:
        """Allocate a sparse request list without building the matrix.

        Equivalent to :meth:`allocate` on a dense matrix with exactly
        ``pairs`` set: the dense scan visits cell ``(i, j)`` during wave
        ``((i + j) - priority) mod n`` and, within a wave, in ascending
        ``i``; greedily granting the sparse cells in that order yields
        the same matching, grant order included.  Cost is
        ``O(k log k)`` in the request count instead of ``O(n^2)``.
        """
        if not pairs:
            self._priority = (self._priority + 1) % self.n
            return []
        if len(pairs) > 16:
            rows = np.fromiter((i for i, _ in pairs), dtype=np.int64,
                               count=len(pairs))
            cols = np.fromiter((j for _, j in pairs), dtype=np.int64,
                               count=len(pairs))
            ranks = wavefront_ranks(rows, cols, self._priority, self.n)
            order = sorted(range(len(pairs)),
                           key=lambda k: (ranks[k], pairs[k][0]))
            ordered = [pairs[k] for k in order]
        else:
            prio, n = self._priority, self.n
            ordered = sorted(
                pairs, key=lambda ij: (((ij[0] + ij[1]) - prio) % n, ij[0]))
        row_used: set[int] = set()
        col_used: set[int] = set()
        grants: list[tuple[int, int]] = []
        for i, j in ordered:
            if i not in row_used and j not in col_used:
                grants.append((i, j))
                row_used.add(i)
                col_used.add(j)
        self._priority = (self._priority + 1) % self.n
        return grants

    def is_maximal(self, requests: np.ndarray,
                   grants: list[tuple[int, int]]) -> bool:
        """Check no further grant could be added (used by tests)."""
        req = np.asarray(requests, dtype=bool)
        rows = {i for i, _ in grants}
        cols = {j for _, j in grants}
        for i in range(self.n):
            for j in range(self.n):
                if req[i, j] and i not in rows and j not in cols:
                    return False
        return True


class SeparableAllocator:
    """Two-stage (input-first) separable allocator for switch allocation.

    Stage 1: each input port picks one of its requesting VCs (round-robin).
    Stage 2: each output port picks one requesting input (round-robin).
    Standard input-queued router allocation (Booksim's ``sep_if``).
    """

    def __init__(self, inputs: int, outputs: int) -> None:
        self.inputs = inputs
        self.outputs = outputs
        self._input_stage = [RoundRobinArbiter(outputs) for _ in range(inputs)]
        self._output_stage = [RoundRobinArbiter(inputs) for _ in range(outputs)]

    def allocate(self, requests: np.ndarray) -> list[tuple[int, int]]:
        """Grant input->output pairs from a boolean request matrix."""
        req = np.asarray(requests, dtype=bool)
        if req.shape != (self.inputs, self.outputs):
            raise ValueError("request matrix shape mismatch")
        # Stage 1: per-input selection.
        stage1 = np.zeros_like(req)
        for i in range(self.inputs):
            if req[i].any():
                j = self._input_stage[i].grant(list(req[i]))
                if j is not None:
                    stage1[i, j] = True
        # Stage 2: per-output selection.
        grants: list[tuple[int, int]] = []
        for j in range(self.outputs):
            column = list(stage1[:, j])
            if any(column):
                i = self._output_stage[j].grant(column)
                if i is not None:
                    grants.append((i, j))
        return grants
