"""Synthetic traffic patterns and injection processes (Section 4.1).

The paper evaluates uniform random, bit reversal, and shuffle (Figure 11);
the other Booksim classics are included for completeness and for the
sensitivity studies.  Destinations are functions of the source's binary
address, as in Dally & Towles.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.noc.packet import Packet

PatternFn = Callable[[int, np.random.Generator], int]


def _address_bits(nodes: int) -> int:
    bits = int(math.log2(nodes))
    if 2 ** bits != nodes:
        raise ValueError(f"bit-permutation patterns need power-of-2 nodes, "
                         f"got {nodes}")
    return bits


def uniform(nodes: int) -> PatternFn:
    """Uniform random: every other node equally likely."""

    def pick(src: int, rng: np.random.Generator) -> int:
        dst = int(rng.integers(0, nodes - 1))
        return dst if dst < src else dst + 1

    return pick


def bit_reversal(nodes: int) -> PatternFn:
    """Destination address is the bit-reversed source address."""
    bits = _address_bits(nodes)

    def pick(src: int, rng: np.random.Generator) -> int:
        out = 0
        for b in range(bits):
            if src & (1 << b):
                out |= 1 << (bits - 1 - b)
        return out

    return pick


def shuffle(nodes: int) -> PatternFn:
    """Perfect shuffle: rotate the address left by one bit."""
    bits = _address_bits(nodes)

    def pick(src: int, rng: np.random.Generator) -> int:
        return ((src << 1) | (src >> (bits - 1))) & (nodes - 1)

    return pick


def transpose(nodes: int) -> PatternFn:
    """Swap the high and low halves of the address."""
    bits = _address_bits(nodes)
    half = bits // 2

    def pick(src: int, rng: np.random.Generator) -> int:
        low = src & ((1 << half) - 1)
        high = src >> half
        return (low << (bits - half)) | high

    return pick


def bit_complement(nodes: int) -> PatternFn:
    """Complement every address bit."""
    _address_bits(nodes)

    def pick(src: int, rng: np.random.Generator) -> int:
        return (~src) & (nodes - 1)

    return pick


def neighbor(nodes: int) -> PatternFn:
    """Send to the next node, modulo the network size."""

    def pick(src: int, rng: np.random.Generator) -> int:
        return (src + 1) % nodes

    return pick


def tornado(nodes: int) -> PatternFn:
    """Send almost half-way around: src + ceil(N/2) - 1."""

    offset = (nodes + 1) // 2 - 1

    def pick(src: int, rng: np.random.Generator) -> int:
        dst = (src + offset) % nodes
        return dst if dst != src else (src + 1) % nodes

    return pick


def hotspot(nodes: int, hot: int = 0, fraction: float = 0.3) -> PatternFn:
    """Send ``fraction`` of traffic to one hot node, the rest uniformly."""
    background = uniform(nodes)

    def pick(src: int, rng: np.random.Generator) -> int:
        if src != hot and rng.random() < fraction:
            return hot
        return background(src, rng)

    return pick


PATTERNS: dict[str, Callable[[int], PatternFn]] = {
    "uniform": uniform,
    "bit_reversal": bit_reversal,
    "shuffle": shuffle,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "neighbor": neighbor,
    "tornado": tornado,
}


def make_pattern(name: str, nodes: int) -> PatternFn:
    """Look up a pattern by name."""
    try:
        return PATTERNS[name](nodes)
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}") from None


class TrafficGenerator:
    """Bernoulli packet injection following a synthetic pattern.

    ``load`` is the offered load in flits per node per cycle; each cycle
    each node independently creates a packet with probability
    ``load / packet_size``.
    """

    def __init__(self, nodes: int, pattern: str | PatternFn,
                 load: float, packet_size: int = 4,
                 seed: int = 1) -> None:
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        if packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        self.nodes = nodes
        self.pattern = (make_pattern(pattern, nodes)
                        if isinstance(pattern, str) else pattern)
        self.load = load
        self.packet_size = packet_size
        self.rng = np.random.default_rng(seed)
        self.generated = 0

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Packets created this cycle (possibly empty)."""
        prob = self.load / self.packet_size
        created: list[Packet] = []
        for src in range(self.nodes):
            if self.rng.random() >= prob:
                continue
            dst = self.pattern(src, self.rng)
            if dst == src:  # self-traffic is dropped, as in Booksim
                continue
            created.append(Packet(src=src, dst=dst,
                                  size_flits=self.packet_size,
                                  create_cycle=cycle))
            self.generated += 1
        return created


class TracePlayback:
    """Replays an explicit list of (cycle, src, dst, size) events.

    Used by the full-system model to drive the NoP with workload-derived
    traffic instead of a synthetic pattern.
    """

    def __init__(self, events: list[tuple[int, int, int, int]],
                 traffic_class: str = "data") -> None:
        self.events = sorted(events)
        self.traffic_class = traffic_class
        self._pos = 0
        self.generated = 0

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        created: list[Packet] = []
        while self._pos < len(self.events) \
                and self.events[self._pos][0] <= cycle:
            _, src, dst, size = self.events[self._pos]
            self._pos += 1
            if src == dst:
                continue
            created.append(Packet(src=src, dst=dst, size_flits=size,
                                  create_cycle=cycle,
                                  traffic_class=self.traffic_class))
            self.generated += 1
        return created

    def next_event_cycle(self, cycle: int) -> int | None:
        """Cycle of the next unplayed event, or None when exhausted.

        Declares this source idle-skippable: unlike a random generator
        (which draws RNG every cycle and so must be stepped through
        every cycle), a trace knows exactly when its next packet lands,
        letting :meth:`SimKernel.run` fast-forward quiescent stretches.
        The ``cycle`` argument is the caller's current cycle; all events
        at or before it have already been played.
        """
        if self._pos >= len(self.events):
            return None
        return self.events[self._pos][0]

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.events)
