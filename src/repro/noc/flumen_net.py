"""Flumen MZIM network model (Figure 10d): a non-blocking photonic crossbar.

Endpoint requests are buffered at the MZIM control unit; a wavefront
arbiter builds conflict-free communication maps each cycle (Section 3.4),
granted circuits pay the 1 ns (~3 cycle) MZI phase-programming delay, then
transfer one flit per cycle wavelength-parallel.

Setup is *pipelined*: while a source's circuit drains its last flits, the
control unit may pre-grant the source's next packet and program the (mode-
disjoint) MZI phases concurrently, so back-to-back packets from a busy
source do not serialize behind reconfiguration.

Ports can be *blocked* to model compute partitions: the scheduler
(:mod:`repro.core.scheduler`) reserves a contiguous port range, and traffic
to or from those ports waits until the partition is released — the
communication-blocking overhead quantified in Section 5.4.2.

Dead interposer paths can be *detoured*: the degradation ladder
(DESIGN.md §12) programs per-pair reroutes via :meth:`reroute_pair`,
after which grants for the pair pay extra setup cycles but packets keep
delivering — no traffic is lost to a rerouted fault.

Injection, the run/drain loop, latency sampling, and result assembly come
from :class:`~repro.noc.kernel.SimKernel`; this module is the crossbar
arbitration and circuit lifecycle only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.noc.arbiter import WavefrontArbiter
from repro.noc.kernel import SimKernel
from repro.noc.packet import Packet
from repro.obs import NULL_OBS, Obs

#: 1 ns phase programming at a 2.5 GHz network clock (Section 4.1).
DEFAULT_RECONFIG_CYCLES = 3


@dataclass
class _Circuit:
    packet: Packet
    setup_left: int
    remaining_flits: int
    grant_cycle: int = 0


class FlumenNetwork(SimKernel):
    """MZIM crossbar with wavefront arbitration and port blocking."""

    name = "flumen"

    def __init__(self, nodes: int,
                 reconfig_cycles: int = DEFAULT_RECONFIG_CYCLES,
                 propagation_delay: int = 1,
                 request_buffer_capacity: int = 16,
                 utilization_interval: int = 100,
                 pipelined_setup: bool = True,
                 arbitration: str = "wavefront",
                 obs: Obs = NULL_OBS) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes")
        if arbitration not in ("wavefront", "sequential"):
            raise ValueError(
                f"arbitration must be 'wavefront' or 'sequential', "
                f"got {arbitration!r}")
        super().__init__(name=self.name, num_links=nodes,
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.nodes = nodes
        self.reconfig_cycles = reconfig_cycles
        self.propagation_delay = propagation_delay
        self.request_buffer_capacity = request_buffer_capacity
        self.pipelined_setup = pipelined_setup
        #: "wavefront" builds a maximal matching per cycle (Section 3.4);
        #: "sequential" is the ablation baseline: one grant per cycle.
        self.arbitration = arbitration
        self._sequential_rr = 0
        #: Per-endpoint request buffers in the MZIM control unit.
        self.request_buffers: list[deque[Packet]] = [
            deque() for _ in range(nodes)]
        #: Overflow queues at the endpoints (buffers are finite).
        self._overflow: list[deque[Packet]] = [deque() for _ in range(nodes)]
        #: Sources with anything buffered (request buffer or overflow);
        #: the per-cycle scans only visit these.
        self._waiting_sources: set[int] = set()
        self._arbiter = WavefrontArbiter(nodes)
        self._circuits: dict[int, _Circuit] = {}  # keyed by source port
        #: Pre-granted next circuits whose setup overlaps the active one.
        self._pending: dict[int, _Circuit] = {}
        self._busy_outputs: set[int] = set()
        self.blocked_ports: set[int] = set()
        #: (src, dst) -> extra setup cycles for a programmed detour
        #: around a dead interposer path (DESIGN.md §12).
        self.reroute_penalties: dict[tuple[int, int], int] = {}
        self.rerouted_grants = 0
        self.reconfigurations = 0
        self.arbiter_conflicts = 0
        self._m_reconfig = obs.metrics.counter(
            "noc.reconfigurations", topology=self.name)
        self._m_conflicts = obs.metrics.counter(
            "noc.arbiter_conflicts", topology=self.name)
        self._m_overflow = obs.metrics.counter(
            "noc.buffer_overflows", topology=self.name)
        self._m_reroutes = obs.metrics.counter(
            "noc.rerouted_circuits", topology=self.name)

    # -- scheduler hooks ---------------------------------------------------

    def reroute_pair(self, src: int, dst: int,
                     extra_setup_cycles: int) -> None:
        """Program a detour for (src, dst) around a dead interposer path.

        The degradation ladder's REROUTE rung calls this after a dead
        link is detected: subsequent unicast grants for the pair pay
        ``extra_setup_cycles`` on top of the normal phase-programming
        delay (the detour threads a longer MZI column path), but packets
        still deliver — conservation holds across the fault.
        """
        if extra_setup_cycles < 0:
            raise ValueError(
                f"extra_setup_cycles must be >= 0, got {extra_setup_cycles}")
        self.reroute_penalties[(int(src), int(dst))] = int(extra_setup_cycles)

    def _setup_cycles(self, src: int, dst: int) -> int:
        """Setup delay for one grant, including any detour penalty."""
        extra = self.reroute_penalties.get((src, dst), 0)
        if extra:
            self.rerouted_grants += 1
            self._m_reroutes.inc()
        return self.reconfig_cycles + extra

    def block_ports(self, ports: set[int]) -> None:
        """Reserve ports for a compute partition (no comm grants touch them).

        Active circuits on those ports finish first; the scheduler waits
        for :meth:`ports_clear` before programming the partition.
        """
        self.blocked_ports |= set(ports)

    def unblock_ports(self, ports: set[int]) -> None:
        self.blocked_ports -= set(ports)

    def ports_clear(self, ports: set[int]) -> bool:
        """True when no circuit is transmitting on any of the given ports."""
        for table in (self._circuits, self._pending):
            for src, circuit in table.items():
                if src in ports or any(d in ports for d in
                                       circuit.packet.destinations):
                    return False
        return True

    def buffer_occupancy(self, port: int) -> int:
        """Packets waiting at one control-unit request buffer."""
        return len(self.request_buffers[port]) + len(self._overflow[port])

    def buffer_utilization(self, ports: list[int] | None = None,
                           scan_depth: float = 1.0) -> float:
        """Mean occupancy fraction over the most-utilized buffers.

        ``scan_depth`` is the paper's zeta: the fraction of buffers
        (most-utilized first) averaged.  A small zeta surfaces hot nodes a
        global average would wash out (Section 3.4).
        """
        ports = list(range(self.nodes)) if ports is None else list(ports)
        if not ports:
            return 0.0
        if not 0.0 < scan_depth <= 1.0:
            raise ValueError(f"scan_depth must be in (0, 1], got {scan_depth}")
        fracs = sorted(
            (min(self.buffer_occupancy(p) / self.request_buffer_capacity, 1.0)
             for p in ports),
            reverse=True)
        top = max(1, int(round(scan_depth * len(fracs))))
        return float(np.mean(fracs[:top]))

    # -- traffic -----------------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        if len(self.request_buffers[packet.src]) \
                < self.request_buffer_capacity:
            self.request_buffers[packet.src].append(packet)
        else:
            self._overflow[packet.src].append(packet)
            self._m_overflow.inc()
        self._waiting_sources.add(packet.src)

    def _drained(self, src: int) -> None:
        """Drop ``src`` from the waiting set once nothing is buffered."""
        if not self.request_buffers[src] and not self._overflow[src]:
            self._waiting_sources.discard(src)

    def _refill_buffers(self) -> None:
        for port in self._waiting_sources:
            over = self._overflow[port]
            if not over:
                continue
            buf = self.request_buffers[port]
            while over and len(buf) < self.request_buffer_capacity:
                buf.append(over.popleft())

    # -- simulation ----------------------------------------------------------

    def _eligible_source(self, src: int) -> bool:
        """May ``src`` receive a (possibly pipelined) grant this cycle?"""
        if src in self.blocked_ports or src in self._pending:
            return False
        circuit = self._circuits.get(src)
        if circuit is None:
            return True
        return (self.pipelined_setup
                and circuit.setup_left == 0
                and circuit.remaining_flits <= self.reconfig_cycles)

    def step(self) -> None:
        busy = self._advance_circuits()
        self._grant_multicasts()
        requests = self._unicast_requests()
        self._grant_unicasts(requests)
        self._refill_buffers()
        self.utilization.record_cycle(busy)
        if self._tracer.enabled and self.cycle \
                and self.cycle % self.utilization.interval_cycles == 0:
            self._tracer.counter("noc", "arbiter", "arbiter_conflicts",
                                 self.cycle, total=self.arbiter_conflicts)
        self.cycle += 1

    def _advance_circuits(self) -> int:
        """Progress setups and active transfers; returns busy-link count."""
        busy = 0
        # Overlapped setups progress regardless of the active circuit.
        for circuit in self._pending.values():
            if circuit.setup_left > 0:
                circuit.setup_left -= 1
        finished: list[int] = []
        for src, circuit in self._circuits.items():
            if circuit.setup_left > 0:
                circuit.setup_left -= 1
                continue
            circuit.remaining_flits -= 1
            busy += 1
            self.flit_hops += 1
            self.link_traversals += 1
            if circuit.remaining_flits == 0:
                delivered = self.cycle + self.propagation_delay
                self._deliver(circuit.packet, delivered, f"port{src}",
                              grant_wait=(circuit.grant_cycle
                                          - circuit.packet.create_cycle))
                finished.append(src)
        for src in finished:
            for dst in self._circuits[src].packet.destinations:
                self._busy_outputs.discard(dst)
            del self._circuits[src]
            nxt = self._pending.pop(src, None)
            if nxt is not None:
                self._circuits[src] = nxt
                self._busy_outputs.add(nxt.packet.dst)
        return busy

    def _grant_multicasts(self) -> None:
        """Physical multicast grants (splitting states, Section 3.2).

        A multicast head needs its source idle and every destination
        output free; it is granted outside the unicast matching.
        """
        for src in sorted(self._waiting_sources):
            buf = self.request_buffers[src]
            if not buf or not buf[0].multicast_dsts:
                continue
            if src in self._circuits or src in self._pending \
                    or src in self.blocked_ports:
                continue
            dsts = buf[0].multicast_dsts
            if any(d in self._busy_outputs or d in self.blocked_ports
                   for d in dsts):
                continue
            packet = buf.popleft()
            self._drained(src)
            self._circuits[src] = _Circuit(
                packet=packet, setup_left=self.reconfig_cycles,
                remaining_flits=packet.size_flits,
                grant_cycle=self.cycle)
            self._busy_outputs.update(dsts)
            self.reconfigurations += 1
            self._m_reconfig.inc()

    def _unicast_requests(self) -> list[tuple[int, int]]:
        """Sparse ``(src, dst)`` requests from head-of-buffer packets.

        Each source contributes at most one pair (its head-of-buffer
        packet); an empty list is the idle fast path.
        """
        requests: list[tuple[int, int]] = []
        for src in sorted(self._waiting_sources):
            buf = self.request_buffers[src]
            if not buf or buf[0].multicast_dsts \
                    or not self._eligible_source(src):
                continue
            dst = buf[0].dst
            if dst in self._busy_outputs or dst in self.blocked_ports:
                # A source draining toward its tail may still target the
                # output it itself occupies (back-to-back same-destination).
                active = self._circuits.get(src)
                if not (active is not None and active.packet.dst == dst):
                    continue
            if any(p.packet.dst == dst for p in self._pending.values()):
                continue
            requests.append((src, dst))
        return requests

    def _grant_unicasts(self, requests: list[tuple[int, int]]) -> None:
        """Allocate the sparse request list; winners set up circuits."""
        if not requests:
            # Idle fast path.  allocate() rotates the wavefront priority
            # on every call, empty matrix or not, so the skip must too —
            # otherwise later grants diverge from the full scan.
            if self.arbitration == "wavefront":
                self._arbiter.rotate()
            return
        if self.arbitration == "wavefront":
            grants = self._arbiter.allocate_sparse(requests)
        else:  # sequential: one grant per cycle, rotating priority
            grants = []
            by_src = dict(requests)
            for offset in range(self.nodes):
                src = (self._sequential_rr + offset) % self.nodes
                dst = by_src.get(src)
                if dst is not None:
                    grants = [(src, dst)]
                    self._sequential_rr = (src + 1) % self.nodes
                    break
        conflicts = len(requests) - len(grants)
        if conflicts > 0:
            # Requesting sources the allocator could not serve this cycle
            # (output taken or lost the matching) — contention pressure.
            self.arbiter_conflicts += conflicts
            self._m_conflicts.inc(conflicts)
        for src, dst in grants:
            packet = self.request_buffers[src].popleft()
            self._drained(src)
            assert packet.dst == dst
            circuit = _Circuit(packet=packet,
                               setup_left=self._setup_cycles(src, dst),
                               remaining_flits=packet.size_flits,
                               grant_cycle=self.cycle)
            self.reconfigurations += 1
            self._m_reconfig.inc()
            if src in self._circuits:
                self._pending[src] = circuit
                # Reserve the output now so no other grant races it before
                # the pending circuit activates.
                self._busy_outputs.add(dst)
            else:
                self._circuits[src] = circuit
                self._busy_outputs.add(dst)

    def skip_idle_cycles(self, cycles: int) -> None:
        """Advance ``cycles`` quiescent cycles without stepping each one.

        Only legal while :meth:`quiescent` holds and the tracer is off:
        an idle :meth:`step` then touches exactly three pieces of state
        — the wavefront priority diagonal (rotated every cycle, busy or
        not), the utilization intervals (all-idle), and the cycle
        counter — so applying those in bulk is byte-equivalent to
        ``cycles`` empty steps.  The serve daemon's vectorized loop
        uses this to fast-forward between known-future events.
        """
        if cycles <= 0:
            return
        if not self.quiescent():
            raise RuntimeError("skip_idle_cycles on a non-quiescent "
                               "network would drop in-flight work")
        if self.arbitration == "wavefront":
            self._arbiter.rotate(cycles)
        self.utilization.record_idle_cycles(cycles)
        self.cycle += cycles

    def quiet_countdown(self) -> int | None:
        """Cycles until the earliest in-flight delivery.

        ``None`` means the network is fully quiescent; ``0`` means it is
        *not* quiet — buffered packets could earn grants, so per-cycle
        arbitration must run.  A positive ``r`` means nothing but
        circuit setup/transfer countdown happens for the next ``r - 1``
        cycles: :meth:`skip_quiet_cycles` may bulk-apply any strict
        prefix of them (the ``r``-th cycle delivers a packet and must be
        a real :meth:`step`).
        """
        if self._waiting_sources:
            return 0
        if not self._circuits:
            return None if not self._pending else 0
        return min(c.setup_left + c.remaining_flits
                   for c in self._circuits.values())

    def skip_quiet_cycles(self, cycles: int) -> None:
        """Advance ``cycles`` pure-transit cycles in one bulk step.

        Legal when nothing is buffered at any endpoint (no grants can
        happen), no delivery falls inside the window
        (``cycles < quiet_countdown()``), and the tracer is off.  Each
        such :meth:`step` only counts setups down, transfers flits on
        already-set-up circuits, rotates the wavefront priority, and
        records utilization — all of which this bulk-applies with
        byte-identical accounting (busy-link counts change only when a
        setup elapses, so utilization is replayed segment by segment).
        """
        if cycles <= 0:
            return
        if self._waiting_sources:
            raise RuntimeError("skip_quiet_cycles with buffered packets "
                               "would skip arbitration")
        circuits = self._circuits.values()
        if any(c.setup_left + c.remaining_flits <= cycles
               for c in circuits):
            raise RuntimeError("skip_quiet_cycles across a delivery "
                               "would drop in-flight work")
        # Busy-link counts are constant between setup expiries; replay
        # the utilization timeline one constant segment at a time.
        points = sorted({c.setup_left for c in circuits
                         if 0 < c.setup_left < cycles})
        prev = 0
        for point in points + [cycles]:
            busy = sum(1 for c in circuits if c.setup_left <= prev)
            self.utilization.record_cycles(busy, point - prev)
            prev = point
        for circuit in circuits:
            elapsed_setup = min(circuit.setup_left, cycles)
            circuit.setup_left -= elapsed_setup
            transferred = cycles - elapsed_setup
            circuit.remaining_flits -= transferred
            self.flit_hops += transferred
            self.link_traversals += transferred
        for circuit in self._pending.values():
            circuit.setup_left = max(0, circuit.setup_left - cycles)
        if self.arbitration == "wavefront":
            self._arbiter.rotate(cycles)
        self.cycle += cycles

    def quiescent(self) -> bool:
        return (not self._circuits and not self._pending
                and all(not b for b in self.request_buffers)
                and all(not o for o in self._overflow))

    def total_queued_flits(self) -> int:
        queued = sum(p.size_flits
                     for q in self.request_buffers for p in q)
        queued += sum(p.size_flits for q in self._overflow for p in q)
        queued += sum(c.remaining_flits for c in self._circuits.values())
        queued += sum(c.remaining_flits for c in self._pending.values())
        return queued
