"""Shared simulation kernel for every NoP network backend.

The three cycle simulators (electrical wormhole :class:`Network`, the
shared optical bus, and the Flumen MZIM crossbar) all drive the same
machinery: packets are offered into per-backend queues, flits are
ejected and sampled into :class:`~repro.noc.stats.LatencyStats`, the
``run()`` loop interleaves traffic injection with ``step()`` and an
optional quiescence drain, link utilization flushes per interval into
the tracer, and ``result()`` packages the counters.  That machinery
lives here, once; a backend subclass carries only its routing and
arbitration logic:

* ``_enqueue(packet)`` — admit one packet into backend buffering,
* ``step()`` — advance the backend one cycle,
* ``quiescent()`` / ``total_queued_flits()`` — drain bookkeeping.

Backends register themselves with :mod:`repro.noc.registry`, so adding
a topology is one module: subclass :class:`SimKernel`, implement the
four hooks, register a factory.
"""

from __future__ import annotations

import time

from repro.noc.packet import Packet
from repro.noc.stats import LatencyStats, SimulationResult, UtilizationTracker
from repro.obs import NULL_OBS, Obs


class SimKernel:
    """Common offer/run/drain/measure machinery for a NoP backend.

    Subclasses set ``name`` (used for metric labels, energy dispatch,
    and :meth:`result`), implement the four backend hooks, and account
    traffic into ``flit_hops`` / ``link_traversals`` from ``step()``.
    """

    #: Backend name; subclasses override (or pass ``name`` to init).
    name = "kernel"

    def __init__(self, name: str, num_links: int,
                 utilization_interval: int = 100,
                 obs: Obs = NULL_OBS) -> None:
        self.name = name
        self.cycle = 0
        self.latency = LatencyStats()
        self.utilization = UtilizationTracker(
            num_links=max(num_links, 1),
            interval_cycles=utilization_interval)
        self.injected_packets = 0
        self.flit_hops = 0
        self.link_traversals = 0
        self.obs = obs
        self._tracer = obs.tracer
        self._sampler = obs.sampler
        #: Accounting context; "" until :meth:`set_tenant` scopes the
        #: kernel to one tenant's request stream.
        self.tenant = ""
        self._bind_accounting()
        if self._tracer.enabled:
            tracer = self._tracer
            interval = utilization_interval

            def _flush_to_trace(index: int, fraction: float) -> None:
                tracer.counter("noc", "links", "link_busy_fraction",
                               (index + 1) * interval, busy=fraction)
            self.utilization.on_flush = _flush_to_trace

    def _bind_accounting(self) -> None:
        """(Re)create the labeled accounting series for this kernel."""
        labels: dict[str, object] = {"topology": self.name}
        if self.tenant:
            labels["tenant"] = self.tenant
        metrics = self.obs.metrics
        self._m_injected = metrics.counter("noc.packets_injected", **labels)
        self._m_delivered = metrics.counter("noc.packets_delivered",
                                            **labels)
        self._h_latency = metrics.histogram("noc.packet_latency_cycles",
                                            **labels)

    def set_tenant(self, tenant: str) -> None:
        """Scope subsequent traffic accounting to one tenant.

        The serve daemon runs one kernel per tenant request stream; the
        tenant label lands on the injection/delivery counters and the
        latency histogram so per-tenant series accumulate side by side.
        Uninstrumented kernels pay nothing (the rebind hands back the
        shared null instrument).
        """
        self.tenant = str(tenant)
        self._bind_accounting()

    # -- backend hooks ---------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        """Admit one offered packet into the backend's buffering."""
        raise NotImplementedError

    def step(self) -> None:
        """Advance the network one cycle."""
        raise NotImplementedError

    def quiescent(self) -> bool:
        """True when no flit remains anywhere in the network."""
        raise NotImplementedError

    def total_queued_flits(self) -> int:
        """Flits resident in any queue, buffer, or in-flight structure."""
        raise NotImplementedError

    # -- idle fast-forward ------------------------------------------------

    #: Backends whose quiescent ``step()`` provably touches nothing but
    #: the cycle counter, utilization intervals, and (backend-declared)
    #: arbiter rotation set this True and implement :meth:`_skip_idle`.
    _supports_idle_skip = False

    def _skip_idle(self, idle_cycles: int) -> None:
        """Apply ``idle_cycles`` of quiescent stepping in one jump.

        Must leave the backend in exactly the state ``idle_cycles``
        plain ``step()`` calls with no traffic would — including any
        per-cycle arbiter rotation the backend performs while idle.
        """
        raise NotImplementedError

    def _advance_idle(self, idle_cycles: int) -> None:
        """Kernel-side bookkeeping shared by every ``_skip_idle``."""
        self.cycle += idle_cycles
        self.utilization.record_idle_cycles(idle_cycles)

    # -- traffic ---------------------------------------------------------

    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet at its source and account the injection."""
        self._enqueue(packet)
        self.injected_packets += 1
        self._m_injected.inc()

    # -- measurement -----------------------------------------------------

    def _deliver(self, packet: Packet, delivered_cycle: int,
                 track: str, **trace_args: object) -> None:
        """Sample one completed packet: latency, metrics, lifecycle span."""
        self.latency.record(packet.create_cycle, delivered_cycle,
                            packet.size_flits)
        self._m_delivered.inc()
        self._h_latency.observe(delivered_cycle - packet.create_cycle)
        if self._tracer.enabled:
            self._tracer.complete(
                "noc", track, "packet",
                packet.create_cycle, delivered_cycle,
                src=packet.src, dst=packet.dst,
                flits=packet.size_flits, **trace_args)

    # -- simulation loop -------------------------------------------------

    def run(self, traffic, cycles: int, warmup: int = 0,
            drain: bool = False, max_drain_cycles: int = 50_000) -> None:
        """Drive the network with a traffic source for ``cycles`` cycles.

        ``traffic`` provides ``packets_for_cycle(cycle)``.  With ``drain``
        the simulation continues (without new injection) until every
        in-flight packet is delivered or the drain budget runs out.

        When the backend supports idle fast-forward, tracing is off, and
        the traffic source can name its next event cycle (trace playback
        can; random generators draw RNG every cycle and cannot), runs of
        quiescent cycles collapse into one ``_skip_idle`` jump.  Every
        observable — cycle counts, utilization timeline, latencies,
        arbiter state at the next busy cycle — is identical either way.
        """
        self.latency.warmup_cycles = warmup
        start_cycle = self.cycle
        wall_start = time.perf_counter()
        self._begin_run()
        fast_forward = (self._supports_idle_skip
                        and not self._tracer.enabled
                        and hasattr(traffic, "next_event_cycle"))
        sampler = self._sampler
        remaining = cycles
        while remaining > 0:
            for packet in traffic.packets_for_cycle(self.cycle):
                self.offer_packet(packet)
            self.step()
            remaining -= 1
            if sampler is not None and self.cycle & 63 == 0:
                # Cycle-driven telemetry snapshot, offered every 64th
                # cycle — the sampler's own cadence (>= 256 cycles by
                # default) stays the sampling authority, and the hot
                # loop pays one int test per cycle instead of a clock
                # advance.  Idle fast-forward below may jump past sample
                # points, in which case the series resumes at the
                # post-jump cycle (the skipped cycles carry no registry
                # mutations by construction).
                sampler.tick(self.cycle)
            if remaining > 0 and fast_forward and self.quiescent():
                nxt = traffic.next_event_cycle(self.cycle)
                idle = remaining if nxt is None \
                    else min(remaining, nxt - self.cycle)
                if idle > 0:
                    self._skip_idle(idle)
                    remaining -= idle
        if drain:
            budget = max_drain_cycles
            while not self.quiescent() and budget > 0:
                self.step()
                budget -= 1
        if sampler is not None:
            sampler.tick(self.cycle)
        self.utilization.finish()
        self._end_run()
        # Per-run phase timing: wall seconds into the (count-only by
        # default) timer series, simulated extent as a cycle-stamped
        # span so the run shows up in the Chrome-trace export.
        self.obs.metrics.timer("noc.run_seconds", topology=self.name) \
            .observe(time.perf_counter() - wall_start)
        if self._tracer.enabled:
            self._tracer.complete(
                "noc", "kernel", f"run:{self.name}",
                start_cycle, self.cycle,
                cycles=self.cycle - start_cycle,
                injected=self.injected_packets)

    def _begin_run(self) -> None:
        """Hook fired as :meth:`run` starts (before any injection)."""

    def _end_run(self) -> None:
        """Hook fired as :meth:`run` finishes (after the final flush)."""

    def result(self, pattern: str, load: float,
               saturation_latency: float = 500.0) -> SimulationResult:
        """Package measurement into a :class:`SimulationResult`."""
        avg = self.latency.average
        saturated = (avg == 0.0 and self.injected_packets > 0) \
            or avg >= saturation_latency
        return SimulationResult(
            topology=self.name,
            pattern=pattern,
            load=load,
            cycles=self.cycle,
            latency=self.latency,
            utilization=self.utilization,
            injected_packets=self.injected_packets,
            flit_hops=self.flit_hops,
            link_traversals=self.link_traversals,
            saturated=saturated,
        )
