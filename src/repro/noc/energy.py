"""Network energy accounting (Section 5.2, Figure 13's NoP component).

Electrical topologies pay per-bit link energy (Table 1: 1.17 pJ/bit) plus a
per-hop router overhead; photonic topologies pay per-bit transceiver energy
(modulator/driver/thermal/TIA/SerDes) plus always-on laser power sized from
their worst-case loss.  Flumen additionally carries the compute-path
DAC/ADC static power even when only communicating — the overhead the paper
calls out when comparing Flumen-I to a pure-communication MZIM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DeviceParams, SystemConfig
from repro.noc.stats import SimulationResult
from repro.photonics.power import (
    flumen_worst_loss_db,
    laser_power_w,
    optbus_worst_loss_db,
    photonic_link_energy,
)


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one network run, split by mechanism (joules)."""

    dynamic: float
    laser_static: float
    converter_static: float

    @property
    def total(self) -> float:
        return self.dynamic + self.laser_static + self.converter_static


@dataclass
class NetworkEnergyModel:
    """Maps simulation counters to joules for each topology."""

    system: SystemConfig = field(default_factory=SystemConfig)
    devices: DeviceParams = field(default_factory=DeviceParams)
    #: Phit width of electrical links: 800 Gb/s at a 2.5 GHz cycle.
    elec_flit_bits: int = 320
    #: Phit width of photonic links: 640 Gb/s (64 lambda) at 2.5 GHz.
    phot_flit_bits: int = 256
    #: Router datapath energy (buffers + crossbar + arbitration) per bit
    #: per hop; NoP-class routers from the McPAT runs behind Table 1.
    router_energy_j_per_bit: float = 0.30e-12
    #: Wavelengths per OptBus receive waveguide (64 total over 16 buses
    #: would be 4; kept explicit so loss scaling studies can sweep it).
    optbus_wavelengths_per_bus: int = 4
    #: Physical length of ring links relative to mesh links: a 16-node
    #: ring laid over the 4x4 chiplet grid needs serpentine routing and a
    #: long closing link, and electrical link energy scales with distance
    #: (Section 1, [1]).
    ring_link_length_factor: float = 2.0
    #: Whether Flumen carries compute DAC/ADC static power (Flumen proper
    #: does; a pure-communication MZIM does not — Section 5.2's 28% note).
    include_compute_converters: bool = True

    def cycle_seconds(self) -> float:
        return 1.0 / self.system.core.frequency_hz

    # -- per-topology accounting ------------------------------------------

    def electrical(self, result: SimulationResult) -> EnergyReport:
        bits = result.link_traversals * self.elec_flit_bits
        hop_bits = result.flit_hops * self.elec_flit_bits
        length = (self.ring_link_length_factor
                  if result.topology == "ring" else 1.0)
        dynamic = (bits * self.system.elec_link.energy_j_per_bit * length
                   + hop_bits * self.router_energy_j_per_bit)
        return EnergyReport(dynamic=dynamic, laser_static=0.0,
                            converter_static=0.0)

    def optbus(self, result: SimulationResult) -> EnergyReport:
        nodes = 16
        per_bus = self.optbus_wavelengths_per_bus
        loss = optbus_worst_loss_db(nodes, per_bus, self.devices)
        per_bit = photonic_link_energy(
            per_bus, self.devices, worst_loss_db=loss)
        bits = result.link_traversals * self.phot_flit_bits
        dynamic = bits * (per_bit.total - per_bit.laser)
        sim_s = result.cycles * self.cycle_seconds()
        laser = laser_power_w(loss, per_bus * nodes, self.devices) * sim_s
        return EnergyReport(dynamic=dynamic, laser_static=laser,
                            converter_static=0.0)

    def flumen(self, result: SimulationResult,
               include_converters: bool | None = None) -> EnergyReport:
        nodes = 16
        wavelengths = self.system.phot_link.wavelengths
        loss = flumen_worst_loss_db(nodes, wavelengths, self.devices)
        per_bit = photonic_link_energy(
            wavelengths, self.devices, worst_loss_db=loss)
        bits = result.link_traversals * self.phot_flit_bits
        dynamic = bits * (per_bit.total - per_bit.laser)
        sim_s = result.cycles * self.cycle_seconds()
        laser = laser_power_w(loss, wavelengths, self.devices) * sim_s
        converters = 0.0
        use_conv = self.include_compute_converters \
            if include_converters is None else include_converters
        if use_conv:
            # Compute-path converters idle in comm mode: the per-port input
            # DAC and output ADC of the compute datapath leak a fraction of
            # their active power (clock gating leaves ~2% leakage).
            conv = self.devices.converter
            ports = self.system.mzim_ports
            idle_w = 0.02 * ports * (conv.dac_power_w + conv.adc_power_w)
            converters = idle_w * sim_s
        return EnergyReport(dynamic=dynamic, laser_static=laser,
                            converter_static=converters)

    def of(self, result: SimulationResult,
           kind: str | None = None) -> EnergyReport:
        """Map one run to joules.

        ``kind`` selects the accounting ("electrical", "optbus", or
        "flumen") — configuration pipelines pass it explicitly so plugged
        -in topologies work without edits here.  Without ``kind`` the
        dispatch falls back to the result's topology name (the built-in
        set only).
        """
        if kind is None:
            if result.topology in ("ring", "mesh"):
                kind = "electrical"
            elif result.topology in ("optbus", "flumen"):
                kind = result.topology
            else:
                raise ValueError(f"unknown topology {result.topology!r}")
        if kind == "electrical":
            return self.electrical(result)
        if kind == "optbus":
            return self.optbus(result)
        if kind == "flumen":
            return self.flumen(result)
        raise ValueError(f"unknown energy accounting {kind!r}")
