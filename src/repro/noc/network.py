"""Cycle-driven wormhole network engine for router-based topologies.

Ties together :class:`~repro.noc.router.Router`, a
:class:`~repro.noc.topology.Topology`, a traffic source, and measurement.
One call to :meth:`Network.step` advances the whole network one cycle:
flits arrive from links, routers run their RC/VA/SA pipeline stages, winning
flits traverse the switch, and credits flow back upstream.

Injection, the run/drain loop, latency sampling, and result assembly come
from :class:`~repro.noc.kernel.SimKernel`; this module is the routed
wormhole datapath only.
"""

from __future__ import annotations

from collections import deque

from repro.noc.kernel import SimKernel
from repro.noc.packet import Flit, Packet
from repro.noc.router import Router
from repro.noc.topology import LOCAL_PORT, Topology
from repro.obs import NULL_OBS, Obs

#: Effectively infinite credits for ejection ports.
_EJECT_CREDITS = 10 ** 9


class Network(SimKernel):
    """A wormhole network over an arbitrary router topology."""

    def __init__(self, topology: Topology, num_vcs: int = 2,
                 buffer_depth: int = 8, utilization_interval: int = 100,
                 router_pipeline_cycles: int = 2,
                 obs: Obs = NULL_OBS) -> None:
        super().__init__(name=topology.name,
                         num_links=topology.num_links(),
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.topology = topology
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        #: Extra per-hop cycles modelling the router pipeline depth beyond
        #: the architectural RC/VA/SA stages (Booksim's 4-stage default).
        self.router_pipeline_cycles = router_pipeline_cycles
        self.routers = [
            Router(r, topology.num_ports(r), num_vcs, buffer_depth)
            for r in range(topology.num_routers)
        ]
        for router in self.routers:  # ejection never backpressures
            router.credits[LOCAL_PORT] = [_EJECT_CREDITS] * num_vcs
        #: Reverse link map: (router, in_port) -> (upstream router, out_port)
        self._upstream: dict[tuple[int, int], tuple[int, int]] = {}
        for r in range(topology.num_routers):
            for p in range(1, topology.num_ports(r)):
                nxt = topology.link(r, p)
                if nxt is not None:
                    self._upstream[nxt] = (r, p)
        self.source_queues: list[deque[Flit]] = [
            deque() for _ in range(topology.nodes)]
        #: Flits on links: [cycles until arrival, router, in_port, flit].
        self._in_flight: list[list] = []
        #: Routers with resident flits; idle routers are skipped by
        #: :meth:`step` (their pipeline stages are exact no-ops).
        self._active_routers: set[int] = set()
        #: Nodes whose source queue is non-empty.
        self._waiting_sources: set[int] = set()
        self.ejected_flits = 0
        self._m_hops = obs.metrics.counter(
            "noc.flit_hops", topology=topology.name)
        self._run_hops_base = 0

    # -- traffic ---------------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        """Queue a packet's flits at its source node."""
        flits = packet.flits()
        vc = self.topology.vc_class(packet.src, packet.dst) % self.num_vcs
        for flit in flits:
            flit.vc = vc
        self.source_queues[packet.src].extend(flits)
        self._waiting_sources.add(packet.src)

    def _inject(self) -> None:
        """Move at most one flit per node from source queue into the router."""
        emptied: list[int] = []
        for node in sorted(self._waiting_sources):
            queue = self.source_queues[node]
            flit = queue[0]
            router = self.routers[node]
            if router.buffer_space(LOCAL_PORT, flit.vc) > 0:
                # Heads may enter only if the VC is free of a previous packet.
                state = router.inputs[LOCAL_PORT][flit.vc]
                if flit.is_head and state.busy:
                    continue
                queue.popleft()
                router.accept_flit(LOCAL_PORT, flit)
                self._active_routers.add(node)
                if not queue:
                    emptied.append(node)
        self._waiting_sources.difference_update(emptied)

    # -- simulation ------------------------------------------------------

    def _allowed_vcs(self, flit: Flit) -> list[int]:
        cls = self.topology.vc_class(flit.src, flit.dst) % self.num_vcs
        if self.topology.name == "ring":
            return [cls]
        return list(range(self.num_vcs))

    def step(self) -> None:
        """Advance the network one cycle."""
        # 1. Link arrivals whose delay has elapsed land now.
        still_flying: list[list] = []
        for entry in self._in_flight:
            entry[0] -= 1
            if entry[0] <= 0:
                self.routers[entry[1]].accept_flit(entry[2], entry[3])
                self._active_routers.add(entry[1])
            else:
                still_flying.append(entry)
        self._in_flight = still_flying

        # 2. Injection from source queues.
        self._inject()

        # 3. Router pipelines — active routers only, in ascending id
        #    order (matching the full scan).  A router without buffered
        #    flits makes every stage an exact no-op (no arbiter state
        #    moves without a request), so skipping it is cycle-exact.
        busy_links = 0
        sends: list[list] = []
        credits_back: list[tuple[int, int, int]] = []
        went_idle: list[int] = []
        for router_id in sorted(self._active_routers):
            router = self.routers[router_id]
            router.route_stage(self.topology.route)
            router.vc_alloc_stage(self._allowed_vcs)
            for in_port, in_vc in router.switch_alloc_stage():
                flit, out_port, out_vc = router.traverse(in_port, in_vc)
                self.flit_hops += 1
                if in_port != LOCAL_PORT:
                    up = self._upstream.get((router.router_id, in_port))
                    if up is not None:
                        credits_back.append((up[0], up[1], in_vc))
                if out_port == LOCAL_PORT:
                    self._eject(flit)
                    continue
                router.credits[out_port][out_vc] -= 1
                nxt = self.topology.link(router.router_id, out_port)
                if nxt is None:
                    raise RuntimeError(
                        f"router {router.router_id} routed {flit} off the "
                        f"edge via port {out_port}")
                flit.vc = out_vc
                sends.append([1 + self.router_pipeline_cycles,
                              nxt[0], nxt[1], flit])
                busy_links += 1
                self.link_traversals += 1
            if router.occupancy() == 0:
                went_idle.append(router_id)
        self._active_routers.difference_update(went_idle)

        # 4. Apply credits and schedule link arrivals.
        for router_id, out_port, vc in credits_back:
            self.routers[router_id].credits[out_port][vc] += 1
        self._in_flight.extend(sends)
        self.utilization.record_cycle(busy_links)
        self.cycle += 1

    def _eject(self, flit: Flit) -> None:
        self.ejected_flits += 1
        if flit.is_tail:
            packet = flit.packet
            self._deliver(packet, self.cycle, f"node{packet.src}")

    def _begin_run(self) -> None:
        self._run_hops_base = self.flit_hops

    def _end_run(self) -> None:
        self._m_hops.inc(self.flit_hops - self._run_hops_base)

    def quiescent(self) -> bool:
        """True when no flit remains anywhere in the network."""
        return (not self._in_flight
                and all(not q for q in self.source_queues)
                and all(r.idle() for r in self.routers))

    def total_queued_flits(self) -> int:
        return (sum(len(q) for q in self.source_queues)
                + sum(r.occupancy() for r in self.routers)
                + len(self._in_flight))
