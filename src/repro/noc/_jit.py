"""Optional numba acceleration for the SoA kernel's numeric helpers.

The container may or may not ship numba (it is an optional extra:
``pip install -e .[jit]``).  When it is importable, the small pure
numeric kernels below are ``@njit``-compiled; when it is not, the
identical NumPy/Python definitions run as-is.  Both paths compute the
same integer arithmetic, so simulation output is bit-identical either
way — the CI ``kernel-oracle`` job runs the equivalence suite once per
leg to prove it.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only when the numba wheel exists
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - default container path
    _njit = None
    HAVE_NUMBA = False


def maybe_njit(fn):
    """``numba.njit(cache=False)`` when available, identity otherwise."""
    if HAVE_NUMBA:  # pragma: no cover - numba leg only
        return _njit(fn)
    return fn


@maybe_njit
def rr_pick(lines: np.ndarray, last: int, n: int) -> int:
    """Round-robin winner among sparse request ``lines``.

    Equivalent to :meth:`RoundRobinArbiter.grant` over a dense request
    vector with exactly ``lines`` set: the winner is the line with the
    smallest rotation distance ``(line - last - 1) mod n`` from the
    previous grant.
    """
    best = lines[0]
    best_key = (best - last - 1) % n
    for i in range(1, lines.shape[0]):
        key = (lines[i] - last - 1) % n
        if key < best_key:
            best_key = key
            best = lines[i]
    return int(best)


@maybe_njit
def wavefront_ranks(rows: np.ndarray, cols: np.ndarray,
                    priority: int, n: int) -> np.ndarray:
    """Wave index of each sparse request cell under ``priority``.

    :meth:`WavefrontArbiter.allocate` visits cell ``(i, j)`` during wave
    ``((i + j) - priority) mod n``; sorting sparse requests by
    ``(rank, i)`` reproduces the dense scan order exactly.
    """
    out = np.empty(rows.shape[0], dtype=np.int64)
    for k in range(rows.shape[0]):
        out[k] = ((rows[k] + cols[k]) - priority) % n
    return out
