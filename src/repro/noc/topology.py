"""Topologies for the router-based electrical NoPs (Figure 10 a/b).

A topology supplies structure (ports, links) and policy (routing function,
deadlock-avoidance VC classes) to the wormhole network engine.  The two
electrical baselines are:

* :class:`RingTopology` — bidirectional ring, shortest-direction routing,
  two VC classes with dateline deadlock avoidance;
* :class:`MeshTopology` — 2D mesh with XY dimension-order routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

LOCAL_PORT = 0


@dataclass(frozen=True)
class Link:
    """A unidirectional router-to-router channel."""

    src_router: int
    src_port: int
    dst_router: int
    dst_port: int


class Topology:
    """Interface the network engine programs against."""

    name = "abstract"

    def __init__(self, nodes: int) -> None:
        self.nodes = nodes

    @property
    def num_routers(self) -> int:
        return self.nodes

    def num_ports(self, router: int) -> int:
        raise NotImplementedError

    def link(self, router: int, out_port: int) -> tuple[int, int] | None:
        """(downstream router, downstream input port), or None for local."""
        raise NotImplementedError

    def route(self, router: int, dst: int) -> int:
        """Output port toward ``dst`` (LOCAL_PORT when ``dst == router``)."""
        raise NotImplementedError

    def vc_class(self, src: int, dst: int) -> int:
        """Deadlock-avoidance VC class assigned at injection."""
        return 0

    def num_links(self) -> int:
        """Total unidirectional router-to-router links."""
        count = 0
        for r in range(self.num_routers):
            for p in range(1, self.num_ports(r)):
                if self.link(r, p) is not None:
                    count += 1
        return count

    def average_hops(self) -> float:
        """Mean router-to-router hop count over all src != dst pairs."""
        total, pairs = 0, 0
        for src in range(self.nodes):
            for dst in range(self.nodes):
                if src == dst:
                    continue
                total += self.hop_count(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links a packet traverses from src to dst."""
        hops = 0
        r = src
        while r != dst:
            port = self.route(r, dst)
            nxt = self.link(r, port)
            assert nxt is not None, "routing led to local port prematurely"
            r = nxt[0]
            hops += 1
            if hops > self.nodes * 2:
                raise RuntimeError(f"routing livelock {src}->{dst}")
        return hops

    def bisection_links(self) -> int:
        """Links crossing the canonical bisection (half vs half nodes)."""
        half = set(range(self.nodes // 2))
        count = 0
        for r in range(self.num_routers):
            for p in range(1, self.num_ports(r)):
                nxt = self.link(r, p)
                if nxt and ((r in half) != (nxt[0] in half)):
                    count += 1
        return count


class RingTopology(Topology):
    """Bidirectional ring: port 1 clockwise (+1), port 2 counter-clockwise."""

    name = "ring"
    CW, CCW = 1, 2

    def num_ports(self, router: int) -> int:
        return 3

    def link(self, router: int, out_port: int) -> tuple[int, int] | None:
        if out_port == LOCAL_PORT:
            return None
        if out_port == self.CW:
            return (router + 1) % self.nodes, self.CCW
        if out_port == self.CCW:
            return (router - 1) % self.nodes, self.CW
        raise ValueError(f"ring has no port {out_port}")

    def route(self, router: int, dst: int) -> int:
        if router == dst:
            return LOCAL_PORT
        forward = (dst - router) % self.nodes
        return self.CW if forward <= self.nodes - forward else self.CCW

    def vc_class(self, src: int, dst: int) -> int:
        """Dateline class: 1 when the chosen direction wraps through 0."""
        forward = (dst - src) % self.nodes
        if forward <= self.nodes - forward:  # clockwise
            return 1 if src + forward >= self.nodes else 0
        return 1 if src - (self.nodes - forward) < 0 else 0


class MeshTopology(Topology):
    """2D mesh with XY routing: ports 1..4 = E, W, N, S."""

    name = "mesh"
    EAST, WEST, NORTH, SOUTH = 1, 2, 3, 4

    def __init__(self, nodes: int) -> None:
        super().__init__(nodes)
        side = int(math.isqrt(nodes))
        if side * side != nodes:
            raise ValueError(f"mesh needs a square node count, got {nodes}")
        self.side = side

    def coords(self, router: int) -> tuple[int, int]:
        return router % self.side, router // self.side

    def router_at(self, x: int, y: int) -> int:
        return y * self.side + x

    def num_ports(self, router: int) -> int:
        return 5

    def link(self, router: int, out_port: int) -> tuple[int, int] | None:
        if out_port == LOCAL_PORT:
            return None
        x, y = self.coords(router)
        if out_port == self.EAST and x + 1 < self.side:
            return self.router_at(x + 1, y), self.WEST
        if out_port == self.WEST and x > 0:
            return self.router_at(x - 1, y), self.EAST
        if out_port == self.NORTH and y > 0:
            return self.router_at(x, y - 1), self.SOUTH
        if out_port == self.SOUTH and y + 1 < self.side:
            return self.router_at(x, y + 1), self.NORTH
        if out_port in (self.EAST, self.WEST, self.NORTH, self.SOUTH):
            return None  # edge of the mesh
        raise ValueError(f"mesh has no port {out_port}")

    def route(self, router: int, dst: int) -> int:
        if router == dst:
            return LOCAL_PORT
        x, y = self.coords(router)
        dx, dy = self.coords(dst)
        if x < dx:
            return self.EAST
        if x > dx:
            return self.WEST
        if y > dy:
            return self.NORTH
        return self.SOUTH


class WestFirstMeshTopology(MeshTopology):
    """Partially adaptive west-first routing (turn model, Glass & Ni).

    All westward hops happen first (no turns into west are ever needed
    afterwards, which breaks every deadlock cycle); the remaining
    east/north/south moves are chosen randomly among productive
    directions, spreading adversarial traffic that dimension-order
    routing concentrates.
    """

    name = "mesh_wf"

    def __init__(self, nodes: int, seed: int = 0) -> None:
        super().__init__(nodes)
        import numpy as np
        self._rng = np.random.default_rng(seed)

    def route(self, router: int, dst: int) -> int:
        if router == dst:
            return LOCAL_PORT
        x, y = self.coords(router)
        dx, dy = self.coords(dst)
        if dx < x:
            return self.WEST  # west first, unconditionally
        choices = []
        if dx > x:
            choices.append(self.EAST)
        if dy > y:
            choices.append(self.SOUTH)
        if dy < y:
            choices.append(self.NORTH)
        return int(self._rng.choice(choices))


def make_topology(name: str, nodes: int) -> Topology:
    """Topology factory for the electrical baselines."""
    if name == "ring":
        return RingTopology(nodes)
    if name == "mesh":
        return MeshTopology(nodes)
    if name == "mesh_wf":
        return WestFirstMeshTopology(nodes)
    raise ValueError(f"unknown router topology {name!r}")
