"""Registry of NoP network backends.

Maps a topology name to a factory ``(nodes, **kwargs) -> SimKernel``.
:func:`~repro.noc.simulation.make_network`, the system-model pipelines,
and the property-test suite all resolve backends here, so adding a
topology is one :func:`register_backend` call — no edits to the factory
if-chain, the system model, or the sweeps.

The four paper topologies register themselves below with lazy imports
(the factories import their backend module on first use), keeping this
module import-cycle-free and cheap to load.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager

#: name -> factory(nodes, **kwargs) -> network backend.
_BACKENDS: dict[str, Callable] = {}


def register_backend(name: str, factory: Callable | None = None,
                     *, replace: bool = False):
    """Register a network backend factory under ``name``.

    Usable directly (``register_backend("ring", make_ring)``) or as a
    decorator (``@register_backend("ring")``).  Re-registering an
    existing name raises unless ``replace=True``.
    """
    def _register(fn: Callable) -> Callable:
        if not replace and name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered; "
                             f"pass replace=True to override")
        _BACKENDS[name] = fn
        return fn
    if factory is not None:
        return _register(factory)
    return _register


def unregister_backend(name: str) -> None:
    """Remove a backend (primarily for test cleanup)."""
    _BACKENDS.pop(name, None)


def backend_factory(name: str) -> Callable:
    """Look up one backend factory, or raise listing what exists."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; "
            f"known: {registered_topologies()}") from None


def registered_topologies() -> tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_BACKENDS)


@contextmanager
def temporary_backend(name: str, factory: Callable) -> Iterator[None]:
    """Register a backend for the duration of a ``with`` block."""
    register_backend(name, factory)
    try:
        yield
    finally:
        unregister_backend(name)


# -- the paper's four topologies (Figure 10) ---------------------------------

@register_backend("ring")
def _make_ring(nodes: int = 16, **kwargs):
    from repro.noc.network import Network
    from repro.noc.topology import make_topology
    return Network(make_topology("ring", nodes), **kwargs)


@register_backend("mesh")
def _make_mesh(nodes: int = 16, **kwargs):
    from repro.noc.network import Network
    from repro.noc.topology import make_topology
    return Network(make_topology("mesh", nodes), **kwargs)


@register_backend("optbus")
def _make_optbus(nodes: int = 16, **kwargs):
    from repro.noc.optbus import OptBusNetwork
    return OptBusNetwork(nodes, **kwargs)


@register_backend("flumen")
def _make_flumen(nodes: int = 16, **kwargs):
    from repro.noc.flumen_net import FlumenNetwork
    return FlumenNetwork(nodes, **kwargs)
