"""Registry of NoP network backends.

Maps a topology name to a factory ``(nodes, **kwargs) -> SimKernel``.
:func:`~repro.noc.simulation.make_network`, the system-model pipelines,
and the property-test suite all resolve backends here, so adding a
topology is one :func:`register_backend` call — no edits to the factory
if-chain, the system model, or the sweeps.

Each name may carry **two** factories: the per-object reference
implementation (the bit-identity *oracle*) and a struct-of-arrays
``vectorized=True`` twin.  Dispatch prefers the vectorized factory when
one exists — callers are none the wiser — while
``backend_factory(name, vectorized=False)`` always reaches the oracle,
which is how the equivalence suite pins the two implementations
against each other.

The four paper topologies register themselves below with lazy imports
(the factories import their backend module on first use), keeping this
module import-cycle-free and cheap to load.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager

#: name -> [oracle factory | None, vectorized factory | None].
_BACKENDS: dict[str, list[Callable | None]] = {}


def register_backend(name: str, factory: Callable | None = None,
                     *, vectorized: bool = False, replace: bool = False):
    """Register a network backend factory under ``name``.

    Usable directly (``register_backend("ring", make_ring)``) or as a
    decorator (``@register_backend("ring")``).  ``vectorized=True``
    registers the struct-of-arrays twin, which becomes the default
    dispatch for the name; the plain registration remains reachable as
    the oracle via ``backend_factory(name, vectorized=False)``.
    Re-registering an existing slot raises unless ``replace=True``.
    """
    slot = 1 if vectorized else 0

    def _register(fn: Callable) -> Callable:
        entry = _BACKENDS.setdefault(name, [None, None])
        if not replace and entry[slot] is not None:
            kind = "vectorized" if vectorized else "reference"
            raise ValueError(f"{kind} backend {name!r} is already "
                             f"registered; pass replace=True to override")
        entry[slot] = fn
        return fn
    if factory is not None:
        return _register(factory)
    return _register


def unregister_backend(name: str, *, vectorized: bool | None = None) -> None:
    """Remove a backend (primarily for test cleanup).

    By default both slots go; pass ``vectorized`` to drop just one.
    """
    if vectorized is None:
        _BACKENDS.pop(name, None)
        return
    entry = _BACKENDS.get(name)
    if entry is not None:
        entry[1 if vectorized else 0] = None
        if entry[0] is None and entry[1] is None:
            del _BACKENDS[name]


def backend_factory(name: str, vectorized: bool | None = None) -> Callable:
    """Look up one backend factory, or raise listing what exists.

    ``vectorized=None`` (the default) prefers the vectorized factory
    and falls back to the oracle; ``True`` requires the vectorized one;
    ``False`` requires the oracle.
    """
    try:
        entry = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; "
            f"known: {registered_topologies()}") from None
    if vectorized is None:
        factory = entry[1] if entry[1] is not None else entry[0]
    else:
        factory = entry[1] if vectorized else entry[0]
    if factory is None:
        kind = "vectorized" if vectorized else "reference"
        raise ValueError(f"backend {name!r} has no {kind} implementation")
    return factory


def has_vectorized(name: str) -> bool:
    """True when ``name`` has a registered vectorized twin."""
    entry = _BACKENDS.get(name)
    return entry is not None and entry[1] is not None


def registered_topologies() -> tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_BACKENDS)


@contextmanager
def temporary_backend(name: str, factory: Callable,
                      *, vectorized: bool = False) -> Iterator[None]:
    """Register a backend for the duration of a ``with`` block."""
    register_backend(name, factory, vectorized=vectorized)
    try:
        yield
    finally:
        unregister_backend(name, vectorized=vectorized)


# -- the paper's four topologies (Figure 10) ---------------------------------
#
# Each registers its per-object oracle and its struct-of-arrays twin;
# dispatch serves the twin, the equivalence suite diffs the two.

@register_backend("ring")
def _make_ring(nodes: int = 16, **kwargs):
    from repro.noc.network import Network
    from repro.noc.topology import make_topology
    return Network(make_topology("ring", nodes), **kwargs)


@register_backend("ring", vectorized=True)
def _make_ring_soa(nodes: int = 16, **kwargs):
    from repro.noc.soa import SoANetwork
    from repro.noc.topology import make_topology
    return SoANetwork(make_topology("ring", nodes), **kwargs)


@register_backend("mesh")
def _make_mesh(nodes: int = 16, **kwargs):
    from repro.noc.network import Network
    from repro.noc.topology import make_topology
    return Network(make_topology("mesh", nodes), **kwargs)


@register_backend("mesh", vectorized=True)
def _make_mesh_soa(nodes: int = 16, **kwargs):
    from repro.noc.soa import SoANetwork
    from repro.noc.topology import make_topology
    return SoANetwork(make_topology("mesh", nodes), **kwargs)


@register_backend("optbus")
def _make_optbus(nodes: int = 16, **kwargs):
    from repro.noc.optbus import OptBusNetwork
    return OptBusNetwork(nodes, **kwargs)


@register_backend("optbus", vectorized=True)
def _make_optbus_soa(nodes: int = 16, **kwargs):
    from repro.noc.soa import SoAOptBusNetwork
    return SoAOptBusNetwork(nodes, **kwargs)


@register_backend("flumen")
def _make_flumen(nodes: int = 16, **kwargs):
    from repro.noc.flumen_net import FlumenNetwork
    return FlumenNetwork(nodes, **kwargs)


@register_backend("flumen", vectorized=True)
def _make_flumen_soa(nodes: int = 16, **kwargs):
    from repro.noc.soa import SoAFlumenNetwork
    return SoAFlumenNetwork(nodes, **kwargs)
