"""Struct-of-arrays (SoA) NoP backends, bit-identical to the per-object ones.

The per-object simulators (:class:`~repro.noc.network.Network`'s
``Router`` pipeline, :class:`~repro.noc.flumen_net.FlumenNetwork`'s
circuit dicts, :class:`~repro.noc.optbus.OptBusNetwork`'s bus circuits)
are easy to audit but slow: every cycle re-walks Python object graphs,
rebuilds dense arbiter request vectors, and counts down every in-flight
flit individually.  The classes here flatten all mutable router/source/
bus state into parallel flat arrays indexed by ``(router, port, vc)``
(credits, queue occupancy, output allocations, arbiter rotation state,
circuit setup/remaining counters), bucket in-flight flit positions by
arrival cycle so link flight needs no per-cycle countdown, and advance
only the *active* entries each cycle through sparse pending-event sets
— per-cycle cost tracks activity, not network size.  (At these network
sizes — tens of routers — flat Python lists beat ndarray scalar
indexing for the per-element hot fields, so the SoA arrays are plain
lists; NumPy builds the precomputed route/VC-class tables and serves
the wide arbiter paths in :mod:`repro.noc.arbiter`.)

The per-object classes stay registered as the **bit-identity oracle**
(exactly as ``MZIMesh._reference_propagate`` anchors the vectorized
photonic kernel): for every backend the SoA twin must reproduce the
oracle's delivered packets, per-flit latency samples, counters, cycle
counts, and trace event order *exactly*.  ``tests/test_soa_kernel.py``
pins that equivalence property over random traffic; the registry serves
the SoA twin by default and the oracle on request
(``backend_factory(name, vectorized=False)``).

On top of the flat layout, the SoA backends opt into the kernel's idle
fast-forward (``SimKernel.run``): when the network is quiescent and the
traffic source can name its next event cycle (trace playback), the run
loop jumps straight there instead of stepping empty cycles one by one.
Each backend's ``_skip_idle`` advances exactly the state an idle step
would have touched — the cycle counter, the utilization intervals, and
(for Flumen) the wavefront priority diagonal, which the oracle rotates
on every cycle, busy or not.

Ordering contracts the SoA step preserves (DESIGN.md §14):

* ``Network``: routers are processed in ascending id, so at most one
  ejection per router per cycle lands in ascending router order;
  credits and link sends are buffered and applied after the router
  pass, exactly as the oracle does.  Link delay is constant, so the
  per-arrival-cycle buckets replay the oracle's in-flight list order.
* ``FlumenNetwork``: deliveries follow *circuit-table insertion order*
  (a dict in the oracle), so the SoA variant stamps every activation —
  including a pending circuit's promotion — into an explicit order
  list and advances circuits in that order.
* ``OptBusNetwork``: buses advance in ascending bus id, matching the
  oracle's sorted scan.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.noc.arbiter import WavefrontArbiter
from repro.noc.flumen_net import DEFAULT_RECONFIG_CYCLES
from repro.noc.kernel import SimKernel
from repro.noc.packet import Flit, Packet
from repro.noc.topology import LOCAL_PORT, Topology
from repro.obs import NULL_OBS, Obs

#: Effectively infinite credits for ejection ports (oracle's value).
_EJECT_CREDITS = 10 ** 9


def _rr_sparse(lines, last: int, n: int) -> int:
    """Round-robin winner among sparse request line indices.

    The oracle scans from ``last + 1``; the first requesting line hit is
    the one minimizing ``(line - last - 1) mod n`` (distances are
    distinct per line, so the minimum is unique).
    """
    return min(lines, key=lambda line: (line - last - 1) % n)


class SoANetwork(SimKernel):
    """Wormhole network with all router state in flat parallel arrays.

    Semantically identical to :class:`~repro.noc.network.Network` over
    the same topology; see the module docstring for the contract.
    State for input VC ``(router, port, vc)`` lives at flat index
    ``(router * P + port) * V + vc`` across the parallel arrays.
    """

    _supports_idle_skip = True

    def __init__(self, topology: Topology, num_vcs: int = 2,
                 buffer_depth: int = 8, utilization_interval: int = 100,
                 router_pipeline_cycles: int = 2,
                 obs: Obs = NULL_OBS) -> None:
        super().__init__(name=topology.name,
                         num_links=topology.num_links(),
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.topology = topology
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.router_pipeline_cycles = router_pipeline_cycles
        R = topology.num_routers
        P = max(topology.num_ports(r) for r in range(R))
        V = num_vcs
        self._R, self._P, self._V = R, P, V
        self._PV = P * V
        n = R * P * V
        # -- SoA state ---------------------------------------------------
        #: Output port each input VC's current packet heads to (-1 none).
        self.out_port = [-1] * n
        #: Output VC allocated to the current packet (-1 none).
        self.out_vc = [-1] * n
        #: Input line (p * V + v) owning each (out_port, out_vc); -1 free.
        self.owner = [-1] * n
        #: Credits toward each (output port, vc); LOCAL never backpressures.
        self.credits = [buffer_depth] * n
        for r in range(R):
            base = (r * P + LOCAL_PORT) * V
            for v in range(V):
                self.credits[base + v] = _EJECT_CREDITS
        #: Round-robin rotation state mirroring the oracle's arbiters.
        self.vc_last = [P * V - 1] * n
        self.sw_in_last = [V - 1] * (R * P)
        self.sw_out_last = [P * V - 1] * (R * P)
        #: Flit queues per input VC (queue occupancy = ``len``).
        self._bufs: list[deque[Flit]] = [deque() for _ in range(n)]
        # -- precomputed topology tables ---------------------------------
        nodes = topology.nodes
        route = np.empty((R, nodes), dtype=np.int64)
        for r in range(R):
            for dst in range(nodes):
                route[r, dst] = topology.route(r, dst)
        self._route_table: list[list[int]] = route.tolist()
        vc_cls = np.empty((nodes, nodes), dtype=np.int64)
        for src in range(nodes):
            for dst in range(nodes):
                vc_cls[src, dst] = topology.vc_class(src, dst) % V
        self._vc_class: list[list[int]] = vc_cls.tolist()
        #: Ring restricts a packet to its VC class; mesh allows all VCs.
        self._restrict_vcs = topology.name == "ring"
        self._all_vcs = tuple(range(V))
        #: (router * P + out_port) -> (next router, in_port) or None.
        self._link: list[tuple[int, int] | None] = [None] * (R * P)
        #: (router * P + in_port) -> upstream flat credit base, or -1.
        self._up_credit_base = [-1] * (R * P)
        for r in range(R):
            for p in range(1, topology.num_ports(r)):
                nxt = topology.link(r, p)
                self._link[r * P + p] = nxt
                if nxt is not None:
                    nr, nport = nxt
                    self._up_credit_base[nr * P + nport] = (r * P + p) * V
        self._link_delay = 1 + router_pipeline_cycles
        # -- pending-event structures (drive the per-cycle pass) ---------
        #: router -> set of (p, v) with an unrouted head flit at the front.
        self._route_pending: dict[int, set[tuple[int, int]]] = {}
        #: router -> set of (p, v) routed but lacking an output VC.
        self._vc_pending: dict[int, set[tuple[int, int]]] = {}
        #: router -> set of ports with any (buffered, VC-allocated) input.
        self._sa_ports: dict[int, set[int]] = {}
        self.source_queues: list[deque[Flit]] = [
            deque() for _ in range(nodes)]
        #: In-flight flit positions bucketed by arrival cycle.  Link
        #: delay is constant, so bucket order replays the oracle's
        #: in-flight list order and no per-cycle countdown is needed.
        self._arrivals: dict[int, list[tuple[int, int, Flit]]] = {}
        self._in_flight_count = 0
        self._waiting_sources: set[int] = set()
        self._total_buffered = 0
        self._open_vcs = 0
        self.ejected_flits = 0
        self._m_hops = obs.metrics.counter(
            "noc.flit_hops", topology=topology.name)
        self._run_hops_base = 0

    # -- pending-set maintenance ----------------------------------------

    @staticmethod
    def _add(table: dict, router: int, item) -> None:
        items = table.get(router)
        if items is None:
            table[router] = {item}
        else:
            items.add(item)

    @staticmethod
    def _discard(table: dict, router: int, item) -> None:
        items = table.get(router)
        if items is not None:
            items.discard(item)
            if not items:
                del table[router]

    # -- traffic ---------------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        flits = packet.flits()
        vc = self._vc_class[packet.src][packet.dst]
        for flit in flits:
            flit.vc = vc
        self.source_queues[packet.src].extend(flits)
        self._waiting_sources.add(packet.src)

    def _accept(self, router: int, in_port: int, flit: Flit) -> None:
        idx = (router * self._P + in_port) * self._V + flit.vc
        dq = self._bufs[idx]
        if len(dq) >= self.buffer_depth:
            raise RuntimeError(
                f"router {router} port {in_port} vc {flit.vc} overflow — "
                f"credit protocol violated")
        dq.append(flit)
        self._total_buffered += 1
        if len(dq) == 1:
            # The arrival is now the VC's front flit.  A head at an idle
            # VC awaits routing; a body/tail continues a packet whose
            # output VC is already held, so the port can bid for the
            # switch again.
            if flit.is_head:
                self._add(self._route_pending, router, (in_port, flit.vc))
            elif self.out_vc[idx] != -1:
                self._add(self._sa_ports, router, in_port)

    def _inject(self) -> None:
        emptied: list[int] = []
        PV, V = self._PV, self._V
        for node in sorted(self._waiting_sources):
            queue = self.source_queues[node]
            flit = queue[0]
            idx = node * PV + LOCAL_PORT * V + flit.vc
            if len(self._bufs[idx]) < self.buffer_depth:
                # Heads may enter only if the VC is free of a previous
                # packet (buffered flits or a still-open output port).
                if flit.is_head and (self._bufs[idx]
                                     or self.out_port[idx] != -1):
                    continue
                queue.popleft()
                self._accept(node, LOCAL_PORT, flit)
                if not queue:
                    emptied.append(node)
        self._waiting_sources.difference_update(emptied)

    # -- simulation ------------------------------------------------------

    def step(self) -> None:
        """Advance the network one cycle (oracle stage order)."""
        # 1. Link arrivals whose delay has elapsed land now.
        batch = self._arrivals.pop(self.cycle, None)
        if batch is not None:
            self._in_flight_count -= len(batch)
            for router, in_port, flit in batch:
                self._accept(router, in_port, flit)

        # 2. Injection from source queues.
        if self._waiting_sources:
            self._inject()

        # 3. Router pipelines over the pending-event sets, ascending
        #    router id (the oracle's sorted active scan).  Routers absent
        #    from every set have no routable, allocatable, or movable
        #    flit, so every stage is an exact no-op for them.
        busy_links = 0
        if self._route_pending or self._vc_pending or self._sa_ports:
            credits_back: list[int] = []
            active = set(self._route_pending)
            active.update(self._vc_pending)
            active.update(self._sa_ports)
            for router in sorted(active):
                if router in self._route_pending:
                    self._route_stage(router)
                if router in self._vc_pending:
                    self._vc_alloc_stage(router)
                if router in self._sa_ports:
                    busy_links += self._switch_stage(router, credits_back)
            credits = self.credits
            for i in credits_back:
                credits[i] += 1
        self.utilization.record_cycle(busy_links)
        self.cycle += 1

    def _skip_idle(self, idle_cycles: int) -> None:
        # A quiescent router network moves no arbiter state on an idle
        # cycle, so only the kernel-side clock advances.
        self._advance_idle(idle_cycles)

    def _route_stage(self, router: int) -> None:
        pending = self._route_pending.pop(router)
        vc_pending = self._vc_pending.get(router)
        if vc_pending is None:
            vc_pending = self._vc_pending[router] = set()
        route_row = self._route_table[router]
        base = router * self._PV
        V = self._V
        for p, v in pending:
            idx = base + p * V + v
            head = self._bufs[idx][0]
            self.out_port[idx] = route_row[head.dst]
            self._open_vcs += 1
            vc_pending.add((p, v))

    def _vc_alloc_stage(self, router: int) -> None:
        pending = self._vc_pending[router]
        V, PV = self._V, self._PV
        base = router * PV
        owner = self.owner
        out_port, out_vc = self.out_port, self.out_vc
        # Request groups keyed (out_port, out_vc) in the oracle's
        # ascending-(p, v) scan order.
        requests: dict[int, list[int]] = {}
        for p, v in sorted(pending):
            idx = base + p * V + v
            op = out_port[idx]
            if self._restrict_vcs:
                head = self._bufs[idx][0]
                allowed = (self._vc_class[head.src][head.dst],)
            else:
                allowed = self._all_vcs
            obase = base + op * V
            line = p * V + v
            for ov in allowed:
                if owner[obase + ov] == -1:
                    out_key = obase + ov
                    group = requests.get(out_key)
                    if group is None:
                        requests[out_key] = [line]
                    else:
                        group.append(line)
        for out_key, lines in requests.items():
            if owner[out_key] != -1:
                continue
            last = self.vc_last[out_key]
            if len(lines) == 1:
                winner = lines[0]
            else:
                winner = _rr_sparse(lines, last, PV)
            # The arbiter rotates on every grant, even one discarded
            # below because the input already won another VC this cycle.
            self.vc_last[out_key] = winner
            widx = base + winner
            if out_vc[widx] == -1:
                out_vc[widx] = out_key - base - out_port[widx] * V
                owner[out_key] = winner
                pending.discard(divmod(winner, V))
                self._add(self._sa_ports, router, winner // V)
        if not pending:
            del self._vc_pending[router]

    def _switch_stage(self, router: int, credits_back: list[int]) -> int:
        ports = self._sa_ports[router]
        V, PV = self._V, self._PV
        base = router * PV
        bufs, out_vc, out_port = self._bufs, self.out_vc, self.out_port
        credits, sw_in_last = self.credits, self.sw_in_last
        rp_base = router * self._P
        # Stage 1: each input port nominates one ready VC (credit-gated,
        # per-input round-robin over the VCs).
        nominated: list[int] = []
        for p in sorted(ports):
            pbase = base + p * V
            last = sw_in_last[rp_base + p]
            best_key, best_v = V, -1
            for v in range(V):
                i = pbase + v
                ov = out_vc[i]
                if ov != -1 and bufs[i] \
                        and credits[base + out_port[i] * V + ov] > 0:
                    key = (v - last - 1) % V
                    if key < best_key:
                        best_key, best_v = key, v
            if best_v != -1:
                sw_in_last[rp_base + p] = best_v
                nominated.append(p * V + best_v)
        if not nominated:
            return 0
        # Stage 2: each output port picks among nominated inputs, groups
        # in first-nomination order (the oracle's dict insertion order).
        per_output: dict[int, list[int]] = {}
        for line in nominated:
            op = out_port[base + line]
            group = per_output.get(op)
            if group is None:
                per_output[op] = [line]
            else:
                group.append(line)
        busy = 0
        sw_out_last = self.sw_out_last
        for op, lines in per_output.items():
            if len(lines) == 1:
                w = lines[0]
            else:
                w = _rr_sparse(lines, sw_out_last[rp_base + op], PV)
            sw_out_last[rp_base + op] = w
            busy += self._traverse(router, w // V, w % V, credits_back)
        return busy

    def _traverse(self, router: int, p: int, v: int,
                  credits_back: list[int]) -> int:
        V = self._V
        base = router * self._PV
        idx = base + p * V + v
        dq = self._bufs[idx]
        flit = dq.popleft()
        self._total_buffered -= 1
        op = self.out_port[idx]
        ov = self.out_vc[idx]
        if flit.is_tail:
            self.owner[base + op * V + ov] = -1
            self.out_port[idx] = -1
            self.out_vc[idx] = -1
            self._open_vcs -= 1
            if dq:
                # Packets on one VC are contiguous: the next front flit
                # is the following packet's head, awaiting routing.
                self._add(self._route_pending, router, (p, v))
        # The port stays switch-eligible only while some VC still holds
        # a buffered flit with an allocated output VC.
        pbase = base + p * V
        for u in range(V):
            if self._bufs[pbase + u] and self.out_vc[pbase + u] != -1:
                break
        else:
            self._discard(self._sa_ports, router, p)
        self.flit_hops += 1
        if p != LOCAL_PORT:
            up_base = self._up_credit_base[router * self._P + p]
            if up_base != -1:
                credits_back.append(up_base + v)
        if op == LOCAL_PORT:
            self._eject(flit)
            return 0
        self.credits[base + op * V + ov] -= 1
        nxt = self._link[router * self._P + op]
        if nxt is None:
            raise RuntimeError(
                f"router {router} routed {flit} off the edge via "
                f"port {op}")
        flit.vc = ov
        arrival = self.cycle + self._link_delay
        bucket = self._arrivals.get(arrival)
        if bucket is None:
            self._arrivals[arrival] = [(nxt[0], nxt[1], flit)]
        else:
            bucket.append((nxt[0], nxt[1], flit))
        self._in_flight_count += 1
        self.link_traversals += 1
        return 1

    def _eject(self, flit: Flit) -> None:
        self.ejected_flits += 1
        if flit.is_tail:
            packet = flit.packet
            self._deliver(packet, self.cycle, f"node{packet.src}")

    def _begin_run(self) -> None:
        self._run_hops_base = self.flit_hops

    def _end_run(self) -> None:
        self._m_hops.inc(self.flit_hops - self._run_hops_base)

    def quiescent(self) -> bool:
        """True when no flit remains anywhere in the network (O(1))."""
        return (self._in_flight_count == 0
                and not self._waiting_sources
                and self._total_buffered == 0
                and self._open_vcs == 0)

    def total_queued_flits(self) -> int:
        return (sum(len(q) for q in self.source_queues)
                + self._total_buffered + self._in_flight_count)


class SoAFlumenNetwork(SimKernel):
    """MZIM crossbar with circuit state in flat arrays + sparse wavefront.

    Semantically identical to
    :class:`~repro.noc.flumen_net.FlumenNetwork`, including the
    scheduler hooks (port blocking, reroutes, buffer feedback) and the
    delivery/trace ordering (circuit-table insertion order, tracked by
    an explicit activation-order list).
    """

    name = "flumen"

    _supports_idle_skip = True

    def __init__(self, nodes: int,
                 reconfig_cycles: int = DEFAULT_RECONFIG_CYCLES,
                 propagation_delay: int = 1,
                 request_buffer_capacity: int = 16,
                 utilization_interval: int = 100,
                 pipelined_setup: bool = True,
                 arbitration: str = "wavefront",
                 obs: Obs = NULL_OBS) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes")
        if arbitration not in ("wavefront", "sequential"):
            raise ValueError(
                f"arbitration must be 'wavefront' or 'sequential', "
                f"got {arbitration!r}")
        super().__init__(name=self.name, num_links=nodes,
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.nodes = nodes
        self.reconfig_cycles = reconfig_cycles
        self.propagation_delay = propagation_delay
        self.request_buffer_capacity = request_buffer_capacity
        self.pipelined_setup = pipelined_setup
        self.arbitration = arbitration
        self._sequential_rr = 0
        self.request_buffers: list[deque[Packet]] = [
            deque() for _ in range(nodes)]
        self._overflow: list[deque[Packet]] = [deque() for _ in range(nodes)]
        self._waiting_sources: set[int] = set()
        self._arbiter = WavefrontArbiter(nodes)
        # -- SoA circuit state, indexed by source port -------------------
        #: Setup cycles left / flits left per *active* circuit.
        self._setup_left = [0] * nodes
        self._remaining = [0] * nodes
        self._grant_cycle = [0] * nodes
        self._packets: list[Packet | None] = [None] * nodes
        #: Active sources in activation order — the oracle's circuit-dict
        #: insertion order, which fixes delivery order.
        self._order: list[int] = []
        # Pending (pipelined-setup) circuits, same flat layout.
        self._p_setup = [0] * nodes
        self._p_remaining = [0] * nodes
        self._p_grant_cycle = [0] * nodes
        self._p_packets: list[Packet | None] = [None] * nodes
        self._pending_srcs: set[int] = set()
        #: Destinations reserved by pending circuits — replaces the
        #: oracle's any()-scan over the pending table (at most one
        #: pending circuit targets a given destination at a time).
        self._pending_dsts: set[int] = set()
        self._busy_outputs: set[int] = set()
        self.blocked_ports: set[int] = set()
        self.reroute_penalties: dict[tuple[int, int], int] = {}
        self.rerouted_grants = 0
        self.reconfigurations = 0
        self.arbiter_conflicts = 0
        self._m_reconfig = obs.metrics.counter(
            "noc.reconfigurations", topology=self.name)
        self._m_conflicts = obs.metrics.counter(
            "noc.arbiter_conflicts", topology=self.name)
        self._m_overflow = obs.metrics.counter(
            "noc.buffer_overflows", topology=self.name)
        self._m_reroutes = obs.metrics.counter(
            "noc.rerouted_circuits", topology=self.name)

    # -- scheduler hooks -------------------------------------------------

    def reroute_pair(self, src: int, dst: int,
                     extra_setup_cycles: int) -> None:
        """Program a detour for (src, dst) around a dead interposer path."""
        if extra_setup_cycles < 0:
            raise ValueError(
                f"extra_setup_cycles must be >= 0, got {extra_setup_cycles}")
        self.reroute_penalties[(int(src), int(dst))] = int(extra_setup_cycles)

    def _setup_cycles(self, src: int, dst: int) -> int:
        extra = self.reroute_penalties.get((src, dst), 0)
        if extra:
            self.rerouted_grants += 1
            self._m_reroutes.inc()
        return self.reconfig_cycles + extra

    def block_ports(self, ports: set[int]) -> None:
        self.blocked_ports |= set(ports)

    def unblock_ports(self, ports: set[int]) -> None:
        self.blocked_ports -= set(ports)

    def ports_clear(self, ports: set[int]) -> bool:
        """True when no circuit is transmitting on any of the given ports."""
        for src in self._order:
            if src in ports or any(d in ports for d in
                                   self._packets[src].destinations):
                return False
        for src in self._pending_srcs:
            if src in ports or any(d in ports for d in
                                   self._p_packets[src].destinations):
                return False
        return True

    def buffer_occupancy(self, port: int) -> int:
        """Packets waiting at one control-unit request buffer."""
        return len(self.request_buffers[port]) + len(self._overflow[port])

    def buffer_utilization(self, ports: list[int] | None = None,
                           scan_depth: float = 1.0) -> float:
        """Mean occupancy fraction over the most-utilized buffers."""
        ports = list(range(self.nodes)) if ports is None else list(ports)
        if not ports:
            return 0.0
        if not 0.0 < scan_depth <= 1.0:
            raise ValueError(f"scan_depth must be in (0, 1], got {scan_depth}")
        fracs = sorted(
            (min(self.buffer_occupancy(p) / self.request_buffer_capacity, 1.0)
             for p in ports),
            reverse=True)
        top = max(1, int(round(scan_depth * len(fracs))))
        return float(np.mean(fracs[:top]))

    # -- traffic ---------------------------------------------------------

    def _enqueue(self, packet: Packet) -> None:
        if len(self.request_buffers[packet.src]) \
                < self.request_buffer_capacity:
            self.request_buffers[packet.src].append(packet)
        else:
            self._overflow[packet.src].append(packet)
            self._m_overflow.inc()
        self._waiting_sources.add(packet.src)

    def _drained(self, src: int) -> None:
        if not self.request_buffers[src] and not self._overflow[src]:
            self._waiting_sources.discard(src)

    def _refill_buffers(self) -> None:
        for port in self._waiting_sources:
            over = self._overflow[port]
            if not over:
                continue
            buf = self.request_buffers[port]
            while over and len(buf) < self.request_buffer_capacity:
                buf.append(over.popleft())

    # -- simulation ------------------------------------------------------

    def _eligible_source(self, src: int) -> bool:
        if src in self.blocked_ports or src in self._pending_srcs:
            return False
        if self._packets[src] is None:
            return True
        return (self.pipelined_setup
                and self._setup_left[src] == 0
                and self._remaining[src] <= self.reconfig_cycles)

    def step(self) -> None:
        busy = self._advance_circuits()
        if self._waiting_sources:
            self._grant_multicasts()
            pairs = self._unicast_requests()
        else:
            pairs = []
        self._grant_unicasts(pairs)
        self._refill_buffers()
        self.utilization.record_cycle(busy)
        if self._tracer.enabled and self.cycle \
                and self.cycle % self.utilization.interval_cycles == 0:
            self._tracer.counter("noc", "arbiter", "arbiter_conflicts",
                                 self.cycle, total=self.arbiter_conflicts)
        self.cycle += 1

    def _skip_idle(self, idle_cycles: int) -> None:
        # An idle step still rotates the wavefront priority diagonal
        # (the oracle's allocate() rotates on every call, requests or
        # not); sequential arbitration moves nothing when idle.
        if self.arbitration == "wavefront":
            self._arbiter.rotate(idle_cycles)
        self._advance_idle(idle_cycles)

    def _activate(self, src: int, packet: Packet, setup: int,
                  grant_cycle: int) -> None:
        self._packets[src] = packet
        self._setup_left[src] = setup
        self._remaining[src] = packet.size_flits
        self._grant_cycle[src] = grant_cycle
        self._order.append(src)

    def _advance_circuits(self) -> int:
        busy = 0
        for src in self._pending_srcs:
            if self._p_setup[src] > 0:
                self._p_setup[src] -= 1
        if not self._order:
            return busy
        finished: list[int] = []
        setup_left = self._setup_left
        remaining = self._remaining
        for src in self._order:
            if setup_left[src] > 0:
                setup_left[src] -= 1
                continue
            left = remaining[src] - 1
            remaining[src] = left
            busy += 1
            self.flit_hops += 1
            self.link_traversals += 1
            if left == 0:
                packet = self._packets[src]
                delivered = self.cycle + self.propagation_delay
                self._deliver(packet, delivered, f"port{src}",
                              grant_wait=(self._grant_cycle[src]
                                          - packet.create_cycle))
                finished.append(src)
        for src in finished:
            for dst in self._packets[src].destinations:
                self._busy_outputs.discard(dst)
            self._packets[src] = None
            self._order.remove(src)
            if src in self._pending_srcs:
                # Promotion re-inserts at the end of the circuit table,
                # exactly as the oracle's dict insertion does.
                self._pending_srcs.discard(src)
                nxt = self._p_packets[src]
                self._p_packets[src] = None
                self._pending_dsts.discard(nxt.dst)
                self._activate(src, nxt, self._p_setup[src],
                               self._p_grant_cycle[src])
                self._busy_outputs.add(nxt.dst)
        return busy

    def _grant_multicasts(self) -> None:
        for src in sorted(self._waiting_sources):
            buf = self.request_buffers[src]
            if not buf or not buf[0].multicast_dsts:
                continue
            if self._packets[src] is not None or src in self._pending_srcs \
                    or src in self.blocked_ports:
                continue
            dsts = buf[0].multicast_dsts
            if any(d in self._busy_outputs or d in self.blocked_ports
                   for d in dsts):
                continue
            packet = buf.popleft()
            self._drained(src)
            self._activate(src, packet, self.reconfig_cycles, self.cycle)
            self._busy_outputs.update(dsts)
            self.reconfigurations += 1
            self._m_reconfig.inc()

    def _unicast_requests(self) -> list[tuple[int, int]]:
        """Sparse (src, dst) request pairs, ascending src (oracle order)."""
        pairs: list[tuple[int, int]] = []
        for src in sorted(self._waiting_sources):
            buf = self.request_buffers[src]
            if not buf or buf[0].multicast_dsts \
                    or not self._eligible_source(src):
                continue
            dst = buf[0].dst
            if dst in self._busy_outputs or dst in self.blocked_ports:
                # A source draining toward its tail may still target the
                # output it itself occupies (back-to-back same-dest).
                active = self._packets[src]
                if not (active is not None and active.dst == dst):
                    continue
            if dst in self._pending_dsts:
                continue
            pairs.append((src, dst))
        return pairs

    def _grant_unicasts(self, pairs: list[tuple[int, int]]) -> None:
        if not pairs:
            # Idle fast path: the wavefront priority still rotates, as
            # the oracle's allocate() does on an empty matrix.
            if self.arbitration == "wavefront":
                self._arbiter.rotate()
            return
        if self.arbitration == "wavefront":
            grants = self._arbiter.allocate_sparse(pairs)
        else:  # sequential: one grant per cycle, rotating priority
            rr, n = self._sequential_rr, self.nodes
            src, dst = min(pairs, key=lambda ij: (ij[0] - rr) % n)
            grants = [(src, dst)]
            self._sequential_rr = (src + 1) % n
        conflicts = len(pairs) - len(grants)
        if conflicts > 0:
            self.arbiter_conflicts += conflicts
            self._m_conflicts.inc(conflicts)
        for src, dst in grants:
            packet = self.request_buffers[src].popleft()
            self._drained(src)
            assert packet.dst == dst
            setup = self._setup_cycles(src, dst)
            self.reconfigurations += 1
            self._m_reconfig.inc()
            if self._packets[src] is not None:
                # Pipelined pre-grant: reserve the output now so no
                # other grant races it before the circuit activates.
                self._pending_srcs.add(src)
                self._p_packets[src] = packet
                self._p_setup[src] = setup
                self._p_remaining[src] = packet.size_flits
                self._p_grant_cycle[src] = self.cycle
                self._pending_dsts.add(dst)
                self._busy_outputs.add(dst)
            else:
                self._activate(src, packet, setup, self.cycle)
                self._busy_outputs.add(dst)

    def quiescent(self) -> bool:
        return (not self._order and not self._pending_srcs
                and not self._waiting_sources)

    def total_queued_flits(self) -> int:
        queued = sum(p.size_flits
                     for q in self.request_buffers for p in q)
        queued += sum(p.size_flits for q in self._overflow for p in q)
        queued += sum(self._remaining[src] for src in self._order)
        queued += sum(self._p_remaining[src] for src in self._pending_srcs)
        return queued


class SoAOptBusNetwork(SimKernel):
    """MWSR optical bus with bus-circuit state in flat arrays.

    Semantically identical to :class:`~repro.noc.optbus.OptBusNetwork`;
    buses advance in ascending id, matching the oracle's sorted scan.
    """

    name = "optbus"

    _supports_idle_skip = True

    def __init__(self, nodes: int, arbitration_delay: int = 4,
                 propagation_delay: int = 2,
                 utilization_interval: int = 100,
                 obs: Obs = NULL_OBS) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes")
        super().__init__(name=self.name, num_links=nodes,
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.nodes = nodes
        self.arbitration_delay = arbitration_delay
        self.propagation_delay = propagation_delay
        self.source_queues: list[deque[Packet]] = [
            deque() for _ in range(nodes)]
        #: Per-bus round-robin rotation state (the oracle's arbiters).
        self._bus_last = [nodes - 1] * nodes
        self._remaining = [0] * nodes
        self._setup_left = [0] * nodes
        self._packets: list[Packet | None] = [None] * nodes
        self._active_buses: set[int] = set()
        self._waiting_sources: set[int] = set()

    def _enqueue(self, packet: Packet) -> None:
        self.source_queues[packet.src].append(packet)
        self._waiting_sources.add(packet.src)

    def step(self) -> None:
        busy = 0
        if self._active_buses:
            setup_left = self._setup_left
            remaining = self._remaining
            for bus in sorted(self._active_buses):
                if setup_left[bus] > 0:
                    setup_left[bus] -= 1
                    continue
                left = remaining[bus] - 1
                remaining[bus] = left
                busy += 1
                self.flit_hops += 1
                self.link_traversals += 1
                if left == 0:
                    delivered = self.cycle + self.propagation_delay
                    self._deliver(self._packets[bus], delivered, f"bus{bus}")
                    self._packets[bus] = None
                    self._active_buses.discard(bus)
        if self._waiting_sources:
            # Request lines per free bus, sources ascending (oracle's
            # sorted scan); each source targets exactly one bus, so
            # per-bus winners never collide.
            requests_per_bus: dict[int, list[int]] = {}
            for src in sorted(self._waiting_sources):
                dst = self.source_queues[src][0].dst
                if self._packets[dst] is None:
                    group = requests_per_bus.get(dst)
                    if group is None:
                        requests_per_bus[dst] = [src]
                    else:
                        group.append(src)
            for bus, srcs in requests_per_bus.items():
                if len(srcs) == 1:
                    winner = srcs[0]
                else:
                    winner = _rr_sparse(srcs, self._bus_last[bus],
                                        self.nodes)
                self._bus_last[bus] = winner
                packet = self.source_queues[winner].popleft()
                if not self.source_queues[winner]:
                    self._waiting_sources.discard(winner)
                self._packets[bus] = packet
                self._remaining[bus] = packet.size_flits
                self._setup_left[bus] = self.arbitration_delay
                self._active_buses.add(bus)
        self.utilization.record_cycle(busy)
        self.cycle += 1

    def _skip_idle(self, idle_cycles: int) -> None:
        # Idle bus cycles move no arbiter or circuit state.
        self._advance_idle(idle_cycles)

    def quiescent(self) -> bool:
        return not self._waiting_sources and not self._active_buses

    def total_queued_flits(self) -> int:
        queued = sum(p.size_flits for q in self.source_queues for p in q)
        active = sum(self._remaining[bus] for bus in self._active_buses)
        return queued + active
