"""Measurement infrastructure for the NoP simulator.

Collects per-packet latencies, throughput, and the per-interval link
utilization timelines that reproduce Figure 1.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np


@dataclass
class LatencyStats:
    """Per-packet latency accounting with warmup exclusion.

    Packets created during the warmup period are counted in the raw
    ``received`` / ``received_flits`` totals but excluded from both the
    latency sample and the ``measured_*`` counters that feed
    :meth:`throughput` — latency and throughput therefore agree on the
    measurement window.
    """

    warmup_cycles: int = 0
    latencies: list[int] = field(default_factory=list)
    received: int = 0
    received_flits: int = 0
    #: Post-warmup packets/flits only — the measurement window's share.
    measured: int = 0
    measured_flits: int = 0

    def record(self, packet_create_cycle: int, tail_arrival_cycle: int,
               size_flits: int) -> None:
        self.received += 1
        self.received_flits += size_flits
        if packet_create_cycle >= self.warmup_cycles:
            self.latencies.append(tail_arrival_cycle - packet_create_cycle)
            self.measured += 1
            self.measured_flits += size_flits

    @property
    def average(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def p99(self) -> float:
        from repro.obs.metrics import interpolated_percentile

        return interpolated_percentile(self.latencies, 99) \
            if self.latencies else 0.0

    @property
    def maximum(self) -> int:
        return max(self.latencies) if self.latencies else 0

    def throughput(self, nodes: int, measured_cycles: int) -> float:
        """Accepted flits per node per cycle, over the measurement window.

        Counts only flits of post-warmup packets — the same population
        the latency statistics describe.  (Warmup-period flits used to
        leak into this rate; see the regression test.)
        """
        if measured_cycles <= 0:
            return 0.0
        return self.measured_flits / (nodes * measured_cycles)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the latency statistics."""
        return {
            "received": self.received,
            "received_flits": self.received_flits,
            "measured": self.measured,
            "measured_flits": self.measured_flits,
            "warmup_cycles": self.warmup_cycles,
            "avg_latency": self.average,
            "p99_latency": self.p99,
            "max_latency": self.maximum,
        }


@dataclass
class UtilizationTracker:
    """Per-interval busy fraction of the network's links (Figure 1).

    ``on_flush(interval_index, fraction)`` — when set — fires as each
    interval closes; the networks wire it to the tracer's counter
    events so link-busy timelines land in the Chrome trace.
    """

    num_links: int
    interval_cycles: int = 100
    _busy_in_interval: int = 0
    _cycle_in_interval: int = 0
    timeline: list[float] = field(default_factory=list)
    on_flush: Callable[[int, float], None] | None = None

    def record_cycle(self, busy_links: int) -> None:
        if busy_links > self.num_links:
            raise ValueError(
                f"{busy_links} busy links exceeds {self.num_links}")
        self._busy_in_interval += busy_links
        self._cycle_in_interval += 1
        if self._cycle_in_interval == self.interval_cycles:
            self._flush()

    def record_idle_cycles(self, idle_cycles: int) -> None:
        """Account ``idle_cycles`` consecutive all-idle cycles at once.

        Equivalent to ``record_cycle(0)`` called ``idle_cycles`` times —
        interval boundaries fall at the same cycles, the same fractions
        land on the timeline, and ``on_flush`` fires per interval — but
        in O(intervals crossed) instead of O(cycles).  Backends' idle
        fast-forward uses this to keep utilization output byte-exact.
        """
        self.record_cycles(0, idle_cycles)

    def record_cycles(self, busy_links: int, cycles: int) -> None:
        """Account ``cycles`` consecutive cycles at one busy-link count.

        Byte-equivalent to ``record_cycle(busy_links)`` repeated
        ``cycles`` times: the same interval boundaries, fractions, and
        ``on_flush`` firings, in O(intervals crossed).  Fast-forward
        paths use this for stretches where the set of transferring
        circuits — and hence the busy count — is provably constant.
        """
        if busy_links > self.num_links:
            raise ValueError(
                f"{busy_links} busy links exceeds {self.num_links}")
        while cycles > 0:
            room = self.interval_cycles - self._cycle_in_interval
            chunk = min(cycles, room)
            self._busy_in_interval += busy_links * chunk
            self._cycle_in_interval += chunk
            cycles -= chunk
            if self._cycle_in_interval == self.interval_cycles:
                self._flush()

    def _flush(self) -> None:
        if self._cycle_in_interval and self.num_links:
            self.timeline.append(
                self._busy_in_interval
                / (self.num_links * self._cycle_in_interval))
            if self.on_flush is not None:
                self.on_flush(len(self.timeline) - 1, self.timeline[-1])
        self._busy_in_interval = 0
        self._cycle_in_interval = 0

    def finish(self) -> None:
        """Flush a trailing partial interval."""
        if self._cycle_in_interval:
            self._flush()

    @property
    def average(self) -> float:
        return float(np.mean(self.timeline)) if self.timeline else 0.0

    @property
    def peak(self) -> float:
        return max(self.timeline) if self.timeline else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the utilization timeline."""
        return {
            "num_links": self.num_links,
            "interval_cycles": self.interval_cycles,
            "average": self.average,
            "peak": self.peak,
            "timeline": list(self.timeline),
        }


@dataclass
class SimulationResult:
    """Outcome of one network simulation run."""

    topology: str
    pattern: str
    load: float
    cycles: int
    latency: LatencyStats
    utilization: UtilizationTracker | None = None
    injected_packets: int = 0
    flit_hops: int = 0
    link_traversals: int = 0
    saturated: bool = False

    @property
    def avg_latency(self) -> float:
        return self.latency.average

    def to_dict(self) -> dict:
        """JSON-ready snapshot of one simulation run."""
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "load": self.load,
            "cycles": self.cycles,
            "injected_packets": self.injected_packets,
            "flit_hops": self.flit_hops,
            "link_traversals": self.link_traversals,
            "saturated": self.saturated,
            "latency": self.latency.to_dict(),
            "utilization": (self.utilization.to_dict()
                            if self.utilization else None),
        }

    def summary(self) -> str:
        state = " (saturated)" if self.saturated else ""
        return (f"{self.topology:8s} {self.pattern:14s} load={self.load:.2f} "
                f"avg={self.avg_latency:7.1f}cy p99={self.latency.p99:7.1f}"
                f"{state}")
