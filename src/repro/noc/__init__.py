"""Cycle-accurate network-on-package simulator (Booksim substitute).

Implements the four evaluated NoP topologies (Figure 10): electrical ring
and mesh as flit-level VC wormhole networks, the shared optical bus as a
token-arbitrated MWSR circuit network, and the Flumen MZIM as a
wavefront-arbitrated non-blocking crossbar with reconfiguration delays and
scheduler-controllable port blocking.
"""

from repro.noc.arbiter import (
    RoundRobinArbiter,
    SeparableAllocator,
    WavefrontArbiter,
)
from repro.noc.energy import EnergyReport, NetworkEnergyModel
from repro.noc.flumen_net import DEFAULT_RECONFIG_CYCLES, FlumenNetwork
from repro.noc.kernel import SimKernel
from repro.noc.network import Network
from repro.noc.optbus import OptBusNetwork
from repro.noc.packet import Flit, Packet, reset_packet_ids
from repro.noc.registry import (
    backend_factory,
    register_backend,
    registered_topologies,
    temporary_backend,
    unregister_backend,
)
from repro.noc.router import Router, VCState
from repro.noc.simulation import (
    TOPOLOGIES,
    SweepConfig,
    load_sweep,
    make_network,
    run_point,
    saturation_load,
    zero_load_latency,
)
from repro.noc.stats import LatencyStats, SimulationResult, UtilizationTracker
from repro.noc.topology import (
    LOCAL_PORT,
    MeshTopology,
    RingTopology,
    Topology,
    make_topology,
)
from repro.noc.traffic import (
    PATTERNS,
    TracePlayback,
    TrafficGenerator,
    make_pattern,
)

__all__ = [
    "DEFAULT_RECONFIG_CYCLES",
    "EnergyReport",
    "Flit",
    "FlumenNetwork",
    "LOCAL_PORT",
    "LatencyStats",
    "MeshTopology",
    "Network",
    "NetworkEnergyModel",
    "OptBusNetwork",
    "PATTERNS",
    "Packet",
    "RingTopology",
    "RoundRobinArbiter",
    "Router",
    "SeparableAllocator",
    "SimKernel",
    "SimulationResult",
    "SweepConfig",
    "TOPOLOGIES",
    "Topology",
    "TracePlayback",
    "TrafficGenerator",
    "UtilizationTracker",
    "VCState",
    "WavefrontArbiter",
    "backend_factory",
    "load_sweep",
    "make_network",
    "make_pattern",
    "make_topology",
    "register_backend",
    "registered_topologies",
    "reset_packet_ids",
    "run_point",
    "saturation_load",
    "temporary_backend",
    "unregister_backend",
    "zero_load_latency",
]
