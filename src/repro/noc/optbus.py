"""Shared optical bus (OptBus) network model (Figure 10c, Section 4.1).

Corona-style MWSR organization: every node owns a receive waveguide; all
other nodes arbitrate (token-based) for write access to it.  The shared
medium is the point of the baseline — multiple writers to one receiver
serialize, which is where OptBus loses to Flumen's non-blocking fabric
under adversarial patterns (Section 5.2).

The model is packet-granular: a granted writer holds its destination bus
for ``size_flits`` cycles (one flit per cycle at the wavelength-parallel
channel width), after a fixed token/arbitration delay.

Injection, the run/drain loop, latency sampling, and result assembly come
from :class:`~repro.noc.kernel.SimKernel`; this module is the token
arbitration and bus-circuit logic only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.kernel import SimKernel
from repro.noc.packet import Packet
from repro.obs import NULL_OBS, Obs


@dataclass
class _BusCircuit:
    packet: Packet
    remaining_flits: int


class OptBusNetwork(SimKernel):
    """MWSR optical bus network with token arbitration."""

    name = "optbus"

    def __init__(self, nodes: int, arbitration_delay: int = 4,
                 propagation_delay: int = 2,
                 utilization_interval: int = 100,
                 obs: Obs = NULL_OBS) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes")
        super().__init__(name=self.name, num_links=nodes,
                         utilization_interval=utilization_interval,
                         obs=obs)
        self.nodes = nodes
        #: Cycles for the token grant to reach a requester (optical token
        #: round trip across the package).
        self.arbitration_delay = arbitration_delay
        #: Waveguide propagation (cycles) from writer to reader.
        self.propagation_delay = propagation_delay
        #: Per-source FIFO of packets awaiting their destination bus.
        self.source_queues: list[deque[Packet]] = [
            deque() for _ in range(nodes)]
        #: Per-destination-bus arbiter and active circuit.
        self._arbiters = [RoundRobinArbiter(nodes) for _ in range(nodes)]
        self._active: list[_BusCircuit | None] = [None] * nodes
        #: Cycles of setup delay left before an active circuit transmits.
        self._setup_left = [0] * nodes
        #: Buses with a live circuit / sources with queued packets; the
        #: per-cycle scans only visit these (idle entries are no-ops).
        self._active_buses: set[int] = set()
        self._waiting_sources: set[int] = set()

    def _enqueue(self, packet: Packet) -> None:
        self.source_queues[packet.src].append(packet)
        self._waiting_sources.add(packet.src)

    def step(self) -> None:
        busy = 0
        # 1. Advance active circuits (ascending bus order, matching the
        #    full scan, so delivery/trace ordering is unchanged).
        for bus in sorted(self._active_buses):
            circuit = self._active[bus]
            if self._setup_left[bus] > 0:
                self._setup_left[bus] -= 1
                continue
            circuit.remaining_flits -= 1
            busy += 1
            self.flit_hops += 1
            self.link_traversals += 1
            if circuit.remaining_flits == 0:
                delivered = self.cycle + self.propagation_delay
                self._deliver(circuit.packet, delivered, f"bus{bus}")
                self._active[bus] = None
                self._active_buses.discard(bus)
        # 2. Arbitrate free buses among heads of source queues.  Sorted
        #    waiting sources reproduce the full scan's dict insertion
        #    order, so per-bus request lines and grants are identical.
        requests_per_bus: dict[int, list[bool]] = {}
        for src in sorted(self._waiting_sources):
            dst = self.source_queues[src][0].dst
            if self._active[dst] is None:
                requests_per_bus.setdefault(dst, [False] * self.nodes)
                requests_per_bus[dst][src] = True
        for bus, lines in requests_per_bus.items():
            winner = self._arbiters[bus].grant(lines)
            if winner is None:
                continue
            packet = self.source_queues[winner].popleft()
            if not self.source_queues[winner]:
                self._waiting_sources.discard(winner)
            self._active[bus] = _BusCircuit(
                packet=packet, remaining_flits=packet.size_flits)
            self._setup_left[bus] = self.arbitration_delay
            self._active_buses.add(bus)
        self.utilization.record_cycle(busy)
        self.cycle += 1

    def quiescent(self) -> bool:
        return (all(not q for q in self.source_queues)
                and all(c is None for c in self._active))

    def total_queued_flits(self) -> int:
        queued = sum(p.size_flits for q in self.source_queues for p in q)
        active = sum(c.remaining_flits for c in self._active if c)
        return queued + active
