"""Shared optical bus (OptBus) network model (Figure 10c, Section 4.1).

Corona-style MWSR organization: every node owns a receive waveguide; all
other nodes arbitrate (token-based) for write access to it.  The shared
medium is the point of the baseline — multiple writers to one receiver
serialize, which is where OptBus loses to Flumen's non-blocking fabric
under adversarial patterns (Section 5.2).

The model is packet-granular: a granted writer holds its destination bus
for ``size_flits`` cycles (one flit per cycle at the wavelength-parallel
channel width), after a fixed token/arbitration delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.noc.arbiter import RoundRobinArbiter
from repro.noc.packet import Packet
from repro.noc.stats import LatencyStats, SimulationResult, UtilizationTracker
from repro.obs import NULL_OBS, Obs


@dataclass
class _BusCircuit:
    packet: Packet
    remaining_flits: int


class OptBusNetwork:
    """MWSR optical bus network with token arbitration."""

    name = "optbus"

    def __init__(self, nodes: int, arbitration_delay: int = 4,
                 propagation_delay: int = 2,
                 utilization_interval: int = 100,
                 obs: Obs = NULL_OBS) -> None:
        if nodes < 2:
            raise ValueError("need at least two nodes")
        self.nodes = nodes
        #: Cycles for the token grant to reach a requester (optical token
        #: round trip across the package).
        self.arbitration_delay = arbitration_delay
        #: Waveguide propagation (cycles) from writer to reader.
        self.propagation_delay = propagation_delay
        #: Per-source FIFO of packets awaiting their destination bus.
        self.source_queues: list[deque[Packet]] = [
            deque() for _ in range(nodes)]
        #: Per-destination-bus arbiter and active circuit.
        self._arbiters = [RoundRobinArbiter(nodes) for _ in range(nodes)]
        self._active: list[_BusCircuit | None] = [None] * nodes
        #: Cycles of setup delay left before an active circuit transmits.
        self._setup_left = [0] * nodes
        self.cycle = 0
        self.latency = LatencyStats()
        self.utilization = UtilizationTracker(
            num_links=nodes, interval_cycles=utilization_interval)
        self.injected_packets = 0
        self.flit_hops = 0
        self.link_traversals = 0
        self.obs = obs
        self._tracer = obs.tracer
        self._m_injected = obs.metrics.counter(
            "noc.packets_injected", topology=self.name)
        self._m_delivered = obs.metrics.counter(
            "noc.packets_delivered", topology=self.name)
        if self._tracer.enabled:
            tracer = self._tracer
            interval = utilization_interval

            def _flush(index: int, fraction: float) -> None:
                tracer.counter("noc", "links", "link_busy_fraction",
                               (index + 1) * interval, busy=fraction)
            self.utilization.on_flush = _flush

    def offer_packet(self, packet: Packet) -> None:
        self.source_queues[packet.src].append(packet)
        self.injected_packets += 1
        self._m_injected.inc()

    def step(self) -> None:
        busy = 0
        # 1. Advance active circuits.
        for bus in range(self.nodes):
            circuit = self._active[bus]
            if circuit is None:
                continue
            if self._setup_left[bus] > 0:
                self._setup_left[bus] -= 1
                continue
            circuit.remaining_flits -= 1
            busy += 1
            self.flit_hops += 1
            self.link_traversals += 1
            if circuit.remaining_flits == 0:
                delivered = self.cycle + self.propagation_delay
                self.latency.record(circuit.packet.create_cycle,
                                    delivered, circuit.packet.size_flits)
                self._m_delivered.inc()
                if self._tracer.enabled:
                    self._tracer.complete(
                        "noc", f"bus{bus}", "packet",
                        circuit.packet.create_cycle, delivered,
                        src=circuit.packet.src, dst=circuit.packet.dst,
                        flits=circuit.packet.size_flits)
                self._active[bus] = None
        # 2. Arbitrate free buses among heads of source queues.
        requests_per_bus: dict[int, list[bool]] = {}
        for src, queue in enumerate(self.source_queues):
            if not queue:
                continue
            dst = queue[0].dst
            if self._active[dst] is None:
                requests_per_bus.setdefault(dst, [False] * self.nodes)
                requests_per_bus[dst][src] = True
        for bus, lines in requests_per_bus.items():
            winner = self._arbiters[bus].grant(lines)
            if winner is None:
                continue
            packet = self.source_queues[winner].popleft()
            self._active[bus] = _BusCircuit(
                packet=packet, remaining_flits=packet.size_flits)
            self._setup_left[bus] = self.arbitration_delay
        self.utilization.record_cycle(busy)
        self.cycle += 1

    def quiescent(self) -> bool:
        return (all(not q for q in self.source_queues)
                and all(c is None for c in self._active))

    def total_queued_flits(self) -> int:
        queued = sum(p.size_flits for q in self.source_queues for p in q)
        active = sum(c.remaining_flits for c in self._active if c)
        return queued + active

    def run(self, traffic, cycles: int, warmup: int = 0,
            drain: bool = False, max_drain_cycles: int = 50_000) -> None:
        self.latency.warmup_cycles = warmup
        for _ in range(cycles):
            for packet in traffic.packets_for_cycle(self.cycle):
                self.offer_packet(packet)
            self.step()
        if drain:
            budget = max_drain_cycles
            while not self.quiescent() and budget > 0:
                self.step()
                budget -= 1
        self.utilization.finish()

    def result(self, pattern: str, load: float,
               saturation_latency: float = 500.0) -> SimulationResult:
        avg = self.latency.average
        saturated = (avg == 0.0 and self.injected_packets > 0) \
            or avg >= saturation_latency
        return SimulationResult(
            topology=self.name, pattern=pattern, load=load,
            cycles=self.cycle, latency=self.latency,
            utilization=self.utilization,
            injected_packets=self.injected_packets,
            flit_hops=self.flit_hops,
            link_traversals=self.link_traversals,
            saturated=saturated)
