"""Packets and flits for the cycle-accurate NoP simulator.

Wormhole networks move *flits* (flow-control digits); a packet is a head
flit, zero or more body flits, and a tail flit (a single-flit packet's head
is also its tail).  Flit width equals the channel phit width, so one flit
crosses one link per cycle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One network packet."""

    src: int
    dst: int
    size_flits: int
    create_cycle: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Optional tag distinguishing traffic classes (e.g. "compute_request").
    traffic_class: str = "data"
    #: For physical multicast (photonic splitting states, Section 3.2):
    #: all destination ports.  Empty for unicast; when set, ``dst`` must be
    #: the first entry.  Only the Flumen network honours this natively —
    #: electrical networks must replicate.
    multicast_dsts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError(f"packet needs >= 1 flit, got {self.size_flits}")
        if self.src == self.dst:
            raise ValueError("source and destination must differ")
        if self.multicast_dsts:
            if self.multicast_dsts[0] != self.dst:
                raise ValueError("dst must equal multicast_dsts[0]")
            if len(set(self.multicast_dsts)) != len(self.multicast_dsts):
                raise ValueError("duplicate multicast destinations")
            if self.src in self.multicast_dsts:
                raise ValueError("source cannot be a multicast destination")

    @property
    def destinations(self) -> tuple[int, ...]:
        """All destinations: the multicast set, or just ``dst``."""
        return self.multicast_dsts or (self.dst,)

    def flits(self) -> list["Flit"]:
        """Materialize the packet's flit train."""
        return [
            Flit(packet=self, index=i,
                 is_head=(i == 0), is_tail=(i == self.size_flits - 1))
            for i in range(self.size_flits)
        ]


@dataclass
class Flit:
    """One flow-control digit of a packet."""

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    #: Virtual channel currently occupied (set on injection / VC allocation).
    vc: int = -1

    @property
    def src(self) -> int:
        return self.packet.src

    @property
    def dst(self) -> int:
        return self.packet.dst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else "T" if self.is_tail else "B"
        return (f"Flit(p{self.packet.packet_id}{kind}{self.index} "
                f"{self.src}->{self.dst} vc{self.vc})")


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (test isolation)."""
    global _packet_ids
    _packet_ids = itertools.count()
