"""Node-side offload decision policy (Section 3.4).

"To prevent excessive compute kernel stalling, nodes will not request
compute access if the network utilization conveyed to them by the MZIM
control unit is too high, and instead will compute locally."

:class:`OffloadPolicy` encapsulates that decision: given the controller's
utilization broadcast and a job's shape, decide between requesting a
fabric partition and running on the local cores, estimating both
latencies from the same models the system simulator uses.

Reliability hook (DESIGN.md §12): the utilization broadcast this policy
consumes comes from :meth:`MZIMControlUnit.advise_offload`, which also
folds in the :class:`~repro.core.control_unit.HealthMonitor` verdict —
while the fabric is unhealthy the controller stops advertising capacity,
so nodes fall back to local compute exactly as they do under congestion,
with no policy changes here.  The local-path latency estimate
(:meth:`OffloadPolicy.local_cycles`) is likewise what the scheduler's
terminal ELECTRICAL rung charges per displaced job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.accelerator import OffloadPlan, plan_offload
from repro.core.scheduler import compute_duration_cycles
from repro.multicore.cpu import CoreModel


class Decision(enum.Enum):
    OFFLOAD = "offload"
    LOCAL = "local"


@dataclass
class OffloadPolicy:
    """Pick offload vs local execution for a matmul job."""

    system: SystemConfig = field(default_factory=SystemConfig)
    #: Utilization broadcast above which nodes never request (Section
    #: 3.4's "too high").
    utilization_ceiling: float = 0.8
    #: Expected wait for a partition grant: half an evaluation period.
    expected_grant_wait_cycles: float | None = None
    #: Cores available locally (one chiplet's worth by default).
    local_cores: int = 4

    def __post_init__(self) -> None:
        if self.expected_grant_wait_cycles is None:
            self.expected_grant_wait_cycles = \
                self.system.scheduler.tau_cycles / 2.0

    def local_cycles(self, plan: OffloadPlan) -> float:
        """Latency of running the job on the local cores."""
        core = CoreModel(self.system.core)
        cost = core.phase_cost(plan.macs_offloaded, 0, None, None,
                               self.local_cores)
        return cost.total_cycles

    def offload_cycles(self, plan: OffloadPlan) -> float:
        """Latency of the photonic path including expected grant wait."""
        return (self.expected_grant_wait_cycles
                + compute_duration_cycles(plan, self.system))

    def decide(self, rows: int, cols: int, vectors: int,
               network_utilization: float) -> Decision:
        """The node's decision for one pending matmul job."""
        if not 0.0 <= network_utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {network_utilization}")
        if network_utilization >= self.utilization_ceiling:
            return Decision.LOCAL
        plan = plan_offload(rows, cols, vectors,
                            mzim_size=self.system.mzim_ports,
                            wavelengths=self.system.compute
                            .computation_wavelengths)
        if self.offload_cycles(plan) < self.local_cycles(plan):
            return Decision.OFFLOAD
        return Decision.LOCAL

    def break_even_vectors(self, rows: int, cols: int,
                           max_vectors: int = 1 << 16) -> int | None:
        """Smallest batch size at which offloading starts to win.

        Returns ``None`` when local execution wins across the whole range
        (tiny kernels never amortize the grant wait + programming).
        """
        lo, hi = 1, max_vectors
        if self.decide(rows, cols, 1, 0.0) is Decision.OFFLOAD:
            return 1
        if self.decide(rows, cols, max_vectors, 0.0) is Decision.LOCAL:
            return None
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.decide(rows, cols, mid, 0.0) is Decision.OFFLOAD:
                hi = mid
            else:
                lo = mid
        return hi
