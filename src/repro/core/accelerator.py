"""Compute-offload mapping: block matrix multiplication and convolution.

Implements Section 3.3's computation organization:

* Equation (2): zero-pad an arbitrary ``n x m`` matrix to multiples of the
  MZIM port count ``N``;
* Equation (3): block matrix multiplication — each ``N x N`` sub-block is
  programmed into the MZIM in turn, the photonic pass produces partial
  sums, and the chiplets accumulate them;
* Figure 7: convolutional layers lowered to matrix multiplication via
  im2col;
* WDM batching: ``p`` input vectors ride ``p`` wavelengths through one
  optical pass.

:class:`OffloadPlan` captures the operation counts the system model and
energy accounting consume: how many MZIM windows run, how many matrix
switches (phase reprogramming events) occur, and how many partial-sum
additions remain on the cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.photonics.svd import SVDProgram, program_svd


def pad_to_blocks(matrix: np.ndarray, block: int) -> np.ndarray:
    """Zero-pad both dimensions up to the nearest multiple of ``block``.

    Equation (2)'s ``M-hat``.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {matrix.shape}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    rows = math.ceil(matrix.shape[0] / block) * block
    cols = math.ceil(matrix.shape[1] / block) * block
    padded = np.zeros((rows, cols), dtype=matrix.dtype)
    padded[:matrix.shape[0], :matrix.shape[1]] = matrix
    return padded


def pad_vectors(vectors: np.ndarray, block: int) -> np.ndarray:
    """Zero-pad the leading dimension of a vector batch to ``block``."""
    vectors = np.asarray(vectors)
    if vectors.ndim == 1:
        vectors = vectors[:, np.newaxis]
    rows = math.ceil(vectors.shape[0] / block) * block
    padded = np.zeros((rows, vectors.shape[1]), dtype=vectors.dtype)
    padded[:vectors.shape[0], :] = vectors
    return padded


@dataclass(frozen=True)
class OffloadPlan:
    """Operation counts for offloading ``M (n x m) @ A (m x q)`` to an
    ``N``-input MZIM with ``p`` compute wavelengths."""

    mzim_size: int
    wavelengths: int
    rows: int
    cols: int
    vectors: int
    #: Sub-block grid (i x j in the paper's notation).
    block_rows: int
    block_cols: int
    #: Distinct matrices programmed into the MZIM.
    matrix_switches: int
    #: Optical passes: each pass computes up to ``p`` MVMs.
    optical_windows: int
    #: Total N-element MVMs computed photonic-side.
    mvms: int
    #: Element additions the cores perform to merge block partial sums.
    partial_sum_adds: int
    #: MAC operations the offload removes from the cores.
    macs_offloaded: int

    @property
    def needs_accumulation(self) -> bool:
        """True when cores must merge partial sums (block_cols > 1)."""
        return self.block_cols > 1


def plan_offload(rows: int, cols: int, vectors: int, mzim_size: int,
                 wavelengths: int) -> OffloadPlan:
    """Build the offload plan for an ``(rows x cols) @ (cols x vectors)``
    product on an ``mzim_size``-input MZIM (Section 3.3.1)."""
    if min(rows, cols, vectors) < 1:
        raise ValueError("matrix dimensions and vector count must be >= 1")
    if mzim_size < 2:
        raise ValueError(f"MZIM size must be >= 2, got {mzim_size}")
    if wavelengths < 1:
        raise ValueError("need at least one compute wavelength")
    block_rows = math.ceil(rows / mzim_size)
    block_cols = math.ceil(cols / mzim_size)
    blocks = block_rows * block_cols
    windows_per_block = math.ceil(vectors / wavelengths)
    mvms = blocks * vectors
    # Each output element needs (block_cols - 1) adds per vector to merge
    # block partials; the padded rows that fall outside the true output are
    # still computed optically but never accumulated.
    partial_adds = (block_cols - 1) * rows * vectors
    return OffloadPlan(
        mzim_size=mzim_size,
        wavelengths=wavelengths,
        rows=rows,
        cols=cols,
        vectors=vectors,
        block_rows=block_rows,
        block_cols=block_cols,
        matrix_switches=blocks,
        optical_windows=blocks * windows_per_block,
        mvms=mvms,
        partial_sum_adds=partial_adds,
        macs_offloaded=rows * cols * vectors,
    )


class BlockMatmul:
    """Executable block matrix multiplication on SVD MZIM circuits.

    Programs one SVD circuit per ``N x N`` sub-block (phases precomputed,
    as Section 3.3.3 prescribes) and evaluates the product by optical
    propagation, accumulating block partials exactly as the chiplets would.
    """

    def __init__(self, matrix: np.ndarray, mzim_size: int,
                 wavelengths: int = 8) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("need a 2-D matrix")
        self.matrix = matrix
        self.mzim_size = mzim_size
        self.wavelengths = wavelengths
        self.padded = pad_to_blocks(matrix, mzim_size)
        n = mzim_size
        self.block_rows = self.padded.shape[0] // n
        self.block_cols = self.padded.shape[1] // n
        #: Precomputed per-block SVD programs (the "matrix memory").
        #: All-zero blocks contribute nothing and are never programmed,
        #: matching a controller that skips them.
        self.programs: dict[tuple[int, int], SVDProgram] = {}
        for bi in range(self.block_rows):
            for bj in range(self.block_cols):
                block = self.padded[bi * n:(bi + 1) * n, bj * n:(bj + 1) * n]
                if np.any(block):
                    self.programs[(bi, bj)] = program_svd(block)

    @property
    def nonzero_blocks(self) -> int:
        """Blocks that actually get programmed into the MZIM."""
        return len(self.programs)

    def plan(self, vectors: int) -> OffloadPlan:
        return plan_offload(self.matrix.shape[0], self.matrix.shape[1],
                            vectors, self.mzim_size, self.wavelengths)

    def __call__(self, vectors: np.ndarray,
                 mvm: "callable | None" = None,
                 batched: bool = True) -> np.ndarray:
        """Compute ``matrix @ vectors`` through the photonic block plan.

        ``mvm(program, batch)`` may replace the ideal optical pass (e.g.
        with :class:`repro.photonics.noise.AnalogMVM`); it defaults to the
        exact SVD propagation.  On the ideal path all block MVMs dispatch
        through the stacked ``(B, k, 2, 2)`` kernel
        (:mod:`repro.photonics.batch`), which is bit-identical to the
        per-block loop; ``batched=False`` pins the sequential oracle so
        equivalence tests can compare the two.
        """
        if mvm is None and batched:
            return block_matmul_many([(self, vectors)])[0]
        vectors = np.asarray(vectors, dtype=float)
        squeeze = vectors.ndim == 1
        batch = pad_vectors(vectors, self.mzim_size)
        n = self.mzim_size
        q = batch.shape[1]
        out = np.zeros((self.block_rows * n, q))
        for bi in range(self.block_rows):
            acc = np.zeros((n, q))
            for bj in range(self.block_cols):
                program = self.programs.get((bi, bj))
                if program is None:  # all-zero block
                    continue
                chunk = batch[bj * n:(bj + 1) * n, :]
                if mvm is None:
                    # Ideal optics: wavelength windowing only affects
                    # timing, so the whole batch propagates in one pass.
                    acc += program.apply(chunk.astype(complex)).real
                    continue
                for lo in range(0, q, self.wavelengths):
                    hi = min(lo + self.wavelengths, q)
                    window = chunk[:, lo:hi]
                    acc[:, lo:hi] += mvm(program, window)
            out[bi * n:(bi + 1) * n, :] = acc
        result = out[:self.matrix.shape[0], :]
        return result[:, 0] if squeeze else result


def block_matmul_many(
        jobs: "list[tuple[BlockMatmul, np.ndarray]]") -> list[np.ndarray]:
    """Evaluate many block matmuls through one fleet-wide stacked dispatch.

    Gathers every non-zero block MVM of every job — the unit of work one
    optical pass performs — and hands the whole fleet to
    :func:`repro.photonics.batch.apply_jobs`, which stacks
    layout-compatible units into single ``(B, k, 2, 2)`` kernel passes.
    Per-job block partials are then accumulated in the same
    ``bj``-ascending order as the sequential loop, so each result is
    bit-identical to ``job(vectors, batched=False)``.
    """
    from repro.photonics.batch import apply_jobs

    prepared = []  # (matmul, padded batch, squeeze flag) per job
    payloads = []  # (program, chunk) per block unit, fleet-wide
    units = []  # (job index, bi) addressing each payload's partial sum
    for job_idx, (matmul, vectors) in enumerate(jobs):
        vectors = np.asarray(vectors, dtype=float)
        squeeze = vectors.ndim == 1
        batch = pad_vectors(vectors, matmul.mzim_size)
        prepared.append((matmul, batch, squeeze))
        n = matmul.mzim_size
        for bi in range(matmul.block_rows):
            for bj in range(matmul.block_cols):
                program = matmul.programs.get((bi, bj))
                if program is None:  # all-zero block
                    continue
                payloads.append(
                    (program, batch[bj * n:(bj + 1) * n, :].astype(complex)))
                units.append((job_idx, bi))
    partials = apply_jobs(payloads)

    accs = [np.zeros((matmul.block_rows * matmul.mzim_size, batch.shape[1]))
            for matmul, batch, _ in prepared]
    # Units were gathered bj-ascending per (job, bi), so this walk adds
    # block partials in exactly the sequential loop's order — float
    # addition is order-sensitive, and bit-identity depends on it.
    for (job_idx, bi), partial in zip(units, partials):
        n = prepared[job_idx][0].mzim_size
        accs[job_idx][bi * n:(bi + 1) * n, :] += partial.real
    results = []
    for (matmul, _, squeeze), acc in zip(prepared, accs):
        result = acc[:matmul.matrix.shape[0], :]
        results.append(result[:, 0] if squeeze else result)
    return results


def im2col(volume: np.ndarray, kernel_hw: tuple[int, int],
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """Lower an input volume to the receptive-field matrix (Figure 7b).

    ``volume`` has shape ``(height, width, channels)``; the result has one
    *column* per receptive field of shape
    ``(kh * kw * channels, out_h * out_w)``.
    """
    volume = np.asarray(volume)
    if volume.ndim == 2:
        volume = volume[:, :, np.newaxis]
    kh, kw = kernel_hw
    if padding:
        volume = np.pad(volume,
                        ((padding, padding), (padding, padding), (0, 0)))
    h, w, c = volume.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("kernel larger than (padded) input")
    columns = np.empty((kh * kw * c, out_h * out_w), dtype=volume.dtype)
    idx = 0
    for y in range(0, out_h * stride, stride):
        for x in range(0, out_w * stride, stride):
            patch = volume[y:y + kh, x:x + kw, :]
            columns[:, idx] = patch.ravel()
            idx += 1
    return columns


def kernels_to_matrix(kernels: np.ndarray) -> np.ndarray:
    """Ravel a kernel bank to the weight matrix (Figure 7b).

    ``kernels`` has shape ``(num_kernels, kh, kw, channels)``; each row of
    the result is one raveled kernel.
    """
    kernels = np.asarray(kernels)
    if kernels.ndim == 3:
        kernels = kernels[:, :, :, np.newaxis]
    return kernels.reshape(kernels.shape[0], -1)


def conv2d_as_matmul(volume: np.ndarray, kernels: np.ndarray,
                     stride: int = 1, padding: int = 0
                     ) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
    """Convolution layer as weight-matrix x input-matrix (Figure 7).

    Returns ``(weight_matrix, input_matrix, (out_h, out_w))`` such that
    ``weight_matrix @ input_matrix`` reshaped to
    ``(num_kernels, out_h, out_w)`` is the convolution's output volume.
    """
    volume = np.asarray(volume)
    if volume.ndim == 2:
        volume = volume[:, :, np.newaxis]
    kernels = np.asarray(kernels)
    if kernels.ndim == 3:
        kernels = kernels[:, :, :, np.newaxis]
    kh, kw = kernels.shape[1], kernels.shape[2]
    if kernels.shape[3] != volume.shape[2]:
        raise ValueError(
            f"kernel channels {kernels.shape[3]} do not match input "
            f"channels {volume.shape[2]}")
    cols = im2col(volume, (kh, kw), stride, padding)
    weights = kernels_to_matrix(kernels)
    h = volume.shape[0] + 2 * padding
    w = volume.shape[1] + 2 * padding
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    return weights, cols, (out_h, out_w)


def conv2d_reference(volume: np.ndarray, kernels: np.ndarray,
                     stride: int = 1, padding: int = 0) -> np.ndarray:
    """Direct (sliding-window) convolution, the golden reference."""
    weights, cols, (out_h, out_w) = conv2d_as_matmul(
        volume, kernels, stride, padding)
    out = weights @ cols
    return out.reshape(weights.shape[0], out_h, out_w)
