"""Algorithm 1: the Flumen scheduling process.

``SchedulerMain`` loops over partition evaluation periods of ``tau``
cycles.  At each period boundary the ``Partitioner`` scans the compute
request buffer; a request is granted a compute partition when the request
buffers of the nodes it would displace are under the utilization threshold
``eta`` at scan depth ``zeta``.  Completed computations return their
results through a many-to-one configuration and the partition rejoins the
communication set.

This module drives a :class:`~repro.noc.flumen_net.FlumenNetwork` (port
blocking models the partition stealing fabric bandwidth) and accounts the
compute timeline from the Table 1 parameters (6 ns programming, 5 GHz input
modulation, WDM width).

Reliability hook (DESIGN.md §12): an optional
:class:`~repro.faults.ladder.DegradationLadder` modulates Algorithm 1
when the health monitor has flagged the fabric — partition sizes are
capped (SHRINK rung), placement avoids retired ports (REROUTE rung),
and at the terminal ELECTRICAL rung the partitioner stops granting the
photonic fabric entirely, servicing every queued request on the
electrical core path instead (:func:`electrical_duration_cycles`).
With no ladder attached the scheduling path is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.config import SystemConfig
from repro.core.accelerator import OffloadPlan
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.obs import NULL_OBS, Obs

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.ladder import DegradationLadder
    from repro.photonics.fabric import FlumenFabric, Partition


def compute_duration_cycles(plan: OffloadPlan,
                            system: SystemConfig) -> int:
    """Network cycles a compute partition holds the fabric for one job.

    Phase programming per matrix switch (6 ns), one input-modulation cycle
    per optical window (5 GHz against the 2.5 GHz network clock), and the
    many-to-one result return (reconfiguration plus one flit per result
    vector group).
    """
    freq = system.core.frequency_hz
    program = math.ceil(system.compute.mzim_switch_delay_s * freq)
    input_cycles = math.ceil(
        plan.optical_windows * freq / system.compute.input_modulation_hz)
    return_config = math.ceil(system.compute.comm_switch_delay_s * freq)
    return_flits = plan.block_rows * math.ceil(
        plan.vectors / plan.wavelengths)
    return (plan.matrix_switches * program
            + input_cycles
            + return_config + return_flits)


def electrical_duration_cycles(plan: OffloadPlan,
                               system: SystemConfig,
                               cores: int = 4) -> int:
    """Network cycles the electrical fallback needs for the same job.

    The terminal rung of the degradation ladder runs the offloaded MACs
    on the requesting chiplet's SIMD cores (the same cost model the
    offload policy uses for its local-vs-photonic break-even), scaled
    from core clock to network clock.
    """
    from repro.multicore.cpu import CoreModel

    core = CoreModel(system.core)
    cost = core.phase_cost(plan.macs_offloaded, 0, None, None, cores)
    return max(1, int(math.ceil(cost.total_cycles)))


@dataclass
class _ElectricalJob:
    """A compute request being serviced on the electrical fallback path."""

    request: ComputeRequest
    total_cycles: int
    remaining_cycles: int
    start_cycle: int


@dataclass
class ActiveComputation:
    """A compute partition currently holding fabric ports."""

    request: ComputeRequest
    lo_port: int
    hi_port: int
    total_cycles: int
    remaining_cycles: int
    started: bool = False
    grant_cycle: int = 0
    start_cycle: int = 0
    #: Mirrored photonic partition (only when the scheduler drives a
    #: :class:`~repro.photonics.fabric.FlumenFabric`).
    fabric_partition: Partition | None = None

    @property
    def ports(self) -> tuple[int, int]:
        return self.lo_port, self.hi_port


@dataclass
class SchedulerStats:
    granted: int = 0
    completed: int = 0
    deferred_evaluations: int = 0
    total_wait_cycles: int = 0
    total_drain_cycles: int = 0
    busy_port_cycles: int = 0
    #: Requests completed on the electrical fallback path (ladder rung).
    electrical_completions: int = 0

    @property
    def average_wait(self) -> float:
        return self.total_wait_cycles / self.granted if self.granted else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the Algorithm 1 counters."""
        return {
            "granted": self.granted,
            "completed": self.completed,
            "deferred_evaluations": self.deferred_evaluations,
            "total_wait_cycles": self.total_wait_cycles,
            "total_drain_cycles": self.total_drain_cycles,
            "busy_port_cycles": self.busy_port_cycles,
            "electrical_completions": self.electrical_completions,
            "average_wait": self.average_wait,
        }


class FlumenScheduler:
    """SchedulerMain + Partitioner (Algorithm 1) over a Flumen network.

    ``fabric`` optionally attaches a
    :class:`~repro.photonics.fabric.FlumenFabric` mirror: grants split
    the fabric, partition starts program the SVD circuit, completions
    configure the many-to-one result return and release the ports — so
    the photonic layer's reprogramming timeline (phase-write counts per
    event) appears in traces alongside the scheduling decisions.
    """

    def __init__(self, control_unit: MZIMControlUnit,
                 system: SystemConfig | None = None,
                 obs: Obs = NULL_OBS,
                 fabric: FlumenFabric | None = None,
                 ladder: DegradationLadder | None = None) -> None:
        self.control = control_unit
        self.system = system or control_unit.system
        self.cfg = self.system.scheduler
        self.active: list[ActiveComputation] = []
        #: Jobs running on the electrical fallback path (ELECTRICAL rung).
        self.electrical: list[_ElectricalJob] = []
        #: Optional degradation ladder (DESIGN.md §12); None = no faults.
        self.ladder = ladder
        self.stats = SchedulerStats()
        self.cycle = 0
        #: Completed request ids, with completion cycles (for callers).
        self.completions: dict[int, int] = {}
        self.obs = obs
        self._tracer = obs.tracer
        self._events = obs.events
        self._m_grants = obs.metrics.counter("core.partition_grants")
        self._m_deferrals = obs.metrics.counter("core.partition_deferrals")
        self._m_completed = obs.metrics.counter("core.partitions_completed")
        self._m_electrical = obs.metrics.counter(
            "core.electrical_fallback_jobs")
        self._h_beta = obs.metrics.histogram(
            "core.beta", bounds=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                 0.8, 0.9, 1.0))
        self.fabric = fabric
        if fabric is not None:
            if fabric.n != control_unit.fabric_ports:
                raise ValueError(
                    f"fabric has {fabric.n} ports; control unit manages "
                    f"{control_unit.fabric_ports}")
            fabric.obs_clock = lambda: self.cycle
            # Boot state: the whole fabric is one communication partition
            # with no circuits programmed yet.
            fabric.configure_communication({})

    def _account_tenant(self, name: str, tenant: str,
                        amount: int = 1) -> None:
        """Per-tenant accounting series (grant-rate events, off hot path)."""
        self.obs.metrics.counter(name, tenant=tenant).inc(amount)

    def take_completions(self) -> dict[int, int]:
        """Drain and return completed request ids -> completion cycles.

        Batch callers read :attr:`completions` once after a run and let
        it grow; a long-lived daemon polls every cycle and must not
        accumulate an unbounded map, so this hands the current batch to
        the caller and resets the dict.  Photonic and electrical-rung
        completions both land here, so a daemon consuming this stream
        never loses an admitted request to a ladder transition.
        """
        done, self.completions = self.completions, {}
        return done

    def skip_idle_cycles(self, cycles: int) -> None:
        """Advance ``cycles`` cycles with no work anywhere in the stack.

        Only legal while the scheduler is fully idle — no active
        computations, no electrical jobs, an empty compute buffer.  An
        idle :meth:`tick` then mutates nothing but the cycle counter
        (the tau-periodic partitioner scan iterates an empty buffer),
        so a bulk advance is byte-equivalent to ``cycles`` empty ticks.
        """
        if cycles <= 0:
            return
        if self.active or self.electrical or self.control.compute_buffer:
            raise RuntimeError("skip_idle_cycles with queued or active "
                               "work would skip its lifecycle")
        self.cycle += cycles

    def quiet_countdown(self) -> int | None:
        """Cycles until the earliest in-flight completion.

        ``None`` means the scheduler is fully idle (nothing queued or
        in flight); ``0`` means it is *not* quiet — a granted
        computation still draining its port endpoints, or a partitioner
        evaluation due this very tick — and per-cycle ticks must run.
        A positive return ``r`` means the next ``r - 1`` ticks are pure
        countdown: :meth:`skip_quiet_cycles` may bulk-apply any strict
        prefix of them.  Queued requests are inert between the
        tau-periodic partitioner evaluations, so a non-empty compute
        buffer merely bounds the countdown at the next evaluation
        instead of forbidding the skip.
        """
        countdown: int | None = None
        for comp in self.active:
            if not comp.started:
                return 0
            if countdown is None or comp.remaining_cycles < countdown:
                countdown = comp.remaining_cycles
        for job in self.electrical:
            if countdown is None or job.remaining_cycles < countdown:
                countdown = job.remaining_cycles
        if self.control.compute_buffer:
            phase = self.cycle % self.cfg.tau_cycles
            if phase == 0:
                return 0
            until_eval = self.cfg.tau_cycles - phase + 1
            if countdown is None or until_eval < countdown:
                countdown = until_eval
        return countdown

    def skip_quiet_cycles(self, cycles: int) -> None:
        """Advance ``cycles`` pure-countdown cycles in one bulk step.

        Legal when every active computation has started, nothing
        completes within the window (``cycles < quiet_countdown()``),
        and — if requests are queued — no tau-periodic partitioner
        evaluation falls inside it.  Each such tick does exactly:
        decrement every in-flight job's remaining cycles and accrue the
        active computations' busy-port accounting (an empty-buffer
        partitioner scan changes nothing, and a non-empty buffer is
        inert between evaluations).  The bulk application is
        byte-equivalent to ``cycles`` individual ticks.
        """
        if cycles <= 0:
            return
        if self.control.compute_buffer:
            phase = self.cycle % self.cfg.tau_cycles
            if phase == 0 or phase + cycles > self.cfg.tau_cycles:
                raise RuntimeError("skip_quiet_cycles across a "
                                   "partitioner evaluation would stall "
                                   "queued work")
        for comp in self.active:
            if not comp.started:
                raise RuntimeError("skip_quiet_cycles before a "
                                   "computation starts would skip its "
                                   "drain accounting")
            if comp.remaining_cycles <= cycles:
                raise RuntimeError("skip_quiet_cycles across a "
                                   "completion would skip its lifecycle")
        for job in self.electrical:
            if job.remaining_cycles <= cycles:
                raise RuntimeError("skip_quiet_cycles across a "
                                   "completion would skip its lifecycle")
        for comp in self.active:
            comp.remaining_cycles -= cycles
            self.stats.busy_port_cycles += \
                cycles * (comp.hi_port - comp.lo_port)
        for job in self.electrical:
            job.remaining_cycles -= cycles
        self.cycle += cycles

    # -- Algorithm 1, lines 19-28 ---------------------------------------

    def _partitioner(self) -> None:
        """Scan the compute buffer, granting partitions where buffers allow."""
        if self.ladder is not None and self.ladder.electrical_fallback:
            self._fallback_to_electrical()
            return
        network = self.control.network
        remaining = []
        for request in list(self.control.compute_buffer):
            placement = self._find_ports(
                self._effective_ports(request.ports_needed))
            if placement is None:
                remaining.append(request)
                self.stats.deferred_evaluations += 1
                self._m_deferrals.inc()
                if self._events.enabled:
                    self._events.emit(
                        "partition_defer", self.cycle,
                        tenant=request.tenant,
                        request_id=request.request_id, reason="no_ports",
                        ports_needed=request.ports_needed)
                if self._tracer.enabled:
                    self._tracer.instant(
                        "core", "alg1", "partition_defer", self.cycle,
                        request_id=request.request_id, reason="no_ports",
                        ports_needed=request.ports_needed)
                continue
            lo, hi = placement
            endpoints = self.control.port_range_endpoints(lo, hi)
            beta = network.buffer_utilization(
                sorted(endpoints), scan_depth=self.cfg.zeta)
            granted = beta <= self.cfg.eta
            self._h_beta.observe(beta)
            if self._tracer.enabled:
                self._tracer.instant(
                    "core", "alg1", "beta_eval", self.cycle,
                    request_id=request.request_id, beta=round(beta, 6),
                    eta=self.cfg.eta, zeta=self.cfg.zeta, granted=granted)
            if granted:
                network.block_ports(endpoints)
                duration = (request.duration_override
                            if request.duration_override is not None
                            else compute_duration_cycles(
                                request.plan, self.system))
                comp = ActiveComputation(
                    request=request, lo_port=lo, hi_port=hi,
                    total_cycles=duration, remaining_cycles=duration,
                    grant_cycle=self.cycle)
                if self.fabric is not None:
                    comp.fabric_partition = self.fabric.split(lo, hi)
                self.active.append(comp)
                self.stats.granted += 1
                self._m_grants.inc()
                wait = self.cycle - request.submit_cycle
                self.stats.total_wait_cycles += wait
                self.control.compute_buffer.remove(request)
                self._account_tenant("core.tenant_partition_grants",
                                     request.tenant)
                self._account_tenant("core.tenant_wait_cycles",
                                     request.tenant, wait)
                if self._events.enabled:
                    self._events.emit(
                        "partition_grant", self.cycle,
                        tenant=request.tenant,
                        request_id=request.request_id,
                        lo_port=lo, hi_port=hi, beta=round(beta, 6),
                        wait_cycles=wait, duration=duration)
                if self._tracer.enabled:
                    self._tracer.instant(
                        "core", "alg1", "mzim_block", self.cycle,
                        request_id=request.request_id, lo_port=lo,
                        hi_port=hi, endpoints=sorted(endpoints))
            else:
                remaining.append(request)
                self.stats.deferred_evaluations += 1
                self._m_deferrals.inc()
                if self._events.enabled:
                    self._events.emit(
                        "partition_defer", self.cycle,
                        tenant=request.tenant,
                        request_id=request.request_id, reason="beta",
                        beta=round(beta, 6), eta=self.cfg.eta)

    def _effective_ports(self, ports_needed: int) -> int:
        """Partition size after the ladder's SHRINK cap (even, >= 2)."""
        if self.ladder is None:
            return ports_needed
        capped = min(ports_needed, self.ladder.partition_ports_cap)
        capped -= capped % 2
        return max(2, capped)

    def _fallback_to_electrical(self) -> None:
        """ELECTRICAL rung: drain the buffer onto the core-side path.

        No fabric ports are blocked and no photonic partitions are
        programmed, so communication traffic keeps flowing (and packet
        conservation holds) while compute requests are serviced
        electrically.
        """
        for request in list(self.control.compute_buffer):
            duration = electrical_duration_cycles(request.plan, self.system)
            self.electrical.append(_ElectricalJob(
                request=request, total_cycles=duration,
                remaining_cycles=duration, start_cycle=self.cycle))
            self.control.compute_buffer.remove(request)
            self._m_electrical.inc()
            self._account_tenant("core.tenant_electrical_jobs",
                                 request.tenant)
            if self._events.enabled:
                self._events.emit(
                    "electrical_fallback", self.cycle,
                    tenant=request.tenant,
                    request_id=request.request_id, node=request.node,
                    duration=duration)
            if self._tracer.enabled:
                self._tracer.instant(
                    "core", "faults", "electrical_fallback", self.cycle,
                    request_id=request.request_id, node=request.node,
                    duration=duration)

    def _find_ports(self, ports_needed: int) -> tuple[int, int] | None:
        """First-fit contiguous free fabric port range.

        Ports the degradation ladder has retired (dead-link endpoints)
        are never part of a placement.
        """
        taken = [False] * self.control.fabric_ports
        for comp in self.active:
            for p in range(comp.lo_port, comp.hi_port):
                taken[p] = True
        if self.ladder is not None:
            for p in self.ladder.unusable_ports:
                if 0 <= p < len(taken):
                    taken[p] = True
        run = 0
        for p in range(self.control.fabric_ports):
            run = run + 1 if not taken[p] else 0
            if run == ports_needed:
                return p - ports_needed + 1, p + 1
        return None

    # -- Algorithm 1, lines 1-18 -----------------------------------------

    def tick(self) -> None:
        """Advance the scheduler one network cycle.

        The caller steps the underlying network itself; this method manages
        the partition lifecycle around it.
        """
        # done(a) checks (lines 6-11).
        network = self.control.network
        still_active: list[ActiveComputation] = []
        for comp in self.active:
            if not comp.started:
                endpoints = self.control.port_range_endpoints(*comp.ports)
                if network.ports_clear(endpoints):
                    comp.started = True
                    comp.start_cycle = self.cycle
                    if comp.fabric_partition is not None:
                        size = comp.hi_port - comp.lo_port
                        self.fabric.program_compute(
                            comp.fabric_partition, np.eye(size))
                else:
                    self.stats.total_drain_cycles += 1
                    still_active.append(comp)
                    continue
            comp.remaining_cycles -= 1
            self.stats.busy_port_cycles += comp.hi_port - comp.lo_port
            if comp.remaining_cycles <= 0:
                endpoints = self.control.port_range_endpoints(*comp.ports)
                network.unblock_ports(endpoints)
                self.stats.completed += 1
                self._m_completed.inc()
                self.completions[comp.request.request_id] = self.cycle
                self._account_tenant("core.tenant_partitions_completed",
                                     comp.request.tenant)
                self._account_tenant("core.tenant_busy_port_cycles",
                                     comp.request.tenant,
                                     comp.total_cycles
                                     * (comp.hi_port - comp.lo_port))
                if self._events.enabled:
                    self._events.emit(
                        "partition_complete", self.cycle,
                        tenant=comp.request.tenant,
                        request_id=comp.request.request_id,
                        duration=self.cycle - comp.grant_cycle,
                        lo_port=comp.lo_port, hi_port=comp.hi_port,
                        drain_cycles=comp.start_cycle - comp.grant_cycle)
                if comp.fabric_partition is not None:
                    self.fabric.configure_gather(
                        comp.fabric_partition, comp.lo_port)
                    self.fabric.release(comp.fabric_partition)
                    comp.fabric_partition = None
                if self._tracer.enabled:
                    self._tracer.instant(
                        "core", "alg1", "mzim_unblock", self.cycle,
                        request_id=comp.request.request_id,
                        endpoints=sorted(endpoints))
                    self._tracer.complete(
                        "core", "partitions", "partition",
                        comp.grant_cycle, self.cycle,
                        request_id=comp.request.request_id,
                        lo_port=comp.lo_port, hi_port=comp.hi_port,
                        drain_cycles=comp.start_cycle - comp.grant_cycle)
            else:
                still_active.append(comp)
        self.active = still_active

        # Electrical fallback jobs progress independently of the fabric.
        still_electrical: list[_ElectricalJob] = []
        for job in self.electrical:
            job.remaining_cycles -= 1
            if job.remaining_cycles <= 0:
                self.stats.completed += 1
                self.stats.electrical_completions += 1
                self._m_completed.inc()
                self.completions[job.request.request_id] = self.cycle
                self._account_tenant("core.tenant_partitions_completed",
                                     job.request.tenant)
                if self._events.enabled:
                    self._events.emit(
                        "partition_complete", self.cycle,
                        tenant=job.request.tenant,
                        request_id=job.request.request_id,
                        duration=self.cycle - job.start_cycle,
                        lo_port=-1, hi_port=-1, drain_cycles=0,
                        electrical=True)
                if self._tracer.enabled:
                    self._tracer.complete(
                        "core", "partitions", "electrical_job",
                        job.start_cycle, self.cycle,
                        request_id=job.request.request_id,
                        node=job.request.node)
            else:
                still_electrical.append(job)
        self.electrical = still_electrical

        # Partition evaluation every tau cycles (lines 3-5).
        if self.cycle % self.cfg.tau_cycles == 0:
            self._partitioner()
        self.cycle += 1

    def run(self, cycles: int, traffic=None) -> None:
        """Co-simulate scheduler + network for ``cycles`` cycles."""
        network = self.control.network
        sampler = self.obs.sampler
        for _ in range(cycles):
            if traffic is not None:
                for packet in traffic.packets_for_cycle(network.cycle):
                    network.offer_packet(packet)
            self.tick()
            network.step()
            # Throttled snapshot offer (same rationale as SimKernel.run:
            # the sampler's cycle cadence stays the authority).
            if sampler is not None and self.cycle & 63 == 0:
                sampler.tick(self.cycle)
        if sampler is not None:
            sampler.tick(self.cycle)

    def drain(self, max_cycles: int = 100_000) -> None:
        """Run until all compute requests and packets complete."""
        network = self.control.network
        sampler = self.obs.sampler
        budget = max_cycles
        while budget > 0 and (self.active or self.electrical
                              or self.control.compute_buffer
                              or not network.quiescent()):
            self.tick()
            network.step()
            if sampler is not None and self.cycle & 63 == 0:
                sampler.tick(self.cycle)
            budget -= 1
        if sampler is not None:
            sampler.tick(self.cycle)
