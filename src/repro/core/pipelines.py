"""Registry of system configurations as pluggable pipelines.

A :class:`ConfigPipeline` declares everything :class:`~repro.core.system.
SystemModel` needs to evaluate a workload under one configuration:

* ``topology`` — which NoP backend carries the memory traffic (a name in
  :mod:`repro.noc.registry`),
* ``link_energy`` — which :class:`~repro.noc.energy.NetworkEnergyModel`
  accounting applies ("electrical", "optbus", or "flumen"),
* ``compute_path`` — where the MACs run ("core" keeps all compute on the
  multicore substrate; "mzim" offloads matmul phases to the photonic
  fabric with the Algorithm 1 scheduler co-simulation).

The five paper configurations (Figure 13's x-axis) register themselves
below.  Adding a configuration — a new topology, a different energy
model, another execution mode — is one :func:`register_configuration`
call; ``SystemModel``, the sweep tasks, the trace runner, and the CLI
all iterate this registry and need no edits.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

#: Energy accountings NetworkEnergyModel.of() can dispatch to.
LINK_ENERGY_KINDS = ("electrical", "optbus", "flumen")
#: Execution modes SystemModel implements.
COMPUTE_PATHS = ("core", "mzim")


@dataclass(frozen=True)
class ConfigPipeline:
    """One system configuration: backend + energy model + compute path."""

    name: str
    topology: str
    link_energy: str = "electrical"
    compute_path: str = "core"
    #: Mesh arrangement for the photonic compute path (a
    #: :mod:`repro.photonics.registry` name); ``None`` inherits
    #: ``SystemConfig.mesh_architecture``.
    mesh_architecture: str | None = None

    def __post_init__(self) -> None:
        if self.link_energy not in LINK_ENERGY_KINDS:
            raise ValueError(
                f"link_energy must be one of {LINK_ENERGY_KINDS}, "
                f"got {self.link_energy!r}")
        if self.compute_path not in COMPUTE_PATHS:
            raise ValueError(
                f"compute_path must be one of {COMPUTE_PATHS}, "
                f"got {self.compute_path!r}")
        if self.mesh_architecture is not None:
            from repro.photonics.registry import (
                mesh_factory,  # validates the name, listing known ones
            )
            mesh_factory(self.mesh_architecture)


_PIPELINES: dict[str, ConfigPipeline] = {}


def register_configuration(pipeline: ConfigPipeline,
                           *, replace: bool = False) -> ConfigPipeline:
    """Add one configuration to the registry (error on duplicates)."""
    if not replace and pipeline.name in _PIPELINES:
        raise ValueError(f"configuration {pipeline.name!r} is already "
                         f"registered; pass replace=True to override")
    _PIPELINES[pipeline.name] = pipeline
    return pipeline


def unregister_configuration(name: str) -> None:
    """Remove a configuration (primarily for test cleanup)."""
    _PIPELINES.pop(name, None)


def get_configuration(name: str) -> ConfigPipeline:
    """Look up one configuration, or raise listing what exists."""
    try:
        return _PIPELINES[name]
    except KeyError:
        raise ValueError(
            f"unknown configuration {name!r}; "
            f"known: {configuration_names()}") from None


def configuration_names() -> tuple[str, ...]:
    """Registered configuration names, in registration order."""
    return tuple(_PIPELINES)


def iter_configurations() -> Iterator[ConfigPipeline]:
    """Iterate the registered pipelines in registration order."""
    return iter(tuple(_PIPELINES.values()))


@contextmanager
def temporary_configuration(pipeline: ConfigPipeline) -> Iterator[None]:
    """Register a configuration for the duration of a ``with`` block."""
    register_configuration(pipeline)
    try:
        yield
    finally:
        unregister_configuration(pipeline.name)


# -- the five paper configurations (Figures 13-15) ---------------------------

register_configuration(ConfigPipeline(
    name="ring", topology="ring", link_energy="electrical"))
register_configuration(ConfigPipeline(
    name="mesh", topology="mesh", link_energy="electrical"))
register_configuration(ConfigPipeline(
    name="optbus", topology="optbus", link_energy="optbus"))
#: Flumen-I: the MZIM fabric used for interconnect only.
register_configuration(ConfigPipeline(
    name="flumen_i", topology="flumen", link_energy="flumen"))
#: Flumen-A: interconnect plus matmul offload onto the MZIM compute path.
register_configuration(ConfigPipeline(
    name="flumen_a", topology="flumen", link_energy="flumen",
    compute_path="mzim"))
