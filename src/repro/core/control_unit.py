"""The MZIM control unit (Section 3.4, Figure 8).

Owns the photonic fabric's request buffers, the compute-request queue, the
matrix memory holding precomputed phase mappings, and the arbitration
waveguide through which chiplets talk to the controller.  Communication
arbitration itself (the wavefront arbiter) lives in
:class:`repro.noc.flumen_net.FlumenNetwork`; this class layers the
compute-side state on top and exposes the utilization feedback nodes use to
decide between offloading and computing locally.

Reliability hook (DESIGN.md §12): a :class:`HealthMonitor` may be
attached to the control unit.  It periodically compares expected vs.
measured transfer behaviour — the calibration module's basis-vector
probe plus a received-power ENOB check — and an unhealthy monitor makes
:meth:`MZIMControlUnit.advise_offload` steer nodes back to their local
cores while the degradation ladder (:mod:`repro.faults.ladder`) walks
its recovery rungs.  Without a monitor attached, behaviour is bit-for-bit
identical to the pre-fault-subsystem control unit.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import SystemConfig
from repro.core.accelerator import BlockMatmul, OffloadPlan, block_matmul_many
from repro.noc.flumen_net import FlumenNetwork
from repro.obs import NULL_OBS, Obs

_request_ids = itertools.count()


@dataclass
class ComputeRequest:
    """One node's request to run a matmul job in the interconnect."""

    node: int
    plan: OffloadPlan
    matrix_key: str
    submit_cycle: int
    #: Fabric ports the partition needs (even, >= 2).
    ports_needed: int = 4
    #: Optional explicit partition hold time in cycles; when None the
    #: scheduler derives it from the plan (Table 1 timings).
    duration_override: int | None = None
    #: Accounting context: which tenant's request stream this job belongs
    #: to.  Threaded onto per-tenant counters and structured events by
    #: the scheduler and control unit (the serve daemon's currency).
    tenant: str = "default"
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.ports_needed < 2 or self.ports_needed % 2:
            raise ValueError(
                f"partition needs an even port count >= 2, "
                f"got {self.ports_needed}")


class MatrixMemory:
    """Local memory holding precomputed MZIM phase mappings (Section 3.3.3).

    Phase programming is expensive at runtime, so matrices are decomposed
    ahead of time and the controller only streams stored phases to the
    DACs.  Capacity is counted in stored ``N x N`` blocks.
    """

    def __init__(self, capacity_blocks: int = 256) -> None:
        self.capacity_blocks = capacity_blocks
        self._entries: dict[str, BlockMatmul] = {}
        self._lru: deque[str] = deque()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def blocks_used(self) -> int:
        return sum(len(e.programs) for e in self._entries.values())

    def store(self, key: str, matmul: BlockMatmul) -> None:
        """Insert a precomputed block program set, evicting LRU entries."""
        if len(matmul.programs) > self.capacity_blocks:
            raise ValueError(
                f"matrix needs {len(matmul.programs)} blocks; memory holds "
                f"{self.capacity_blocks}")
        if key in self._entries:
            self._lru.remove(key)
        self._entries[key] = matmul
        self._lru.append(key)
        while self.blocks_used() > self.capacity_blocks:
            victim = self._lru.popleft()
            del self._entries[victim]

    def get(self, key: str) -> BlockMatmul:
        if key not in self._entries:
            raise KeyError(f"matrix {key!r} not in MZIM matrix memory")
        self._lru.remove(key)
        self._lru.append(key)
        return self._entries[key]


class HealthMonitor:
    """Expected-vs-measured fabric health probe (DESIGN.md §12).

    Every ``interval_cycles`` the monitor samples up to three signals:

    * ``mesh_probe()`` — normalized transfer-matrix error of the compute
      mesh against its target (the calibration basis-vector probe,
      :func:`repro.photonics.calibration.matrix_error`);
    * ``link_probe()`` — transfer error of the communication paths
      (1.0 while a dead interposer link has no detour programmed);
    * ``power_probe()`` — received optical power in watts, converted to
      detector ENOB via :func:`repro.photonics.noise.effective_bits`.

    A sample is unhealthy when the combined error exceeds
    ``error_threshold`` or the ENOB falls below ``min_effective_bits``.
    The monitor only *observes*; acting on an unhealthy sample is the
    degradation ladder's job (:mod:`repro.faults.ladder`).
    """

    def __init__(self, *,
                 mesh_probe: Callable[[], float] | None = None,
                 link_probe: Callable[[], float] | None = None,
                 power_probe: Callable[[], float] | None = None,
                 error_threshold: float = 0.05,
                 min_effective_bits: float = 4.0,
                 interval_cycles: int = 64,
                 obs: Obs = NULL_OBS) -> None:
        if interval_cycles < 1:
            raise ValueError(
                f"interval_cycles must be >= 1, got {interval_cycles}")
        if error_threshold <= 0.0:
            raise ValueError(
                f"error_threshold must be > 0, got {error_threshold}")
        self.mesh_probe = mesh_probe
        self.link_probe = link_probe
        self.power_probe = power_probe
        self.error_threshold = error_threshold
        self.min_effective_bits = min_effective_bits
        self.interval_cycles = interval_cycles
        self.probes = 0
        self.last_sample: dict | None = None
        self.obs = obs
        self._tracer = obs.tracer
        self._m_probes = obs.metrics.counter("core.health_probes")
        self._m_unhealthy = obs.metrics.counter("core.health_unhealthy")
        self._g_error = obs.metrics.gauge("core.health_error")
        self._g_enob = obs.metrics.gauge("core.health_enob")

    @property
    def healthy(self) -> bool:
        """Last sample's verdict (healthy until the first probe)."""
        return self.last_sample is None or bool(self.last_sample["healthy"])

    def due(self, cycle: int) -> bool:
        return cycle % self.interval_cycles == 0

    def probe(self, cycle: int) -> dict:
        """Take one sample now, regardless of the probe interval."""
        error = 0.0
        if self.mesh_probe is not None:
            error = max(error, float(self.mesh_probe()))
        if self.link_probe is not None:
            error = max(error, float(self.link_probe()))
        enob = None
        if self.power_probe is not None:
            from repro.photonics.noise import effective_bits
            enob = float(effective_bits(float(self.power_probe())))
        healthy = error <= self.error_threshold and (
            enob is None or enob >= self.min_effective_bits)
        sample = {"cycle": cycle, "error": error, "enob": enob,
                  "healthy": healthy}
        self.last_sample = sample
        self.probes += 1
        self._m_probes.inc()
        if not healthy:
            self._m_unhealthy.inc()
        self._g_error.set(error)
        if enob is not None:
            self._g_enob.set(enob)
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "health", "health_probe", cycle,
                error=round(error, 6),
                enob=None if enob is None else round(enob, 3),
                healthy=healthy)
        return sample

    def sample(self, cycle: int) -> dict | None:
        """Probe if a sample is due this cycle; return it (else None)."""
        if not self.due(cycle):
            return None
        return self.probe(cycle)


@dataclass
class MVMResult:
    """One completed fleet MVM: which job, whose request, what came out."""

    job_id: int
    node: int
    matrix_key: str
    result: np.ndarray
    tenant: str = "default"


class MZIMControlUnit:
    """Compute-side brain of the Flumen fabric."""

    def __init__(self, network: FlumenNetwork,
                 system: SystemConfig | None = None,
                 matrix_memory_blocks: int = 256,
                 arbitration_latency_cycles: int = 2,
                 obs: Obs = NULL_OBS,
                 health: HealthMonitor | None = None,
                 mvm_memo_entries: int = 0) -> None:
        self.network = network
        self.system = system or SystemConfig()
        #: Single buffer of compute requests per network edge (Figure 8);
        #: we model the merged queue the Partitioner scans.
        self.compute_buffer: deque[ComputeRequest] = deque()
        self.matrix_memory = MatrixMemory(matrix_memory_blocks)
        #: Cycles for a request/notification to cross the arbitration
        #: waveguide.
        self.arbitration_latency_cycles = arbitration_latency_cycles
        self.requests_received = 0
        #: Optional fabric health monitor (None = always healthy).
        self.health = health
        #: Queued numeric MVM jobs awaiting a fleet-wide stacked dispatch:
        #: ``(job_id, node, matrix_key, vectors, tenant)``.
        self._mvm_queue: list[tuple[int, int, str, np.ndarray, str]] = []
        self._mvm_ids = itertools.count()
        #: Opt-in memo for repeated (program, vectors) MVM jobs: maps
        #: ``(id(BlockMatmul), vectors bytes)`` to the computed result.
        #: Keys hold a reference to the :class:`BlockMatmul` itself so a
        #: garbage-collected program can never alias a reused ``id()``.
        #: 0 disables (the default: every flush runs the stacked kernel).
        self.mvm_memo_entries = int(mvm_memo_entries)
        self._mvm_memo: "OrderedDict[tuple[int, bytes], " \
            "tuple[object, np.ndarray]]" = OrderedDict()
        self.mvm_memo_hits = 0
        self.mvm_memo_misses = 0
        self.obs = obs
        self._tracer = obs.tracer
        self._events = obs.events
        self._m_offload_accept = obs.metrics.counter("core.offload_accepted")
        self._m_offload_reject = obs.metrics.counter("core.offload_rejected")
        self._m_mvm_jobs = obs.metrics.counter("core.mvm_jobs")
        self._m_mvm_flushes = obs.metrics.counter("core.mvm_flushes")

    @property
    def fabric_ports(self) -> int:
        """MZIM port count (8 for the 16-chiplet system, Section 5.1)."""
        return self.system.mzim_ports

    @property
    def endpoints_per_port(self) -> int:
        """Network endpoints sharing one MZIM port."""
        return max(1, self.network.nodes // self.fabric_ports)

    def port_range_endpoints(self, lo_port: int, hi_port: int) -> set[int]:
        """Network endpoints covered by fabric ports ``[lo_port, hi_port)``."""
        k = self.endpoints_per_port
        return set(range(lo_port * k, hi_port * k))

    def enqueue(self, request: ComputeRequest) -> None:
        """Place a request in the compute buffer (already arbitrated)."""
        self.compute_buffer.append(request)
        self.requests_received += 1
        self._m_offload_accept.inc()
        self.obs.metrics.counter("core.tenant_offload_accepted",
                                 tenant=request.tenant).inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "offload", "offload_accept", request.submit_cycle,
                request_id=request.request_id, node=request.node,
                ports_needed=request.ports_needed)

    def submit(self, request: ComputeRequest, cycle: int) -> None:
        """Accept a compute request over the arbitration waveguide."""
        if request.ports_needed > self.fabric_ports:
            raise ValueError(
                f"request wants {request.ports_needed} ports; fabric has "
                f"{self.fabric_ports}")
        if request.matrix_key not in self.matrix_memory:
            raise KeyError(
                f"matrix {request.matrix_key!r} must be preloaded into "
                f"matrix memory before requesting compute (Section 3.3.3)")
        self.enqueue(request)

    # -- fleet-wide MVM dispatch ------------------------------------------

    def queue_mvm(self, matrix_key: str, vectors: np.ndarray,
                  node: int = 0, tenant: str = "default") -> int:
        """Queue one numeric MVM job against a preloaded matrix.

        Jobs accumulate until :meth:`flush_mvms`, which executes the whole
        fleet through one stacked ``(B, k, 2, 2)`` kernel dispatch —
        concurrent offloads from different cores share a single pass
        instead of propagating block by block.  Returns the job id.
        """
        if matrix_key not in self.matrix_memory:
            raise KeyError(
                f"matrix {matrix_key!r} must be preloaded into matrix "
                f"memory before queueing an MVM (Section 3.3.3)")
        job_id = next(self._mvm_ids)
        self._mvm_queue.append((job_id, node, matrix_key,
                                np.asarray(vectors, dtype=float),
                                str(tenant)))
        return job_id

    def pending_mvms(self) -> int:
        """Jobs queued and not yet flushed."""
        return len(self._mvm_queue)

    def flush_mvms(self) -> list[MVMResult]:
        """Execute every queued MVM in one fleet-wide stacked dispatch.

        Results come back in submission order and are bit-identical to
        running each job's :class:`~repro.core.accelerator.BlockMatmul`
        sequentially (the stacked kernel's oracle contract, DESIGN.md
        §14).  The queue is emptied even if a job fails.
        """
        queue, self._mvm_queue = self._mvm_queue, []
        if not queue:
            return []
        jobs = [(self.matrix_memory.get(key), vectors)
                for _, _, key, vectors, _ in queue]
        if self.mvm_memo_entries:
            outputs = self._memoized_matmuls(jobs)
        else:
            outputs = block_matmul_many(jobs)
        self._m_mvm_jobs.inc(len(queue))
        self._m_mvm_flushes.inc()
        tenant_jobs: dict[str, int] = {}
        for _, _, _, _, tenant in queue:
            tenant_jobs[tenant] = tenant_jobs.get(tenant, 0) + 1
        for tenant, n in tenant_jobs.items():
            self.obs.metrics.counter("core.tenant_mvm_jobs",
                                     tenant=tenant).inc(n)
        if self._events.enabled:
            self._events.emit(
                "mvm_flush", self.network.cycle,
                jobs=len(queue),
                nodes=sorted({node for _, node, _, _, _ in queue}),
                blocks=sum(len(job.programs) for job, _ in jobs),
                tenants={t: tenant_jobs[t] for t in sorted(tenant_jobs)})
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "offload", "mvm_flush", self.network.cycle,
                jobs=len(queue),
                blocks=sum(len(job.programs) for job, _ in jobs))
        return [MVMResult(job_id=job_id, node=node, matrix_key=key,
                          result=result, tenant=tenant)
                for (job_id, node, key, _, tenant), result
                in zip(queue, outputs)]

    def _memoized_matmuls(self, jobs: list) -> list[np.ndarray]:
        """Stacked-dispatch outputs with repeated jobs served from memo.

        A serving fabric flushes the *same* preloaded tenant program
        against the *same* pinned vector block thousands of times; the
        stacked kernel's per-job results are bit-identical to computing
        each job alone (DESIGN.md §14), so identical ``(program,
        vectors)`` jobs may be answered from a bounded LRU of previous
        results — byte-equivalent output, no numeric work.  Only the
        subset of genuinely new jobs runs through
        :func:`~repro.core.accelerator.block_matmul_many`.  Returned
        (and cached) arrays are copies, so callers may mutate results
        without poisoning the memo.
        """
        outputs: list[np.ndarray | None] = [None] * len(jobs)
        keys: list[tuple[int, bytes]] = []
        fresh: list[int] = []
        first_seen: dict[tuple[int, bytes], int] = {}
        for i, (program, vectors) in enumerate(jobs):
            key = (id(program), vectors.tobytes())
            keys.append(key)
            hit = self._mvm_memo.get(key)
            if hit is not None and hit[0] is program:
                self._mvm_memo.move_to_end(key)
                outputs[i] = hit[1].copy()
                self.mvm_memo_hits += 1
            elif key in first_seen:
                # Duplicate within this flush: computed once below.
                self.mvm_memo_hits += 1
            else:
                first_seen[key] = i
                fresh.append(i)
                self.mvm_memo_misses += 1
        if fresh:
            computed = block_matmul_many([jobs[i] for i in fresh])
            for i, result in zip(fresh, computed):
                outputs[i] = result
                self._mvm_memo[keys[i]] = (jobs[i][0], result.copy())
                while len(self._mvm_memo) > self.mvm_memo_entries:
                    self._mvm_memo.popitem(last=False)
        for i, key in enumerate(keys):
            if outputs[i] is None:
                # Within-flush duplicate; its first occurrence may
                # already have been evicted from a tiny memo, so copy
                # from the computed output rather than the cache.
                outputs[i] = outputs[first_seen[key]].copy()
        return outputs  # type: ignore[return-value]

    def network_utilization(self, scan_depth: float | None = None) -> float:
        """Utilization feedback broadcast to the chiplets (Section 3.4)."""
        zeta = self.system.scheduler.zeta if scan_depth is None else scan_depth
        return self.network.buffer_utilization(scan_depth=zeta)

    def advise_offload(self, utilization_ceiling: float = 0.8) -> bool:
        """Node-side admission hint: offload only when the network is calm.

        "nodes will not request compute access if the network utilization
        conveyed to them by the MZIM control unit is too high" (Section 3.4).
        An attached, currently-unhealthy :class:`HealthMonitor` also
        rejects: while the fabric is being recovered, nodes compute
        locally rather than queue on a degraded photonic path.
        """
        utilization = self.network_utilization()
        unhealthy = self.health is not None and not self.health.healthy
        accept = utilization < utilization_ceiling and not unhealthy
        if not accept:
            self._m_offload_reject.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "offload", "offload_advice", self.network.cycle,
                utilization=round(utilization, 6),
                ceiling=utilization_ceiling, accept=accept,
                fabric_healthy=not unhealthy)
        return accept
