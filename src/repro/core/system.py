"""End-to-end system model: workloads x topologies (Figures 13, 14, 15).

Binds the multicore substrate (cores + cache hierarchy), the NoP cycle
simulator, and — for Flumen-A — the MZIM compute path with the Algorithm 1
scheduler, producing runtime and a per-component energy breakdown for each
(workload, topology) pair.

Execution model
---------------
* **Baselines (Ring / Mesh / OptBus / Flumen-I)**: all MACs run on the
  cores.  Core time = issue + exposed memory stalls; the workload's memory
  traffic (DRAM fills and writebacks) plays through the topology's cycle
  simulator, and runtime is the slower of compute and communication.
* **Flumen-A**: each offloadable matmul phase becomes an MZIM job.
  Photonic time = phase programming (ping-ponged across the two
  sub-partitions) + WDM input windows + operand streaming at link
  bandwidth + result return; the cores keep partial-sum accumulation and
  all non-offloadable work, overlapped with the photonic pipeline.
  Scheduler grant latency and communication blocking come from co-running
  Algorithm 1 against the same background traffic.

Energy follows the same counters: core/L1/L2/L3/DRAM from the multicore
model, NoP from the network energy model, and the MZIM compute energy from
the photonic model (Section 5.3's calibration).

The configuration set is not hardcoded: each named configuration is a
:class:`~repro.core.pipelines.ConfigPipeline` looked up in the pipeline
registry, so new topology/compute combinations plug in via
``register_configuration`` and immediately appear in :meth:`run_all`,
the sweep CLI, and the fault campaigns' golden-reference cross-check
(``repro.faults.campaign.golden_reference_record``).  This model always
simulates a healthy fabric; reliability studies attach a
:class:`~repro.core.control_unit.HealthMonitor` and degradation ladder
to the same control unit + scheduler pair through :mod:`repro.faults`.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.accelerator import OffloadPlan, plan_offload
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.pipelines import (
    ConfigPipeline,
    configuration_names,
    get_configuration,
)
from repro.core.scheduler import FlumenScheduler, compute_duration_cycles
from repro.multicore.cache import CacheHierarchy, HierarchyCounts
from repro.multicore.cpu import CoreModel
from repro.multicore.energy import CoreEnergyModel, EnergyBreakdown
from repro.noc.energy import NetworkEnergyModel
from repro.noc.simulation import make_network
from repro.noc.traffic import TracePlayback
from repro.obs import NULL_OBS, Obs
from repro.photonics.compute_energy import MZIMComputeModel

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.workloads.base import MatmulPhase, Workload

log = logging.getLogger("repro.system")

#: Memory-controller endpoints on the 16-node NoP.
MEMORY_CONTROLLERS = (0, 5, 10, 15)


def __getattr__(name: str):
    # Legacy alias: the static tuple became the pipeline registry; keep
    # ``from repro.core.system import CONFIGURATIONS`` working and live.
    if name == "CONFIGURATIONS":
        return configuration_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class WorkloadRun:
    """Runtime + energy of one workload under one configuration."""

    workload: str
    configuration: str
    runtime_s: float
    energy: EnergyBreakdown
    core_cycles: float = 0.0
    comm_cycles: float = 0.0
    mzim_cycles: float = 0.0
    avg_packet_latency: float = 0.0
    offloaded_macs: int = 0

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — Figure 15's metric."""
        return self.energy.total * self.runtime_s


class SystemModel:
    """The 64-core / 16-chiplet evaluation platform (Table 1)."""

    def __init__(self, system: SystemConfig | None = None,
                 parallel_cores: int = 8, nodes: int = 16,
                 traffic_seed: int = 17, vectorized: bool | None = None,
                 obs: Obs = NULL_OBS) -> None:
        self.system = system or SystemConfig()
        #: Cores that share one workload (these kernels do not scale to
        #: all 64 cores; two chiplets' worth is the paper-era assumption).
        self.parallel_cores = parallel_cores
        self.nodes = nodes
        self.traffic_seed = traffic_seed
        #: NoP backend selection, forwarded to ``make_network``: None
        #: serves the struct-of-arrays twin when registered, False pins
        #: the per-object oracle (the equivalence benches and the
        #: byte-identity suite diff the two), True requires the twin.
        self.vectorized = vectorized
        self.obs = obs
        self.core_model = CoreModel(self.system.core)
        #: Fraction of memory-miss latency still exposed to the cores when
        #: operands stream directly to the MZIM under Flumen-A.
        self.offload_stall_fraction = 0.25
        self.energy_model = CoreEnergyModel()
        self.net_energy = NetworkEnergyModel(system=self.system)
        self.mzim_model = MZIMComputeModel(
            compute=self.system.compute,
            architecture=self.system.mesh_architecture)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------

    def _cache_counts(self, workload: Workload,
                      offloaded: bool) -> tuple[HierarchyCounts, CacheHierarchy]:
        """Simulate the workload's access streams through one hierarchy.

        Under Flumen-A, offloaded operand streams bypass L1/L2 (they move
        from L3 to the transceiver), matching Section 5.4.1's observation
        that L1/L2 energy falls while L3/DRAM stay flat.
        """
        hierarchy = CacheHierarchy(self.system.core, self.system.cache,
                                   obs=self.obs)
        tracer = self.obs.tracer
        total = HierarchyCounts()
        # The cache sim is stream-based, not cycle-based; spans on the
        # multicore track use a "stream offset" clock (cumulative
        # addresses processed), a deterministic per-layer time domain.
        offset = 0
        for phase, stream in workload.address_streams():
            l3_before = hierarchy.l3.stats.accesses
            if offloaded:
                for addr in stream:
                    if not hierarchy.l3.access(addr):
                        hierarchy.dram_accesses += 1
                counts = HierarchyCounts()
                processed = hierarchy.l3.stats.accesses - l3_before
            else:
                counts = hierarchy.access_stream(stream)
                processed = counts.l1.accesses
            if tracer.enabled:
                name = getattr(phase, "name", str(phase))
                tracer.complete(
                    "multicore", "cache", name, offset, offset + processed,
                    addresses=processed, offloaded=offloaded,
                    l1_hits=counts.l1.hits, l2_hits=counts.l2.hits,
                    l3_hits=counts.l3.hits)
            offset += processed
            total.l1.accesses += counts.l1.accesses
            total.l1.hits += counts.l1.hits
            total.l2.accesses += counts.l2.accesses
            total.l2.hits += counts.l2.hits
            total.l3.accesses += counts.l3.accesses
            total.l3.hits += counts.l3.hits
        total.dram_accesses = hierarchy.dram_accesses
        if offloaded:
            # The L3-direct walk above bypasses access_stream(), so feed
            # the level counters from the raw cache stats instead.
            metrics = self.obs.metrics
            metrics.counter("multicore.cache_hits", level="l3").inc(
                hierarchy.l3.stats.hits)
            metrics.counter("multicore.cache_misses", level="l3").inc(
                hierarchy.l3.stats.misses)
            metrics.counter("multicore.dram_accesses").inc(
                hierarchy.dram_accesses)
        return total, hierarchy

    def _traffic_events(self, counts: HierarchyCounts, spread_cycles: int,
                        extra_packets: int = 0
                        ) -> tuple[list[tuple[int, int, int, int]], int]:
        """Build the NoP trace: DRAM fills + writebacks as packets.

        Returns ``(events, scale)`` where the trace was subsampled by
        ``scale`` to stay simulable; energy counters are multiplied back.
        """
        line_flits = 3  # 64B line + header over a ~32B phit
        total_packets = counts.dram_accesses + extra_packets
        cap = self.system.max_simulated_packets
        scale = max(1, math.ceil(total_packets / cap))
        if scale > 1:
            log.info(
                "NoP trace subsampled %dx: %d packets -> %d (cap %d); "
                "energy counters rescaled",
                scale, total_packets, total_packets // scale, cap)
        packets = total_packets // scale
        window = max(1, spread_cycles // scale)
        events = []
        for i in range(packets):
            cycle = (i * window) // max(packets, 1)
            mc = MEMORY_CONTROLLERS[i % len(MEMORY_CONTROLLERS)]
            consumer = (i * 7) % self.nodes
            if consumer == mc:
                consumer = (consumer + 1) % self.nodes
            events.append((cycle, mc, consumer, line_flits))
        return events, scale

    def _simulate_nop(self, pipeline: ConfigPipeline,
                      counts: HierarchyCounts, core_cycles: float
                      ) -> tuple[float, EnergyBreakdown, float, object]:
        """Run the pipeline's network backend on the workload trace.

        Returns (comm_cycles, nop_energy_as_breakdown, avg_latency, net).
        """
        events, scale = self._traffic_events(counts, int(core_cycles))
        net = make_network(pipeline.topology, self.nodes,
                           vectorized=self.vectorized, obs=self.obs)
        trace = TracePlayback(events)
        window = max(1, int(core_cycles) // scale)
        net.run(trace, cycles=window, drain=True, max_drain_cycles=20_000)
        drain_extra = max(0, net.cycle - window)
        comm_cycles = core_cycles + drain_extra * scale
        result = net.result("trace", 0.0)
        # Scale traffic counters back up for energy accounting.
        object.__setattr__(result, "link_traversals",
                           result.link_traversals * scale)
        object.__setattr__(result, "flit_hops", result.flit_hops * scale)
        object.__setattr__(result, "cycles", int(core_cycles))
        report = self.net_energy.of(result, kind=pipeline.link_energy)
        energy = EnergyBreakdown(nop=report.total)
        return comm_cycles, energy, result.latency.average, net

    def _phase_plan(self, phase: MatmulPhase,
                    partition_ports: int = 8) -> OffloadPlan:
        plan = plan_offload(phase.rows, phase.cols, phase.vectors,
                            mzim_size=partition_ports,
                            wavelengths=self.system.compute
                            .computation_wavelengths)
        return plan

    # ------------------------------------------------------------------
    # configurations
    # ------------------------------------------------------------------

    def run(self, workload: Workload, configuration: str) -> WorkloadRun:
        """Evaluate one workload under one registered configuration."""
        pipeline = get_configuration(configuration)
        try:
            runner = self._COMPUTE_PATHS[pipeline.compute_path]
        except KeyError:
            raise ValueError(
                f"configuration {pipeline.name!r} declares compute path "
                f"{pipeline.compute_path!r}; this model implements "
                f"{tuple(self._COMPUTE_PATHS)}") from None
        run = runner(self, workload, pipeline)
        if self.obs.tracer.enabled:
            runtime_cycles = int(round(
                run.runtime_s * self.system.core.frequency_hz))
            self.obs.tracer.complete(
                "engine", "runs", f"{run.workload}/{run.configuration}",
                0, runtime_cycles,
                runtime_s=run.runtime_s, energy_j=run.energy.total,
                core_cycles=run.core_cycles, comm_cycles=run.comm_cycles,
                mzim_cycles=run.mzim_cycles,
                offloaded_macs=run.offloaded_macs)
        return run

    def run_all(self, workload: Workload) -> dict[str, WorkloadRun]:
        """Evaluate the workload under every registered configuration."""
        return {cfg: self.run(workload, cfg)
                for cfg in configuration_names()}

    def _run_baseline(self, workload: Workload,
                      pipeline: ConfigPipeline) -> WorkloadRun:
        counts, hierarchy = self._cache_counts(workload, offloaded=False)
        macs = workload.total_macs()
        extra = workload.extra_core_ops()
        cores = self._cores_for(workload)
        cost = self.core_model.phase_cost(
            macs, extra, counts, hierarchy, cores)
        comm_cycles, nop_energy, avg_lat, _ = self._simulate_nop(
            pipeline, counts, cost.total_cycles)
        runtime_cycles = max(cost.total_cycles, comm_cycles)
        runtime_s = self.core_model.seconds(runtime_cycles)

        energy = self._component_energy(
            macs_on_core=macs, other_ops=cost.other_ops,
            counts=counts, runtime_s=runtime_s, active_cores=cores)
        energy = energy + nop_energy
        return WorkloadRun(
            workload=workload.name, configuration=pipeline.name,
            runtime_s=runtime_s, energy=energy,
            core_cycles=cost.total_cycles, comm_cycles=comm_cycles,
            avg_packet_latency=avg_lat)

    def _run_accelerated(self, workload: Workload,
                         pipeline: ConfigPipeline) -> WorkloadRun:
        counts, hierarchy = self._cache_counts(workload, offloaded=True)
        phases = workload.phases()
        partition_ports = self.system.mzim_ports  # full-fabric compute
        mzim_cycles = 0.0
        mzim_energy = 0.0
        offloaded = 0
        partial_adds = 0
        freq = self.system.core.frequency_hz
        link_bytes_per_cycle = (self.system.phot_link.bandwidth_bps
                                / 8.0 / freq)
        for phase in phases:
            plan = self._phase_plan(phase, partition_ports)
            plan = _apply_sparsity(plan, phase, workload)
            # Ping-pong across the two sub-partitions hides half the
            # per-block programming behind the other half's compute.
            duration = compute_duration_cycles(plan, self.system)
            program_cycles = plan.matrix_switches * math.ceil(
                self.system.compute.mzim_switch_delay_s * freq)
            duration -= program_cycles // 2
            streaming = phase.input_bytes / link_bytes_per_cycle
            mzim_cycles += max(duration, streaming)
            offloaded += plan.macs_offloaded
            partial_adds += plan.partial_sum_adds
            # Energy: one programmed block processes all its vectors in a
            # single (serialized) compute window.
            vectors_per_block = max(1, plan.mvms
                                    // max(1, plan.matrix_switches))
            per_block = self.mzim_model.matmul_energy(
                plan.mzim_size, vectors_per_block)
            mzim_energy += per_block.total * plan.matrix_switches

        # Core side: accumulation + non-offloadable work.  Operand streams
        # flow L3 -> transceiver without stalling the cores (the streaming
        # term above is the bandwidth bound); only a residual fraction of
        # miss latency reaches the accumulating cores.
        # Partial-sum accumulation is a regular vector add and runs on the
        # SIMD pipes at twice the generic op rate.
        extra = workload.extra_core_ops() + partial_adds // 2
        cores = self._cores_for(workload)
        cost = self.core_model.phase_cost(0, extra, None, None, cores)
        residual_stalls = (hierarchy.stall_cycles(
            counts, mlp=self.system.core.memory_level_parallelism)
            * self.offload_stall_fraction / cores)
        core_cycles = cost.total_cycles + residual_stalls

        # Scheduler co-simulation for grant latency and comm blocking.
        grant_wait, avg_lat, comm_cycles, nop_energy = \
            self._scheduler_overhead(pipeline, counts,
                                     max(core_cycles, mzim_cycles),
                                     phases, partition_ports, mzim_cycles)
        pipeline_cycles = max(mzim_cycles + grant_wait, core_cycles)
        runtime_cycles = max(pipeline_cycles, comm_cycles)
        runtime_s = self.core_model.seconds(runtime_cycles)

        energy = self._component_energy(
            macs_on_core=0, other_ops=cost.other_ops,
            counts=counts, runtime_s=runtime_s, active_cores=cores)
        energy = energy + nop_energy
        energy.mzim += mzim_energy
        return WorkloadRun(
            workload=workload.name, configuration=pipeline.name,
            runtime_s=runtime_s, energy=energy,
            core_cycles=core_cycles, comm_cycles=comm_cycles,
            mzim_cycles=mzim_cycles, avg_packet_latency=avg_lat,
            offloaded_macs=offloaded)

    def _scheduler_overhead(self, pipeline: ConfigPipeline,
                            counts: HierarchyCounts,
                            span_cycles: float, phases: list[MatmulPhase],
                            partition_ports: int, mzim_cycles: float
                            ) -> tuple[float, float, float, EnergyBreakdown]:
        """Co-run Algorithm 1 with the background traffic.

        The compute partition takes half the fabric (the Figure 5 even
        split); the chiplets doing core-side work sit in the other half,
        where most of the memory traffic flows.  Packets that do target
        partition endpoints wait — that is the communication-blocking
        overhead Section 5.4.2 quantifies (~9% packet latency increase).

        Returns (grant wait cycles, avg packet latency under blocking,
        comm completion cycles, NoP energy).
        """
        line_flits = 3
        cap = self.system.max_simulated_packets
        scale = max(1, math.ceil(counts.dram_accesses / cap))
        if scale > 1:
            log.info(
                "scheduler co-sim trace subsampled %dx: %d packets -> %d "
                "(cap %d); energy counters rescaled",
                scale, counts.dram_accesses,
                counts.dram_accesses // scale, cap)
        packets = counts.dram_accesses // scale
        window = max(1, int(span_cycles) // scale)
        # Compute partition on the low fabric ports -> endpoints 0..7
        # blocked; traffic runs among the free half with a 15% tail
        # crossing into the blocked half.
        free = [n for n in range(self.nodes // 2, self.nodes)]
        events = []
        for i in range(packets):
            cycle = (i * window) // max(packets, 1)
            mc = free[0] if i % 2 else free[len(free) // 2]
            if i % 7 == 0:
                consumer = (i * 5) % (self.nodes // 2)  # blocked half
            else:
                consumer = free[(i * 3) % len(free)]
            if consumer == mc:
                consumer = free[-1]
            events.append((cycle, mc, consumer, line_flits))
        net = make_network(pipeline.topology, self.nodes,
                           vectorized=self.vectorized, obs=self.obs)
        control = MZIMControlUnit(net, self.system, obs=self.obs)
        fabric = None
        if self.obs.tracer.enabled:
            # Mirror grants onto a real photonic fabric only when tracing,
            # so the reprogramming timeline (phase-write counts) shows up;
            # the null path skips the SVD decompositions entirely.
            from repro.photonics.fabric import FlumenFabric
            fabric = FlumenFabric(
                control.fabric_ports, obs=self.obs,
                mesh_architecture=(pipeline.mesh_architecture
                                   or self.system.mesh_architecture))
        scheduler = FlumenScheduler(control, self.system, obs=self.obs,
                                    fabric=fabric)
        # One compute request per phase, holding half the fabric for the
        # (subsampled) photonic pipeline duration.
        hold = max(1, int(mzim_cycles / scale / max(1, len(phases))))
        for index, phase in enumerate(phases):
            plan = self._phase_plan(phase, partition_ports)
            # Explicit per-run ids: the default factory is a process-global
            # counter, which would leak run ordering into trace args and
            # break byte-identical same-seed traces.
            request = ComputeRequest(
                node=0, plan=plan, matrix_key=f"wl/{phase.name}",
                submit_cycle=0,
                ports_needed=max(2, control.fabric_ports // 2),
                duration_override=hold, request_id=index)
            # Bypass submit(): phases here model jobs whose phase mappings
            # stream from L3 rather than resident matrix memory.
            control.enqueue(request)
        trace = TracePlayback(events)
        # This scheduler-interleaved loop bypasses SimKernel.run(), so it
        # carries the same phase instrumentation: wall seconds into the
        # timer series, simulated extent as a cycle-stamped trace span.
        wall_start = time.perf_counter()
        start_cycle = net.cycle
        sampler = self.obs.sampler
        for _ in range(window):
            for packet in trace.packets_for_cycle(net.cycle):
                net.offer_packet(packet)
            scheduler.tick()
            net.step()
            if sampler is not None and net.cycle & 63 == 0:
                sampler.tick(net.cycle)
        budget = 20_000
        while budget and not (net.quiescent() and not scheduler.active
                              and not control.compute_buffer):
            scheduler.tick()
            net.step()
            budget -= 1
        if sampler is not None:
            sampler.tick(net.cycle)
        self.obs.metrics.timer("noc.run_seconds", topology=net.name) \
            .observe(time.perf_counter() - wall_start)
        if self.obs.tracer.enabled:
            self.obs.tracer.complete(
                "noc", "kernel", f"run:{net.name}",
                start_cycle, net.cycle,
                cycles=net.cycle - start_cycle,
                injected=net.injected_packets)
        drain_extra = max(0, net.cycle - window)
        comm_cycles = span_cycles + drain_extra * scale
        result = net.result("trace", 0.0)
        object.__setattr__(result, "link_traversals",
                           result.link_traversals * scale)
        object.__setattr__(result, "flit_hops", result.flit_hops * scale)
        object.__setattr__(result, "cycles", int(span_cycles))
        nop_energy = EnergyBreakdown(
            nop=self.net_energy.of(result, kind=pipeline.link_energy).total)
        return (scheduler.stats.average_wait, result.latency.average,
                comm_cycles, nop_energy)

    def _cores_for(self, workload: Workload) -> int:
        """Per-workload parallelism override, else the system default."""
        return getattr(workload, "parallel_cores", None) \
            or self.parallel_cores

    def _component_energy(self, macs_on_core: int, other_ops: int,
                          counts: HierarchyCounts, runtime_s: float,
                          active_cores: int | None = None
                          ) -> EnergyBreakdown:
        em = self.energy_model
        core = em.compute_energy(macs_on_core, other_ops,
                                 active_cores or self.parallel_cores,
                                 runtime_s)
        # L1 word-granular energy: two operand reads per MAC, one per op.
        l1_word_accesses = 2 * macs_on_core + other_ops
        l1 = (l1_word_accesses * em.l1_energy_j
              + counts.l1.accesses * em.l1_energy_j)
        l2 = counts.l2.accesses * em.l2_energy_j
        l3 = counts.l3.accesses * em.l3_energy_j
        dram = counts.dram_accesses * em.dram_energy_j
        return EnergyBreakdown(core=core, l1=l1, l2=l2, l3=l3, dram=dram)

    #: Execution modes a pipeline's ``compute_path`` may select.
    _COMPUTE_PATHS = {"core": _run_baseline, "mzim": _run_accelerated}


def _apply_sparsity(plan: OffloadPlan, phase: MatmulPhase,
                    workload: Workload) -> OffloadPlan:
    """Shrink block counts for structurally sparse weight matrices.

    Block-diagonal kernels (per-channel convolutions) program only their
    nonzero blocks; the controller skips the rest, exactly as
    :class:`~repro.core.accelerator.BlockMatmul` does.
    """
    fraction = getattr(workload, "nonzero_block_fraction", None)
    if fraction is None or fraction >= 1.0:
        return plan
    switches = max(1, int(plan.matrix_switches * fraction))
    windows = max(1, int(plan.optical_windows * fraction))
    mvms = max(1, int(plan.mvms * fraction))
    # Zero blocks produce no partials, so accumulation shrinks too.
    adds = int(plan.partial_sum_adds * fraction)
    return OffloadPlan(
        mzim_size=plan.mzim_size, wavelengths=plan.wavelengths,
        rows=plan.rows, cols=plan.cols, vectors=plan.vectors,
        block_rows=plan.block_rows, block_cols=plan.block_cols,
        matrix_switches=switches, optical_windows=windows, mvms=mvms,
        partial_sum_adds=adds,
        macs_offloaded=plan.macs_offloaded)
