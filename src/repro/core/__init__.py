"""The paper's contribution: offload mapping, control unit, Algorithm 1
scheduler, and the end-to-end system model.
"""

from repro.core.accelerator import (
    BlockMatmul,
    OffloadPlan,
    conv2d_as_matmul,
    conv2d_reference,
    im2col,
    kernels_to_matrix,
    pad_to_blocks,
    pad_vectors,
    plan_offload,
)
from repro.core.control_unit import (
    ComputeRequest,
    MatrixMemory,
    MZIMControlUnit,
)
from repro.core.offload import Decision, OffloadPolicy
from repro.core.pipelines import (
    ConfigPipeline,
    configuration_names,
    get_configuration,
    iter_configurations,
    register_configuration,
    temporary_configuration,
    unregister_configuration,
)
from repro.core.scheduler import (
    ActiveComputation,
    FlumenScheduler,
    SchedulerStats,
    compute_duration_cycles,
)
from repro.core.system import (
    CONFIGURATIONS,
    SystemModel,
    WorkloadRun,
)

__all__ = [
    "ActiveComputation",
    "BlockMatmul",
    "CONFIGURATIONS",
    "ConfigPipeline",
    "ComputeRequest",
    "Decision",
    "FlumenScheduler",
    "OffloadPolicy",
    "MZIMControlUnit",
    "MatrixMemory",
    "OffloadPlan",
    "SchedulerStats",
    "SystemModel",
    "WorkloadRun",
    "compute_duration_cycles",
    "configuration_names",
    "get_configuration",
    "iter_configurations",
    "register_configuration",
    "temporary_configuration",
    "unregister_configuration",
    "conv2d_as_matmul",
    "conv2d_reference",
    "im2col",
    "kernels_to_matrix",
    "pad_to_blocks",
    "pad_vectors",
    "plan_offload",
]
