"""Clements decomposition of unitary matrices onto rectangular MZI meshes.

An ``N x N`` unitary is realized by ``N*(N-1)/2`` Mach-Zehnder
interferometers arranged in a rectangular mesh of ``N`` columns, plus a
single column of output phase shifters (Clements et al., *Optica* 2016 —
reference [10] of the paper).  This module implements:

* :func:`decompose` — factor a unitary into an :class:`MZIMesh` program,
* :class:`MZIMesh` — the program: MZI states in propagation order plus the
  output phase screen, with physical column assignment,
* :meth:`MZIMesh.matrix` — exact reconstruction (used by tests to verify the
  factorization to machine precision),
* :meth:`MZIMesh.propagate` — forward E-field propagation of input vectors,
  the operation the photonic hardware performs.

The MZI convention is the paper's Eq. (1); see
:func:`repro.photonics.devices.mzi_transfer`.

Derivation notes (kept here because sign conventions are the classic bug
farm of MZIM code): with ``T`` from Eq. (1) acting on modes ``(m, m+1)``,

* right-nulling: ``(U @ T^dag)[r, m] = -j e^{j theta/2}
  (u e^{-j phi} sin(theta/2) + v cos(theta/2))`` with ``u = U[r, m]``,
  ``v = U[r, m+1]``; solved by ``phi = -angle(-v/u)``,
  ``theta = 2 atan(|v/u|)``.
* left-nulling: ``(T @ U)[m+1, c] = j e^{-j theta/2}
  (e^{j phi} cos(theta/2) u - sin(theta/2) v)`` with ``u = U[m, c]``,
  ``v = U[m+1, c]``; solved by ``phi = angle(v/u)``,
  ``theta = 2 atan(|u/v|)``.
* commutation of a daggered left factor through the diagonal:
  ``T^dag(theta, phi) D = D' T(theta, phi')`` with
  ``phi' = angle(d_m conj(d_{m+1}))``,
  ``d'_m = -e^{j theta} e^{-j phi} d_{m+1}`` and
  ``d'_{m+1} = -e^{j theta} d_{m+1}``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.photonics.devices import MZIState, mzi_transfer

_NULL_TOL = 1e-12


class DecompositionError(ValueError):
    """Raised when the input matrix is not (numerically) unitary."""


class _TrackedMZIList(list):
    """A list of MZI states that reports every mutation to its mesh.

    The mesh caches derived structures (the columnized propagation plan,
    the per-path hop matrix) that depend on the programmed phases.
    Phases only change by replacing frozen :class:`MZIState` entries —
    ``mesh.mzis[i] = state`` in the fabric and the fault injector — so
    intercepting list mutation is sufficient to invalidate on any phase
    write.
    """

    __slots__ = ("_owner",)

    def __init__(self, iterable=(), owner=None):
        super().__init__(iterable)
        self._owner = owner

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            owner._invalidate_caches()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._touch()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._touch()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._touch()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._touch()
        return result

    def append(self, value):
        super().append(value)
        self._touch()

    def extend(self, iterable):
        super().extend(iterable)
        self._touch()

    def insert(self, index, value):
        super().insert(index, value)
        self._touch()

    def pop(self, index=-1):
        value = super().pop(index)
        self._touch()
        return value

    def remove(self, value):
        super().remove(value)
        self._touch()

    def clear(self):
        super().clear()
        self._touch()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._touch()

    def reverse(self):
        super().reverse()
        self._touch()


@dataclass
class MZIMesh:
    """A programmed rectangular MZI mesh.

    Attributes
    ----------
    n:
        Number of optical modes (mesh ports).
    mzis:
        MZI states in *propagation order*: ``mzis[0]`` is in the first
        column light encounters.
    output_phases:
        Complex unit phasors applied at the ``n`` outputs (the Clements
        phase screen).
    """

    n: int
    mzis: list[MZIState] = field(default_factory=list)
    output_phases: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.output_phases is None:
            self.output_phases = np.ones(self.n, dtype=complex)

    def __setattr__(self, name, value) -> None:
        # ``mzis`` is wrapped so in-place phase writes (``mesh.mzis[i] =
        # state`` in the fabric and the fault injector) invalidate the
        # cached propagation plan and hop matrix; wholesale reassignment
        # (``mesh.mzis = _assign_columns(...)`` in reck.py) re-wraps and
        # invalidates too.  ``output_phases`` needs no invalidation: the
        # plan and the hop trace never capture it — it is read at call
        # time.
        if name == "mzis":
            value = _TrackedMZIList(value, owner=self)
        object.__setattr__(self, name, value)
        if name == "mzis":
            self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        object.__setattr__(self, "_plan", None)
        object.__setattr__(self, "_hops", None)

    @property
    def num_mzis(self) -> int:
        return len(self.mzis)

    @property
    def num_columns(self) -> int:
        """Number of physical mesh columns in use."""
        if not self.mzis:
            return 0
        return 1 + max(mzi.column for mzi in self.mzis)

    def _propagation_plan(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """The columnized plan: ``(top_modes, transfers)`` per column.

        Each entry batches the 2x2 transfers of one physical column —
        pairwise-disjoint mode pairs, so they apply in any order — as a
        ``(k,)`` index array and a ``(k, 2, 2)`` stacked transfer array.
        Built lazily, cached until any phase write.
        """
        plan = getattr(self, "_plan", None)
        if plan is None:
            plan = [
                (np.fromiter((mzi.top_mode for mzi in group),
                             dtype=np.intp, count=len(group)),
                 np.stack([mzi.transfer for mzi in group]))
                for group in _disjoint_batches(self.mzis, self.n)
            ]
            object.__setattr__(self, "_plan", plan)
        return plan

    def matrix(self) -> np.ndarray:
        """Reconstruct the implemented unitary exactly.

        ``matrix() @ a`` equals :meth:`propagate` applied to ``a``.
        Column-batched ``np.matmul`` keeps the result bit-identical to
        the per-MZI reference loop (same 2x2 matmul kernel, same
        operand order along every mode).
        """
        u = np.eye(self.n, dtype=complex)
        for top, transfers in self._propagation_plan():
            pairs = np.stack((u[top], u[top + 1]), axis=1)  # (k, 2, n)
            mixed = np.matmul(transfers, pairs)
            u[top] = mixed[:, 0]
            u[top + 1] = mixed[:, 1]
        return np.diag(self.output_phases) @ u

    def propagate(self, fields: np.ndarray) -> np.ndarray:
        """Propagate input E-fields through the mesh.

        Parameters
        ----------
        fields:
            Shape ``(n,)`` for one wavelength or ``(n, p)`` for ``p``
            wavelengths carried simultaneously (WDM); every wavelength sees
            the same broadband MZI transformation (Section 2.2).

        One batched 2x2 matmul per physical column replaces the per-MZI
        Python loop (kept as :meth:`_reference_propagate`); the batched
        form is bit-identical, not merely close — see DESIGN.md §13.
        """
        out = np.asarray(fields, dtype=complex).copy()
        if out.shape[0] != self.n:
            raise ValueError(
                f"expected leading dimension {self.n}, got {out.shape[0]}")
        vector = out.ndim == 1
        for top, transfers in self._propagation_plan():
            if vector:
                pairs = np.stack((out[top], out[top + 1]), axis=1)[..., None]
                mixed = np.matmul(transfers, pairs)[..., 0]  # (k, 2)
            else:
                pairs = np.stack((out[top], out[top + 1]), axis=1)
                mixed = np.matmul(transfers, pairs)  # (k, 2, p)
            out[top] = mixed[:, 0]
            out[top + 1] = mixed[:, 1]
        phases = self.output_phases
        if out.ndim > 1:
            phases = phases[:, np.newaxis]
        return phases * out

    def _reference_propagate(self, fields: np.ndarray) -> np.ndarray:
        """Per-MZI propagation oracle (the pre-vectorization loop).

        Kept verbatim so property tests can assert the columnized
        :meth:`propagate` reproduces it exactly.
        """
        out = np.asarray(fields, dtype=complex).copy()
        if out.shape[0] != self.n:
            raise ValueError(
                f"expected leading dimension {self.n}, got {out.shape[0]}")
        for mzi in self.mzis:
            m = mzi.top_mode
            out[m:m + 2, ...] = mzi.transfer @ out[m:m + 2, ...]
        phases = self.output_phases
        if out.ndim > 1:
            phases = phases[:, np.newaxis]
        return phases * out

    def mzis_per_path(self) -> np.ndarray:
        """Count MZIs traversed from each input to each output.

        Returns an ``(n, n)`` integer matrix ``hops`` where ``hops[o, i]``
        is the number of MZIs on the *configured* optical path from input
        ``i`` to output ``o``; ``-1`` marks unconnected pairs (no optical
        power flows).  Power is traced through splitting states, so a
        broadcast source has several connected outputs; for splitting paths the
        count is the worst (deepest) branch.  Used for per-path loss
        accounting (Section 5.2).

        The result is memoized until the next phase write (the fabric
        asks three times per reconfiguration) and returned as a shared
        read-only array — copy before mutating.
        """
        hops = getattr(self, "_hops", None)
        if hops is None:
            hops = _trace_hops(self)
            hops.setflags(write=False)
            object.__setattr__(self, "_hops", hops)
        return hops

    def column_of(self, index: int) -> int:
        """Physical column of the ``index``-th MZI in propagation order."""
        return self.mzis[index].column


def _trace_hops(mesh: MZIMesh) -> np.ndarray:
    """Exact per-path MZI counts via power tracing, all inputs at once.

    Vectorizes :func:`_reference_trace_hops` across the ``n`` input
    ports: ``power[mode, source]`` starts as the identity and every MZI
    mixes its two mode rows with one batched 2x2 matmul.  The batched
    matmul produces bit-identical powers to the reference's per-input
    ``t @ power[m:m+2]``, so the thresholded integer hop counts are
    exactly equal (asserted by the property tests).
    """
    n = mesh.n
    power = np.eye(n)
    count = np.zeros((n, n), dtype=int)
    for mzi in mesh.mzis:
        m = mzi.top_mode
        p0 = power[m]
        p1 = power[m + 1]
        active = (p0 + p1) > 1e-15
        if not active.any():
            continue
        t = np.abs(mzi.transfer) ** 2
        pairs = np.stack((p0, p1), axis=1)[..., None]  # (n, 2, 1)
        mixed = np.matmul(t, pairs)[..., 0]            # (n, 2)
        # The MZI hop count carried forward is the power-weighted depth.
        depth = np.maximum(np.where(p0 > 1e-15, count[m], 0),
                           np.where(p1 > 1e-15, count[m + 1], 0)) + 1
        new0 = np.where(active, mixed[:, 0], p0)
        new1 = np.where(active, mixed[:, 1], p1)
        count[m] = np.where(active & (new0 > 1e-15), depth, count[m])
        count[m + 1] = np.where(active & (new1 > 1e-15), depth,
                                count[m + 1])
        power[m] = new0
        power[m + 1] = new1
    return np.where(power > 1e-12, count, -1)


def _reference_trace_hops(mesh: MZIMesh) -> np.ndarray:
    """Per-input hop-tracing oracle (the pre-vectorization loop)."""
    n = mesh.n
    hops = -np.ones((n, n), dtype=int)
    for i in range(n):
        power = np.zeros(n)
        power[i] = 1.0
        count = np.zeros(n, dtype=int)
        for mzi in mesh.mzis:
            m = mzi.top_mode
            p_in = power[m] + power[m + 1]
            if p_in <= 1e-15:
                continue
            t = np.abs(mzi.transfer) ** 2
            new = t @ power[m:m + 2]
            # The MZI hop count carried forward is the power-weighted depth.
            depth = max(count[m] if power[m] > 1e-15 else 0,
                        count[m + 1] if power[m + 1] > 1e-15 else 0) + 1
            power[m:m + 2] = new
            count[m] = depth if new[0] > 1e-15 else count[m]
            count[m + 1] = depth if new[1] > 1e-15 else count[m + 1]
        for o in range(n):
            if power[o] > 1e-12:
                hops[o, i] = count[o]
    return hops


def _disjoint_batches(mzis: list[MZIState],
                      n: int) -> list[list[MZIState]]:
    """Group propagation-order MZIs into mode-disjoint batches.

    Prefers the physical column assignment (:func:`_assign_columns`
    guarantees strictly increasing columns along every shared mode, so
    applying whole columns in ascending order feeds every MZI exactly
    the operands the propagation-order loop would).  Hand-built meshes
    without a consistent assignment fall back to greedy segmentation:
    cut a new batch whenever an incoming MZI touches a mode already
    used in the current one.
    """
    last_col = [-1] * n
    by_col: dict[int, list[MZIState]] = {}
    for mzi in mzis:
        col = mzi.column
        m = mzi.top_mode
        if col < 0 or col <= last_col[m] or col <= last_col[m + 1]:
            break  # inconsistent columns: fall back to segmentation
        last_col[m] = last_col[m + 1] = col
        by_col.setdefault(col, []).append(mzi)
    else:
        return [by_col[col] for col in sorted(by_col)]
    batches: list[list[MZIState]] = []
    current: list[MZIState] = []
    used: set[int] = set()
    for mzi in mzis:
        m = mzi.top_mode
        if m in used or m + 1 in used:
            batches.append(current)
            current = []
            used = set()
        current.append(mzi)
        used.add(m)
        used.add(m + 1)
    if current:
        batches.append(current)
    return batches


def _assign_columns(mzis: list[MZIState], n: int) -> list[MZIState]:
    """Greedily pack MZIs (in propagation order) into physical columns."""
    mode_free_at = [0] * n  # earliest column each mode is free
    placed: list[MZIState] = []
    for mzi in mzis:
        m = mzi.top_mode
        col = max(mode_free_at[m], mode_free_at[m + 1])
        placed.append(MZIState(m, mzi.theta, mzi.phi, col))
        mode_free_at[m] = col + 1
        mode_free_at[m + 1] = col + 1
    return placed


def _right_null_phases(u: complex, v: complex) -> tuple[float, float]:
    """Phases nulling ``u e^{-j phi} sin + v cos`` (right-multiplication)."""
    if abs(u) < _NULL_TOL and abs(v) < _NULL_TOL:
        return 0.0, 0.0
    if abs(u) < _NULL_TOL:
        return math.pi, 0.0
    phi = -cmath.phase(-v / u) if abs(v) >= _NULL_TOL else 0.0
    theta = 2.0 * math.atan(abs(v) / abs(u))
    return theta, phi


def _left_null_phases(u: complex, v: complex) -> tuple[float, float]:
    """Phases nulling ``e^{j phi} cos u - sin v`` (left-multiplication)."""
    if abs(u) < _NULL_TOL and abs(v) < _NULL_TOL:
        return 0.0, 0.0
    if abs(v) < _NULL_TOL:
        return math.pi, 0.0
    phi = cmath.phase(v / u) if abs(u) >= _NULL_TOL else 0.0
    theta = 2.0 * math.atan(abs(u) / abs(v))
    return theta, phi


def _apply_right_dagger(u_mat: np.ndarray, m: int, theta: float,
                        phi: float) -> None:
    """In-place ``u_mat <- u_mat @ T^dag`` on columns ``(m, m+1)``."""
    t_dag = mzi_transfer(theta, phi).conj().T
    u_mat[:, m:m + 2] = u_mat[:, m:m + 2] @ t_dag


def _apply_left(u_mat: np.ndarray, m: int, theta: float, phi: float) -> None:
    """In-place ``u_mat <- T @ u_mat`` on rows ``(m, m+1)``."""
    t = mzi_transfer(theta, phi)
    u_mat[m:m + 2, :] = t @ u_mat[m:m + 2, :]


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Check unitarity: ``U^dag U == I`` within ``tol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    n = matrix.shape[0]
    return bool(np.allclose(matrix.conj().T @ matrix, np.eye(n), atol=tol))


def decompose(unitary: np.ndarray, tol: float = 1e-9) -> MZIMesh:
    """Factor ``unitary`` into a rectangular MZI mesh program.

    Returns an :class:`MZIMesh` whose :meth:`~MZIMesh.matrix` reproduces the
    input to machine precision.  Raises :class:`DecompositionError` when the
    input is not unitary.
    """
    u = np.array(unitary, dtype=complex)
    if not is_unitary(u, tol):
        raise DecompositionError("input matrix is not unitary")
    n = u.shape[0]
    if n == 1:
        mesh = MZIMesh(n=1)
        mesh.output_phases = np.array([u[0, 0]], dtype=complex)
        return mesh

    left_ops: list[tuple[int, float, float]] = []   # (mode, theta, phi)
    right_ops: list[tuple[int, float, float]] = []

    for diag in range(n - 1):
        if diag % 2 == 0:
            # Null along the diagonal from the right: U <- U @ T^dag.
            for j in range(diag + 1):
                row, col = n - 1 - j, diag - j
                theta, phi = _right_null_phases(u[row, col], u[row, col + 1])
                _apply_right_dagger(u, col, theta, phi)
                u[row, col] = 0.0
                right_ops.append((col, theta, phi))
        else:
            # Null along the diagonal from the left: U <- T @ U.
            for j in range(diag + 1):
                row, col = n - 1 - diag + j, j
                m = row - 1
                theta, phi = _left_null_phases(u[m, col], u[row, col])
                _apply_left(u, m, theta, phi)
                u[row, col] = 0.0
                left_ops.append((m, theta, phi))

    diag_phases = np.diag(u).copy()
    if not np.allclose(np.abs(diag_phases), 1.0, atol=1e-6):
        raise DecompositionError(
            "reduction did not terminate in a diagonal unitary; "
            "input was probably not unitary enough")

    # U = T^dag_L1 ... T^dag_Lk  D  T_Rm ... T_R1.  Commute each daggered
    # left factor through D (innermost, i.e. last-recorded, first).
    commuted: list[tuple[int, float, float]] = []
    for m, theta, phi in reversed(left_ops):
        d1, d2 = diag_phases[m], diag_phases[m + 1]
        phi_new = cmath.phase(d1 * d2.conjugate())
        e_theta = cmath.exp(1j * theta)
        diag_phases[m] = -e_theta * cmath.exp(-1j * phi) * d2
        diag_phases[m + 1] = -e_theta * d2
        commuted.append((m, theta, phi_new))
    commuted.reverse()

    # U = D' . T'_L1 ... T'_Lk . T_Rm ... T_R1: the product applies the
    # rightmost factor to the input first, so propagation order is the
    # reversed factor list.
    factor_order = commuted + list(reversed(right_ops))
    propagation = [MZIState(m, theta, phi)
                   for m, theta, phi in reversed(factor_order)]
    mesh = MZIMesh(n=n, mzis=_assign_columns(propagation, n))
    mesh.output_phases = diag_phases
    return mesh


def random_unitary(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Draw a Haar-random ``n x n`` unitary (QR of a complex Ginibre matrix)."""
    rng = rng or np.random.default_rng()
    z = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    q, r = np.linalg.qr(z)
    # Normalize phases so the distribution is Haar.
    d = np.diag(r)
    return q * (d / np.abs(d))
