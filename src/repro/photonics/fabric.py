"""The Flumen photonic fabric (Section 3.1.2, Figure 5).

An ``N``-input unitary MZIM augmented with a vertical column of ``N``
attenuating MZIs.  The fabric serves two roles:

* **Communication** — the unitary mesh realizes point-to-point, multicast and
  broadcast patterns; the attenuator column equalizes the per-path optical
  loss spread so every receiver sees the same power for the same modulated
  value.
* **Computation** — placing a row of MZIs into the bar state partitions the
  mesh; a partition of ``K`` contiguous ports, together with its slice of
  the attenuator column, functions as a ``K``-input SVD MZIM.  An ``N``-input
  fabric splits evenly into two ``N/2``-input SVD MZIMs when ``N`` is
  divisible by 4.

Partitions are contiguous port ranges that tile ``[0, N)``.  Communication
and computation proceed concurrently in different partitions; the scheduler
(:mod:`repro.core.scheduler`) decides when partitions are created/destroyed.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.config import DeviceParams, linear_to_db
from repro.obs import NULL_OBS, Obs
from repro.photonics.clements import MZIMesh
from repro.photonics.devices import attenuator_theta
from repro.photonics.routing import (
    RoutingError,
    program_gather,
    program_multicast,
    program_point_to_point,
)
from repro.photonics.svd import SVDProgram, program_svd

#: Assumed physical pitch of one mesh column, in centimetres.  An MZI with
#: thermal isolation trenches is ~300 um long (Table 2 sources).
COLUMN_PITCH_CM = 0.03


class PartitionKind(enum.Enum):
    COMMUNICATION = "communication"
    COMPUTE = "compute"


@dataclass
class Partition:
    """A contiguous port range ``[lo, hi)`` with a single active role."""

    lo: int
    hi: int
    kind: PartitionKind
    #: Communication partitions: the programmed sub-mesh (or None when idle).
    comm_mesh: MZIMesh | None = None
    #: Active src->dst pairs (local port numbering) in a comm partition.
    comm_pairs: dict[int, int] = field(default_factory=dict)
    #: Compute partitions: the programmed SVD circuit.
    svd: SVDProgram | None = None

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def contains(self, port: int) -> bool:
        return self.lo <= port < self.hi


class FabricError(RuntimeError):
    """Raised on invalid partition or configuration operations."""


class FlumenFabric:
    """An ``N``-port Flumen MZIM with dynamic partitioning.

    Parameters
    ----------
    n:
        Port count.  Must be even and at least 4; divisibility by 4 is
        required only by :meth:`split_even`.
    devices:
        Optical device parameters for loss accounting (defaults to Table 2).
    """

    def __init__(self, n: int, devices: DeviceParams | None = None,
                 obs: Obs = NULL_OBS,
                 mesh_architecture: str = "clements") -> None:
        if n < 4 or n % 2:
            raise ValueError(f"fabric needs an even port count >= 4, got {n}")
        self.n = n
        self.devices = devices or DeviceParams()
        #: Mesh arrangement (registry name) compute partitions program
        #: their SVD circuits with.  Communication routing stays on the
        #: physical crossbar regardless.
        self.mesh_architecture = mesh_architecture
        #: Linear power transmission programmed into each attenuating MZI.
        self.attenuator_transmission = np.ones(n)
        self.partitions: list[Partition] = [
            Partition(0, n, PartitionKind.COMMUNICATION)]
        #: Seconds spent reprogramming phases since construction.
        self.reconfiguration_time_s = 0.0
        #: Number of phase reprogramming events, by role.
        self.comm_configs = 0
        self.compute_configs = 0
        self.obs = obs
        #: Deterministic event clock.  The fabric itself is untimed; a
        #: driver (e.g. the scheduler's fabric mirror) points this at
        #: its simulation-cycle counter so reprogramming events land on
        #: the shared trace timeline.  Unset, events use the config
        #: ordinal.
        self.obs_clock: Callable[[], int] | None = None
        self._m_phase_writes = obs.metrics.counter("photonics.phase_writes")
        self._m_comm_configs = obs.metrics.counter("photonics.comm_configs")
        self._m_compute_configs = obs.metrics.counter(
            "photonics.compute_configs")

    def _obs_cycle(self) -> int:
        if self.obs_clock is not None:
            return int(self.obs_clock())
        return self.comm_configs + self.compute_configs

    def _emit_config_event(self, name: str, phase_writes: int,
                           **args: object) -> None:
        self._m_phase_writes.inc(phase_writes)
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "photonics", "fabric", name, self._obs_cycle(),
                phase_writes=phase_writes, **args)

    # ------------------------------------------------------------------
    # structure / inventory
    # ------------------------------------------------------------------

    @property
    def num_mesh_mzis(self) -> int:
        """MZIs in the unitary mesh: N(N-1)/2."""
        return self.n * (self.n - 1) // 2

    @property
    def num_attenuator_mzis(self) -> int:
        """Attenuating MZIs in the added column: N."""
        return self.n

    @property
    def num_mzis(self) -> int:
        """Total MZI count of the Flumen fabric."""
        return self.num_mesh_mzis + self.num_attenuator_mzis

    @property
    def mesh_columns(self) -> int:
        """Physical mesh depth: N unitary columns + 1 attenuator column."""
        return self.n + 1

    def partition_of(self, port: int) -> Partition:
        """The partition currently containing ``port``."""
        for part in self.partitions:
            if part.contains(port):
                return part
        raise FabricError(f"port {port} outside fabric of size {self.n}")

    def barrier_rows(self) -> list[int]:
        """Port boundaries where a bar-state reflector row is active."""
        return [part.hi for part in self.partitions[:-1]]

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------

    def split(self, lo: int, hi: int, matrix: np.ndarray | None = None
              ) -> Partition:
        """Carve ``[lo, hi)`` out of a communication partition for compute.

        ``matrix`` (shape ``(hi-lo, hi-lo)``) programs the partition's SVD
        circuit immediately; pass ``None`` to program later with
        :meth:`program_compute`.  Charges the 6 ns compute programming
        overhead (Section 4.1).
        """
        if hi - lo < 2 or (hi - lo) % 2:
            raise FabricError(
                f"compute partition must have even size >= 2, got [{lo},{hi})")
        host = self.partition_of(lo)
        if host.kind is not PartitionKind.COMMUNICATION:
            raise FabricError(f"[{lo},{hi}) overlaps a compute partition")
        if hi > host.hi:
            raise FabricError(
                f"[{lo},{hi}) crosses partition boundary at {host.hi}")
        if any(lo <= dst + host.lo < hi or lo <= src + host.lo < hi
               for src, dst in host.comm_pairs.items()):
            # Pairs using ports inside the new partition are torn down; the
            # control unit re-requests them (handled by the scheduler).
            host.comm_pairs = {
                s: d for s, d in host.comm_pairs.items()
                if not (lo <= s + host.lo < hi or lo <= d + host.lo < hi)}
            host.comm_mesh = None

        new_parts: list[Partition] = []
        for part in self.partitions:
            if part is not host:
                new_parts.append(part)
                continue
            if host.lo < lo:
                new_parts.append(Partition(host.lo, lo,
                                           PartitionKind.COMMUNICATION))
            compute = Partition(lo, hi, PartitionKind.COMPUTE)
            new_parts.append(compute)
            if hi < host.hi:
                new_parts.append(Partition(hi, host.hi,
                                           PartitionKind.COMMUNICATION))
        new_parts.sort(key=lambda p: p.lo)
        self.partitions = new_parts
        self._emit_config_event("partition_split", 0, lo=lo, hi=hi)
        if matrix is not None:
            self.program_compute(compute, matrix)
        return compute

    def split_even(self) -> tuple[Partition, Partition]:
        """Split the whole fabric into two N/2-input SVD MZIMs (Figure 5)."""
        if self.n % 4:
            raise FabricError(
                f"even split into two SVD MZIMs needs N % 4 == 0, N={self.n}")
        if len(self.partitions) != 1:
            raise FabricError("fabric already partitioned")
        half = self.n // 2
        top = self.split(0, half)
        bottom = self.split(half, self.n)
        return top, bottom

    def release(self, partition: Partition) -> None:
        """Return a compute partition to communication and merge neighbours."""
        if partition not in self.partitions:
            raise FabricError("unknown partition")
        partition.kind = PartitionKind.COMMUNICATION
        partition.svd = None
        partition.comm_mesh = None
        partition.comm_pairs = {}
        merged: list[Partition] = []
        for part in self.partitions:
            if (merged
                    and merged[-1].kind is PartitionKind.COMMUNICATION
                    and part.kind is PartitionKind.COMMUNICATION):
                prev = merged[-1]
                merged[-1] = Partition(prev.lo, part.hi,
                                       PartitionKind.COMMUNICATION)
            else:
                merged.append(part)
        self.partitions = merged
        self._emit_config_event("partition_release", 0,
                                lo=partition.lo, hi=partition.hi)

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------

    def program_compute(self, partition: Partition,
                        matrix: np.ndarray) -> SVDProgram:
        """Program a compute partition's SVD circuit for ``matrix``."""
        if partition.kind is not PartitionKind.COMPUTE:
            raise FabricError("partition is not a compute partition")
        matrix = np.asarray(matrix)
        if matrix.shape != (partition.size, partition.size):
            raise FabricError(
                f"matrix shape {matrix.shape} does not match partition size "
                f"{partition.size}")
        partition.svd = program_svd(matrix,
                                    architecture=self.mesh_architecture)
        self.reconfiguration_time_s += self.devices.mzi.compute_program_time_s
        self.compute_configs += 1
        self._m_compute_configs.inc()
        self._emit_config_event(
            "program_compute", partition.svd.num_mzis,
            lo=partition.lo, hi=partition.hi, size=partition.size)
        return partition.svd

    def configure_communication(self, pairs: Mapping[int, int]) -> None:
        """Program point-to-point links (global port numbers).

        Every pair must fall inside a single communication partition.
        Charges the 1 ns communication programming overhead per partition
        touched.
        """
        by_partition: dict[int, dict[int, int]] = {}
        for src, dst in pairs.items():
            part = self.partition_of(src)
            if part.kind is not PartitionKind.COMPUTE:
                if not part.contains(dst):
                    raise RoutingError(
                        f"pair {src}->{dst} crosses the partition barrier at "
                        f"{part.hi}")
                by_partition.setdefault(part.lo, {})[src - part.lo] = \
                    dst - part.lo
            else:
                raise RoutingError(
                    f"source {src} is inside a compute partition")
        for part in self.partitions:
            if part.kind is not PartitionKind.COMMUNICATION:
                continue
            local = by_partition.get(part.lo, {})
            part.comm_pairs = dict(local)
            part.comm_mesh = program_point_to_point(local, part.size)
            self.reconfiguration_time_s += \
                self.devices.mzi.comm_program_time_s
            self.comm_configs += 1
            self._m_comm_configs.inc()
            self._emit_config_event(
                "configure_comm", part.comm_mesh.num_mzis,
                lo=part.lo, hi=part.hi, pairs=len(local))
        self.equalize_attenuators()

    def configure_multicast(self, source: int, destinations: list[int]
                            ) -> None:
        """Program a multicast tree inside the source's partition."""
        part = self.partition_of(source)
        if part.kind is not PartitionKind.COMMUNICATION:
            raise RoutingError(f"source {source} is inside a compute partition")
        for dst in destinations:
            if not part.contains(dst):
                raise RoutingError(
                    f"destination {dst} crosses the partition barrier")
        part.comm_pairs = {source - part.lo: dst - part.lo
                           for dst in destinations[:1]}
        part.comm_mesh = program_multicast(
            source - part.lo, [d - part.lo for d in destinations], part.size)
        self.reconfiguration_time_s += self.devices.mzi.comm_program_time_s
        self.comm_configs += 1
        self._m_comm_configs.inc()
        self._emit_config_event(
            "configure_multicast", part.comm_mesh.num_mzis,
            source=source, destinations=len(destinations))

    def configure_gather(self, partition: Partition,
                         destination: int) -> None:
        """Configure a compute partition for many-to-one result return."""
        if not partition.contains(destination):
            raise FabricError("gather destination outside partition")
        partition.comm_mesh = program_gather(
            destination - partition.lo, range(partition.size), partition.size)
        self.reconfiguration_time_s += self.devices.mzi.comm_program_time_s
        self.comm_configs += 1
        self._m_comm_configs.inc()
        self._emit_config_event(
            "configure_gather", partition.comm_mesh.num_mzis,
            lo=partition.lo, hi=partition.hi, destination=destination)

    # ------------------------------------------------------------------
    # optical accounting
    # ------------------------------------------------------------------

    def path_mzi_count(self, src: int, dst: int) -> int:
        """MZIs traversed on the configured path ``src -> dst``.

        Includes the attenuating MZI at the output.  Raises
        :class:`FabricError` when no configured path connects the pair.
        """
        part = self.partition_of(src)
        if not part.contains(dst) or part.comm_mesh is None:
            raise FabricError(f"no configured path {src}->{dst}")
        hops = part.comm_mesh.mzis_per_path()
        count = hops[dst - part.lo, src - part.lo]
        if count < 0:
            raise FabricError(f"no optical power flows {src}->{dst}")
        return int(count) + 1  # + the attenuator column

    def path_loss_db(self, src: int, dst: int) -> float:
        """Optical loss of the configured path, including the attenuator."""
        mzis = self.path_mzi_count(src, dst)
        mzi_loss = mzis * self.devices.mzi.insertion_loss_db
        waveguide_cm = self.mesh_columns * COLUMN_PITCH_CM
        wg_loss = waveguide_cm * self.devices.waveguide.straight_loss_db_per_cm
        att_extra = linear_to_db(
            max(self.attenuator_transmission[dst], 1e-12))
        return mzi_loss + wg_loss + att_extra

    def equalize_attenuators(self) -> None:
        """Equalize per-destination loss within each comm partition.

        Destinations on shorter (lower-loss) paths get extra attenuation so
        all receivers observe the worst-case path loss — the role of the
        added attenuator column (Section 3.1.2).
        """
        self.attenuator_transmission = np.ones(self.n)
        for part in self.partitions:
            if part.kind is not PartitionKind.COMMUNICATION \
                    or part.comm_mesh is None or not part.comm_pairs:
                continue
            hops = part.comm_mesh.mzis_per_path()
            per_mzi = self.devices.mzi.insertion_loss_db
            losses = {}
            for src, dst in part.comm_pairs.items():
                h = hops[dst, src]
                if h >= 0:
                    losses[dst] = h * per_mzi
            if not losses:
                continue
            worst = max(losses.values())
            for dst, loss in losses.items():
                extra_db = worst - loss
                self.attenuator_transmission[part.lo + dst] = \
                    10.0 ** (-extra_db / 10.0)

    def attenuator_thetas(self) -> np.ndarray:
        """theta programming of the attenuator column."""
        return np.array([attenuator_theta(t)
                         for t in self.attenuator_transmission])

    def worst_case_loss_db(self, wavelengths: int = 1) -> float:
        """Worst path loss across the whole fabric for laser sizing.

        Conservatively assumes a path through every mesh column plus the
        endpoint MRR mux/demux chains (``2 * wavelengths`` thru-ring passes
        and one drop) — the ``k/2 + 2p`` scaling of Section 5.2.
        """
        mzi_loss = self.mesh_columns * self.devices.mzi.insertion_loss_db
        wg_loss = (self.mesh_columns * COLUMN_PITCH_CM
                   * self.devices.waveguide.straight_loss_db_per_cm)
        ring_loss = (2 * wavelengths * self.devices.mrr.thru_loss_db
                     + self.devices.mrr.drop_loss_db)
        return mzi_loss + wg_loss + ring_loss

    # ------------------------------------------------------------------
    # end-to-end optical simulation
    # ------------------------------------------------------------------

    def propagate_comm(self, fields: np.ndarray) -> np.ndarray:
        """Propagate E-fields through every communication partition.

        Compute-partition ports pass zeros (their light stays inside the
        partition).  Attenuator column and per-MZI insertion loss applied.
        """
        fields = np.asarray(fields, dtype=complex)
        if fields.shape[0] != self.n:
            raise ValueError(f"expected {self.n} fields, got {fields.shape}")
        out = np.zeros_like(fields)
        amp_per_mzi = np.sqrt(
            10.0 ** (-self.devices.mzi.insertion_loss_db / 10.0))
        for part in self.partitions:
            if part.kind is not PartitionKind.COMMUNICATION \
                    or part.comm_mesh is None:
                continue
            seg = part.comm_mesh.propagate(fields[part.lo:part.hi, ...])
            hops = part.comm_mesh.mzis_per_path()
            # Apply worst-branch per-output loss (exact for crossbar states).
            max_hops = np.maximum(hops.max(axis=1), 0)
            loss = amp_per_mzi ** (max_hops + 1)  # + attenuator column
            att = np.sqrt(self.attenuator_transmission[part.lo:part.hi])
            scale = loss * att
            if seg.ndim > 1:
                scale = scale[:, np.newaxis]
            out[part.lo:part.hi, ...] = seg * scale
        return out

    def compute_partitions(self) -> list[Partition]:
        """All currently active compute partitions."""
        return [p for p in self.partitions
                if p.kind is PartitionKind.COMPUTE]

    def communication_ports(self) -> list[int]:
        """Ports currently available for communication."""
        return list(itertools.chain.from_iterable(
            range(p.lo, p.hi) for p in self.partitions
            if p.kind is PartitionKind.COMMUNICATION))
