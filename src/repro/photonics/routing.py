"""Communication mapping onto the Flumen MZIM (Section 3.2).

One-to-one patterns are unitary *permutation* matrices; decomposing them with
Clements yields MZIs purely in cross (theta=0) / bar (theta=pi) states, which
is exactly the paper's "sequence of many reflections and transmissions".
One-to-many patterns use intermediate splitting states; the broadcast tree of
Figure 6(b) delivers equal power ``1/d`` to each of ``d`` destinations.

The module also completes *partial* permutations (only some endpoints are
communicating at a given cycle) and builds gather (many-to-one) programs used
when a compute partition returns MVM results (Section 3.4).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np

from repro.photonics.clements import MZIMesh, decompose
from repro.photonics.devices import BAR_THETA, CROSS_THETA


class RoutingError(ValueError):
    """Raised for conflicting or out-of-range communication requests."""


def permutation_matrix(targets: Iterable[int]) -> np.ndarray:
    """Build the unitary adjacency matrix of a one-to-one pattern.

    ``targets[i]`` is the output port receiving input ``i``'s signal; the
    returned matrix ``P`` satisfies ``P[targets[i], i] == 1``.
    """
    targets = list(targets)
    n = len(targets)
    if sorted(targets) != list(range(n)):
        raise RoutingError(f"not a permutation of 0..{n - 1}: {targets}")
    p = np.zeros((n, n))
    for src, dst in enumerate(targets):
        p[dst, src] = 1.0
    return p


def complete_partial_permutation(pairs: Mapping[int, int], n: int) -> list[int]:
    """Extend src->dst pairs to a full permutation on ``n`` ports.

    Unrequested inputs are wired to the remaining free outputs, preferring
    the same-numbered output (so idle endpoints see their own loopback and
    no stray power lands on an active receiver).
    """
    targets = [-1] * n
    used_dsts: set[int] = set()
    for src, dst in pairs.items():
        if not (0 <= src < n and 0 <= dst < n):
            raise RoutingError(f"pair {src}->{dst} out of range for n={n}")
        if targets[src] != -1:
            raise RoutingError(f"source {src} requested twice")
        if dst in used_dsts:
            raise RoutingError(f"destination {dst} requested twice")
        targets[src] = dst
        used_dsts.add(dst)
    free_dsts = [d for d in range(n) if d not in used_dsts]
    for src in range(n):
        if targets[src] != -1:
            continue
        if src in free_dsts:
            targets[src] = src
            free_dsts.remove(src)
        else:
            targets[src] = free_dsts.pop(0)
    return targets


def program_point_to_point(pairs: Mapping[int, int], n: int) -> MZIMesh:
    """Program a mesh for a (possibly partial) set of one-to-one links.

    All MZIs land in cross/bar states — asserted, because this is the
    physical property that makes runtime communication programming cheap
    (1 ns, Section 4.1).
    """
    targets = complete_partial_permutation(pairs, n)
    mesh = decompose(permutation_matrix(targets))
    assert is_crossbar_program(mesh), "permutation produced splitting states"
    return mesh


def is_crossbar_program(mesh: MZIMesh, tol: float = 1e-9) -> bool:
    """True when every MZI is in a pure cross or bar state."""
    return all(
        min(abs(mzi.theta - CROSS_THETA), abs(mzi.theta - BAR_THETA)) <= tol
        for mzi in mesh.mzis)


def multicast_unitary(source: int, destinations: Iterable[int],
                      n: int) -> np.ndarray:
    """Unitary whose ``source`` column splits power equally to destinations.

    Column ``source`` carries amplitude ``1/sqrt(d)`` at each of the ``d``
    destination rows (output power ``1/d`` each, cf. Figure 6(b)).  The
    remaining columns are completed orthonormally (Gram-Schmidt over the
    standard basis), so non-participant inputs leak no power onto the
    multicast destinations.
    """
    dests = sorted(set(destinations))
    if not dests:
        raise RoutingError("multicast needs at least one destination")
    if not 0 <= source < n:
        raise RoutingError(f"source {source} out of range for n={n}")
    for d in dests:
        if not 0 <= d < n:
            raise RoutingError(f"destination {d} out of range for n={n}")
    amp = 1.0 / math.sqrt(len(dests))
    first = np.zeros(n)
    first[dests] = amp

    columns = [first]
    for k in range(n):
        candidate = np.zeros(n)
        candidate[k] = 1.0
        for col in columns:
            candidate = candidate - np.dot(col, candidate) * col
        norm = np.linalg.norm(candidate)
        if norm > 1e-9:
            columns.append(candidate / norm)
        if len(columns) == n:
            break
    basis = np.column_stack(columns)
    # Place the multicast column at index ``source``; fill the others in
    # free-column order.
    u = np.zeros((n, n))
    u[:, source] = basis[:, 0]
    others = [c for c in range(n) if c != source]
    for idx, col in enumerate(others):
        u[:, col] = basis[:, idx + 1]
    return u


def program_multicast(source: int, destinations: Iterable[int],
                      n: int) -> MZIMesh:
    """Program a mesh delivering equal power from ``source`` to each dest."""
    return decompose(multicast_unitary(source, destinations, n))


def program_broadcast(source: int, n: int) -> MZIMesh:
    """Program a full broadcast: ``source`` reaches every output at ``1/n``."""
    return program_multicast(source, range(n), n)


def program_gather(destination: int, sources: Iterable[int],
                   n: int) -> MZIMesh:
    """Program a many-to-one pattern (compute-result return, Section 3.4).

    The gather is the adjoint of the corresponding multicast: coherent
    combining of the source fields onto one output port.
    """
    u = multicast_unitary(destination, sources, n)
    return decompose(u.T.conj())


def received_power(mesh: MZIMesh, source: int) -> np.ndarray:
    """Ideal (lossless) power observed at each output for 1 W on ``source``."""
    fields = np.zeros(mesh.n, dtype=complex)
    fields[source] = 1.0
    return np.abs(mesh.propagate(fields)) ** 2
