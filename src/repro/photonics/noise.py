"""Analog precision model: quantization and detector noise (Section 3.1.1).

Flumen performs "8-bit equivalent analog computation" (Table 1).  This
module provides:

* symmetric uniform quantizers for inputs/weights (the digital side of the
  DAC/ADC boundary),
* a detector noise model combining shot noise, laser relative intensity
  noise (RIN) and TIA thermal noise, from the Table 2 device parameters,
* :func:`effective_bits` — the ENOB the analog chain sustains at a given
  received optical power, and
* :class:`AnalogMVM` — a noisy forward operator wrapping an
  :class:`~repro.photonics.svd.SVDProgram`, used by tests and examples to
  check end-to-end numerical fidelity against float references.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import DeviceParams
from repro.photonics.svd import SVDProgram

#: Electron charge, coulombs.
_Q = 1.602176634e-19
#: Boltzmann constant, J/K.
_KB = 1.380649e-23
#: TIA input-referred noise temperature proxy, kelvin.
_T = 300.0
#: TIA effective feedback resistance, ohms (typical 10 Gb/s design).
_R_TIA = 5.0e3


def quantize(values: np.ndarray, bits: int,
             full_scale: float | None = None) -> np.ndarray:
    """Symmetric uniform quantization to ``bits`` (mid-rise, clipped).

    ``full_scale`` defaults to the max absolute input, so the quantizer
    always uses its full range — matching a DAC driven after digital
    pre-scaling.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    values = np.asarray(values, dtype=float)
    scale = full_scale if full_scale is not None else \
        float(np.max(np.abs(values))) if values.size else 1.0
    if scale == 0.0:
        return np.zeros_like(values)
    levels = 2 ** (bits - 1) - 1
    q = np.round(np.clip(values / scale, -1.0, 1.0) * levels) / levels
    return q * scale


def quantization_snr_db(bits: int) -> float:
    """Ideal quantizer SNR: 6.02 * bits + 1.76 dB."""
    return 6.02 * bits + 1.76


def snr_to_enob(snr_db: float) -> float:
    """Effective number of bits for a given SNR."""
    return (snr_db - 1.76) / 6.02


@dataclass
class DetectorNoiseModel:
    """Photocurrent noise at the receiver for one analog symbol."""

    devices: DeviceParams = field(default_factory=DeviceParams)
    bandwidth_hz: float = 5.0e9  # compute input modulation rate

    def noise_current_std_a(self, optical_power_w: float) -> float:
        """RMS noise current for a given received optical power."""
        d = self.devices
        photocurrent = d.photodiode.responsivity_a_per_w * optical_power_w
        shot = 2.0 * _Q * (photocurrent + d.photodiode.dark_current_a) \
            * self.bandwidth_hz
        rin_linear = 10.0 ** (d.laser.rin_db_per_hz / 10.0)
        rin = rin_linear * photocurrent ** 2 * self.bandwidth_hz
        thermal = 4.0 * _KB * _T * self.bandwidth_hz / _R_TIA
        return math.sqrt(shot + rin + thermal)

    def snr_db(self, optical_power_w: float) -> float:
        """Electrical SNR of a full-scale symbol at the given power."""
        signal = self.devices.photodiode.responsivity_a_per_w \
            * optical_power_w
        noise = self.noise_current_std_a(optical_power_w)
        if noise <= 0.0:
            return math.inf
        return 20.0 * math.log10(signal / noise)


def effective_bits(optical_power_w: float,
                   devices: DeviceParams | None = None,
                   bandwidth_hz: float = 5.0e9) -> float:
    """ENOB the analog detection chain sustains at ``optical_power_w``."""
    model = DetectorNoiseModel(devices or DeviceParams(), bandwidth_hz)
    return snr_to_enob(model.snr_db(optical_power_w))


def power_for_bits(bits: float, devices: DeviceParams | None = None,
                   bandwidth_hz: float = 5.0e9) -> float:
    """Received optical power (W) needed for a target ENOB (bisection).

    Returns ``math.inf`` when the target is unreachable at any power: the
    laser RIN noise scales with signal power squared, so SNR saturates at
    ``1 / (RIN * bandwidth)`` — at 5 GHz and -140 dBc/Hz that caps ENOB
    near 6.9, which is why analog designs average samples or reduce
    bandwidth to reach the paper's 8-bit equivalence.
    """
    lo, hi = 1e-9, 1.0
    if effective_bits(hi, devices, bandwidth_hz) < bits:
        return math.inf
    for _ in range(80):
        mid = math.sqrt(lo * hi)
        if effective_bits(mid, devices, bandwidth_hz) < bits:
            lo = mid
        else:
            hi = mid
    return hi


def perturb_mesh_phases(mesh, sigma_rad: float,
                        rng: np.random.Generator | None = None):
    """Return a mesh copy with Gaussian phase drift on every MZI.

    Models thermal drift / crosstalk on the phase shifters.  The paper
    argues MZIs tolerate thermal effects better than MRRs (Section 6);
    this function lets experiments quantify how much drift the computation
    survives.
    """
    from repro.photonics.clements import MZIMesh

    rng = rng or np.random.default_rng(0)
    perturbed = [
        mzi.with_phases(
            float(np.clip(mzi.theta + rng.normal(0.0, sigma_rad),
                          0.0, math.pi)),
            mzi.phi + rng.normal(0.0, sigma_rad))
        for mzi in mesh.mzis
    ]
    out = MZIMesh(n=mesh.n, mzis=perturbed)
    out.output_phases = mesh.output_phases.copy()
    return out


def drift_tolerance(matrix: np.ndarray, sigmas_rad,
                    seed: int = 0) -> dict[float, float]:
    """Relative matrix error versus per-MZI phase drift (radians RMS)."""
    from repro.photonics.svd import SVDProgram, program_svd

    program = program_svd(np.asarray(matrix, dtype=float))
    scale = float(np.max(np.abs(matrix))) or 1.0
    rng = np.random.default_rng(seed)
    out: dict[float, float] = {}
    for sigma in sigmas_rad:
        drifted = SVDProgram(
            n=program.n,
            v_dagger_mesh=perturb_mesh_phases(
                program.v_dagger_mesh, sigma, rng),
            u_mesh=perturb_mesh_phases(program.u_mesh, sigma, rng),
            sigma=program.sigma,
            scale=program.scale,
        )
        approx = (drifted.scale * drifted.matrix()).real
        out[sigma] = float(np.max(np.abs(approx - matrix))) / scale
    return out


def quantize_phase(value: float, bits: int, span: float) -> float:
    """Quantize a phase to ``bits`` DAC resolution over ``[0, span]``."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    levels = 2 ** bits - 1
    step = span / levels
    return round(value / step) * step


def quantize_mesh_phases(mesh, bits: int):
    """Return a copy of an MZI mesh with DAC-quantized phases.

    Models the finite resolution of the phase-shifter DACs (Section 3.1.1:
    computation needs "higher accuracy modulation" — this function is how
    the repo quantifies that).  theta spans [0, pi], phi spans [0, 2*pi);
    output phases are re-quantized in angle.
    """
    import cmath

    from repro.photonics.clements import MZIMesh

    quantized = [
        mzi.with_phases(quantize_phase(mzi.theta, bits, math.pi),
                        quantize_phase(mzi.phi % (2 * math.pi), bits,
                                       2 * math.pi))
        for mzi in mesh.mzis
    ]
    out = MZIMesh(n=mesh.n, mzis=quantized)
    out.output_phases = np.array([
        cmath.exp(1j * quantize_phase(
            cmath.phase(p) % (2 * math.pi), bits, 2 * math.pi))
        for p in mesh.output_phases])
    return out


def quantize_svd_phases(program, bits: int):
    """DAC-quantize a full SVD MZIM program (both meshes + attenuators)."""
    from repro.photonics.svd import SVDProgram

    sigma_theta = [quantize_phase(t, bits, math.pi)
                   for t in program.attenuator_thetas]
    sigma = np.array([math.sin(t / 2.0) for t in sigma_theta])
    return SVDProgram(
        n=program.n,
        v_dagger_mesh=quantize_mesh_phases(program.v_dagger_mesh, bits),
        u_mesh=quantize_mesh_phases(program.u_mesh, bits),
        sigma=sigma,
        scale=program.scale,
    )


def matrix_fidelity_vs_bits(matrix, bit_range) -> dict[int, float]:
    """Relative matrix error after phase quantization, per DAC bit depth.

    The ablation behind the paper's 6 ns "more accurate" compute
    programming: coarse DACs are fast but corrupt the implemented matrix.
    """
    from repro.photonics.svd import program_svd

    matrix = np.asarray(matrix, dtype=float)
    program = program_svd(matrix)
    scale = float(np.max(np.abs(matrix))) or 1.0
    out: dict[int, float] = {}
    for bits in bit_range:
        q = quantize_svd_phases(program, bits)
        approx = (q.scale * q.matrix()).real
        out[bits] = float(np.max(np.abs(approx - matrix))) / scale
    return out


def wdm_crosstalk_matrix(channels: int, crosstalk_db: float) -> np.ndarray:
    """Power-coupling matrix between adjacent WDM channels.

    A demux ring passes a fraction ``10^(-xt/10)`` of each neighbouring
    channel's power into the wrong detector.  Rows are receive channels;
    the matrix is applied to per-channel detected values.
    """
    if channels < 1:
        raise ValueError("need at least one channel")
    leak = 10.0 ** (-crosstalk_db / 10.0)
    m = np.eye(channels) * (1.0 - 2.0 * leak)
    for c in range(channels - 1):
        m[c, c + 1] += leak
        m[c + 1, c] += leak
    m[0, 0] += leak       # edge channels have one neighbour only
    m[-1, -1] += leak
    return m


@dataclass
class AnalogMVM:
    """Noisy analog matrix-vector multiply through an SVD MZIM.

    Inputs and weights are quantized to ``bits``; outputs pick up additive
    Gaussian noise scaled from the detector model at the configured
    received power, then are re-quantized by the ADC.  When a batch rides
    multiple WDM channels, adjacent channels leak into each other at
    ``crosstalk_db`` (30 dB default — 100 GHz-spaced rings; set ``None``
    to disable).
    """

    program: SVDProgram
    bits: int = 8
    received_power_w: float = 50.0e-6
    devices: DeviceParams = field(default_factory=DeviceParams)
    bandwidth_hz: float = 5.0e9
    crosstalk_db: float | None = 30.0
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))

    def __call__(self, vectors: np.ndarray) -> np.ndarray:
        """Compute ``M @ vectors`` through the analog chain."""
        vectors = np.asarray(vectors, dtype=float)
        scale_in = float(np.max(np.abs(vectors))) or 1.0
        q_in = quantize(vectors, self.bits, scale_in)
        ideal = self.program.propagate(q_in.astype(complex))
        # Analog outputs are detected as real amplitudes; the MZIM keeps
        # real matrices real up to a global phase.
        detected = ideal.real if np.allclose(ideal.imag, 0.0, atol=1e-9) \
            else np.abs(ideal) * np.sign(ideal.real + 1e-300)
        if self.crosstalk_db is not None and detected.ndim > 1 \
                and detected.shape[1] > 1:
            xt = wdm_crosstalk_matrix(detected.shape[1], self.crosstalk_db)
            detected = detected @ xt.T
        model = DetectorNoiseModel(self.devices, self.bandwidth_hz)
        snr_db = model.snr_db(self.received_power_w)
        # Detector noise is referred to the optical input full scale.
        noise_std = scale_in * 10.0 ** (-snr_db / 20.0)
        noisy = detected + self.rng.normal(0.0, noise_std, detected.shape)
        # The ADC range must cover the output's 2-norm bound: with
        # sigma <= 1, |b_i| <= ||a||_2 <= sqrt(N) * max|a| — a DCT's DC
        # term actually reaches it, so a tighter range would clip.
        adc_scale = scale_in * math.sqrt(self.program.n)
        adc_out = quantize(noisy, self.bits, adc_scale)
        return self.program.scale * adc_out

    def reference(self, vectors: np.ndarray) -> np.ndarray:
        """Float (noiseless, unquantized) reference product."""
        return self.program.scale * \
            self.program.propagate(np.asarray(vectors, dtype=complex)).real
