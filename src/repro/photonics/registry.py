"""Registry of mesh architectures (the photonic twin of ``noc/registry``).

Maps an architecture name to a factory ``(**kwargs) -> MeshArchitecture``.
The SVD programmer, the Flumen fabric, the calibration loop, the fault
campaign, the sweep tasks and the CLIs all resolve architectures here, so
adding a mesh arrangement is one :func:`register_mesh` call — no edits to
the decomposition call sites, the energy model, or the sweeps.

Each name may carry **two** factories: the per-MZI reference
implementation (the bit-identity *oracle*) and a columnized
``vectorized=True`` twin.  Dispatch prefers the vectorized factory when
one exists — callers are none the wiser — while
``mesh_factory(name, vectorized=False)`` always reaches the oracle,
which is how the equivalence suite pins the two implementations against
each other (the same split DESIGN.md §13 established for the NoP
kernels).

A :class:`MeshArchitecture` fixes the contract every fabric must
satisfy: decompose-to-mesh, exact ``matrix``/``propagate`` (vectorized
or oracle per the registration slot), hop tracing for per-path loss,
per-column metadata for :mod:`repro.photonics.batch` stacking, device
enumeration + fault domains for the injector, and depth/device-count
accounting for the energy model.

The three architectures register themselves below with lazy imports
(the factories import their decomposition module on first use), keeping
this module import-cycle-free and cheap to load.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.photonics.clements import MZIMesh, _reference_trace_hops


@dataclass(frozen=True)
class MeshArchitecture:
    """One mesh arrangement: decomposition, simulation, and accounting.

    Instances are stateless dispatch tables — the mesh *program* stays an
    :class:`~repro.photonics.clements.MZIMesh` (MZI states in propagation
    order plus the output phase screen), which every architecture shares;
    the architecture decides how a unitary is factored onto it, how the
    virtual columns map to physical hardware, and what the depth/device
    accounting of that hardware is.
    """

    name: str
    #: Vectorized (columnized) simulation when True; the per-MZI
    #: reference oracle when False.
    vectorized: bool
    #: ``(unitary, tol) -> MZIMesh`` in propagation order.
    decompose_fn: Callable[..., MZIMesh]
    #: Worst-case virtual mesh columns at size ``n``.
    depth_fn: Callable[[int], int]
    #: Physical MZI devices a size-``n`` unitary mesh occupies.
    device_count_fn: Callable[[int], int]
    #: Recirculation passes through the physical structure (1 for
    #: single-pass rectangles/triangles).
    passes_fn: Callable[[int], int]
    #: ``(mesh, index) -> tuple`` of virtual MZI indices sharing the
    #: physical device of ``index`` (None: devices map one-to-one).
    fault_domain_fn: Callable | None = None

    # -- decomposition & simulation ------------------------------------

    def decompose(self, unitary: np.ndarray, tol: float = 1e-9) -> MZIMesh:
        """Factor ``unitary`` into this architecture's mesh program."""
        return self.decompose_fn(unitary, tol)

    def matrix(self, mesh: MZIMesh) -> np.ndarray:
        """Exact reconstruction of the implemented unitary."""
        return mesh.matrix()

    def propagate(self, mesh: MZIMesh, fields: np.ndarray) -> np.ndarray:
        """Forward E-field propagation, vectorized or oracle per slot."""
        if self.vectorized:
            return mesh.propagate(fields)
        return mesh._reference_propagate(fields)

    def trace_hops(self, mesh: MZIMesh) -> np.ndarray:
        """Per-path MZI counts (``hops[out, in]``; -1 = unconnected)."""
        if self.vectorized:
            return mesh.mzis_per_path()
        return _reference_trace_hops(mesh)

    def column_metadata(self, mesh: MZIMesh) -> tuple:
        """Structure signature for fleet stacking (``photonics.batch``).

        Meshes with equal signatures share a stacked kernel pass.
        """
        from repro.photonics.batch import plan_signature
        return plan_signature(mesh)

    # -- fault injection -----------------------------------------------

    def devices(self, mesh: MZIMesh) -> range:
        """Virtual MZI indices the fault injector may target."""
        return range(mesh.num_mzis)

    def fault_domain(self, mesh: MZIMesh, index: int) -> tuple[int, ...]:
        """Virtual indices sharing ``index``'s physical device.

        Single-pass meshes map virtual MZIs one-to-one onto hardware;
        recirculating meshes reuse each physical device every pass, so a
        stuck device pins every virtual MZI it serves.
        """
        if self.fault_domain_fn is None:
            return (index,)
        return self.fault_domain_fn(mesh, index)

    # -- accounting ----------------------------------------------------

    def depth(self, n: int) -> int:
        """Worst-case virtual columns of a size-``n`` unitary mesh."""
        return self.depth_fn(n)

    def device_count(self, n: int) -> int:
        """Physical MZIs a size-``n`` unitary mesh occupies."""
        return self.device_count_fn(n)

    def program_mzi_count(self, n: int) -> int:
        """Programmed MZI states of a size-``n`` unitary (universal)."""
        return n * (n - 1) // 2

    def passes(self, n: int) -> int:
        """Recirculation passes light makes through the hardware."""
        return self.passes_fn(n)


#: name -> [oracle factory | None, vectorized factory | None].
_MESHES: dict[str, list[Callable | None]] = {}


def register_mesh(name: str, factory: Callable | None = None,
                  *, vectorized: bool = False, replace: bool = False):
    """Register a mesh-architecture factory under ``name``.

    Usable directly (``register_mesh("clements", make_clements)``) or as
    a decorator (``@register_mesh("clements")``).  ``vectorized=True``
    registers the columnized twin, which becomes the default dispatch
    for the name; the plain registration remains reachable as the oracle
    via ``mesh_factory(name, vectorized=False)``.  Re-registering an
    existing slot raises unless ``replace=True``.
    """
    slot = 1 if vectorized else 0

    def _register(fn: Callable) -> Callable:
        entry = _MESHES.setdefault(name, [None, None])
        if not replace and entry[slot] is not None:
            kind = "vectorized" if vectorized else "reference"
            raise ValueError(f"{kind} mesh architecture {name!r} is already "
                             f"registered; pass replace=True to override")
        entry[slot] = fn
        return fn
    if factory is not None:
        return _register(factory)
    return _register


def unregister_mesh(name: str, *, vectorized: bool | None = None) -> None:
    """Remove a mesh architecture (primarily for test cleanup).

    By default both slots go; pass ``vectorized`` to drop just one.
    """
    if vectorized is None:
        _MESHES.pop(name, None)
        return
    entry = _MESHES.get(name)
    if entry is not None:
        entry[1 if vectorized else 0] = None
        if entry[0] is None and entry[1] is None:
            del _MESHES[name]


def mesh_factory(name: str, vectorized: bool | None = None) -> Callable:
    """Look up one architecture factory, or raise listing what exists.

    ``vectorized=None`` (the default) prefers the vectorized factory
    and falls back to the oracle; ``True`` requires the vectorized one;
    ``False`` requires the oracle.
    """
    try:
        entry = _MESHES[name]
    except KeyError:
        raise ValueError(
            f"unknown mesh architecture {name!r}; "
            f"known: {registered_meshes()}") from None
    if vectorized is None:
        factory = entry[1] if entry[1] is not None else entry[0]
    else:
        factory = entry[1] if vectorized else entry[0]
    if factory is None:
        kind = "vectorized" if vectorized else "reference"
        raise ValueError(
            f"mesh architecture {name!r} has no {kind} implementation")
    return factory


def make_mesh(name: str | MeshArchitecture,
              *, vectorized: bool | None = None, **kwargs
              ) -> MeshArchitecture:
    """Resolve an architecture by name (an instance passes through)."""
    if isinstance(name, MeshArchitecture):
        return name
    return mesh_factory(name, vectorized=vectorized)(**kwargs)


def has_vectorized_mesh(name: str) -> bool:
    """True when ``name`` has a registered vectorized twin."""
    entry = _MESHES.get(name)
    return entry is not None and entry[1] is not None


def registered_meshes() -> tuple[str, ...]:
    """Names of every registered architecture, in registration order."""
    return tuple(_MESHES)


@contextmanager
def temporary_mesh(name: str, factory: Callable,
                   *, vectorized: bool = False) -> Iterator[None]:
    """Register a mesh architecture for the duration of a ``with`` block."""
    register_mesh(name, factory, vectorized=vectorized)
    try:
        yield
    finally:
        unregister_mesh(name, vectorized=vectorized)


# -- the three architectures ------------------------------------------------
#
# Each registers its per-MZI oracle and its columnized twin; dispatch
# serves the twin, the equivalence suite diffs the two.


def _clements(vectorized: bool) -> MeshArchitecture:
    from repro.photonics.clements import decompose
    return MeshArchitecture(
        name="clements", vectorized=vectorized,
        decompose_fn=decompose,
        depth_fn=lambda n: max(0, n) if n != 1 else 0,
        device_count_fn=lambda n: n * (n - 1) // 2,
        passes_fn=lambda n: 1,
    )


@register_mesh("clements")
def _make_clements(**kwargs) -> MeshArchitecture:
    return _clements(vectorized=False)


@register_mesh("clements", vectorized=True)
def _make_clements_vec(**kwargs) -> MeshArchitecture:
    return _clements(vectorized=True)


def _reck(vectorized: bool) -> MeshArchitecture:
    from repro.photonics.reck import decompose_reck
    return MeshArchitecture(
        name="reck", vectorized=vectorized,
        decompose_fn=decompose_reck,
        depth_fn=lambda n: 0 if n < 2 else 2 * n - 3,
        device_count_fn=lambda n: n * (n - 1) // 2,
        passes_fn=lambda n: 1,
    )


@register_mesh("reck")
def _make_reck(**kwargs) -> MeshArchitecture:
    return _reck(vectorized=False)


@register_mesh("reck", vectorized=True)
def _make_reck_vec(**kwargs) -> MeshArchitecture:
    return _reck(vectorized=True)


def _bricks(vectorized: bool) -> MeshArchitecture:
    from repro.photonics.bricks import (
        brick_fault_domain,
        bricks_depth,
        bricks_device_count,
        bricks_passes,
        decompose_bricks,
    )
    return MeshArchitecture(
        name="bricks", vectorized=vectorized,
        decompose_fn=decompose_bricks,
        depth_fn=bricks_depth,
        device_count_fn=bricks_device_count,
        passes_fn=bricks_passes,
        fault_domain_fn=brick_fault_domain,
    )


@register_mesh("bricks")
def _make_bricks(**kwargs) -> MeshArchitecture:
    return _bricks(vectorized=False)


@register_mesh("bricks", vectorized=True)
def _make_bricks_vec(**kwargs) -> MeshArchitecture:
    return _bricks(vectorized=True)
