"""MZIM computation energy model (Section 5.3, Figure 12(b)/(c)).

Energy of an ``N x N`` MZIM computing ``m`` matrix-vector products in one
window (each vector on its own wavelength, ``p`` compute wavelengths
available) decomposes into

* **static** power over the compute window: per-MZI phase-hold power (the
  phase-shifter DAC + sample-and-hold leakage the paper identifies as the
  dominant static term) — proportional to the ``N^2`` MZI count of an SVD
  mesh;
* **laser** energy: one laser line per in-flight vector, sized by the mesh
  depth (per-column insertion loss compounds in dB, so bigger meshes pay
  exponentially more optical power);
* **I/O** energy: per-port input DAC + modulator and output TIA + ADC
  conversions, linear in ``m * N``.

Calibration: the model's four constants are fit to the paper's own 64x64
anchors (0.62 / 1.32 / 2.24 nJ for 1 / 4 / 8 MVMs) and the 8x8, 4-vector
anchor (33.8 pJ); the derivation is recorded in EXPERIMENTS.md.  The
electrical baseline is the approximate-multiplier MAC of [13]:
69.2 pJ / (8*8*4) MACs = 0.2703 pJ per MAC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import (
    DeviceParams,
    FlumenComputeConfig,
    dbm_to_watts,
)

#: Electrical 8-bit approximate MAC energy (J/MAC), Esposito et al. [13]:
#: 0.75 mW at 2.5 GHz, anchored by the paper's 69.2 pJ for 256 MACs.
ELECTRICAL_MAC_ENERGY_J = 69.2e-12 / 256.0


@dataclass(frozen=True)
class ComputeCalibration:
    """Fitted constants of the MZIM compute-energy model."""

    #: Phase-hold power per MZI (DAC share + sample-and-hold), watts.
    hold_power_per_mzi_w: float = 15.0e-6
    #: Effective optical loss per mesh column for compute laser sizing, dB.
    column_loss_db: float = 0.16
    #: Fixed optical budget above the OOK sensitivity: coupling and ring
    #: losses plus the extra SNR analog 8-bit detection needs over binary
    #: detection (~10 dB), dB.
    fixed_loss_db: float = 17.1
    #: Per-port per-vector I/O energy (input DAC+modulator, output TIA+ADC).
    io_energy_per_sample_j: float = 0.5e-12


@dataclass(frozen=True)
class ComputeEnergyBreakdown:
    """Energy of one MZIM compute window, by component (joules)."""

    static: float
    laser: float
    io: float
    window_s: float
    macs: int

    @property
    def total(self) -> float:
        return self.static + self.laser + self.io

    @property
    def per_mac(self) -> float:
        return self.total / self.macs if self.macs else math.inf


@dataclass
class MZIMComputeModel:
    """Energy/latency model of SVD-MZIM matrix multiplication."""

    devices: DeviceParams = field(default_factory=DeviceParams)
    compute: FlumenComputeConfig = field(default_factory=FlumenComputeConfig)
    calibration: ComputeCalibration = field(default_factory=ComputeCalibration)
    #: Mesh arrangement (registry name) the counts below account for.
    architecture: str = "clements"

    def _arch(self):
        from repro.photonics.registry import make_mesh
        return make_mesh(self.architecture)

    def svd_mzi_count(self, n: int) -> int:
        """Physical MZIs in an ``n``-input SVD MZIM.

        Two unitary meshes plus the Sigma attenuator column; Clements
        gives the paper's ``n^2`` (Section 3.1.1), device-frugal
        arrangements (e.g. recirculating bricks) hold fewer phases.
        """
        return 2 * self._arch().device_count(n) + n

    def mesh_columns(self, n: int) -> int:
        """Mesh depth of an SVD circuit: two unitary meshes + Sigma.

        Clements gives the paper's ``2n + 1``; deeper arrangements pay
        correspondingly more compounded insertion loss.
        """
        return 2 * self._arch().depth(n) + 1

    def window_s(self, vectors: int, wavelengths: int | None = None,
                 include_programming: bool = True) -> float:
        """Duration of a compute window for ``vectors`` MVMs.

        Vectors beyond the wavelength count serialize into extra input
        modulation cycles at the 5 GHz input rate.
        """
        p = wavelengths or self.compute.computation_wavelengths
        cycles = math.ceil(vectors / p)
        t = cycles / self.compute.input_modulation_hz
        if include_programming:
            t += self.compute.mzim_switch_delay_s
        return t

    def laser_power_per_vector_w(self, n: int) -> float:
        """Laser power of one compute wavelength through an ``n``-input mesh."""
        cal = self.calibration
        loss_db = (self.mesh_columns(n) * cal.column_loss_db
                   + cal.fixed_loss_db)
        sensitivity_w = dbm_to_watts(self.devices.photodiode.sensitivity_dbm)
        return (sensitivity_w * 10.0 ** (loss_db / 10.0)
                / self.devices.laser.owpe)

    def matmul_energy(self, n: int, vectors: int,
                      wavelengths: int | None = None,
                      include_programming: bool = True
                      ) -> ComputeEnergyBreakdown:
        """Energy of ``vectors`` MVMs against one programmed ``n x n`` matrix."""
        if n < 2:
            raise ValueError(f"MZIM dimension must be >= 2, got {n}")
        if vectors < 1:
            raise ValueError(f"need at least one vector, got {vectors}")
        cal = self.calibration
        t = self.window_s(vectors, wavelengths, include_programming)
        p = wavelengths or self.compute.computation_wavelengths
        in_flight = min(vectors, p)
        static = t * cal.hold_power_per_mzi_w * self.svd_mzi_count(n)
        # Laser lines stay on for the whole window; vectors beyond p reuse
        # the same lines across serialized cycles, so energy follows the
        # number of *lines*, not the number of vectors.
        laser = t * in_flight * self.laser_power_per_vector_w(n)
        io = vectors * n * cal.io_energy_per_sample_j
        return ComputeEnergyBreakdown(
            static=static, laser=laser, io=io, window_s=t,
            macs=vectors * n * n)

    def electrical_matmul_energy(self, n: int, vectors: int) -> float:
        """Energy of the same job on the electrical approximate MAC unit."""
        return vectors * n * n * ELECTRICAL_MAC_ENERGY_J

    def speedup_window_s(self, n: int, vectors: int,
                         core_macs_per_s: float) -> tuple[float, float]:
        """(photonic, electrical) wall-clock for the same matmul job."""
        photonic = self.window_s(vectors)
        electrical = vectors * n * n / core_macs_per_s
        return photonic, electrical

    def mac_energy_sweep(self, dims: list[int], wavelength_counts: list[int],
                         vectors_per_job: int | None = None
                         ) -> dict[tuple[int, int], float]:
        """Energy per MAC over (dimension, wavelengths) — Figure 12(c) grid.

        By default each point runs a *saturated* window: ``p`` vectors on
        ``p`` wavelengths, which is how WDM amortizes the per-window static
        energy.  Pass ``vectors_per_job`` to pin the job size instead.
        """
        grid: dict[tuple[int, int], float] = {}
        for n in dims:
            for p in wavelength_counts:
                vectors = vectors_per_job if vectors_per_job is not None else p
                e = self.matmul_energy(n, vectors, wavelengths=p)
                grid[(n, p)] = e.per_mac
        return grid
