"""Analytic photonic device models.

Every device used by the Flumen fabric is modelled at the transfer-matrix /
dB-loss level, which is the abstraction the paper extracts from Lumerical
INTERCONNECT: exact complex E-field transformations plus per-device optical
loss and electrical power.

The central device is the Mach-Zehnder interferometer (MZI).  Its transfer
matrix follows the paper's Eq. (1):

    T(theta, phi) = j * exp(-j*theta/2) *
        [[exp(j*phi) * sin(theta/2),  cos(theta/2)],
         [exp(j*phi) * cos(theta/2), -sin(theta/2)]]

with ``theta`` in [0, pi] setting the splitting ratio (theta=0 cross,
theta=pi bar) and ``phi`` in [0, 2*pi) an input phase.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from repro.config import (
    DeviceParams,
    MRRParams,
    MZIParams,
    PhotodiodeParams,
    db_to_linear,
    dbm_to_watts,
)

#: theta value of the cross state (top input -> bottom output).
CROSS_THETA = 0.0
#: theta value of the bar state (top input -> top output).
BAR_THETA = math.pi
#: theta value of the 50:50 splitting state used for broadcast trees.
SPLIT_THETA = math.pi / 2.0


def mzi_transfer(theta: float, phi: float = 0.0) -> np.ndarray:
    """Return the 2x2 complex transfer matrix of an MZI (paper Eq. 1).

    Parameters
    ----------
    theta:
        Internal (amplitude-modulating) phase shift, in radians.  The device
        is physically restricted to ``[0, pi]`` but any real value produces a
        valid unitary; callers that model hardware should clamp.
    phi:
        External (input) phase shift in radians.
    """
    half = theta / 2.0
    s, c = math.sin(half), math.cos(half)
    pre = 1j * cmath.exp(-1j * half)
    ephi = cmath.exp(1j * phi)
    return pre * np.array([[ephi * s, c], [ephi * c, -s]], dtype=complex)


def is_cross(theta: float, tol: float = 1e-9) -> bool:
    """True if ``theta`` programs the cross state."""
    return abs(theta - CROSS_THETA) <= tol


def is_bar(theta: float, tol: float = 1e-9) -> bool:
    """True if ``theta`` programs the bar state."""
    return abs(theta - BAR_THETA) <= tol


@dataclass(frozen=True)
class MZIState:
    """Programmed state of one MZI: its phases and its mesh position.

    ``top_mode`` is the index of the upper of the two adjacent waveguides
    the MZI couples; the device acts on modes ``(top_mode, top_mode + 1)``.
    ``column`` is the physical layer in the rectangular mesh (0 = first layer
    light encounters), used for path-length and loss accounting.
    """

    top_mode: int
    theta: float
    phi: float = 0.0
    column: int = -1

    @property
    def transfer(self) -> np.ndarray:
        """The device's 2x2 transfer matrix."""
        return mzi_transfer(self.theta, self.phi)

    @property
    def splitting_ratio(self) -> float:
        """Fraction of top-input power that exits the top output.

        0.0 for the cross state, 1.0 for the bar state, 0.5 for the 50:50
        splitting state.
        """
        return math.sin(self.theta / 2.0) ** 2

    def with_phases(self, theta: float, phi: float) -> "MZIState":
        """Return a reprogrammed copy (position preserved)."""
        return MZIState(self.top_mode, theta, phi, self.column)


def attenuator_transmission(theta: float) -> float:
    """Power transmission of an attenuating MZI (paper Fig. 4, open circles).

    An attenuating MZI is connected only at its top two ports, so its
    amplitude transmission is the (0, 0) element magnitude of Eq. (1):
    ``sin(theta/2)``; power transmission is its square.  theta=pi passes
    everything, theta=0 blocks everything.
    """
    return math.sin(theta / 2.0) ** 2


def attenuator_theta(transmission: float) -> float:
    """Inverse of :func:`attenuator_transmission`.

    Returns the ``theta`` programming a given power transmission in [0, 1].
    """
    if not 0.0 <= transmission <= 1.0:
        raise ValueError(f"transmission must be in [0, 1], got {transmission}")
    return 2.0 * math.asin(math.sqrt(transmission))


class Waveguide:
    """A routed waveguide segment with straight and bent portions."""

    def __init__(self, params: DeviceParams | None = None,
                 straight_cm: float = 0.0, bent_cm: float = 0.0) -> None:
        self._wg = (params or DeviceParams()).waveguide
        self.straight_cm = straight_cm
        self.bent_cm = bent_cm

    @property
    def loss_db(self) -> float:
        """Total propagation loss in dB."""
        return (self.straight_cm * self._wg.straight_loss_db_per_cm
                + self.bent_cm * self._wg.bent_loss_db_per_cm)

    @property
    def transmission(self) -> float:
        """Linear power transmission of the segment."""
        return db_to_linear(self.loss_db)


class MicroringResonator:
    """MRR (de)multiplexer/modulator: loss and power bookkeeping.

    Communication links pass ``wavelengths - 1`` rings at their thru port and
    one ring at its drop port per endpoint, which is what makes shared-bus
    photonic topologies loss-hungry (Section 5.2).
    """

    def __init__(self, params: MRRParams | None = None) -> None:
        self.params = params or MRRParams()

    def thru_transmission(self, rings_passed: int = 1) -> float:
        """Power transmission past ``rings_passed`` off-resonance rings."""
        return db_to_linear(self.params.thru_loss_db * rings_passed)

    def drop_transmission(self) -> float:
        """Power transmission through one on-resonance drop."""
        return db_to_linear(self.params.drop_loss_db)

    def active_power_w(self) -> float:
        """Electrical power of one actively modulating ring (driver + mod)."""
        return self.params.modulation_power_w + self.params.driver_power_w

    def static_power_w(self) -> float:
        """Thermal-tuning power burned whether or not the ring modulates."""
        return self.params.thermal_tuning_power_w


class Photodiode:
    """Photodiode + decision model: converts optical power to current."""

    def __init__(self, params: PhotodiodeParams | None = None) -> None:
        self.params = params or PhotodiodeParams()

    @property
    def sensitivity_w(self) -> float:
        """Minimum detectable optical power in watts."""
        return dbm_to_watts(self.params.sensitivity_dbm)

    def photocurrent_a(self, optical_power_w: float) -> float:
        """Output current for a given incident optical power."""
        if optical_power_w < 0.0:
            raise ValueError("optical power cannot be negative")
        return (self.params.responsivity_a_per_w * optical_power_w
                + self.params.dark_current_a)

    def detects(self, optical_power_w: float) -> bool:
        """True when the incident power meets the receiver sensitivity."""
        return optical_power_w >= self.sensitivity_w


def mzi_insertion_loss_db(params: MZIParams | None = None) -> float:
    """Optical insertion loss of one MZI stage (couplers + phase shifter)."""
    return (params or MZIParams()).insertion_loss_db


def splitter_tree_loss_db(fanout: int, params: DeviceParams | None = None) -> float:
    """Loss through a Y-branch splitter tree with the given fanout.

    Used by the optical-bus baseline for power distribution: each 1:2 stage
    costs the Y-branch excess loss plus the intrinsic 3 dB split.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    p = params or DeviceParams()
    stages = math.ceil(math.log2(fanout)) if fanout > 1 else 0
    return stages * (p.y_branch.loss_db + 3.0103)
