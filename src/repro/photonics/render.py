"""ASCII rendering of MZI meshes and the Flumen fabric.

Debugging and teaching aid: draw the rectangular mesh column by column,
marking each MZI's state — ``X`` cross, ``=`` bar, ``/`` splitting — plus
the Flumen fabric's partition barriers and attenuator column.  Used by
the examples and handy in a REPL:

>>> from repro.photonics import FlumenFabric
>>> from repro.photonics.render import render_fabric
>>> fab = FlumenFabric(8)
>>> fab.configure_communication({0: 3, 3: 0})
>>> print(render_fabric(fab))          # doctest: +SKIP
"""

from __future__ import annotations

import math

from repro.photonics.clements import MZIMesh
from repro.photonics.devices import is_bar, is_cross


def _state_char(theta: float) -> str:
    if is_cross(theta, tol=1e-6):
        return "X"
    if is_bar(theta, tol=1e-6):
        return "="
    return "/"


def render_mesh(mesh: MZIMesh, port_labels: bool = True) -> str:
    """Draw a mesh: one row per port, one column group per mesh column.

    Each MZI spans two adjacent rows; its state character appears on
    both.  Empty positions are plain waveguide (``-``).
    """
    cols = mesh.num_columns
    grid = [["-"] * max(cols, 1) for _ in range(mesh.n)]
    for mzi in mesh.mzis:
        ch = _state_char(mzi.theta)
        grid[mzi.top_mode][mzi.column] = ch
        grid[mzi.top_mode + 1][mzi.column] = ch
    lines = []
    for port in range(mesh.n):
        label = f"{port:2d} " if port_labels else ""
        lines.append(label + " ".join(grid[port]))
    return "\n".join(lines)


def render_fabric(fabric) -> str:
    """Draw a Flumen fabric: per-partition meshes, barriers, attenuators.

    Compute partitions render as ``#`` blocks (their SVD circuits are a
    separate structure); the attenuator column shows each attenuating
    MZI's transmission in tenths (``9`` ~ full pass, ``0`` ~ blocked).
    """
    from repro.photonics.fabric import PartitionKind

    width = fabric.n  # mesh columns (excluding the attenuator column)
    rows = []
    for part in fabric.partitions:
        if part.kind is PartitionKind.COMPUTE:
            for port in range(part.lo, part.hi):
                att = _attenuation_char(fabric, port)
                rows.append((port, "# " * width + f"| {att}", "compute"))
            continue
        if part.comm_mesh is None:
            for port in range(part.lo, part.hi):
                att = _attenuation_char(fabric, port)
                rows.append((port, "- " * width + f"| {att}", "idle"))
            continue
        sub = render_mesh(part.comm_mesh, port_labels=False).splitlines()
        for local, line in enumerate(sub):
            port = part.lo + local
            pad = line.ljust(2 * width - 1)
            att = _attenuation_char(fabric, port)
            rows.append((port, f"{pad} | {att}", "comm"))
    lines = []
    barrier_after = set(fabric.barrier_rows())
    for port, body, role in rows:
        lines.append(f"{port:2d}  {body}   ({role})")
        if port + 1 in barrier_after:
            lines.append("    " + "~" * (2 * width + 4) + " barrier")
    legend = ("legend: X cross, = bar, / split, - waveguide, # compute "
              "partition, | attenuator column (digit = transmission/10)")
    return "\n".join(lines + [legend])


def _attenuation_char(fabric, port: int) -> str:
    t = float(fabric.attenuator_transmission[port])
    return str(min(9, int(math.floor(t * 10))))
