"""In-situ self-configuration of MZI meshes (paper references [10, 15]).

Fabricated meshes never match their design: every phase shifter carries a
systematic offset (fabrication nonuniformity, thermal crosstalk bias).
Self-configuration programs the *physical* mesh to implement a target
unitary anyway, using only measurable quantities — here, the transfer
matrix obtained by injecting basis vectors and reading the detector
array, which is exactly what a Flumen endpoint's transceivers provide.

The algorithm is coordinate descent in decomposition order: each MZI's
programmed ``theta``/``phi`` is tuned (bounded scalar minimization) to
shrink the Frobenius error between the measured and target matrices, for
a few sweeps.  Because an exact solution exists whenever the offset
leaves ``theta`` reachable inside ``[0, pi]``, convergence is fast and
the residual collapses by orders of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize_scalar

from repro.photonics.clements import MZIMesh, decompose
from repro.photonics.devices import MZIState


@dataclass
class PhaseOffsets:
    """Systematic per-MZI phase errors of a fabricated mesh."""

    theta: np.ndarray
    phi: np.ndarray

    @classmethod
    def random(cls, num_mzis: int, sigma_rad: float,
               rng: np.random.Generator | None = None) -> "PhaseOffsets":
        rng = rng or np.random.default_rng(0)
        return cls(theta=rng.normal(0.0, sigma_rad, num_mzis),
                   phi=rng.normal(0.0, sigma_rad, num_mzis))

    @classmethod
    def none(cls, num_mzis: int) -> "PhaseOffsets":
        return cls(theta=np.zeros(num_mzis), phi=np.zeros(num_mzis))


class PhysicalMesh:
    """A fabricated mesh: programmed phases plus hidden offsets.

    The calibration code may only call :meth:`measure` (the transfer
    matrix, as a real lab would reconstruct it from basis injections) and
    :meth:`program` — never read the offsets.
    """

    def __init__(self, ideal: MZIMesh, offsets: PhaseOffsets) -> None:
        if len(offsets.theta) != ideal.num_mzis:
            raise ValueError("offset count does not match MZI count")
        self._structure = ideal
        self._offsets = offsets
        self.programmed = np.array(
            [[mzi.theta, mzi.phi] for mzi in ideal.mzis], dtype=float
        ).reshape(ideal.num_mzis, 2)
        self.measurements = 0

    @property
    def num_mzis(self) -> int:
        return self._structure.num_mzis

    def program(self, index: int, theta: float, phi: float) -> None:
        """Set the programmed (pre-offset) phases of one MZI."""
        self.programmed[index] = (theta, phi)

    def _realized(self) -> MZIMesh:
        mzis = []
        for i, mzi in enumerate(self._structure.mzis):
            theta = float(np.clip(
                self.programmed[i, 0] + self._offsets.theta[i],
                0.0, math.pi))
            phi = self.programmed[i, 1] + self._offsets.phi[i]
            mzis.append(MZIState(mzi.top_mode, theta, phi, mzi.column))
        mesh = MZIMesh(n=self._structure.n, mzis=mzis)
        mesh.output_phases = self._structure.output_phases.copy()
        return mesh

    def measure(self) -> np.ndarray:
        """The physically realized transfer matrix (basis injections)."""
        self.measurements += 1
        return self._realized().matrix()


def matrix_error(measured: np.ndarray, target: np.ndarray) -> float:
    """Normalized Frobenius error between transfer matrices."""
    return float(np.linalg.norm(measured - target)
                 / np.linalg.norm(target))


@dataclass
class CalibrationResult:
    initial_error: float
    final_error: float
    sweeps_used: int
    measurements: int
    history: list[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        if self.final_error <= 0:
            return math.inf
        return self.initial_error / self.final_error


def self_configure(mesh: PhysicalMesh, target: np.ndarray,
                   sweeps: int = 3, tolerance: float = 1e-9
                   ) -> CalibrationResult:
    """Tune every MZI's programmed phases to realize ``target``.

    Coordinate descent: for each MZI (in propagation order) minimize the
    measured matrix error over ``theta`` then ``phi``; repeat for up to
    ``sweeps`` passes or until the error stops improving.
    """
    target = np.asarray(target, dtype=complex)
    initial = matrix_error(mesh.measure(), target)
    history = [initial]

    def error_with(index: int, param: int, value: float) -> float:
        saved = mesh.programmed[index, param]
        mesh.programmed[index, param] = value
        err = matrix_error(mesh.measure(), target)
        mesh.programmed[index, param] = saved
        return err

    sweeps_used = 0
    for sweep in range(sweeps):
        sweeps_used = sweep + 1
        for i in range(mesh.num_mzis):
            for param, bounds in ((0, (-0.5, math.pi + 0.5)),
                                  (1, (-math.pi, 3 * math.pi))):
                res = minimize_scalar(
                    lambda v: error_with(i, param, v),
                    bounds=bounds, method="bounded",
                    options={"xatol": 1e-7})
                if res.fun < matrix_error(mesh.measure(), target):
                    mesh.programmed[i, param] = float(res.x)
        current = matrix_error(mesh.measure(), target)
        history.append(current)
        if current < tolerance or \
                (len(history) > 1 and history[-2] - current < tolerance):
            break
    return CalibrationResult(
        initial_error=initial,
        final_error=history[-1],
        sweeps_used=sweeps_used,
        measurements=mesh.measurements,
        history=history,
    )


def calibrate_by_decomposition(mesh: PhysicalMesh, target: np.ndarray,
                               iterations: int = 2,
                               architecture: str | None = None
                               ) -> CalibrationResult:
    """Matrix-inversion self-configuration: one-shot offset estimation.

    Because the mesh factorization of a generic unitary is unique given
    the mesh structure, decomposing the *measured* transfer matrix
    recovers the physically realized phases; subtracting the programmed
    values yields the hidden offsets, and reprogramming
    ``ideal - offset`` lands on the target to machine precision.  A
    second iteration mops up ``theta`` values that clipped at the
    physical range boundary.

    ``architecture`` must match the arrangement ``mesh`` was decomposed
    with (registry name; ``None`` = Clements) so the recovered factor
    order lines up with the mesh's propagation order.

    This is the fast path a controller with full transceiver access uses
    (Hamerly et al., reference [15]); :func:`self_configure` remains as
    the measurement-only fallback.
    """
    if architecture is None or architecture == "clements":
        decompose_fn = decompose
    else:
        from repro.photonics.registry import make_mesh
        decompose_fn = make_mesh(architecture).decompose
    target = np.asarray(target, dtype=complex)
    ideal = decompose_fn(target)
    initial = matrix_error(mesh.measure(), target)
    history = [initial]
    for _ in range(iterations):
        estimated = decompose_fn(mesh.measure())
        for i in range(mesh.num_mzis):
            est_theta = estimated.mzis[i].theta
            est_phi = estimated.mzis[i].phi
            d_theta = est_theta - mesh.programmed[i, 0]
            d_phi = (est_phi - mesh.programmed[i, 1] + math.pi) \
                % (2 * math.pi) - math.pi
            mesh.program(i,
                         ideal.mzis[i].theta - d_theta,
                         ideal.mzis[i].phi - d_phi)
        history.append(matrix_error(mesh.measure(), target))
        if history[-1] < 1e-10:
            break
    return CalibrationResult(
        initial_error=initial,
        final_error=history[-1],
        sweeps_used=len(history) - 1,
        measurements=mesh.measurements,
        history=history,
    )


def calibrate_to(target: np.ndarray, offsets: PhaseOffsets,
                 sweeps: int = 3, method: str = "decomposition",
                 architecture: str | None = None) -> CalibrationResult:
    """Convenience wrapper: decompose, fabricate with offsets, calibrate.

    ``method`` is "decomposition" (fast, full-matrix measurements) or
    "descent" (generic coordinate descent); ``architecture`` selects the
    mesh arrangement (registry name; ``None`` = Clements).
    """
    if architecture is None or architecture == "clements":
        decompose_fn = decompose
    else:
        from repro.photonics.registry import make_mesh
        decompose_fn = make_mesh(architecture).decompose
    mesh = PhysicalMesh(decompose_fn(np.asarray(target, dtype=complex)),
                        offsets)
    if method == "decomposition":
        return calibrate_by_decomposition(mesh, target,
                                          architecture=architecture)
    if method == "descent":
        return self_configure(mesh, target, sweeps=sweeps)
    raise ValueError(f"unknown calibration method {method!r}")
