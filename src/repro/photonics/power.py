"""Optical link power and laser sizing models (Sections 4.1, 5.2).

Implements the loss-scaling comparison of Figure 12(a): the worst-case path
loss of a shared optical bus grows as ``k * p`` ring thru-passes (``k``
routers each exposing ``p`` ring filters to through traffic) while the
Flumen MZIM grows as ``k/2`` MZI columns plus ``2p`` endpoint ring passes —
in decibels, so the laser power gap is exponential in the difference.

Laser power is sized from receiver sensitivity, worst-case loss, and laser
wall-plug efficiency; link energy-per-bit combines modulator, driver,
thermal tuning, TIA, SerDes and the laser share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DeviceParams, dbm_to_watts

#: System margin on top of device losses.  Zero by default: the device
#: losses of Table 2 already include interface penalties, and zero margin
#: calibrates absolute laser powers to the paper's Figure 12(a) anchors.
DEFAULT_MARGIN_DB = 0.0
#: Fraction of passed rings that impose the full thru loss.  Off-resonance
#: rings spectrally distant from a wavelength perturb it far less than the
#: worst-case thru figure; Lumerical-level modelling (which the paper used)
#: resolves this, and this factor calibrates our analytic model to the
#: paper's absolute laser powers while preserving the k*p vs k/2+2p scaling.
RING_SPECTRAL_FRACTION = 0.3
#: Waveguide length of a package-scale bus visiting all endpoints, in cm.
BUS_LENGTH_CM = 4.0
#: Waveguide length crossing the MZIM interposer region, in cm.
MZIM_LENGTH_CM = 0.4


def optbus_worst_loss_db(routers: int, wavelengths: int,
                         devices: DeviceParams | None = None,
                         mrr_thru_db: float | None = None) -> float:
    """Worst-case path loss of a shared optical ring bus.

    The victim signal passes the modulator/filter banks of every router on
    the bus: ``routers * wavelengths`` off-resonance ring thru-passes, one
    on-resonance drop at the receiver, and the full bus waveguide.
    """
    d = devices or DeviceParams()
    thru = d.mrr.thru_loss_db if mrr_thru_db is None else mrr_thru_db
    ring_loss = (routers * wavelengths * thru * RING_SPECTRAL_FRACTION
                 + d.mrr.drop_loss_db)
    wg_loss = BUS_LENGTH_CM * d.waveguide.straight_loss_db_per_cm
    return ring_loss + wg_loss


def flumen_worst_loss_db(routers: int, wavelengths: int,
                         devices: DeviceParams | None = None,
                         mrr_thru_db: float | None = None) -> float:
    """Worst-case path loss of the Flumen MZIM interconnect.

    ``routers/2`` MZI column traversals (the paper's 16-chiplet system pairs
    two chiplets per MZIM port, so an N-port mesh serves ``2N`` chiplets)
    plus one attenuator column, plus ``2 * wavelengths`` endpoint ring
    passes (TX mux + RX demux) and one drop.
    """
    d = devices or DeviceParams()
    thru = d.mrr.thru_loss_db if mrr_thru_db is None else mrr_thru_db
    columns = routers // 2 + 1  # unitary mesh depth + attenuator column
    mzi_loss = columns * d.mzi.insertion_loss_db
    ring_loss = (2 * wavelengths * thru * RING_SPECTRAL_FRACTION
                 + d.mrr.drop_loss_db)
    wg_loss = MZIM_LENGTH_CM * d.waveguide.straight_loss_db_per_cm
    return mzi_loss + ring_loss + wg_loss


def laser_power_w(worst_loss_db: float, wavelengths: int,
                  devices: DeviceParams | None = None,
                  margin_db: float = DEFAULT_MARGIN_DB) -> float:
    """Electrical laser power needed to close the worst-case link budget.

    Each wavelength must arrive at the photodiode at its sensitivity, so the
    per-wavelength optical power at the laser is
    ``sensitivity * 10^((loss + margin)/10)``; the electrical power divides
    by the laser wall-plug efficiency (OWPE) and multiplies by the
    wavelength count.
    """
    d = devices or DeviceParams()
    sensitivity_w = dbm_to_watts(d.photodiode.sensitivity_dbm)
    per_lambda = sensitivity_w * 10.0 ** ((worst_loss_db + margin_db) / 10.0)
    return wavelengths * per_lambda / d.laser.owpe


@dataclass(frozen=True)
class LinkEnergyBreakdown:
    """Per-bit energy of a WDM photonic link, by component (J/bit)."""

    modulator: float
    driver: float
    thermal_tuning: float
    tia: float
    serdes: float
    laser: float

    @property
    def total(self) -> float:
        return (self.modulator + self.driver + self.thermal_tuning
                + self.tia + self.serdes + self.laser)


def photonic_link_energy(wavelengths: int,
                         devices: DeviceParams | None = None,
                         modulation_hz: float = 10.0e9,
                         worst_loss_db: float | None = None
                         ) -> LinkEnergyBreakdown:
    """Energy per bit of a point-to-point WDM link (Figure 2 structure).

    Each wavelength carries ``modulation_hz`` bits/s.  Ring thermal tuning
    covers the TX modulator ring and RX drop ring; SerDes counted at both
    ends.  With Table 2 defaults and 64 wavelengths this lands near the
    paper's 0.703 pJ/bit (Table 1).
    """
    d = devices or DeviceParams()
    if worst_loss_db is None:
        worst_loss_db = flumen_worst_loss_db(16, wavelengths, d)
    bits_per_s = modulation_hz  # per wavelength

    def per_bit(power_w: float) -> float:
        return power_w / bits_per_s

    laser_total = laser_power_w(worst_loss_db, wavelengths, d)
    return LinkEnergyBreakdown(
        modulator=per_bit(d.mrr.modulation_power_w),
        driver=per_bit(d.mrr.driver_power_w),
        thermal_tuning=per_bit(2.0 * d.mrr.thermal_tuning_power_w),
        tia=per_bit(d.converter.tia_power_w),
        serdes=per_bit(2.0 * d.converter.serdes_power_w),
        laser=per_bit(laser_total / wavelengths),
    )


def laser_power_sweep(topology: str, routers: int, wavelengths: int,
                      mrr_thru_db_values: list[float],
                      devices: DeviceParams | None = None) -> list[float]:
    """Laser power (W) versus MRR thru loss — one Figure 12(a) series.

    ``topology`` is ``"optbus"`` or ``"flumen"``.
    """
    loss_fn = {"optbus": optbus_worst_loss_db,
               "flumen": flumen_worst_loss_db}.get(topology)
    if loss_fn is None:
        raise ValueError(f"unknown topology {topology!r}")
    return [
        laser_power_w(loss_fn(routers, wavelengths, devices, thru),
                      wavelengths, devices)
        for thru in mrr_thru_db_values
    ]
