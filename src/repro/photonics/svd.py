"""SVD MZIM circuits: non-unitary matrix multiplication in the optical domain.

Section 3.1.1 / Figure 4 of the paper: an arbitrary matrix ``M`` is realized
as ``M = U @ Sigma @ V*`` where ``U`` and ``V*`` are unitary MZI meshes and
``Sigma`` is a column of attenuating MZIs.  Because attenuators cannot
amplify, ``M`` must first be scaled by its spectral norm so that all singular
values fall in ``[0, 1]`` (Section 3.3.1); the electronic side scales the
result back after detection.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.photonics.clements import MZIMesh, decompose


@dataclass
class SVDProgram:
    """A programmed SVD MZIM: ``M_s = U @ diag(sigma) @ V*``.

    ``scale`` is the factor removed from the original matrix so the
    implemented singular values obey ``0 <= sigma_i <= 1``; callers multiply
    detected outputs by ``scale`` to recover ``M @ a``.
    """

    n: int
    v_dagger_mesh: MZIMesh
    u_mesh: MZIMesh
    sigma: np.ndarray
    scale: float

    @property
    def attenuator_thetas(self) -> np.ndarray:
        """theta programming of the Sigma attenuator column (power = sigma^2).

        An attenuating MZI transmits amplitude ``sin(theta/2)``, so a
        singular value ``sigma`` needs ``theta = 2 asin(sigma)`` (the E-field
        carries ``sigma`` directly, power carries ``sigma^2``).
        """
        return np.array([2.0 * math.asin(min(1.0, s)) for s in self.sigma])

    @property
    def num_mzis(self) -> int:
        """MZIs used: two unitary meshes plus the attenuator column = N^2."""
        return self.v_dagger_mesh.num_mzis + self.u_mesh.num_mzis + self.n

    def matrix(self) -> np.ndarray:
        """Reconstruct the *scaled* implemented matrix ``M / scale``."""
        return (self.u_mesh.matrix()
                @ np.diag(self.sigma.astype(complex))
                @ self.v_dagger_mesh.matrix())

    def propagate(self, fields: np.ndarray) -> np.ndarray:
        """Optical forward pass: ``(M / scale) @ fields`` on E-fields.

        ``fields`` may be ``(n,)`` or ``(n, p)`` for ``p`` WDM wavelengths
        (Section 3.3.1: each input vector rides its own wavelength).
        """
        mid = self.v_dagger_mesh.propagate(fields)
        sig = self.sigma[:, np.newaxis] if mid.ndim > 1 else self.sigma
        return self.u_mesh.propagate(sig * mid)

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Full matrix product with rescaling: returns ``M @ vectors``."""
        return self.scale * self.propagate(vectors)


def spectral_scale(matrix: np.ndarray) -> float:
    """Spectral norm ``||M||_2`` used to pre-scale matrices (Section 3.3.1).

    Returns 1.0 for an all-zero matrix so division is always safe.
    """
    norm = float(np.linalg.norm(matrix, ord=2)) if matrix.size else 0.0
    return norm if norm > 0.0 else 1.0


#: Content-hash cache of programmed SVD circuits.  Repeated offloads of
#: the same workload matrix (every sweep point re-programs the same
#: blocks) skip the SVD + double Clements decomposition entirely.
_SVD_CACHE: OrderedDict[tuple, SVDProgram] = OrderedDict()
_SVD_CACHE_CAPACITY = 128
_svd_cache_hits = 0
_svd_cache_misses = 0


def _matrix_key(m: np.ndarray, architecture: str) -> tuple:
    digest = hashlib.sha256(np.ascontiguousarray(m).tobytes()).hexdigest()
    return (m.shape, digest, architecture)


def _fresh_mesh(mesh: MZIMesh) -> MZIMesh:
    """An independent copy of a cached mesh.

    Callers mutate programmed meshes in place (attenuator equalization,
    fault injection replace ``mzis[i]``), so cache entries must never be
    handed out directly.  MZI states are frozen — sharing them is safe;
    the list and the phase screen are copied.
    """
    copy = MZIMesh(n=mesh.n, mzis=list(mesh.mzis))
    copy.output_phases = mesh.output_phases.copy()
    return copy


def svd_cache_stats() -> dict:
    """Hit/miss/size counters for the :func:`program_svd` memo."""
    return {"hits": _svd_cache_hits, "misses": _svd_cache_misses,
            "size": len(_SVD_CACHE), "capacity": _SVD_CACHE_CAPACITY}


def clear_svd_cache() -> None:
    """Drop all memoized SVD programs and reset the counters."""
    global _svd_cache_hits, _svd_cache_misses
    _SVD_CACHE.clear()
    _svd_cache_hits = 0
    _svd_cache_misses = 0


def program_svd(matrix: np.ndarray,
                architecture: str | None = None) -> SVDProgram:
    """Program an ``N x N`` SVD MZIM to implement ``matrix``.

    The matrix must be square (pad with :func:`repro.core.accelerator.pad_to_blocks`
    first); it may be complex.  Raises ``ValueError`` for non-square input.
    ``architecture`` picks the mesh arrangement from
    :mod:`repro.photonics.registry` (``None`` = the Clements default).

    Programs are memoized by matrix content hash + architecture name
    (LRU, 128 entries); every call returns a fresh :class:`SVDProgram`
    with independent meshes so in-place mutation cannot poison the cache.
    """
    global _svd_cache_hits, _svd_cache_misses
    m = np.asarray(matrix, dtype=complex)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"SVD MZIM needs a square matrix, got {m.shape}")
    arch_name = "clements" if architecture is None else architecture
    key = _matrix_key(m, arch_name)
    cached = _SVD_CACHE.get(key)
    if cached is not None:
        _SVD_CACHE.move_to_end(key)
        _svd_cache_hits += 1
    else:
        _svd_cache_misses += 1
        if arch_name == "clements":
            decompose_fn = decompose
        else:
            from repro.photonics.registry import make_mesh
            decompose_fn = make_mesh(arch_name).decompose
        n = m.shape[0]
        scale = spectral_scale(m)
        u, sigma, v_dagger = np.linalg.svd(m / scale)
        sigma = np.clip(sigma, 0.0, 1.0)  # numerical guard: sigma_max == 1
        cached = SVDProgram(
            n=n,
            v_dagger_mesh=decompose_fn(v_dagger),
            u_mesh=decompose_fn(u),
            sigma=sigma,
            scale=scale,
        )
        _SVD_CACHE[key] = cached
        while len(_SVD_CACHE) > _SVD_CACHE_CAPACITY:
            _SVD_CACHE.popitem(last=False)
    return SVDProgram(
        n=cached.n,
        v_dagger_mesh=_fresh_mesh(cached.v_dagger_mesh),
        u_mesh=_fresh_mesh(cached.u_mesh),
        sigma=cached.sigma.copy(),
        scale=cached.scale,
    )


@dataclass
class UnitaryProgram:
    """A unitary matrix programmed directly into one mesh (no Sigma).

    Orthogonal/unitary kernels — JPEG's DCT matrix, rotation matrices —
    skip the SVD structure entirely: one N-column mesh of N(N-1)/2 MZIs
    instead of the 2N+1-column, N^2-MZI SVD circuit (Section 5.4.1 maps
    the DCT onto "the full 8-input unitary MZIM").  Half the optical
    depth means less loss and faster programming.
    """

    n: int
    mesh: MZIMesh

    #: Unitary matrices need no rescaling.
    scale: float = 1.0

    @property
    def num_mzis(self) -> int:
        return self.mesh.num_mzis

    @property
    def mesh_columns(self) -> int:
        return self.mesh.num_columns

    def matrix(self) -> np.ndarray:
        return self.mesh.matrix()

    def propagate(self, fields: np.ndarray) -> np.ndarray:
        return self.mesh.propagate(fields)

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Matrix product: exact, no spectral-norm bookkeeping needed."""
        return self.propagate(vectors)


def is_unitary_matrix(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """Unitarity check used to pick the single-mesh compute path."""
    from repro.photonics.clements import is_unitary
    return is_unitary(np.asarray(matrix, dtype=complex), tol)


def program_unitary(matrix: np.ndarray,
                    architecture: str | None = None) -> UnitaryProgram:
    """Program a unitary kernel onto a single mesh.

    Raises ``ValueError`` when the matrix is not unitary — use
    :func:`program_svd` for general matrices.
    """
    m = np.asarray(matrix, dtype=complex)
    if not is_unitary_matrix(m):
        raise ValueError("matrix is not unitary; use program_svd")
    if architecture is None or architecture == "clements":
        decompose_fn = decompose
    else:
        from repro.photonics.registry import make_mesh
        decompose_fn = make_mesh(architecture).decompose
    return UnitaryProgram(n=m.shape[0], mesh=decompose_fn(m))


def program_matrix(matrix: np.ndarray, architecture: str | None = None):
    """Program whichever circuit fits: single mesh if unitary, else SVD."""
    m = np.asarray(matrix, dtype=complex)
    if m.ndim == 2 and m.shape[0] == m.shape[1] and is_unitary_matrix(m):
        return program_unitary(m, architecture)
    return program_svd(m, architecture)


def mvm_digital_op_count(n: int) -> tuple[int, int]:
    """Digital-domain cost of one ``N x N`` MVM the MZIM replaces.

    Returns ``(multiplications, additions) = (N^2, N*(N-1))`` —
    Section 3.3.1's accounting of the work a single optical pass performs.
    """
    return n * n, n * (n - 1)
