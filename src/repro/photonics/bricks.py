"""Recirculating brick mesh — the first non-rectangular architecture.

A *brick* is one physical column pair holding ``N - 1`` MZIs: an even
sub-column coupling modes ``(0,1), (2,3), ...`` and an odd sub-column
coupling ``(1,2), (3,4), ...`` (arxiv 2604.18160).  Light recirculates
through the brick, and the drivers reprogram the phases between passes,
so the *virtual* mesh — the program — is as deep as needed while the
hardware stays two sub-columns wide.  The tradeoff the ``mesh_comparison``
sweep quantifies: ~``2/N`` of the devices of a rectangle (so far less
static hold power), but every pass re-incurs the insertion loss of both
sub-columns, and a stuck device pins its phase in *every* pass.

The decomposition reuses the Clements factorization verbatim and only
re-packs the physical column assignment under the parity constraint
(virtual column ``c`` maps to sub-column ``c % 2`` of pass ``c // 2``, so
an MZI on modes ``(m, m+1)`` can only occupy columns with ``c % 2 ==
m % 2``).  The per-mode application order of the 2x2 factors is
unchanged, so programmed phases, reconstructed matrices, and propagation
results are bit-identical to Clements — only the column labels, and with
them the depth/loss/energy accounting, differ.
"""

from __future__ import annotations

import numpy as np

from repro.photonics.clements import MZIMesh, decompose
from repro.photonics.devices import MZIState


def _assign_brick_columns(mzis: list[MZIState], n: int) -> list[MZIState]:
    """Greedily pack MZIs into parity-constrained virtual columns.

    Same greedy scheme as :func:`repro.photonics.clements._assign_columns`
    with one extra rule: an MZI on modes ``(m, m+1)`` may only land in a
    column of matching parity, bumping forward one column when the first
    free slot has the wrong one.  Columns stay strictly increasing along
    every mode, so the columnized propagation plan remains valid.
    """
    mode_free_at = [0] * n
    placed: list[MZIState] = []
    for mzi in mzis:
        m = mzi.top_mode
        col = max(mode_free_at[m], mode_free_at[m + 1])
        if col % 2 != m % 2:
            col += 1
        placed.append(MZIState(m, mzi.theta, mzi.phi, col))
        mode_free_at[m] = col + 1
        mode_free_at[m + 1] = col + 1
    return placed


def decompose_bricks(unitary: np.ndarray, tol: float = 1e-9) -> MZIMesh:
    """Factor ``unitary`` into a recirculating-brick mesh program.

    The phases come from the Clements factorization unchanged; only the
    column packing differs.  See the module docstring for why this is
    numerically bit-identical.
    """
    mesh = decompose(unitary, tol)
    mesh.mzis = _assign_brick_columns(list(mesh.mzis), mesh.n)
    return mesh


def bricks_depth(n: int) -> int:
    """Worst-case virtual columns of a size-``n`` brick program.

    The parity bump delays each Clements column by at most one, so the
    ``n``-column rectangle re-packs into at most ``n + 1`` virtual
    columns (measured depths stay at or under this bound).
    """
    if n < 2:
        return 0
    return n + 1


def bricks_device_count(n: int) -> int:
    """Physical MZIs in one brick: the even + odd sub-columns."""
    if n < 2:
        return 0
    return n - 1


def bricks_passes(n: int) -> int:
    """Recirculation passes: each pass covers both sub-columns."""
    depth = bricks_depth(n)
    return (depth + 1) // 2 if depth else 1


def brick_fault_domain(mesh: MZIMesh, index: int) -> tuple[int, ...]:
    """All virtual MZIs served by ``index``'s physical device.

    A physical brick device is identified by its mode pair; every pass
    reuses it, so a stuck device pins the phase of every virtual MZI on
    the same ``top_mode``.
    """
    top = mesh.mzis[index].top_mode
    return tuple(i for i, mzi in enumerate(mesh.mzis)
                 if mzi.top_mode == top)
