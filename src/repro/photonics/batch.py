"""Stacked MVM dispatch: many meshes, one batched ``(B, k, 2, 2)`` kernel.

The columnized propagation plan (:meth:`MZIMesh._propagation_plan`)
already batches the 2x2 transfers of one physical column into a
``(k, 2, 2)`` stack.  This module adds the *fleet* dimension on top:
``B`` meshes whose MZIs sit at the same physical positions — always true
for Clements meshes of equal size, since the layout is fixed by ``N`` —
propagate ``B`` independent field batches through one
``np.matmul((B, k, 2, 2), (B, k, 2, q))`` per column.  Concurrent MVM
offloads from different cores thus share a single pass through the
kernel instead of looping Python-side per mesh.

Oracle contract (DESIGN.md §14): the stacked kernel is **bit-identical**
to calling :meth:`MZIMesh.propagate` / :meth:`SVDProgram.apply` per
element.  Batched ``np.matmul`` performs the same 2x2 products in the
same operand order for every batch element, so no tolerance is needed
anywhere — tests assert ``==``.  Meshes whose layouts disagree (e.g. a
fault-injected mesh with a removed MZI) simply fall back to the
per-program path, which is the oracle itself.

Module counters (:func:`batch_stats`) record how many units actually
took the stacked path so tests can assert the fast path engaged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.photonics.clements import MZIMesh
    from repro.photonics.svd import SVDProgram

#: Counters for the stacked dispatch path (reset with
#: :func:`reset_batch_stats`): ``jobs`` MVM jobs executed, of which
#: ``stacked`` ran through a stacked group and ``fallback`` ran the
#: per-program oracle (singleton group or layout mismatch); ``groups``
#: counts stacked kernel launches.
_STATS = {"jobs": 0, "stacked": 0, "fallback": 0, "groups": 0}


def batch_stats() -> dict:
    """Snapshot of the stacked-dispatch counters."""
    return dict(_STATS)


def reset_batch_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def plan_signature(mesh: MZIMesh) -> tuple:
    """Hashable fingerprint of a mesh's column layout.

    Two meshes with equal signatures occupy identical physical positions
    (same columns, same mode pairs per column) and may be stacked; the
    programmed phases are free to differ — they live in the transfer
    matrices, not the signature.
    """
    return (mesh.n,
            tuple(top.tobytes() for top, _ in mesh._propagation_plan()))


def stack_meshes(meshes: Sequence[MZIMesh]):
    """Build the stacked plan for layout-compatible meshes.

    Returns ``(plan, phases)`` where ``plan`` is a list of
    ``(top_modes (k,), transfers (B, k, 2, 2))`` per column and
    ``phases`` is the ``(B, n, 1)`` output phase screen — or ``None``
    when the layouts disagree and stacking is impossible.
    """
    plans = [m._propagation_plan() for m in meshes]
    base = plans[0]
    for other in plans[1:]:
        if len(other) != len(base):
            return None
        for (top0, _), (top1, _) in zip(base, other):
            if top0.shape != top1.shape or not np.array_equal(top0, top1):
                return None
    plan = [(base[c][0], np.stack([p[c][1] for p in plans]))
            for c in range(len(base))]
    phases = np.stack([m.output_phases for m in meshes])[:, :, np.newaxis]
    return plan, phases


def propagate_stacked(meshes: Sequence[MZIMesh],
                      fields: np.ndarray) -> np.ndarray:
    """Propagate ``B`` field batches through ``B`` meshes in one pass.

    ``fields`` has shape ``(B, n, q)``; row ``b`` propagates through
    ``meshes[b]``.  Bit-identical to ``meshes[b].propagate(fields[b])``
    for every ``b``.  Raises ``ValueError`` when the mesh layouts cannot
    be stacked — callers wanting the automatic fallback use
    :func:`apply_jobs`.
    """
    stacked = stack_meshes(meshes)
    if stacked is None:
        raise ValueError("mesh layouts differ; cannot stack")
    plan, phases = stacked
    out = np.asarray(fields, dtype=complex).copy()
    if out.ndim != 3 or out.shape[0] != len(meshes):
        raise ValueError(
            f"expected ({len(meshes)}, n, q) fields, got {out.shape}")
    if out.shape[1] != meshes[0].n:
        raise ValueError(
            f"expected mode dimension {meshes[0].n}, got {out.shape[1]}")
    for top, transfers in plan:
        pairs = np.stack((out[:, top], out[:, top + 1]), axis=2)
        mixed = np.matmul(transfers, pairs)  # (B, k, 2, q)
        out[:, top] = mixed[:, :, 0]
        out[:, top + 1] = mixed[:, :, 1]
    return phases * out


def svd_signature(program: SVDProgram) -> tuple:
    """Layout fingerprint of a full SVD circuit (both unitary meshes)."""
    return (plan_signature(program.v_dagger_mesh),
            plan_signature(program.u_mesh))


def apply_svd_stacked(programs: Sequence[SVDProgram],
                      fields: np.ndarray) -> np.ndarray:
    """``B`` SVD MVMs in one stacked pass: ``out[b] = M_b @ fields[b]``.

    Mirrors :meth:`SVDProgram.apply` stage for stage — V* mesh, Sigma
    attenuation, U mesh, spectral rescale — with every stage batched;
    each elementwise stage multiplies the same operands as the
    per-program path, so the result is bit-identical.
    """
    mid = propagate_stacked([p.v_dagger_mesh for p in programs], fields)
    mid = np.stack([p.sigma for p in programs])[:, :, np.newaxis] * mid
    out = propagate_stacked([p.u_mesh for p in programs], mid)
    scales = np.array([p.scale for p in programs])[:, np.newaxis, np.newaxis]
    return scales * out


def apply_jobs(jobs: Sequence[tuple]) -> list[np.ndarray]:
    """Execute MVM jobs ``(program, fields (n, q))``, stacking where legal.

    Jobs are grouped by ``(circuit layout, field shape)``; each group of
    two or more runs through :func:`apply_svd_stacked`, singletons and
    layout-incompatible programs run the per-program oracle
    (:meth:`SVDProgram.apply`).  Results come back in submission order
    and are bit-identical to calling ``program.apply(fields)`` per job.
    """
    results: list = [None] * len(jobs)
    groups: dict[tuple, list[int]] = {}
    for idx, (program, fields) in enumerate(jobs):
        fields = np.asarray(fields)
        if fields.ndim != 2:
            raise ValueError(
                f"job {idx}: fields must be (n, q), got {fields.shape}")
        key = (svd_signature(program), fields.shape)
        groups.setdefault(key, []).append(idx)
    _STATS["jobs"] += len(jobs)
    for members in groups.values():
        if len(members) == 1:
            idx = members[0]
            program, fields = jobs[idx]
            results[idx] = program.apply(np.asarray(fields, dtype=complex))
            _STATS["fallback"] += 1
            continue
        programs = [jobs[idx][0] for idx in members]
        fields = np.stack(
            [np.asarray(jobs[idx][1], dtype=complex) for idx in members])
        out = apply_svd_stacked(programs, fields)
        for slot, idx in enumerate(members):
            results[idx] = out[slot]
        _STATS["stacked"] += len(members)
        _STATS["groups"] += 1
    return results
