"""Reck triangular decomposition — the classic alternative mesh.

Reck et al. (1994) factor an ``N x N`` unitary into ``N(N-1)/2`` MZIs
arranged as a *triangle*: the same device count as Clements' rectangle,
but depth ``2N - 3`` instead of ``N``.  The paper builds on Clements
(reference [10]) precisely because the rectangle halves the worst-case
optical depth and balances path lengths; this module exists to quantify
that choice (see ``benchmarks/bench_ablation_decomposition.py``).

Algorithm: null the last row left to right by left-multiplying embedded
``T(theta, phi)`` factors acting on modes ``(col, col+1)``; recurse on the
leading ``(N-1) x (N-1)`` block.  The accumulated factors then satisfy
``T_k ... T_1 U = D``, so ``U = T_1^dag ... T_k^dag D``; daggered factors
commute through the diagonal with the same rule as Clements
(:mod:`repro.photonics.clements`).
"""

from __future__ import annotations

import cmath

import numpy as np

from repro.photonics.clements import (
    DecompositionError,
    MZIMesh,
    _assign_columns,
    _left_null_phases,
    is_unitary,
)
from repro.photonics.devices import MZIState, mzi_transfer


def decompose_reck(unitary: np.ndarray, tol: float = 1e-9) -> MZIMesh:
    """Factor ``unitary`` into a triangular (Reck) MZI mesh program."""
    u = np.array(unitary, dtype=complex)
    if not is_unitary(u, tol):
        raise DecompositionError("input matrix is not unitary")
    n = u.shape[0]
    mesh = MZIMesh(n=n)
    if n == 1:
        mesh.output_phases = np.array([u[0, 0]], dtype=complex)
        return mesh

    left_ops: list[tuple[int, float, float]] = []
    for col in range(n - 1):
        # Sweep the sub-diagonal of this column bottom-up: each step
        # nulls u[m+1, col] with an MZI on rows (m, m+1).
        for m in range(n - 2, col - 1, -1):
            theta, phi = _left_null_phases(u[m, col], u[m + 1, col])
            t = mzi_transfer(theta, phi)
            u[m:m + 2, :] = t @ u[m:m + 2, :]
            u[m + 1, col] = 0.0
            left_ops.append((m, theta, phi))
    return _finalize(mesh, u, left_ops, n)


def _finalize(mesh: MZIMesh, u: np.ndarray,
              left_ops: list[tuple[int, float, float]], n: int) -> MZIMesh:
    diag = np.diag(u).copy()
    if not np.allclose(np.abs(diag), 1.0, atol=1e-6):
        raise DecompositionError(
            "Reck reduction did not reach a diagonal unitary")
    # U = T_1^dag ... T_k^dag D: commute each dagger through D
    # (innermost/last-recorded first), as in the Clements finalization.
    commuted: list[tuple[int, float, float]] = []
    for m, theta, phi in reversed(left_ops):
        d1, d2 = diag[m], diag[m + 1]
        phi_new = cmath.phase(d1 * d2.conjugate())
        e_theta = cmath.exp(1j * theta)
        diag[m] = -e_theta * cmath.exp(-1j * phi) * d2
        diag[m + 1] = -e_theta * d2
        commuted.append((m, theta, phi_new))
    commuted.reverse()
    # U = D' . T'_1 ... T'_k: rightmost factor hits the input first, so
    # propagation order is the reversed list.
    propagation = [MZIState(m, theta, phi)
                   for m, theta, phi in reversed(commuted)]
    mesh.mzis = _assign_columns(propagation, n)
    mesh.output_phases = diag
    return mesh


def depth_comparison(n: int,
                     rng: np.random.Generator | int | None = None
                     ) -> dict[str, int]:
    """Measured mesh depth (columns) of every registered architecture.

    ``rng`` seeds the sample unitary explicitly (a Generator or an int
    seed; ``None`` = seed 0) — previously the seed was derived from ``n``
    itself, which conflated mesh size with the random draw and made
    cross-size comparisons statistically meaningless.
    """
    from repro.photonics.clements import random_unitary
    from repro.photonics.registry import make_mesh, registered_meshes
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    u = random_unitary(n, rng)
    return {name: make_mesh(name).decompose(u).num_columns
            for name in registered_meshes()}
